//! Drives a memory controller directly — no cores, no OS — to visualize
//! how each refresh policy schedules its commands and what the co-design
//! forecast exposes to software.
//!
//! Run with: `cargo run --release --example refresh_schedules`

use refsim::dram::controller::{ControllerConfig, MemoryController};
use refsim::dram::geometry::Geometry;
use refsim::dram::mapping::{AddressMapping, MappingScheme};
use refsim::dram::refresh::{BusyForecast, RefreshPolicyKind};
use refsim::dram::request::{MemRequest, ReqId, ReqKind};
use refsim::dram::time::Ps;
use refsim::dram::timing::{Density, FgrMode, RefreshTiming, Retention, TimingParams};

fn mc(policy: RefreshPolicyKind) -> MemoryController {
    let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
    MemoryController::new(
        mapping,
        TimingParams::ddr3_1600(),
        RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 256),
        policy,
        ControllerConfig::default(),
    )
}

fn main() {
    let policies = [
        RefreshPolicyKind::AllBank,
        RefreshPolicyKind::PerBankRoundRobin,
        RefreshPolicyKind::PerBankSequential,
        RefreshPolicyKind::OooPerBank,
        RefreshPolicyKind::Fgr(FgrMode::X4),
        RefreshPolicyKind::Adaptive,
    ];
    println!("refresh commands issued in one (scaled) retention window:\n");
    for p in policies {
        let mut c = mc(p);
        // A light read stream so OOO/AR have queues to look at.
        let mut t = Ps::ZERO;
        let mut id = 0u64;
        let window = c.refresh_timing().trefw;
        while t < window {
            c.advance_to(t);
            let paddr = (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & ((32 << 30) - 1) & !0x3f;
            let _ = c.enqueue(MemRequest {
                id: ReqId(id),
                kind: ReqKind::Read,
                paddr,
                loc: c.mapping().decode(paddr),
                arrival: t,
                core: 0,
                task: 0,
            });
            id += 1;
            t += Ps::from_ns(500);
        }
        c.advance_to(window);
        let s = c.stats();
        println!(
            "{:20} {:4} rank-level + {:4} bank-level refreshes, {:3} reads refresh-blocked, avg latency {:5.1} cyc",
            p.to_string(),
            s.refreshes_ab,
            s.refreshes_pb,
            s.refresh_blocked_reads,
            s.avg_read_latency_cycles(Ps::from_ps(1250)).unwrap_or(0.0),
        );
    }

    // The co-design exposure: ask the sequential schedule what will be
    // refreshing during each upcoming "quantum".
    let c = mc(RefreshPolicyKind::PerBankSequential);
    let slice = c.refresh_timing().slice_len(16);
    println!("\nsequential-schedule forecast per quantum (the OS-visible register):");
    for q in 0..4u64 {
        let (start, end) = (slice * q, slice * (q + 1));
        match c.refresh_forecast(start, end) {
            BusyForecast::Bank(b) => {
                println!("  quantum {q}: bank {b} is refreshing — schedule around it")
            }
            other => println!("  quantum {q}: {other:?}"),
        }
    }
}

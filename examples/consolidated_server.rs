//! The paper's motivating scenario (§1): a consolidated server where
//! several tasks share each core and DRAM refresh eats an increasing
//! share of the memory bandwidth. Sweeps the consolidation ratio and
//! compares refresh-mitigation schemes.
//!
//! Run with: `cargo run --release --example consolidated_server`

use refsim::core::config::SystemConfig;
use refsim::core::experiment::{run_many, Job, Scheme};
use refsim::core::report::Table;
use refsim::workloads::mix::by_name;

fn main() {
    let base = SystemConfig::table1().with_time_scale(128);
    let schemes = [Scheme::AllBank, Scheme::PerBank, Scheme::CoDesign];
    let mut table = Table::new(
        "Consolidation sweep on WL-10 (mcf + bwaves + povray), 32 Gb",
        [
            "tasks/core",
            "all-bank IPC",
            "per-bank",
            "co-design",
            "co-design gain",
        ],
    );
    for ratio in [2usize, 4, 8] {
        let mix = by_name("WL-10").unwrap().resized(2 * ratio);
        let jobs: Vec<Job> = schemes
            .iter()
            .map(|s| Job {
                cfg: s.apply(&base),
                mix: mix.clone(),
            })
            .collect();
        let runs = run_many(&jobs, 3);
        table.push([
            format!("1:{ratio}"),
            Table::fmt_f(runs[0].hmean_ipc()),
            Table::fmt_f(runs[1].hmean_ipc()),
            Table::fmt_f(runs[2].hmean_ipc()),
            Table::fmt_pct((runs[2].speedup_over(&runs[0]) - 1.0) * 100.0),
        ]);
    }
    println!("{table}");
    println!("Higher consolidation leaves less slack to hide refresh —");
    println!("which is exactly where the refresh-aware schedule pays off.");
}

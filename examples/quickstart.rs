//! Quickstart: simulate one multi-programmed workload under the baseline
//! (all-bank refresh, bank-agnostic allocation, plain CFS) and under the
//! full co-design, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use refsim::core::config::SystemConfig;
use refsim::core::system::System;
use refsim::workloads::mix::by_name;

fn main() {
    // The paper's Table 1 machine, with the retention window shrunk 64×
    // so the example finishes in seconds (all refresh-overhead ratios
    // are preserved; see DESIGN.md).
    let base = SystemConfig::table1().with_time_scale(64);
    let mix = by_name("WL-5").expect("Table 2 defines WL-5");
    println!("workload: {mix}");
    println!(
        "machine:  {} cores, {} banks, {} density, tREFW {}\n",
        base.n_cores,
        base.total_banks(),
        base.density,
        base.trefw(),
    );

    let baseline = System::new(base.clone(), &mix).run();
    let codesign = System::new(base.co_design(), &mix).run();

    println!("{:22} {:>10} {:>12}", "", "baseline", "co-design");
    println!(
        "{:22} {:>10.4} {:>12.4}",
        "harmonic-mean IPC",
        baseline.hmean_ipc(),
        codesign.hmean_ipc()
    );
    println!(
        "{:22} {:>10.1} {:>12.1}",
        "avg mem latency (cyc)",
        baseline.avg_read_latency_cycles(),
        codesign.avg_read_latency_cycles()
    );
    println!(
        "{:22} {:>10} {:>12}",
        "refresh-blocked reads",
        baseline.controller.refresh_blocked_reads,
        codesign.controller.refresh_blocked_reads
    );
    println!(
        "\nco-design speedup over all-bank refresh: {:.1}%",
        (codesign.speedup_over(&baseline) - 1.0) * 100.0
    );
}

//! The extended-temperature study (§6.4): above 85 °C DRAM retention
//! halves to 32 ms, doubling refresh activity. Compares schemes across
//! device densities under that regime.
//!
//! Run with: `cargo run --release --example hot_datacenter`

use refsim::core::config::SystemConfig;
use refsim::core::experiment::{run_many, Job, Scheme};
use refsim::core::report::Table;
use refsim::dram::timing::{Density, Retention};
use refsim::workloads::mix::by_name;

fn main() {
    let mix = by_name("WL-5").unwrap();
    let mut table = Table::new(
        "WL-5 at 32 ms retention (> 85 degC): speedup over all-bank",
        ["density", "per-bank", "co-design"],
    );
    for density in Density::EVALUATED {
        let base = SystemConfig::table1()
            .with_time_scale(128)
            .with_density(density)
            .with_retention(Retention::Ms32);
        let jobs: Vec<Job> = [Scheme::AllBank, Scheme::PerBank, Scheme::CoDesign]
            .iter()
            .map(|s| Job {
                cfg: s.apply(&base),
                mix: mix.clone(),
            })
            .collect();
        let runs = run_many(&jobs, 3);
        table.push([
            density.to_string(),
            Table::fmt_f(runs[1].speedup_over(&runs[0])),
            Table::fmt_f(runs[2].speedup_over(&runs[0])),
        ]);
    }
    println!("{table}");
    println!("At 32 ms the refresh tax doubles, so dodging it helps even more");
    println!("(the paper reports +34.1% over all-bank at 32 Gb).");
}

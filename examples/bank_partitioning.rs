//! Bank-aware memory allocation without any timing simulation: shows
//! Algorithm 2 steering pages, the per-task `possible_banks_vector`,
//! capacity fallback (§5.4.1), and the Figure 5 capacity question.
//!
//! Run with: `cargo run --release --example bank_partitioning`

use refsim::dram::geometry::Geometry;
use refsim::dram::mapping::{AddressMapping, MappingScheme};
use refsim::os::bank_alloc::{BankAwareAllocator, BankVector};
use refsim::os::partition::{plan, verify_coverage, PartitionInput, PartitionPlan};

fn main() {
    // A small machine so the numbers are easy to read: 2 ranks × 8 banks
    // with 4 Ki rows per bank → 16 MiB banks.
    let geometry = Geometry::ddr3_2rank_8bank(4 * 1024);
    let mapping = AddressMapping::new(geometry, MappingScheme::RowRankBankColumn);
    let mut alloc = BankAwareAllocator::new(mapping);

    // Plan the paper's soft partition for 8 tasks on 2 cores.
    let input = PartitionInput {
        total_banks: 16,
        banks_per_rank: 8,
        n_cores: 2,
        n_tasks: 8,
    };
    let partition = plan(PartitionPlan::Soft, input);
    verify_coverage(&partition, input).expect("every core can dodge every bank");
    for (i, banks) in partition.banks.iter().enumerate() {
        println!(
            "task {i} (core {}): banks {:?}",
            partition.cpus[i],
            banks.iter().collect::<Vec<_>>()
        );
    }

    // Allocate pages for task 0 and watch them round-robin its banks.
    let mut last = alloc.total_banks() - 1;
    print!("\ntask 0 page placements: ");
    for _ in 0..8 {
        let page = alloc.alloc_page(partition.banks[0], &mut last).unwrap();
        print!("b{} ", page.bank);
    }
    println!();

    // Exhaust one bank to see the §5.4.1 fallback in action.
    let only = BankVector::single(5);
    let mut spills = 0;
    for _ in 0..2 * alloc.pages_per_bank() {
        if alloc.alloc_page(only, &mut last).unwrap().fell_back {
            spills += 1;
        }
    }
    println!(
        "confining to one 16 MiB bank: {} of {} pages spilled to other banks",
        spills,
        2 * alloc.pages_per_bank()
    );
}

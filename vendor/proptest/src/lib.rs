//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small property-testing engine exposing the API subset its
//! test suites use:
//!
//! - [`proptest!`] with optional `#![proptest_config(...)]`,
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - [`strategy::Strategy`] with `prop_map`, [`strategy::Just`],
//!   [`prop_oneof!`], integer range and tuple strategies,
//! - [`any`] for primitive types,
//! - [`collection::vec`] and [`sample::select`].
//!
//! Differences from upstream: generation is driven by a deterministic
//! per-case SplitMix64 stream (no persisted failure file) and there is
//! **no shrinking** — a failing case panics with the case number so it
//! can be replayed exactly by rerunning the test binary.

pub mod strategy;

use std::marker::PhantomData;

use strategy::Strategy;
use test_runner::TestRng;

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Returns a strategy sampling the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_bits() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_bits() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_bits() & 1 == 1
    }
}

/// Test-runner configuration and the per-case RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Number of generated cases per property (overridable with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the deterministic suite
            // fast while still exploring a useful volume of cases.
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case random stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for case number `case`; the stream depends only on `case`.
        pub fn for_case(case: u32) -> Self {
            Self {
                inner: StdRng::seed_from_u64(0x5EED_0000_0000 + case as u64),
            }
        }

        /// Next 64 random bits.
        pub fn next_bits(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from `[0, n)`. Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_bits() % n
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options`. Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select: no options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal test running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Skips the current case when the assumption does not hold.
///
/// Expands to a `continue` of the case loop the [`proptest!`] macro
/// wraps around the test body, mirroring upstream's rejection semantics
/// (without the global rejection-rate cap).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0u32..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn maps_and_tuples(v in prop::collection::vec((0u8..4, any::<bool>()), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|(a, _)| *a < 4));
        }

        #[test]
        fn oneof_and_select(
            k in prop_oneof![Just(1u32), Just(2u32), (5u32..8)],
            s in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!(k == 1 || k == 2 || (5..8).contains(&k));
            prop_assert!(s == "a" || s == "b");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// Doc comments and explicit configs parse.
        #[test]
        fn configured(x in any::<u16>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 1..20);
        let a = strat.generate(&mut TestRng::for_case(11));
        let b = strat.generate(&mut TestRng::for_case(11));
        assert_eq!(a, b);
    }
}

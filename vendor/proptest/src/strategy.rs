//! The [`Strategy`] trait and combinators for the vendored proptest
//! stand-in: integer ranges, tuples, [`Just`], `prop_map`, boxing, and
//! [`Union`] (backing `prop_oneof!`).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking;
/// `generate` draws one concrete value from the deterministic stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Type-erased strategy, cheap to clone.
pub struct BoxedStrategy<V> {
    generate: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.generate)(rng)
    }
}

/// Uniform choice among same-typed strategies; backs `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`. Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof!: no options");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_bits() as u128 % span) as $t;
                self.start + draw
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "range strategy: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_bits() as u128 % span) as $t;
                lo + draw
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

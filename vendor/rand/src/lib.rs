//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access to a
//! crates.io mirror, so the workspace vendors the *tiny* subset of the
//! `rand 0.8` API it actually uses: [`Rng::gen_range`] over integer
//! ranges, [`rngs::StdRng`], and [`SeedableRng::seed_from_u64`].
//!
//! The generator is SplitMix64 — deterministic, seedable, and more than
//! good enough for workload-address synthesis and test-case generation.
//! It is **not** cryptographically secure and does not match upstream
//! `StdRng`'s output stream; nothing in this workspace depends on either
//! property (all consumers seed explicitly and only require determinism).

use std::ops::Range;

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open). Panics if empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_half_open(self.next_u64(), range.start, range.end)
    }

    /// Samples a value of type `T` from its full domain.
    fn gen<T: Fill>(&mut self) -> T {
        T::fill(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps 64 random bits into `[lo, hi)`.
    fn sample_half_open(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128);
                lo + ((bits as u128 % span) as Self)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (bits as u128 % span) as i128) as Self
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Types constructible from 64 random bits, for [`Rng::gen`].
pub trait Fill {
    /// Builds a value from 64 random bits.
    fn fill(bits: u64) -> Self;
}

impl Fill for u64 {
    fn fill(bits: u64) -> Self {
        bits
    }
}

impl Fill for u32 {
    fn fill(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Fill for bool {
    fn fill(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Fill for f64 {
    fn fill(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for upstream `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Scramble once so nearby seeds diverge immediately.
            let mut rng = StdRng { state };
            rng.next_u64();
            Self { state: rng.state }
        }
    }

    impl StdRng {
        /// The raw generator state, for checkpointing. Feeding it back
        /// through [`StdRng::from_state_u64`] resumes the exact stream.
        pub fn state_u64(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator from a state captured with
        /// [`StdRng::state_u64`] (no seed scrambling applied).
        pub fn from_state_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}

//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Implements just enough of the criterion 0.5 API for the workspace's
//! `harness = false` benches: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros. Each bench runs a short warm-up followed by
//! a fixed-duration measurement window and prints mean wall-clock time
//! per iteration — no statistics, no plots, no CLI filtering.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            label: format!("{}/{param}", name.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { label: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up & calibration: one iteration to size the measurement loop.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~100ms of measurement or `sample_size` iterations,
    // whichever is *smaller*, so heavyweight benches stay bounded.
    let fit = (Duration::from_millis(100).as_nanos() / per_iter.as_nanos()).max(1);
    let iters = (sample_size as u128).min(fit) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    println!(
        "bench {label:<48} {:>12.3} us/iter ({iters} iters)",
        mean * 1e6
    );
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `routine` under `name`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, routine: R) -> &mut Self {
        run_one(name, 20, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of measured iterations per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group (formatting no-op here).
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0u64..1000).sum::<u64>()));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &m| {
            b.iter(|| (0u64..100).map(|x| x * m).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default();
        wave(&mut c);
    }
}

//! No-op derive macros backing the vendored `serde` stand-in.
//!
//! Expanding to an empty token stream is sufficient because nothing in
//! the workspace takes a `Serialize`/`Deserialize` bound; the derives are
//! declared on result/config types only as forward compatibility.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

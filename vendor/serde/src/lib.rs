//! Minimal, dependency-free stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! compatibility for result export — no code path serializes anything yet
//! and no generic bound names these traits. The vendored derive macros
//! therefore expand to nothing, and the traits here exist purely so
//! `use serde::{Deserialize, Serialize};` resolves both the macro and the
//! trait namespace exactly as with upstream serde.

/// Marker trait matching `serde::Serialize`'s name and namespace.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name and namespace.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

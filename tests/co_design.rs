//! End-to-end integration tests of the full co-design stack: DRAM
//! refresh scheduling ⇄ memory partitioning ⇄ refresh-aware process
//! scheduling, exercised through the public facade.
//!
//! These use small time scales and fractional windows so they stay fast
//! in debug builds; the bench binaries run the full-fidelity versions.

use refsim::core::config::SystemConfig;
use refsim::core::system::System;
use refsim::dram::refresh::RefreshPolicyKind;
use refsim::dram::time::Ps;
use refsim::dram::timing::Retention;
use refsim::os::partition::PartitionPlan;
use refsim::os::sched::SchedPolicy;
use refsim::workloads::mix::WorkloadMix;
use refsim::workloads::profiles::Benchmark;

/// A fast test configuration (tiny retention window).
fn tiny(cfg: SystemConfig) -> SystemConfig {
    let mut c = cfg.with_time_scale(512);
    c.warmup = c.trefw() / 4;
    c.measure = c.trefw();
    c
}

fn medium_mix() -> WorkloadMix {
    WorkloadMix::from_groups(
        "gems-mix",
        &[(Benchmark::GemsFdtd, 4), (Benchmark::Povray, 4)],
        "M + L",
    )
}

#[test]
fn scheme_ordering_matches_paper() {
    // The paper's central result, end to end: no-refresh ≥ co-design >
    // per-bank > all-bank for a medium-intensity mix.
    let base = tiny(SystemConfig::table1());
    let mix = medium_mix();
    let all_bank = System::new(base.clone(), &mix).run();
    let per_bank = System::new(
        base.clone()
            .with_refresh(RefreshPolicyKind::PerBankRoundRobin),
        &mix,
    )
    .run();
    let co_design = System::new(base.clone().co_design(), &mix).run();
    let no_refresh = System::new(
        base.clone().with_refresh(RefreshPolicyKind::NoRefresh),
        &mix,
    )
    .run();
    let ab = all_bank.hmean_ipc();
    let pb = per_bank.hmean_ipc();
    let cd = co_design.hmean_ipc();
    let nr = no_refresh.hmean_ipc();
    assert!(pb > ab, "per-bank {pb} must beat all-bank {ab}");
    assert!(cd > pb, "co-design {cd} must beat per-bank {pb}");
    assert!(nr > ab, "no-refresh {nr} must beat all-bank {ab}");
    // The co-design may legitimately exceed the *unpartitioned*
    // no-refresh system: beyond hiding refresh it also partitions banks
    // and co-schedules complementary task groups, both of which reduce
    // cross-task row-buffer interference. Bound the excess for sanity.
    assert!(
        cd <= nr * 1.3,
        "co-design {cd} implausibly above the no-refresh system {nr}"
    );
}

#[test]
fn co_design_eliminates_most_refresh_blocking() {
    let base = tiny(SystemConfig::table1());
    let mix = medium_mix();
    let baseline = System::new(base.clone(), &mix).run();
    let codesign = System::new(base.co_design(), &mix).run();
    assert!(baseline.controller.refresh_blocked_reads > 0);
    // The refresh-aware schedule should remove the large majority of
    // refresh-blocked demand reads.
    assert!(
        codesign.controller.refresh_blocked_reads * 4 < baseline.controller.refresh_blocked_reads,
        "co-design blocked {} vs baseline {}",
        codesign.controller.refresh_blocked_reads,
        baseline.controller.refresh_blocked_reads
    );
}

#[test]
fn lower_retention_hurts_more_and_codesign_recovers_more() {
    let base64 = tiny(SystemConfig::table1());
    let base32 = tiny(SystemConfig::table1().with_retention(Retention::Ms32));
    let mix = medium_mix();

    let deg = |base: &SystemConfig| {
        let ab = System::new(base.clone(), &mix).run();
        let nr = System::new(
            base.clone().with_refresh(RefreshPolicyKind::NoRefresh),
            &mix,
        )
        .run();
        1.0 - ab.hmean_ipc() / nr.hmean_ipc()
    };
    let d64 = deg(&base64);
    let d32 = deg(&base32);
    assert!(
        d32 > d64,
        "32 ms retention must degrade more (64ms: {d64:.3}, 32ms: {d32:.3})"
    );

    let gain = |base: &SystemConfig| {
        let ab = System::new(base.clone(), &mix).run();
        let cd = System::new(base.clone().co_design(), &mix).run();
        cd.speedup_over(&ab)
    };
    assert!(
        gain(&base32) > gain(&base64),
        "the co-design should pay off more at 32 ms retention"
    );
}

#[test]
fn density_scaling_increases_refresh_pain() {
    use refsim::dram::timing::Density;
    let mix = medium_mix();
    let mut degs = Vec::new();
    for d in [Density::Gb8, Density::Gb32] {
        let base = tiny(SystemConfig::table1().with_density(d));
        let ab = System::new(base.clone(), &mix).run();
        let nr = System::new(base.with_refresh(RefreshPolicyKind::NoRefresh), &mix).run();
        degs.push(1.0 - ab.hmean_ipc() / nr.hmean_ipc());
    }
    assert!(
        degs[1] > degs[0],
        "32 Gb (tRFC 890ns) must degrade more than 8 Gb (350ns): {degs:?}"
    );
}

#[test]
fn partition_confines_all_pages_and_sched_dodges() {
    let base = tiny(SystemConfig::table1()).co_design();
    let mix = medium_mix();
    let mut sys = System::new(base, &mix);
    let m = sys.run();
    // Scheduler made refresh-aware decisions.
    assert!(m.sched.picks > 0);
    assert!(
        m.sched.eta_fallbacks == 0,
        "perfect partition must never hit the fairness fallback, got {}",
        m.sched.eta_fallbacks
    );
    // Memory stayed inside each task's permitted banks.
    for t in sys.tasks() {
        assert_eq!(t.spilled_pages, 0, "{} spilled", t.id);
        let total: u64 = t.bytes_per_bank.iter().sum();
        assert!(total > 0, "{} allocated nothing", t.id);
    }
}

#[test]
fn hard_partition_is_valid_but_not_better_than_soft() {
    // §5.2.1: soft partitioning wins as consolidation grows because it
    // preserves bank-level parallelism. Verify hard partitioning at
    // least runs correctly and confines exclusively.
    let base = tiny(SystemConfig::table1())
        .co_design()
        .with_partition(PartitionPlan::Hard);
    let mix = medium_mix();
    let mut sys = System::new(base, &mix);
    let m = sys.run();
    assert!(m.hmean_ipc() > 0.0);
    // Exclusive ownership: no two tasks share a bank with data on it.
    let tasks = sys.tasks();
    for a in 0..tasks.len() {
        for b in (a + 1)..tasks.len() {
            for bank in 0..16 {
                assert!(
                    tasks[a].bytes_on_bank(bank) == 0 || tasks[b].bytes_on_bank(bank) == 0,
                    "tasks {a}/{b} both own data on bank {bank}"
                );
            }
        }
    }
}

#[test]
fn eta_one_disables_the_scheduler_half() {
    let base = tiny(SystemConfig::table1());
    let mix = medium_mix();
    let full = System::new(base.clone().co_design(), &mix).run();
    let eta1 = System::new(
        base.co_design().with_sched(SchedPolicy::RefreshAware {
            eta_thresh: 1,
            best_effort: false,
        }),
        &mix,
    )
    .run();
    // η = 1 falls back to the leftmost task immediately, so performance
    // must not exceed the full co-design.
    assert!(eta1.hmean_ipc() <= full.hmean_ipc() * 1.005);
    assert_eq!(full.sched.eta_fallbacks, 0);
    assert!(eta1.sched.eta_fallbacks > 0);
}

#[test]
fn fgr_modes_lose_to_1x_on_average() {
    use refsim::dram::timing::FgrMode;
    // §6.3: 2x/4x issue more refreshes whose tRFC shrinks sub-linearly,
    // so they underperform 1x for memory-intensive work.
    let mix = WorkloadMix::from_groups("bw", &[(Benchmark::Bwaves, 4)], "H");
    let base = tiny(SystemConfig::table1());
    let x1 = System::new(
        base.clone()
            .with_refresh(RefreshPolicyKind::Fgr(FgrMode::X1)),
        &mix,
    )
    .run();
    let x4 = System::new(base.with_refresh(RefreshPolicyKind::Fgr(FgrMode::X4)), &mix).run();
    assert!(
        x4.hmean_ipc() < x1.hmean_ipc(),
        "4x {} must underperform 1x {}",
        x4.hmean_ipc(),
        x1.hmean_ipc()
    );
}

#[test]
fn deterministic_across_identical_runs() {
    let base = tiny(SystemConfig::table1()).co_design();
    let mix = medium_mix();
    let a = System::new(base.clone(), &mix).run();
    let b = System::new(base, &mix).run();
    assert_eq!(a.tasks, b.tasks);
    assert_eq!(a.controller, b.controller);
}

#[test]
fn seed_changes_results_but_not_shape() {
    let mix = medium_mix();
    let base = tiny(SystemConfig::table1());
    let a = System::new(base.clone().with_seed(1), &mix).run();
    let b = System::new(base.with_seed(2), &mix).run();
    assert_ne!(a.tasks, b.tasks, "different seeds must differ");
    let rel = (a.hmean_ipc() - b.hmean_ipc()).abs() / a.hmean_ipc();
    assert!(rel < 0.1, "seeds should not change IPC by {rel:.3}");
}

#[test]
fn quanta_follow_refresh_slices_at_32ms() {
    // At 32 ms retention the serial one-bank-at-a-time schedule cannot
    // fit its commands (tREFIab/16 < tRFCpb), so the parallel per-rank
    // schedule is used and the quantum is tREFW / banksPerRank = 4 ms.
    // (The paper's footnote 12 quotes a 2 ms slice, which is infeasible
    // under its own tRFCpb — see DESIGN.md.)
    let cfg = SystemConfig::table1()
        .with_retention(Retention::Ms32)
        .with_time_scale(1);
    assert_eq!(cfg.effective_timeslice(), Ps::from_ms(4));
}

#[test]
fn quad_core_consolidation_runs() {
    let mut cfg = tiny(SystemConfig::table1().with_cores(4)).co_design();
    cfg.measure = cfg.trefw() / 2;
    let mix = medium_mix().resized(16);
    let m = System::new(cfg, &mix).run();
    assert_eq!(m.tasks.len(), 16);
    assert!(m.tasks.iter().all(|t| t.instructions > 0));
}

#[test]
fn two_dimms_double_the_banks_and_still_work() {
    let mut cfg = tiny(SystemConfig::table1().with_ranks(4)).co_design();
    cfg.measure = cfg.trefw() / 2;
    let mix = medium_mix();
    let mut sys = System::new(cfg, &mix);
    let m = sys.run();
    assert!(m.hmean_ipc() > 0.0);
    assert_eq!(sys.config().total_banks(), 32);
}

//! Workload-calibration integration tests: each synthetic benchmark,
//! run through the full system (cores + caches + DRAM), must land in the
//! MPKI class Table 2 assigns to it, and relative intensities must
//! order as in the paper.

use refsim::core::config::SystemConfig;
use refsim::core::system::System;
use refsim::workloads::mix::WorkloadMix;
use refsim::workloads::profiles::{Benchmark, MpkiClass};

fn solo_mpki(bench: Benchmark) -> f64 {
    let mut cfg = SystemConfig::table1().with_time_scale(512);
    cfg.warmup = cfg.trefw() / 4;
    cfg.measure = cfg.trefw();
    let mix = WorkloadMix::from_groups(bench.name(), &[(bench, 2)], "solo");
    let m = System::new(cfg, &mix).run();
    m.mpki()
}

#[test]
fn benchmarks_land_in_their_table2_classes() {
    for bench in Benchmark::FIGURE5 {
        let mpki = solo_mpki(bench);
        let expected = bench.profile().class;
        let measured = MpkiClass::of(mpki);
        assert_eq!(
            measured, expected,
            "{bench}: measured MPKI {mpki:.2} lands in {measured:?}, Table 2 says {expected:?}"
        );
    }
}

#[test]
fn mcf_is_the_most_intensive() {
    let mcf = solo_mpki(Benchmark::Mcf);
    for other in [Benchmark::GemsFdtd, Benchmark::Stream, Benchmark::Povray] {
        assert!(mcf > solo_mpki(other), "mcf must out-miss {other}");
    }
}

#[test]
fn low_class_benchmarks_barely_miss() {
    for bench in [Benchmark::Povray, Benchmark::H264ref] {
        let mpki = solo_mpki(bench);
        assert!(mpki < 1.0, "{bench} MPKI {mpki} should be < 1");
        assert!(mpki > 0.0, "{bench} should still miss occasionally");
    }
}

#[test]
fn streaming_benchmarks_have_high_row_locality_solo() {
    // Intrinsic locality is measured solo (one task, one core): two
    // co-running bank-agnostic streams interfere in the row buffers —
    // the very effect §2.3's bank-partitioning citations address — so
    // the multiprogrammed rate is legitimately much lower.
    let mut cfg = SystemConfig::table1().with_time_scale(512);
    cfg.warmup = cfg.trefw() / 4;
    cfg.measure = cfg.trefw();
    let mix = WorkloadMix::from_groups("stream", &[(Benchmark::Stream, 1)], "M");
    let stream = System::new(cfg.clone(), &mix).run();
    let mix = WorkloadMix::from_groups("mcf", &[(Benchmark::Mcf, 1)], "H");
    let mcf = System::new(cfg, &mix).run();
    let s = stream.controller.row_hit_rate().unwrap_or(0.0);
    let m = mcf.controller.row_hit_rate().unwrap_or(0.0);
    assert!(
        s > 0.8,
        "solo stream should be row-hit dominated, got {s:.2}"
    );
    assert!(s > m, "stream row-hit rate {s:.2} must exceed mcf's {m:.2}");
}

#[test]
fn footprints_grow_resident_sets_on_demand() {
    let mut cfg = SystemConfig::table1().with_time_scale(512);
    cfg.warmup = cfg.trefw() / 8;
    cfg.measure = cfg.trefw() / 4;
    let mix = WorkloadMix::from_groups("mcf", &[(Benchmark::Mcf, 1)], "H");
    let mut sys = System::new(cfg, &mix);
    sys.run();
    let t = &sys.tasks()[0];
    // Demand paging: resident set grows with touched pages but stays far
    // below the 1.7 GB declared footprint in a short run.
    assert!(t.mm.resident_pages() > 10);
    assert!(t.mm.rss_bytes() < Benchmark::Mcf.profile().footprint);
    assert_eq!(t.mm.faults(), t.mm.resident_pages());
}

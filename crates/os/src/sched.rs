//! The process scheduler: baseline CFS and the paper's refresh-aware
//! `pick_next_task` (Algorithm 3).

use serde::{Deserialize, Serialize};

use refsim_dram::time::Ps;

use crate::bank_alloc::BankVector;
use crate::cfs::{CfsRunqueue, SavedRunqueue};
use crate::task::{Task, TaskId, TaskState};

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Baseline CFS: always pick the leftmost task (with equal weights
    /// and equal time slices this degenerates to round-robin, matching
    /// the paper's baseline, footnote 10).
    Cfs,
    /// Algorithm 3: skip runnable tasks that would touch the bank being
    /// refreshed in the upcoming quantum.
    RefreshAware {
        /// Fairness threshold `η_thresh` (§5.4): after examining this
        /// many candidates the scheduler falls back to the leftmost task.
        /// `1` disables refresh awareness entirely.
        eta_thresh: u32,
        /// §5.4.1's best-effort variant for high-footprint tasks: when no
        /// task fully avoids the bank, pick the examined candidate with
        /// the least data on it (instead of simply the leftmost).
        best_effort: bool,
    },
}

impl SchedPolicy {
    /// The co-design default: η = 4, best-effort enabled. η must be at
    /// least the consolidation ratio (tasks per core) for the scheduler
    /// to always reach the one task group whose exclusion window covers
    /// the bank being refreshed; with the paper's 1:4 ratio that is 4.
    pub fn refresh_aware() -> Self {
        SchedPolicy::RefreshAware {
            eta_thresh: 4,
            best_effort: true,
        }
    }
}

/// Scheduler counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// `pick_next` invocations.
    pub picks: u64,
    /// Picks where a refresh-colliding task was skipped over.
    pub refresh_dodges: u64,
    /// Picks where η forced the fairness fallback.
    pub eta_fallbacks: u64,
    /// Tasks migrated by the load balancer.
    pub migrations: u64,
}

/// Per-CPU-runqueue process scheduler.
///
/// # Examples
///
/// ```
/// use refsim_os::bank_alloc::BankVector;
/// use refsim_os::sched::{SchedPolicy, Scheduler};
/// use refsim_os::task::{Task, TaskId};
/// use refsim_dram::time::Ps;
///
/// let mut sched = Scheduler::new(SchedPolicy::Cfs, Ps::from_ms(4), 2);
/// let mut t = Task::new(TaskId(0), "mcf", 0, BankVector::all(16), 16);
/// sched.enqueue(&mut t);
/// let picked = sched.pick_next(0, BankVector::EMPTY, &mut [t]);
/// assert_eq!(picked, Some(TaskId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedPolicy,
    timeslice: Ps,
    queues: Vec<CfsRunqueue>,
    stats: SchedStats,
}

impl Scheduler {
    /// Creates a scheduler for `cpus` CPUs with the given quantum.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or the timeslice is zero.
    pub fn new(policy: SchedPolicy, timeslice: Ps, cpus: u32) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        assert!(timeslice > Ps::ZERO, "timeslice must be positive");
        Scheduler {
            policy,
            timeslice,
            queues: (0..cpus).map(|_| CfsRunqueue::new()).collect(),
            stats: SchedStats::default(),
        }
    }

    /// The scheduling quantum.
    pub fn timeslice(&self) -> Ps {
        self.timeslice
    }

    /// The policy in effect.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Counters.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Number of CPUs.
    pub fn cpus(&self) -> u32 {
        self.queues.len() as u32
    }

    /// Runnable tasks on `cpu`.
    pub fn queue_len(&self, cpu: u32) -> usize {
        self.queues[cpu as usize].len()
    }

    /// Makes `task` runnable on its CPU. New/woken tasks are floored to
    /// the queue's `min_vruntime` so they cannot starve incumbents.
    pub fn enqueue(&mut self, task: &mut Task) {
        let rq = &mut self.queues[task.cpu as usize];
        task.vruntime = task.vruntime.max(rq.min_vruntime());
        task.state = TaskState::Runnable;
        rq.insert(task.vruntime, task.id);
    }

    /// Picks the next task for `cpu` (Algorithm 3 when refresh-aware).
    ///
    /// `refresh_banks` is the set of global banks the hardware will
    /// refresh during the upcoming quantum — at most one bank per
    /// channel, populated only when the refresh schedule makes the bank
    /// predictable (the co-design exposure; empty under conventional
    /// schedules). At one channel this degenerates to the paper's
    /// single-bank Algorithm 3 exactly. The picked task is removed from
    /// the queue and marked [`TaskState::Running`].
    pub fn pick_next(
        &mut self,
        cpu: u32,
        refresh_banks: BankVector,
        tasks: &mut [Task],
    ) -> Option<TaskId> {
        self.stats.picks += 1;
        let rq = &mut self.queues[cpu as usize];
        if rq.is_empty() {
            return None;
        }
        let chosen = match self.policy {
            SchedPolicy::Cfs => {
                // Emptiness was checked above; treat a desynchronized
                // queue as "nothing runnable" instead of aborting.
                rq.leftmost()?
            }
            SchedPolicy::RefreshAware { .. } if refresh_banks.is_empty() => rq.leftmost()?,
            SchedPolicy::RefreshAware {
                eta_thresh,
                best_effort,
            } => {
                // Algorithm 3: walk candidates left-to-right; take the
                // first whose possible_banks_vector excludes every bank
                // being refreshed; after η candidates, fall back.
                let mut first_entity = None;
                let mut found = None;
                let mut best: Option<(u64, TaskId)> = None; // (bytes on busy banks, id)
                let mut examined = 0;
                for (_, id) in rq.iter() {
                    let t = &tasks[id.0 as usize];
                    examined += 1;
                    if first_entity.is_none() {
                        first_entity = Some(id);
                    }
                    if t.avoids_banks(refresh_banks) {
                        found = Some(id);
                        break;
                    }
                    let bytes = t.bytes_on_banks(refresh_banks);
                    if best.is_none_or(|(bb, _)| bytes < bb) {
                        best = Some((bytes, id));
                    }
                    if examined >= eta_thresh {
                        break;
                    }
                }
                match found {
                    Some(id) => {
                        if examined > 1 {
                            self.stats.refresh_dodges += 1;
                        }
                        id
                    }
                    None => {
                        self.stats.eta_fallbacks += 1;
                        // The walk examined >= 1 entity (queue is
                        // non-empty), so both fallbacks are Some; bail
                        // out gracefully if that ever stops holding.
                        if best_effort {
                            best?.1
                        } else {
                            first_entity?
                        }
                    }
                }
            }
        };
        let t = &mut tasks[chosen.0 as usize];
        let removed = rq.remove(t.vruntime, chosen);
        debug_assert!(removed, "picked task must be queued");
        t.state = TaskState::Running;
        t.schedules += 1;
        Some(chosen)
    }

    /// Returns a preempted task to its queue after running for `ran`.
    pub fn requeue(&mut self, task: &mut Task, ran: Ps) {
        task.vruntime += ran;
        task.cpu_time += ran;
        self.enqueue(task);
    }

    /// Removes a task from scheduling (exit/sleep) after running for
    /// `ran`.
    pub fn block(&mut self, task: &mut Task, ran: Ps) {
        task.vruntime += ran;
        task.cpu_time += ran;
        task.state = TaskState::Blocked;
    }

    /// CFS-style load balancing: move tasks from the longest queue to
    /// the shortest until counts differ by at most one. Returns the
    /// number of migrations performed.
    pub fn balance(&mut self, tasks: &mut [Task]) -> u64 {
        let mut moved = 0;
        loop {
            let lens = (0..self.queues.len()).map(|c| (c, self.queues[c].len()));
            let Some((max_cpu, max_len)) = lens.clone().max_by_key(|&(_, l)| l) else {
                break; // no CPUs: nothing to balance
            };
            let Some((min_cpu, min_len)) = lens.clone().min_by_key(|&(_, l)| l) else {
                break;
            };
            if max_len <= min_len + 1 {
                break;
            }
            let Some((v, id)) = self.queues[max_cpu].pop_rightmost() else {
                break; // max_len >= 2 implies non-empty; stop if not
            };
            let t = &mut tasks[id.0 as usize];
            t.cpu = min_cpu as u32;
            // Re-floor into the destination queue.
            t.vruntime = v.max(self.queues[min_cpu].min_vruntime());
            self.queues[min_cpu].insert(t.vruntime, id);
            moved += 1;
            self.stats.migrations += 1;
        }
        moved
    }

    /// Captures the runqueues and counters for checkpointing. The policy
    /// and timeslice are configuration.
    pub fn save_state(&self) -> SavedScheduler {
        SavedScheduler {
            queues: self.queues.iter().map(CfsRunqueue::save_state).collect(),
            stats: self.stats,
        }
    }

    /// Reinstates state captured by [`Scheduler::save_state`] into a
    /// scheduler with the same CPU count.
    pub fn restore_state(&mut self, saved: &SavedScheduler) -> Result<(), String> {
        if saved.queues.len() != self.queues.len() {
            return Err(format!(
                "runqueue count mismatch: saved {}, expected {}",
                saved.queues.len(),
                self.queues.len()
            ));
        }
        for (rq, s) in self.queues.iter_mut().zip(&saved.queues) {
            rq.restore_state(s)?;
        }
        self.stats = saved.stats;
        Ok(())
    }
}

/// Dynamic state of a [`Scheduler`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedScheduler {
    /// Per-CPU runqueues.
    pub queues: Vec<SavedRunqueue>,
    /// Scheduler counters.
    pub stats: SchedStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank_alloc::BankVector;

    fn mk_tasks(n: u32, cpu: u32, banks: &[BankVector]) -> Vec<Task> {
        (0..n)
            .map(|i| {
                Task::new(
                    TaskId(i),
                    format!("t{i}"),
                    cpu,
                    banks[i as usize % banks.len()],
                    16,
                )
            })
            .collect()
    }

    #[test]
    fn cfs_round_robins_under_equal_slices() {
        let mut s = Scheduler::new(SchedPolicy::Cfs, Ps::from_ms(4), 1);
        let mut tasks = mk_tasks(3, 0, &[BankVector::all(16)]);
        for t in &mut tasks {
            s.enqueue(t);
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            let id = s.pick_next(0, BankVector::EMPTY, &mut tasks).unwrap();
            order.push(id.0);
            let slice = s.timeslice();
            s.requeue(&mut tasks[id.0 as usize], slice);
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
        // Equal CPU time so far.
        assert!(tasks.iter().all(|t| t.cpu_time == Ps::from_ms(8)));
    }

    #[test]
    fn refresh_aware_skips_colliding_task() {
        // Task 0 may touch bank 0; task 1 is confined away from bank 0.
        let banks = [
            BankVector::all(8),                // task 0: uses bank 0
            (1u32..8).collect::<BankVector>(), // task 1: avoids bank 0
        ];
        let mut s = Scheduler::new(SchedPolicy::refresh_aware(), Ps::from_ms(4), 1);
        let mut tasks = mk_tasks(2, 0, &banks);
        for t in &mut tasks {
            s.enqueue(t);
        }
        // Bank 0 will refresh: task 1 must be chosen although task 0 is
        // leftmost.
        let id = s.pick_next(0, BankVector::single(0), &mut tasks).unwrap();
        assert_eq!(id, TaskId(1));
        assert_eq!(s.stats().refresh_dodges, 1);
        // Without a predictable refresh bank, leftmost wins.
        s.requeue(&mut tasks[1], Ps::from_ms(4));
        let id = s.pick_next(0, BankVector::EMPTY, &mut tasks).unwrap();
        assert_eq!(id, TaskId(0));
    }

    #[test]
    fn eta_threshold_forces_fallback() {
        // All tasks collide with bank 0; η = 2 examines two then falls
        // back to the leftmost.
        let mut s = Scheduler::new(
            SchedPolicy::RefreshAware {
                eta_thresh: 2,
                best_effort: false,
            },
            Ps::from_ms(4),
            1,
        );
        let mut tasks = mk_tasks(3, 0, &[BankVector::all(16)]);
        for t in &mut tasks {
            s.enqueue(t);
        }
        let id = s.pick_next(0, BankVector::single(0), &mut tasks).unwrap();
        assert_eq!(id, TaskId(0), "fairness fallback to leftmost");
        assert_eq!(s.stats().eta_fallbacks, 1);
    }

    #[test]
    fn best_effort_picks_least_data_on_bank() {
        let mut s = Scheduler::new(SchedPolicy::refresh_aware(), Ps::from_ms(4), 1);
        let mut tasks = mk_tasks(3, 0, &[BankVector::all(16)]);
        // All collide (bank 0 permitted); task 2 has the least data there.
        tasks[0].note_page(0, false);
        tasks[0].note_page(0, false);
        tasks[1].note_page(0, false);
        tasks[1].note_page(0, false);
        tasks[1].note_page(0, false);
        tasks[2].note_page(0, false);
        for t in &mut tasks {
            s.enqueue(t);
        }
        let id = s.pick_next(0, BankVector::single(0), &mut tasks).unwrap();
        assert_eq!(id, TaskId(2), "least bytes on the refreshing bank");
    }

    #[test]
    fn eta_of_one_disables_refresh_awareness() {
        let banks = [BankVector::all(8), (1u32..8).collect::<BankVector>()];
        let mut s = Scheduler::new(
            SchedPolicy::RefreshAware {
                eta_thresh: 1,
                best_effort: false,
            },
            Ps::from_ms(4),
            1,
        );
        let mut tasks = mk_tasks(2, 0, &banks);
        for t in &mut tasks {
            s.enqueue(t);
        }
        // η = 1: examine one candidate (the leftmost, which collides) and
        // immediately fall back to it.
        let id = s.pick_next(0, BankVector::single(0), &mut tasks).unwrap();
        assert_eq!(id, TaskId(0));
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut s = Scheduler::new(SchedPolicy::Cfs, Ps::from_ms(4), 2);
        assert_eq!(s.pick_next(1, BankVector::EMPTY, &mut []), None);
    }

    #[test]
    fn vruntime_floor_prevents_starvation_by_new_task() {
        let mut s = Scheduler::new(SchedPolicy::Cfs, Ps::from_ms(4), 1);
        let mut tasks = mk_tasks(2, 0, &[BankVector::all(16)]);
        s.enqueue(&mut tasks[0]);
        // Task 0 runs for a long time.
        let id = s.pick_next(0, BankVector::EMPTY, &mut tasks).unwrap();
        s.requeue(&mut tasks[id.0 as usize], Ps::from_ms(400));
        // A newly woken task starts at the queue floor (task 0's new
        // vruntime), not at zero — so it cannot monopolize the CPU; the
        // two tasks tie and then alternate.
        s.enqueue(&mut tasks[1]);
        assert_eq!(tasks[1].vruntime, Ps::from_ms(400));
        let first = s.pick_next(0, BankVector::EMPTY, &mut tasks).unwrap();
        assert_eq!(first, TaskId(0), "tie broken by id");
        s.requeue(&mut tasks[0], Ps::from_ms(4));
        let second = s.pick_next(0, BankVector::EMPTY, &mut tasks).unwrap();
        assert_eq!(second, TaskId(1));
    }

    #[test]
    fn balance_equalizes_queues() {
        let mut s = Scheduler::new(SchedPolicy::Cfs, Ps::from_ms(4), 2);
        let mut tasks = mk_tasks(4, 0, &[BankVector::all(16)]);
        for t in &mut tasks {
            s.enqueue(t); // all on CPU 0
        }
        assert_eq!(s.queue_len(0), 4);
        assert_eq!(s.queue_len(1), 0);
        let moved = s.balance(&mut tasks);
        assert_eq!(moved, 2);
        assert_eq!(s.queue_len(0), 2);
        assert_eq!(s.queue_len(1), 2);
        // Migrated tasks know their new CPU.
        let on1 = tasks.iter().filter(|t| t.cpu == 1).count();
        assert_eq!(on1, 2);
    }

    #[test]
    fn eta_fallback_counter_is_monotone_and_bounded_by_picks() {
        // Multiprogrammed mix: unconfined tasks (collide with every
        // refresh bank) interleaved with partially confined ones, under
        // a rotating refresh bank with occasional unpredictable quanta.
        let banks = [
            BankVector::all(8),                // collides with everything
            (1u32..8).collect::<BankVector>(), // avoids bank 0
            BankVector::all(8),
            (4u32..8).collect::<BankVector>(), // avoids banks 0–3
        ];
        let mut s = Scheduler::new(SchedPolicy::refresh_aware(), Ps::from_ms(4), 1);
        let mut tasks = mk_tasks(4, 0, &banks);
        for t in &mut tasks {
            s.enqueue(t);
        }
        let mut prev = 0;
        for q in 0..64u32 {
            let bank = if q % 5 == 0 {
                BankVector::EMPTY
            } else {
                BankVector::single(q % 8)
            };
            let id = s.pick_next(0, bank, &mut tasks).unwrap();
            let st = s.stats();
            assert!(st.eta_fallbacks >= prev, "counter must be monotone");
            assert!(
                st.eta_fallbacks <= st.picks,
                "at most one fallback per pick ({} > {})",
                st.eta_fallbacks,
                st.picks
            );
            prev = st.eta_fallbacks;
            let slice = s.timeslice();
            s.requeue(&mut tasks[id.0 as usize], slice);
        }
        let st = s.stats();
        assert_eq!(st.picks, 64);
        // Banks 4–7 collide with every task in the mix, so fallbacks
        // must actually have fired — but dodges fire too, so the counter
        // stays strictly below the pick count.
        assert!(st.eta_fallbacks > 0, "colliding quanta must fall back");
        assert!(st.refresh_dodges > 0, "avoidable quanta must dodge");
        assert!(st.eta_fallbacks < st.picks);
    }

    #[test]
    fn fairness_fallback_bounds_starvation_to_eta_quanta() {
        // Worst case for Algorithm 3: as many runnable tasks as η, all
        // colliding with every refresh bank, so *every* pick is an η
        // fallback. The fairness fallback (leftmost vruntime) must then
        // degrade to plain CFS: no task waits longer than η quanta
        // between schedules.
        let eta = 4u32;
        let mut s = Scheduler::new(
            SchedPolicy::RefreshAware {
                eta_thresh: eta,
                best_effort: false,
            },
            Ps::from_ms(4),
            1,
        );
        let mut tasks = mk_tasks(eta, 0, &[BankVector::all(16)]);
        for t in &mut tasks {
            s.enqueue(t);
        }
        let mut last = vec![0u32; eta as usize];
        for q in 1..=256u32 {
            let id = s
                .pick_next(0, BankVector::single(q % 16), &mut tasks)
                .unwrap();
            let gap = q - last[id.0 as usize];
            assert!(
                gap <= eta,
                "task {} waited {gap} quanta (> η = {eta})",
                id.0
            );
            last[id.0 as usize] = q;
            let slice = s.timeslice();
            s.requeue(&mut tasks[id.0 as usize], slice);
        }
        assert_eq!(s.stats().eta_fallbacks, 256, "every pick must fall back");
        for (i, l) in last.iter().enumerate() {
            assert!(256 - l <= eta, "task {i} starved at the tail");
        }
    }

    #[test]
    fn block_removes_from_scheduling() {
        let mut s = Scheduler::new(SchedPolicy::Cfs, Ps::from_ms(4), 1);
        let mut tasks = mk_tasks(1, 0, &[BankVector::all(16)]);
        s.enqueue(&mut tasks[0]);
        let id = s.pick_next(0, BankVector::EMPTY, &mut tasks).unwrap();
        s.block(&mut tasks[id.0 as usize], Ps::from_ms(1));
        assert_eq!(tasks[0].state, TaskState::Blocked);
        assert_eq!(s.pick_next(0, BankVector::EMPTY, &mut tasks), None);
    }
}

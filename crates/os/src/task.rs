//! Task control blocks.

use serde::{Deserialize, Serialize};

use refsim_dram::time::Ps;

use crate::bank_alloc::{BankVector, PAGE_BYTES};
use crate::vm::AddressSpace;

/// Task identifier (index into the kernel's task table).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TaskId(pub u32);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Scheduling state of a task.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Waiting in a runqueue.
    #[default]
    Runnable,
    /// Currently on a CPU.
    Running,
    /// Not schedulable (finished or sleeping).
    Blocked,
}

/// A task as the simulated kernel sees it: CFS accounting, the
/// co-design's `possible_banks_vector`, and its memory state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// Identifier.
    pub id: TaskId,
    /// Human-readable label (benchmark name).
    pub label: String,
    /// CFS virtual runtime.
    pub vruntime: Ps,
    /// Scheduling state.
    pub state: TaskState,
    /// CPU this task is enqueued on.
    pub cpu: u32,
    /// Banks this task's pages may occupy (Algorithm 2's
    /// `possible_banks_vector`).
    pub possible_banks: BankVector,
    /// Round-robin allocation cursor (Algorithm 2's `lastAllocedBank`).
    pub last_alloced_bank: u32,
    /// The task's address space.
    pub mm: AddressSpace,
    /// Bytes allocated on each global bank (for §5.4.1's best-effort
    /// scheduling of high-footprint tasks).
    pub bytes_per_bank: Vec<u64>,
    /// Pages that had to be placed outside `possible_banks`.
    pub spilled_pages: u64,
    /// Total time this task has run on a CPU.
    pub cpu_time: Ps,
    /// Times the task was scheduled onto a CPU.
    pub schedules: u64,
}

impl Task {
    /// Creates a runnable task pinned to `cpu` with the given permitted
    /// banks over `total_banks` global banks.
    pub fn new(
        id: TaskId,
        label: impl Into<String>,
        cpu: u32,
        possible_banks: BankVector,
        total_banks: u32,
    ) -> Self {
        Task {
            id,
            label: label.into(),
            vruntime: Ps::ZERO,
            state: TaskState::Runnable,
            cpu,
            possible_banks,
            last_alloced_bank: total_banks.saturating_sub(1),
            mm: AddressSpace::new(),
            bytes_per_bank: vec![0; total_banks as usize],
            spilled_pages: 0,
            cpu_time: Ps::ZERO,
            schedules: 0,
        }
    }

    /// Records a page allocated on `bank` (possibly outside the
    /// permitted set).
    pub fn note_page(&mut self, bank: u32, fell_back: bool) {
        self.bytes_per_bank[bank as usize] += PAGE_BYTES;
        if fell_back {
            self.spilled_pages += 1;
        }
    }

    /// Bytes this task has allocated on `bank`.
    pub fn bytes_on_bank(&self, bank: u32) -> u64 {
        self.bytes_per_bank.get(bank as usize).copied().unwrap_or(0)
    }

    /// Whether scheduling this task during a quantum refreshing `bank`
    /// would stall none of its requests (it owns no data there and the
    /// bank is outside its permitted set).
    pub fn avoids_bank(&self, bank: u32) -> bool {
        !self.possible_banks.contains(bank) && self.bytes_on_bank(bank) == 0
    }

    /// Bytes this task has allocated across every bank in `banks`.
    pub fn bytes_on_banks(&self, banks: BankVector) -> u64 {
        banks.iter().map(|b| self.bytes_on_bank(b)).sum()
    }

    /// [`Task::avoids_bank`] lifted to a busy-bank *set* — one global
    /// bank per channel under a multi-channel refresh schedule. The
    /// task dodges the quantum only if it dodges every busy bank.
    pub fn avoids_banks(&self, banks: BankVector) -> bool {
        self.possible_banks.bits() & banks.bits() == 0 && self.bytes_on_banks(banks) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_defaults() {
        let t = Task::new(TaskId(3), "mcf", 1, BankVector::all(16), 16);
        assert_eq!(t.id, TaskId(3));
        assert_eq!(t.state, TaskState::Runnable);
        assert_eq!(t.vruntime, Ps::ZERO);
        assert_eq!(t.cpu, 1);
        assert_eq!(t.last_alloced_bank, 15);
        assert_eq!(t.bytes_per_bank.len(), 16);
        assert_eq!(t.id.to_string(), "T3");
    }

    #[test]
    fn note_page_accumulates_and_tracks_spills() {
        let mut t = Task::new(TaskId(0), "x", 0, BankVector::single(2), 16);
        t.note_page(2, false);
        t.note_page(2, false);
        t.note_page(9, true);
        assert_eq!(t.bytes_on_bank(2), 8192);
        assert_eq!(t.bytes_on_bank(9), 4096);
        assert_eq!(t.spilled_pages, 1);
        assert_eq!(t.bytes_on_bank(63), 0);
    }

    #[test]
    fn avoids_bank_requires_no_permission_and_no_data() {
        let mut t = Task::new(TaskId(0), "x", 0, BankVector::single(2), 16);
        assert!(t.avoids_bank(5));
        assert!(!t.avoids_bank(2), "bank in permitted set");
        t.note_page(5, true); // spilled data on bank 5
        assert!(!t.avoids_bank(5), "task now owns data there");
    }
}

//! # refsim-os
//!
//! Simulated operating-system substrate for refsim: the Linux-like
//! machinery the paper's co-design modifies — a binary buddy page
//! allocator extended with per-bank free lists and per-task
//! `possible_banks_vector`s (Algorithm 2), demand-paged virtual memory,
//! a CFS-style scheduler with the refresh-aware `pick_next_task`
//! (Algorithm 3, including the `η_thresh` fairness fallback and the
//! §5.4.1 best-effort variant), and the soft/hard memory-partition
//! planner of §5.2.1.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank_alloc;
pub mod buddy;
pub mod cfs;
pub mod partition;
pub mod sched;
pub mod task;
pub mod vm;

/// Commonly used types.
pub mod prelude {
    pub use crate::bank_alloc::{BankAwareAllocator, BankVector, PageAlloc, PAGE_BYTES};
    pub use crate::buddy::{BuddyAllocator, Frame, OutOfMemory};
    pub use crate::cfs::CfsRunqueue;
    pub use crate::partition::{plan, Partition, PartitionInput, PartitionPlan};
    pub use crate::sched::{SchedPolicy, SchedStats, Scheduler};
    pub use crate::task::{Task, TaskId, TaskState};
    pub use crate::vm::AddressSpace;
}

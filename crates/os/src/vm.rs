//! Per-task virtual memory: demand-paged page tables.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::bank_alloc::PAGE_BYTES;
use crate::buddy::Frame;

/// A task's virtual→physical mapping, filled on demand.
///
/// # Examples
///
/// ```
/// use refsim_os::vm::AddressSpace;
///
/// let mut mm = AddressSpace::new();
/// assert_eq!(mm.translate(0x1234), None); // not yet faulted in
/// mm.map(0x1000, 42);
/// assert_eq!(mm.translate(0x1234), Some(42 * 4096 + 0x234));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AddressSpace {
    page_table: HashMap<u64, Frame>,
    /// Demand faults taken (== pages mapped).
    faults: u64,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Virtual page number of `vaddr`.
    pub fn vpn(vaddr: u64) -> u64 {
        vaddr / PAGE_BYTES
    }

    /// Translates a virtual address, or `None` if the page is unmapped
    /// (page fault).
    pub fn translate(&self, vaddr: u64) -> Option<u64> {
        self.page_table
            .get(&Self::vpn(vaddr))
            .map(|f| f * PAGE_BYTES + vaddr % PAGE_BYTES)
    }

    /// Installs a mapping for `vaddr`'s page.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped (double fault handling is a
    /// kernel bug).
    pub fn map(&mut self, vaddr: u64, frame: Frame) {
        let prev = self.page_table.insert(Self::vpn(vaddr), frame);
        assert!(prev.is_none(), "page {:#x} double-mapped", Self::vpn(vaddr));
        self.faults += 1;
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.page_table.len() as u64
    }

    /// Resident set size in bytes.
    pub fn rss_bytes(&self) -> u64 {
        self.resident_pages() * PAGE_BYTES
    }

    /// Demand faults taken so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Iterates over `(vpn, frame)` mappings (deterministic order not
    /// guaranteed; used for teardown and statistics).
    pub fn mappings(&self) -> impl Iterator<Item = (u64, Frame)> + '_ {
        self.page_table.iter().map(|(&v, &f)| (v, f))
    }

    /// Captures the page table (sorted by VPN) and fault counter for
    /// checkpointing.
    pub fn save_state(&self) -> SavedAddressSpace {
        let mut pages: Vec<(u64, Frame)> = self.mappings().collect();
        pages.sort_unstable();
        SavedAddressSpace {
            pages,
            faults: self.faults,
        }
    }

    /// Reinstates state captured by [`AddressSpace::save_state`],
    /// replacing all mappings without counting them as fresh faults.
    pub fn restore_state(&mut self, saved: &SavedAddressSpace) -> Result<(), String> {
        let mut table = HashMap::with_capacity(saved.pages.len());
        for &(vpn, frame) in &saved.pages {
            if table.insert(vpn, frame).is_some() {
                return Err(format!("page {vpn:#x} duplicated in saved page table"));
            }
        }
        self.page_table = table;
        self.faults = saved.faults;
        Ok(())
    }
}

/// Dynamic state of an [`AddressSpace`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedAddressSpace {
    /// `(vpn, frame)` mappings sorted by VPN.
    pub pages: Vec<(u64, Frame)>,
    /// Demand faults taken.
    pub faults: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_miss_then_hit() {
        let mut mm = AddressSpace::new();
        assert_eq!(mm.translate(0x5000), None);
        mm.map(0x5000, 7);
        assert_eq!(mm.translate(0x5000), Some(7 * 4096));
        assert_eq!(mm.translate(0x5fff), Some(7 * 4096 + 0xfff));
        assert_eq!(mm.translate(0x6000), None);
        assert_eq!(mm.faults(), 1);
        assert_eq!(mm.resident_pages(), 1);
        assert_eq!(mm.rss_bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn double_map_panics() {
        let mut mm = AddressSpace::new();
        mm.map(0x1000, 1);
        mm.map(0x1fff, 2); // same page
    }

    #[test]
    fn vpn_math() {
        assert_eq!(AddressSpace::vpn(0), 0);
        assert_eq!(AddressSpace::vpn(4095), 0);
        assert_eq!(AddressSpace::vpn(4096), 1);
    }

    #[test]
    fn mappings_iterates_all() {
        let mut mm = AddressSpace::new();
        mm.map(0x1000, 10);
        mm.map(0x2000, 20);
        let mut v: Vec<_> = mm.mappings().collect();
        v.sort_unstable();
        assert_eq!(v, vec![(1, 10), (2, 20)]);
    }
}

//! Bank-aware physical page allocation — the paper's Algorithm 2.
//!
//! The OS is exposed to the hardware address mapping (which DRAM bank a
//! physical page lands on) and maintains *per-bank free lists* as a cache
//! in front of the buddy allocator. Each task carries a
//! `possible_banks_vector` restricting which banks may hold its pages;
//! consecutive allocations round-robin over the permitted banks to
//! preserve bank-level parallelism (§5.2.1).

use serde::{Deserialize, Serialize};

use refsim_dram::geometry::BankId;
use refsim_dram::mapping::AddressMapping;

use crate::buddy::{BuddyAllocator, Frame, OutOfMemory, SavedBuddy};

/// Page size: 4 KiB (the paper excludes large pages, footnote 9).
pub const PAGE_BYTES: u64 = 4096;

/// A set of *global* banks (all channels), as a bitmask. Global bank
/// index = `channel × banks_per_channel + rank × banks_per_rank + bank`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankVector(u64);

impl BankVector {
    /// The empty set.
    pub const EMPTY: BankVector = BankVector(0);

    /// All of the first `n` banks.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn all(n: u32) -> Self {
        assert!(n <= 64, "at most 64 global banks supported");
        if n == 64 {
            BankVector(u64::MAX)
        } else {
            BankVector((1u64 << n) - 1)
        }
    }

    /// A single-bank set.
    pub fn single(bank: u32) -> Self {
        BankVector(1u64 << bank)
    }

    /// Inserts `bank`.
    pub fn insert(&mut self, bank: u32) {
        self.0 |= 1u64 << bank;
    }

    /// Removes `bank`.
    pub fn remove(&mut self, bank: u32) {
        self.0 &= !(1u64 << bank);
    }

    /// Whether `bank` is in the set.
    pub fn contains(&self, bank: u32) -> bool {
        self.0 & (1u64 << bank) != 0
    }

    /// Number of banks in the set.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over member banks, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let bits = self.0;
        (0..64).filter(move |b| bits & (1u64 << b) != 0)
    }

    /// The next member bank strictly after `bank`, wrapping within
    /// `total` banks; `None` if the set is empty.
    pub fn next_after(&self, bank: u32, total: u32) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        (1..=total)
            .map(|d| (bank + d) % total)
            .find(|&b| self.contains(b))
    }

    /// The raw bitmask.
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Rebuilds a set from a bitmask captured with
    /// [`BankVector::bits`].
    pub fn from_bits(bits: u64) -> Self {
        BankVector(bits)
    }
}

impl FromIterator<u32> for BankVector {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut v = BankVector::EMPTY;
        for b in iter {
            v.insert(b);
        }
        v
    }
}

/// Outcome of a page allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageAlloc {
    /// The allocated frame.
    pub frame: Frame,
    /// Global bank the frame lives on.
    pub bank: u32,
    /// The allocation fell outside the requested `possible_banks`
    /// (capacity fallback, §5.4.1).
    pub fell_back: bool,
}

/// Allocator counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankAllocStats {
    /// Successful allocations.
    pub allocations: u64,
    /// Allocations served from a per-bank free list without touching the
    /// buddy allocator.
    pub cache_hits: u64,
    /// Pages pulled from the buddy allocator while hunting for a bank.
    pub pulls: u64,
    /// Allocations that fell back outside the requested banks.
    pub fallbacks: u64,
}

/// The bank-aware allocator: a buddy allocator plus per-bank free-list
/// caches and the address-mapping knowledge to steer pages (Algorithm 2).
///
/// # Examples
///
/// ```
/// use refsim_dram::geometry::Geometry;
/// use refsim_dram::mapping::{AddressMapping, MappingScheme};
/// use refsim_os::bank_alloc::{BankAwareAllocator, BankVector};
///
/// let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
/// let mut alloc = BankAwareAllocator::new(mapping);
/// let only_bank3 = BankVector::single(3);
/// let mut last = 0;
/// let page = alloc.alloc_page(only_bank3, &mut last).unwrap();
/// assert_eq!(page.bank, 3);
/// assert!(!page.fell_back);
/// ```
#[derive(Debug, Clone)]
pub struct BankAwareAllocator {
    buddy: BuddyAllocator,
    mapping: AddressMapping,
    total_banks: u32,
    banks_per_channel: u32,
    /// Per-global-bank cached free pages (Algorithm 2's
    /// `free_list_per_bank`).
    per_bank_free: Vec<Vec<Frame>>,
    stats: BankAllocStats,
}

impl BankAwareAllocator {
    /// Creates an allocator over the full capacity of `mapping`'s
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 64 banks system-wide.
    pub fn new(mapping: AddressMapping) -> Self {
        let g = mapping.geometry();
        let total_banks = g.total_banks();
        assert!(total_banks <= 64, "BankVector supports at most 64 banks");
        let frames = g.total_bytes() / PAGE_BYTES;
        BankAwareAllocator {
            buddy: BuddyAllocator::new(frames),
            mapping,
            total_banks,
            banks_per_channel: g.banks_per_channel(),
            per_bank_free: (0..total_banks).map(|_| Vec::new()).collect(),
            stats: BankAllocStats::default(),
        }
    }

    /// Number of global banks.
    pub fn total_banks(&self) -> u32 {
        self.total_banks
    }

    /// The global bank a frame belongs to.
    pub fn bank_of(&self, frame: Frame) -> u32 {
        let (channel, bank_id) = self.mapping.page_bank(frame * PAGE_BYTES);
        u32::from(channel) * self.banks_per_channel
            + bank_id.flat(self.mapping.geometry().banks_per_rank)
    }

    /// Splits a global bank index back into `(channel, BankId)`.
    pub fn bank_parts(&self, bank: u32) -> (u8, BankId) {
        let channel = (bank / self.banks_per_channel) as u8;
        let id = BankId::from_flat(
            bank % self.banks_per_channel,
            self.mapping.geometry().banks_per_rank,
        );
        (channel, id)
    }

    /// Frames currently free (buddy + per-bank caches).
    pub fn free_frames(&self) -> u64 {
        self.buddy.free_frames()
            + self
                .per_bank_free
                .iter()
                .map(|v| v.len() as u64)
                .sum::<u64>()
    }

    /// Counters.
    pub fn stats(&self) -> &BankAllocStats {
        &self.stats
    }

    /// Allocates one page for a task whose permitted banks are
    /// `possible` (Algorithm 2). `last_alloced` is the task's
    /// `lastAllocedBank`, updated on success so consecutive allocations
    /// round-robin across the permitted banks.
    ///
    /// Falls back to *any* bank when the permitted banks are exhausted
    /// (§5.4.1's capacity fallback) — the result's `fell_back` reports
    /// this.
    ///
    /// # Errors
    ///
    /// [`OutOfMemory`] only when the whole machine is out of pages.
    pub fn alloc_page(
        &mut self,
        possible: BankVector,
        last_alloced: &mut u32,
    ) -> Result<PageAlloc, OutOfMemory> {
        let target = possible.next_after(*last_alloced, self.total_banks);
        if let Some(target) = target {
            // Per-bank free-list hit (Algorithm 2 line 13-17).
            if let Some(frame) = self.per_bank_free[target as usize].pop() {
                *last_alloced = target;
                self.stats.allocations += 1;
                self.stats.cache_hits += 1;
                return Ok(PageAlloc {
                    frame,
                    bank: target,
                    fell_back: false,
                });
            }
            // Pull pages from the buddy free list hunting for the target,
            // stashing mismatches into their banks' lists (lines 19-34).
            // One sweep of `total_banks` pulls is guaranteed to hit the
            // target under the page-interleaved mappings unless the
            // target bank is exhausted.
            for _ in 0..self.total_banks {
                let Ok(frame) = self.buddy.alloc(0) else {
                    break;
                };
                self.stats.pulls += 1;
                let bank = self.bank_of(frame);
                if bank == target {
                    *last_alloced = target;
                    self.stats.allocations += 1;
                    return Ok(PageAlloc {
                        frame,
                        bank,
                        fell_back: false,
                    });
                }
                self.per_bank_free[bank as usize].push(frame);
            }
            // Target starved; try any other permitted bank's cache.
            for bank in possible.iter() {
                if let Some(frame) = self.per_bank_free[bank as usize].pop() {
                    *last_alloced = bank;
                    self.stats.allocations += 1;
                    self.stats.cache_hits += 1;
                    return Ok(PageAlloc {
                        frame,
                        bank,
                        fell_back: false,
                    });
                }
            }
        }
        // Fallback: any page anywhere (§5.4.1). Prefer the fullest stash.
        let richest = (0..self.total_banks as usize)
            .max_by_key(|&b| self.per_bank_free[b].len())
            .filter(|&b| !self.per_bank_free[b].is_empty());
        let stash_hit = richest.and_then(|b| self.per_bank_free[b].pop().map(|f| (f, b as u32)));
        let (frame, bank) = match stash_hit {
            Some(hit) => hit,
            None => {
                let frame = self.buddy.alloc(0)?;
                self.stats.pulls += 1;
                (frame, self.bank_of(frame))
            }
        };
        self.stats.allocations += 1;
        self.stats.fallbacks += 1;
        *last_alloced = bank;
        Ok(PageAlloc {
            frame,
            bank,
            fell_back: !possible.contains(bank),
        })
    }

    /// Returns a page to the allocator (to its bank cache, keeping it
    /// warm for re-allocation).
    pub fn free_page(&mut self, frame: Frame) {
        let bank = self.bank_of(frame);
        self.per_bank_free[bank as usize].push(frame);
    }

    /// Capacity of one bank in pages.
    pub fn pages_per_bank(&self) -> u64 {
        self.mapping.geometry().bank_bytes() / PAGE_BYTES
    }

    /// Structural self-audit: delegates to [`BuddyAllocator::audit`] and
    /// then verifies every cached frame sits in the list of the bank it
    /// actually maps to, with no frame cached twice. Returns the first
    /// inconsistency, or `None` when sound.
    pub fn audit(&self) -> Option<String> {
        if let Some(problem) = self.buddy.audit() {
            return Some(problem);
        }
        let mut seen = std::collections::HashSet::new();
        for (bank, list) in self.per_bank_free.iter().enumerate() {
            for &frame in list {
                let actual = self.bank_of(frame);
                if actual != bank as u32 {
                    return Some(format!(
                        "frame {frame:#x} cached under bank {bank} but maps to bank {actual}"
                    ));
                }
                if !seen.insert(frame) {
                    return Some(format!(
                        "frame {frame:#x} cached twice in the per-bank lists — double free?"
                    ));
                }
            }
        }
        None
    }

    /// Captures the buddy allocator, per-bank caches, and counters for
    /// checkpointing. The mapping is configuration.
    pub fn save_state(&self) -> SavedBankAlloc {
        SavedBankAlloc {
            buddy: self.buddy.save_state(),
            per_bank_free: self.per_bank_free.clone(),
            stats: self.stats,
        }
    }

    /// Reinstates state captured by [`BankAwareAllocator::save_state`]
    /// into an allocator built over the same mapping.
    pub fn restore_state(&mut self, saved: &SavedBankAlloc) -> Result<(), String> {
        if saved.per_bank_free.len() != self.per_bank_free.len() {
            return Err(format!(
                "per-bank free-list count mismatch: saved {}, expected {}",
                saved.per_bank_free.len(),
                self.per_bank_free.len()
            ));
        }
        self.buddy.restore_state(&saved.buddy)?;
        self.per_bank_free.clone_from(&saved.per_bank_free);
        self.stats = saved.stats;
        Ok(())
    }
}

/// Dynamic state of a [`BankAwareAllocator`], captured for
/// checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedBankAlloc {
    /// Underlying buddy allocator state.
    pub buddy: SavedBuddy,
    /// Per-global-bank cached free frames (stack order preserved —
    /// allocation pops from the back).
    pub per_bank_free: Vec<Vec<Frame>>,
    /// Allocator counters.
    pub stats: BankAllocStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use refsim_dram::geometry::Geometry;
    use refsim_dram::mapping::MappingScheme;

    fn alloc_for(rows_per_bank: u32) -> BankAwareAllocator {
        let g = Geometry::ddr3_2rank_8bank(rows_per_bank);
        BankAwareAllocator::new(AddressMapping::new(g, MappingScheme::RowRankBankColumn))
    }

    #[test]
    fn bank_vector_basics() {
        let mut v = BankVector::all(16);
        assert_eq!(v.count(), 16);
        v.remove(3);
        assert!(!v.contains(3));
        assert_eq!(v.count(), 15);
        v.insert(3);
        assert!(v.contains(3));
        let s: BankVector = [1u32, 5, 9].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
        assert_eq!(s.next_after(5, 16), Some(9));
        assert_eq!(s.next_after(9, 16), Some(1));
        assert_eq!(BankVector::EMPTY.next_after(0, 16), None);
    }

    #[test]
    fn round_robins_over_permitted_banks() {
        let mut a = alloc_for(1024);
        let possible: BankVector = [2u32, 5, 11].into_iter().collect();
        let mut last = 0;
        let banks: Vec<u32> = (0..6)
            .map(|_| a.alloc_page(possible, &mut last).unwrap().bank)
            .collect();
        assert_eq!(banks, vec![2, 5, 11, 2, 5, 11]);
        assert_eq!(a.stats().fallbacks, 0);
    }

    #[test]
    fn stash_serves_subsequent_allocations() {
        let mut a = alloc_for(1024);
        let mut last = 0;
        // First allocation to bank 11 pulls ~12 pages, stashing banks
        // 1..11's pages; a following allocation to bank 5 is a cache hit.
        let p = a.alloc_page(BankVector::single(11), &mut last).unwrap();
        assert_eq!(p.bank, 11);
        let pulls_before = a.stats().pulls;
        let q = a.alloc_page(BankVector::single(5), &mut last).unwrap();
        assert_eq!(q.bank, 5);
        assert_eq!(a.stats().pulls, pulls_before, "served from stash");
        assert_eq!(a.stats().cache_hits, 1);
    }

    #[test]
    fn single_bank_confinement_fills_then_falls_back() {
        // Tiny geometry: 16 rows/bank → 16 pages per bank.
        let mut a = alloc_for(16);
        let pages_per_bank = a.pages_per_bank();
        assert_eq!(pages_per_bank, 16);
        let mut last = 0;
        let only0 = BankVector::single(0);
        let mut on_bank0 = 0u64;
        let mut fallbacks = 0u64;
        // Allocate twice a bank's capacity.
        for _ in 0..2 * pages_per_bank {
            let p = a.alloc_page(only0, &mut last).unwrap();
            if p.bank == 0 {
                on_bank0 += 1;
            }
            if p.fell_back {
                fallbacks += 1;
            }
        }
        assert_eq!(on_bank0, pages_per_bank, "bank 0 filled exactly");
        assert_eq!(fallbacks, pages_per_bank, "the rest fell back");
    }

    #[test]
    fn oom_only_when_machine_full() {
        let mut a = alloc_for(16); // 16 banks × 16 pages = 256 pages
        let mut last = 0;
        let v = BankVector::all(16);
        for _ in 0..256 {
            a.alloc_page(v, &mut last).unwrap();
        }
        assert!(a.alloc_page(v, &mut last).is_err());
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    fn free_page_recycles_via_bank_cache() {
        let mut a = alloc_for(64);
        let mut last = 0;
        let p = a.alloc_page(BankVector::single(7), &mut last).unwrap();
        a.free_page(p.frame);
        let q = a.alloc_page(BankVector::single(7), &mut last).unwrap();
        assert_eq!(q.frame, p.frame);
    }

    #[test]
    fn bank_of_matches_mapping_page_bank() {
        let a = alloc_for(1024);
        for frame in 0..64u64 {
            let bank = a.bank_of(frame);
            let (ch, id) = a.bank_parts(bank);
            assert_eq!(ch, 0);
            assert_eq!(id.flat(8), bank % 16, "roundtrip through bank_parts");
        }
        // Page-interleaved mapping: consecutive pages walk banks.
        assert_ne!(a.bank_of(0), a.bank_of(1));
    }

    #[test]
    fn soft_partition_two_groups_share_banks() {
        // Tasks in group A get banks 0-11, group B banks 4-15: the
        // overlap (4-11) is shared, per Figure 8b's soft partitioning.
        let mut a = alloc_for(1024);
        let group_a: BankVector = (0u32..12).collect();
        let group_b: BankVector = (4u32..16).collect();
        let mut last_a = 0;
        let mut last_b = 0;
        for _ in 0..24 {
            let pa = a.alloc_page(group_a, &mut last_a).unwrap();
            assert!(group_a.contains(pa.bank));
            let pb = a.alloc_page(group_b, &mut last_b).unwrap();
            assert!(group_b.contains(pb.bank));
        }
    }
}

//! Memory-partition planning: how tasks' `possible_banks_vector`s are
//! chosen (§5.2.1, Figures 8–9, §6.2, §6.6).
//!
//! The co-design's default is *soft partitioning*: with `N` tasks per
//! core and `B` banks per rank, task-group `k ∈ [0, N)` is excluded from
//! the `B/N` banks `[k·B/N, (k+1)·B/N)` *in every rank*, i.e. each task
//! may use `B − B/N` banks per rank (6 of 8 at the paper's 1:4
//! consolidation, 4 of 8 at 1:2 — exactly §6.2/§6.6). Groups repeat
//! across cores, so several tasks share each bank subset (soft), and for
//! any bank being refreshed every core has a runnable task that avoids
//! it — the property Figure 9 illustrates.

use serde::{Deserialize, Serialize};

use crate::bank_alloc::BankVector;

/// How task data is confined to banks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionPlan {
    /// Bank-agnostic baseline: every task may use every bank.
    #[default]
    None,
    /// Soft partitioning at the co-design's sweet spot: each task uses
    /// `B − B/tasks_per_core` banks per rank (Figure 8b).
    Soft,
    /// Confine each task to exactly `banks_per_task` banks per rank,
    /// with exclusion windows staggered across task groups (the Figure 4
    /// sweep and footnote 11's 2/4/6-bank ablation).
    Confine {
        /// Banks per rank each task may use.
        banks_per_task: u32,
    },
    /// Hard partitioning (Figure 8a): global banks divided exclusively
    /// among tasks; no sharing.
    Hard,
}

/// A concrete per-task layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Per-task permitted banks (global indices).
    pub banks: Vec<BankVector>,
    /// Per-task CPU assignment (`task i → core i mod n_cores`).
    pub cpus: Vec<u32>,
}

/// Geometry inputs the planner needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionInput {
    /// Global banks in the system (all channels).
    pub total_banks: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Number of CPUs.
    pub n_cores: u32,
    /// Number of tasks.
    pub n_tasks: u32,
}

impl PartitionInput {
    fn tasks_per_core(&self) -> u32 {
        self.n_tasks.div_ceil(self.n_cores)
    }
}

/// Plans per-task bank vectors and core placement.
///
/// # Panics
///
/// Panics on degenerate inputs (zero tasks/cores/banks) or a `Confine`
/// width outside `1..=banks_per_rank`.
///
/// # Examples
///
/// ```
/// use refsim_os::partition::{plan, PartitionInput, PartitionPlan};
///
/// // The paper's dual-core 1:4 setup: each task gets 6 of 8 banks/rank.
/// let p = plan(
///     PartitionPlan::Soft,
///     PartitionInput { total_banks: 16, banks_per_rank: 8, n_cores: 2, n_tasks: 8 },
/// );
/// assert!(p.banks.iter().all(|b| b.count() == 12)); // 6 per rank × 2 ranks
/// ```
pub fn plan(kind: PartitionPlan, input: PartitionInput) -> Partition {
    assert!(input.n_tasks > 0 && input.n_cores > 0, "empty system");
    assert!(
        input.total_banks > 0 && input.banks_per_rank > 0,
        "no banks"
    );
    assert!(input.total_banks.is_multiple_of(input.banks_per_rank));
    let cpus = (0..input.n_tasks).map(|i| i % input.n_cores).collect();
    let banks = match kind {
        PartitionPlan::None => vec![BankVector::all(input.total_banks); input.n_tasks as usize],
        PartitionPlan::Soft => {
            // Exclusion windows must jointly cover the rank, so each is
            // ceil(B/N) wide: 6-of-8 banks at 1:4, 4-of-8 at 1:2 (§6.2,
            // §6.6), 5-of-8 at a non-dividing 1:3.
            let n = input.tasks_per_core();
            let width = input.banks_per_rank - input.banks_per_rank.div_ceil(n).max(1);
            return plan(
                PartitionPlan::Confine {
                    banks_per_task: width.max(1),
                },
                input,
            );
        }
        PartitionPlan::Confine { banks_per_task } => {
            assert!(
                (1..=input.banks_per_rank).contains(&banks_per_task),
                "banks_per_task {banks_per_task} outside 1..={}",
                input.banks_per_rank
            );
            let n = input.tasks_per_core();
            let b = input.banks_per_rank;
            let excl_len = b - banks_per_task;
            // Spread exclusion-window starts evenly (start g = ⌊g·B/N⌋)
            // so the windows jointly cover the rank whenever
            // excl_len ≥ ceil(B/N) — every refresh slice then has an
            // eligible task group.
            // Group assignment is rotated across cores: core c's j-th
            // task joins group (j + c·n/n_cores) mod n. Same-group tasks
            // (which the refresh-aware scheduler co-runs, since exactly
            // one group is eligible per refresh slice) then come from
            // *different* positions of each core's task list, so
            // consecutive heavy tasks of a mix are paired with light
            // ones instead of with each other — reducing contention on
            // the shared bank subset.
            let core_offset = (n / input.n_cores).max(1);
            (0..input.n_tasks)
                .map(|i| {
                    let j = i / input.n_cores;
                    let c = i % input.n_cores;
                    let group = (j + c * core_offset) % n;
                    let start = (group * b / n) % b;
                    let mut v = BankVector::EMPTY;
                    for g in 0..input.total_banks {
                        let within_rank = g % input.banks_per_rank;
                        let off = (within_rank + b - start) % b;
                        if off >= excl_len {
                            v.insert(g);
                        }
                    }
                    v
                })
                .collect()
        }
        PartitionPlan::Hard => {
            let per_task = (input.total_banks / input.n_tasks).max(1);
            (0..input.n_tasks)
                .map(|i| {
                    let start = (i * per_task) % input.total_banks;
                    (start..start + per_task)
                        .map(|g| g % input.total_banks)
                        .collect()
                })
                .collect()
        }
    };
    Partition { banks, cpus }
}

/// Checks the co-design's schedulability property: for every global
/// bank, every core hosts at least one task that avoids it. Returns the
/// first violating `(bank, core)` if any.
pub fn verify_coverage(p: &Partition, input: PartitionInput) -> Result<(), (u32, u32)> {
    for bank in 0..input.total_banks {
        for core in 0..input.n_cores {
            let ok = (0..input.n_tasks)
                .filter(|&i| p.cpus[i as usize] == core)
                .any(|i| !p.banks[i as usize].contains(bank));
            if !ok {
                return Err((bank, core));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_input() -> PartitionInput {
        PartitionInput {
            total_banks: 16,
            banks_per_rank: 8,
            n_cores: 2,
            n_tasks: 8,
        }
    }

    #[test]
    fn none_gives_all_banks() {
        let p = plan(PartitionPlan::None, paper_input());
        assert_eq!(p.banks.len(), 8);
        assert!(p.banks.iter().all(|b| b.count() == 16));
        assert_eq!(p.cpus, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn soft_1to4_gives_6_banks_per_rank() {
        // §6.2: "we confine each task to 6 banks within a rank".
        let p = plan(PartitionPlan::Soft, paper_input());
        assert!(p.banks.iter().all(|b| b.count() == 12));
        assert!(verify_coverage(&p, paper_input()).is_ok());
    }

    #[test]
    fn soft_1to2_gives_4_banks_per_rank() {
        // §6.6: at 1:2 consolidation each task allocates on 4 banks/rank.
        let input = PartitionInput {
            n_tasks: 4,
            ..paper_input()
        };
        let p = plan(PartitionPlan::Soft, input);
        assert!(p.banks.iter().all(|b| b.count() == 8));
        assert!(verify_coverage(&p, input).is_ok());
    }

    #[test]
    fn exclusions_repeat_across_ranks() {
        let p = plan(PartitionPlan::Soft, paper_input());
        // Task 0 (group 0) excludes banks 0,1 in both ranks.
        let v = p.banks[0];
        assert!(!v.contains(0) && !v.contains(1));
        assert!(!v.contains(8) && !v.contains(9));
        assert!(v.contains(2) && v.contains(15));
        // And the exclusion repeats identically in rank 1 for all tasks.
        for t in &p.banks {
            for b in 0..8u32 {
                assert_eq!(t.contains(b), t.contains(b + 8));
            }
        }
    }

    #[test]
    fn groups_rotate_across_cores() {
        let p = plan(PartitionPlan::Soft, paper_input());
        // Core 0 (even tasks) walks groups 0,1,2,3; core 1 (odd tasks)
        // starts at group 2 — so same-group (co-scheduled) tasks come
        // from different positions of each core's task list.
        // Task 0 = core0 j0 → group 0 (excludes banks 0,1).
        assert!(!p.banks[0].contains(0) && !p.banks[0].contains(1));
        // Task 1 = core1 j0 → group 2 (excludes banks 4,5).
        assert!(!p.banks[1].contains(4) && !p.banks[1].contains(5));
        assert!(p.banks[1].contains(0));
        // Task 2 = core0 j1 → group 1 (excludes banks 2,3).
        assert!(!p.banks[2].contains(2) && !p.banks[2].contains(3));
        // Every group appears exactly once per core.
        for core in 0..2u32 {
            let groups: std::collections::HashSet<u64> = (0..8)
                .filter(|i| i % 2 == core)
                .map(|i| p.banks[i as usize].bits())
                .collect();
            assert_eq!(groups.len(), 4, "core {core} must host all groups");
        }
    }

    #[test]
    fn confine_sweep_counts() {
        for k in [1u32, 2, 4, 6, 8] {
            let p = plan(PartitionPlan::Confine { banks_per_task: k }, paper_input());
            assert!(
                p.banks.iter().all(|b| b.count() == k * 2),
                "k={k}: counts {:?}",
                p.banks.iter().map(|b| b.count()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn confine_coverage_holds_when_windows_cover() {
        // 4 groups × exclusion length ≥ 8 ⇒ coverage (k ≤ 6).
        for k in [2u32, 4, 6] {
            let p = plan(PartitionPlan::Confine { banks_per_task: k }, paper_input());
            assert!(
                verify_coverage(&p, paper_input()).is_ok(),
                "coverage must hold for k={k}"
            );
        }
        // k = 8 (no exclusion) cannot cover.
        let p = plan(PartitionPlan::Confine { banks_per_task: 8 }, paper_input());
        assert!(verify_coverage(&p, paper_input()).is_err());
    }

    #[test]
    fn hard_partitions_are_disjoint() {
        let p = plan(PartitionPlan::Hard, paper_input());
        assert!(p.banks.iter().all(|b| b.count() == 2));
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_eq!(
                    p.banks[i].bits() & p.banks[j].bits(),
                    0,
                    "tasks {i}/{j} overlap"
                );
            }
        }
    }

    #[test]
    fn quad_core_1to4_plans() {
        let input = PartitionInput {
            total_banks: 16,
            banks_per_rank: 8,
            n_cores: 4,
            n_tasks: 16,
        };
        let p = plan(PartitionPlan::Soft, input);
        assert!(verify_coverage(&p, input).is_ok());
        assert_eq!(p.cpus.iter().filter(|&&c| c == 3).count(), 4);
    }

    #[test]
    #[should_panic(expected = "banks_per_task")]
    fn confine_rejects_zero() {
        let _ = plan(PartitionPlan::Confine { banks_per_task: 0 }, paper_input());
    }
}

//! Binary buddy physical-page allocator (the Linux `__get_free_pages`
//! machinery the paper's Algorithm 2 extends).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// Physical frame number (4 KiB units).
pub type Frame = u64;

/// Highest block order (Linux's `MAX_ORDER - 1`): blocks of up to
/// 2^10 pages = 4 MiB.
pub const MAX_ORDER: u32 = 10;

/// Allocation failure: no block of the requested order (or larger) is
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "buddy allocator out of memory")
    }
}

impl std::error::Error for OutOfMemory {}

/// A binary buddy allocator over `frames` physical pages.
///
/// Free blocks are kept per order in address-sorted sets, so allocation
/// is deterministic and prefers low physical addresses (which is what
/// makes the Figure 5 "fill bank 0 first" experiment meaningful).
///
/// # Examples
///
/// ```
/// use refsim_os::buddy::BuddyAllocator;
///
/// let mut b = BuddyAllocator::new(1024);
/// let f = b.alloc(0)?;          // one 4 KiB page
/// let big = b.alloc(4)?;        // a 16-page block
/// b.free(f, 0);
/// b.free(big, 4);
/// assert_eq!(b.free_frames(), 1024);
/// # Ok::<(), refsim_os::buddy::OutOfMemory>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuddyAllocator {
    frames: u64,
    free_frames: u64,
    /// Free block start frames, per order.
    free_lists: Vec<BTreeSet<Frame>>,
    /// Per-frame allocation record: `order + 1` at the start frame of an
    /// allocated block, 0 elsewhere. Catches double/mismatched frees.
    alloc_map: Vec<u8>,
}

impl BuddyAllocator {
    /// Creates an allocator managing frames `0..frames`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn new(frames: u64) -> Self {
        assert!(frames > 0, "cannot manage zero frames");
        let mut a = BuddyAllocator {
            frames,
            free_frames: frames,
            free_lists: (0..=MAX_ORDER).map(|_| BTreeSet::new()).collect(),
            alloc_map: vec![0; frames as usize],
        };
        // Seed with maximal aligned blocks (greedy high-order carve).
        let mut start = 0u64;
        while start < frames {
            let mut order = MAX_ORDER;
            loop {
                let size = 1u64 << order;
                if start.is_multiple_of(size) && start + size <= frames {
                    break;
                }
                order -= 1;
            }
            a.free_lists[order as usize].insert(start);
            start += 1u64 << order;
        }
        a
    }

    /// Total managed frames.
    pub fn total_frames(&self) -> u64 {
        self.frames
    }

    /// Currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Free blocks currently held at `order` (diagnostics / tests).
    pub fn free_blocks_at(&self, order: u32) -> usize {
        self.free_lists[order as usize].len()
    }

    /// Allocates a block of 2^`order` frames, returning its first frame.
    ///
    /// # Errors
    ///
    /// [`OutOfMemory`] when no block of `order` or above is free.
    ///
    /// # Panics
    ///
    /// Panics if `order > MAX_ORDER`.
    pub fn alloc(&mut self, order: u32) -> Result<Frame, OutOfMemory> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        // Find the smallest order with a free block.
        let found = (order..=MAX_ORDER)
            .find(|&o| !self.free_lists[o as usize].is_empty())
            .ok_or(OutOfMemory)?;
        // `found` selected a non-empty list, but degrade to OOM rather
        // than panic if that ever stops holding.
        let Some(&start) = self.free_lists[found as usize].iter().next() else {
            return Err(OutOfMemory);
        };
        self.free_lists[found as usize].remove(&start);
        // Split down to the requested order, freeing the upper halves.
        let mut o = found;
        while o > order {
            o -= 1;
            let buddy = start + (1u64 << o);
            self.free_lists[o as usize].insert(buddy);
        }
        self.free_frames -= 1u64 << order;
        self.alloc_map[start as usize] = (order + 1) as u8;
        Ok(start)
    }

    /// Returns a block allocated with [`alloc`](Self::alloc), merging
    /// with free buddies as far as possible.
    ///
    /// # Panics
    ///
    /// Panics if the block is out of range, misaligned, or (detectably)
    /// already free — double frees corrupt real allocators, so the
    /// simulated one refuses them loudly.
    pub fn free(&mut self, start: Frame, order: u32) {
        assert!(order <= MAX_ORDER);
        let size = 1u64 << order;
        assert!(
            start.is_multiple_of(size),
            "misaligned free of {start:#x}@{order}"
        );
        assert!(start + size <= self.frames, "free beyond end of memory");
        assert!(
            self.alloc_map[start as usize] == (order + 1) as u8,
            "double or mismatched free of {start:#x}@{order}"
        );
        self.alloc_map[start as usize] = 0;
        self.free_frames += size;
        let mut start = start;
        let mut order = order;
        // Coalesce with the buddy while it is free.
        while order < MAX_ORDER {
            let buddy = start ^ (1u64 << order);
            if !self.free_lists[order as usize].remove(&buddy) {
                break;
            }
            start = start.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(start);
    }

    /// Structural self-audit of the free lists: alignment, range,
    /// free/allocated agreement with the allocation map, block overlap,
    /// and the free-frame total. Returns the first inconsistency found,
    /// or `None` when the structure is sound. Cost is linear in the
    /// number of free blocks, so it is cheap enough to run per quantum
    /// under full audit.
    pub fn audit(&self) -> Option<String> {
        let mut blocks: Vec<(Frame, u64)> = Vec::new();
        for (o, list) in self.free_lists.iter().enumerate() {
            let size = 1u64 << o;
            for &start in list {
                if !start.is_multiple_of(size) {
                    return Some(format!("free block {start:#x}@{o} is misaligned"));
                }
                if start + size > self.frames {
                    return Some(format!(
                        "free block {start:#x}@{o} extends past end of memory"
                    ));
                }
                if self.alloc_map[start as usize] != 0 {
                    return Some(format!(
                        "frame {start:#x} is both free (order {o}) and allocated (record {})",
                        self.alloc_map[start as usize]
                    ));
                }
                blocks.push((start, size));
            }
        }
        blocks.sort_unstable();
        for w in blocks.windows(2) {
            let ((a, a_size), (b, _)) = (w[0], w[1]);
            if a + a_size > b {
                return Some(format!(
                    "free blocks overlap: {a:#x}(+{a_size}) covers {b:#x} — double free?"
                ));
            }
        }
        let listed: u64 = blocks.iter().map(|&(_, s)| s).sum();
        if listed != self.free_frames {
            return Some(format!(
                "free lists hold {listed} frame(s) but free_frames says {}",
                self.free_frames
            ));
        }
        None
    }

    /// Captures the full allocator state for checkpointing.
    pub fn save_state(&self) -> SavedBuddy {
        SavedBuddy {
            frames: self.frames,
            free_frames: self.free_frames,
            free_lists: self
                .free_lists
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect(),
            alloc_map: self.alloc_map.clone(),
        }
    }

    /// Reinstates state captured by [`BuddyAllocator::save_state`] into
    /// an allocator managing the same number of frames.
    pub fn restore_state(&mut self, saved: &SavedBuddy) -> Result<(), String> {
        if saved.frames != self.frames {
            return Err(format!(
                "buddy frame count mismatch: saved {}, expected {}",
                saved.frames, self.frames
            ));
        }
        if saved.free_lists.len() != self.free_lists.len() {
            return Err(format!(
                "buddy order count mismatch: saved {}, expected {}",
                saved.free_lists.len(),
                self.free_lists.len()
            ));
        }
        if saved.alloc_map.len() != self.alloc_map.len() {
            return Err("buddy allocation map length mismatch".to_owned());
        }
        self.free_frames = saved.free_frames;
        for (dst, src) in self.free_lists.iter_mut().zip(&saved.free_lists) {
            *dst = src.iter().copied().collect();
        }
        self.alloc_map.clone_from(&saved.alloc_map);
        Ok(())
    }
}

/// Dynamic state of a [`BuddyAllocator`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedBuddy {
    /// Total managed frames (restore sanity check).
    pub frames: u64,
    /// Currently free frames.
    pub free_frames: u64,
    /// Free block start frames per order, ascending.
    pub free_lists: Vec<Vec<Frame>>,
    /// Per-frame allocation records.
    pub alloc_map: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_fully_free() {
        let b = BuddyAllocator::new(4096);
        assert_eq!(b.free_frames(), 4096);
        assert_eq!(b.free_blocks_at(MAX_ORDER), 4);
    }

    #[test]
    fn non_power_of_two_capacity_is_carved_greedily() {
        let b = BuddyAllocator::new(1024 + 512 + 1);
        assert_eq!(b.free_frames(), 1537);
        assert_eq!(b.free_blocks_at(MAX_ORDER), 1);
        assert_eq!(b.free_blocks_at(9), 1);
        assert_eq!(b.free_blocks_at(0), 1);
    }

    #[test]
    fn alloc_prefers_low_addresses() {
        let mut b = BuddyAllocator::new(4096);
        assert_eq!(b.alloc(0).unwrap(), 0);
        assert_eq!(b.alloc(0).unwrap(), 1);
    }

    #[test]
    fn split_and_merge_roundtrip() {
        let mut b = BuddyAllocator::new(1024);
        let f = b.alloc(0).unwrap();
        assert_eq!(b.free_frames(), 1023);
        b.free(f, 0);
        assert_eq!(b.free_frames(), 1024);
        // Everything merged back into one max-order block.
        assert_eq!(b.free_blocks_at(MAX_ORDER), 1);
        for o in 0..MAX_ORDER {
            assert_eq!(b.free_blocks_at(o), 0, "order {o} should be empty");
        }
    }

    #[test]
    fn interleaved_frees_merge_pairwise() {
        let mut b = BuddyAllocator::new(8);
        let frames: Vec<_> = (0..8).map(|_| b.alloc(0).unwrap()).collect();
        assert_eq!(b.free_frames(), 0);
        // Free odd frames: no merges possible yet.
        for &f in frames.iter().filter(|f| *f % 2 == 1) {
            b.free(f, 0);
        }
        assert_eq!(b.free_blocks_at(0), 4);
        // Free even frames: everything merges to one order-3 block.
        for &f in frames.iter().filter(|f| *f % 2 == 0) {
            b.free(f, 0);
        }
        assert_eq!(b.free_blocks_at(3), 1);
        assert_eq!(b.free_frames(), 8);
    }

    #[test]
    fn exhaustion_reports_oom() {
        let mut b = BuddyAllocator::new(2);
        b.alloc(1).unwrap();
        assert_eq!(b.alloc(0), Err(OutOfMemory));
    }

    #[test]
    #[should_panic(expected = "double or mismatched free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(16);
        let f = b.alloc(0).unwrap();
        b.free(f, 0);
        b.free(f, 0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_free_panics() {
        let mut b = BuddyAllocator::new(16);
        b.free(1, 1);
    }

    #[test]
    fn higher_order_allocation_is_aligned() {
        let mut b = BuddyAllocator::new(4096);
        let f = b.alloc(5).unwrap();
        assert_eq!(f % 32, 0);
        let g = b.alloc(5).unwrap();
        assert_eq!(g % 32, 0);
        assert_ne!(f, g);
    }
}

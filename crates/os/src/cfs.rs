//! CFS runqueue: tasks ordered by virtual runtime.
//!
//! Linux CFS uses a red-black tree keyed by `vruntime`; a `BTreeSet`
//! gives the same ordered-map behavior (O(log n) insert/remove, ordered
//! iteration from the leftmost task).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use refsim_dram::time::Ps;

use crate::task::TaskId;

/// A per-CPU run queue ordered by `(vruntime, task)`.
///
/// # Examples
///
/// ```
/// use refsim_os::cfs::CfsRunqueue;
/// use refsim_os::task::TaskId;
/// use refsim_dram::time::Ps;
///
/// let mut rq = CfsRunqueue::new();
/// rq.insert(Ps::from_us(5), TaskId(1));
/// rq.insert(Ps::from_us(2), TaskId(2));
/// assert_eq!(rq.leftmost(), Some(TaskId(2)));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CfsRunqueue {
    tree: BTreeSet<(Ps, TaskId)>,
    /// Monotonic floor for newly woken tasks, mirroring CFS's
    /// `min_vruntime`.
    min_vruntime: Ps,
}

impl CfsRunqueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of runnable tasks.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no task is runnable.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The queue's `min_vruntime` — the floor assigned to newly arriving
    /// tasks so they cannot starve existing ones.
    pub fn min_vruntime(&self) -> Ps {
        self.min_vruntime
    }

    /// Inserts a task with the given vruntime.
    ///
    /// # Panics
    ///
    /// Panics if the task is already queued with the same key.
    pub fn insert(&mut self, vruntime: Ps, id: TaskId) {
        let fresh = self.tree.insert((vruntime, id));
        assert!(fresh, "{id} already enqueued at {vruntime}");
        if let Some(&(v, _)) = self.tree.iter().next() {
            self.min_vruntime = self.min_vruntime.max(v);
        }
    }

    /// Removes a specific task (by its exact key). Returns whether it
    /// was present.
    pub fn remove(&mut self, vruntime: Ps, id: TaskId) -> bool {
        self.tree.remove(&(vruntime, id))
    }

    /// The leftmost (least-vruntime) task, without removing it.
    pub fn leftmost(&self) -> Option<TaskId> {
        self.tree.iter().next().map(|&(_, id)| id)
    }

    /// Removes and returns the leftmost task.
    pub fn pop_leftmost(&mut self) -> Option<(Ps, TaskId)> {
        let first = *self.tree.iter().next()?;
        self.tree.remove(&first);
        self.min_vruntime = self.min_vruntime.max(first.0);
        Some(first)
    }

    /// Removes and returns the *rightmost* (largest-vruntime) task —
    /// used by the load balancer, which migrates the task that has run
    /// the most.
    pub fn pop_rightmost(&mut self) -> Option<(Ps, TaskId)> {
        let last = *self.tree.iter().next_back()?;
        self.tree.remove(&last);
        Some(last)
    }

    /// Iterates `(vruntime, task)` in vruntime order (leftmost first) —
    /// what Algorithm 3's candidate walk traverses.
    pub fn iter(&self) -> impl Iterator<Item = (Ps, TaskId)> + '_ {
        self.tree.iter().copied()
    }

    /// Captures the queue contents and `min_vruntime` for checkpointing.
    pub fn save_state(&self) -> SavedRunqueue {
        SavedRunqueue {
            entries: self.iter().collect(),
            min_vruntime: self.min_vruntime,
        }
    }

    /// Reinstates state captured by [`CfsRunqueue::save_state`],
    /// replacing the queue contents and restoring the exact
    /// `min_vruntime` floor (which `insert` alone cannot reproduce).
    pub fn restore_state(&mut self, saved: &SavedRunqueue) -> Result<(), String> {
        let mut tree = BTreeSet::new();
        for &(v, id) in &saved.entries {
            if !tree.insert((v, id)) {
                return Err(format!("{id} duplicated in saved runqueue"));
            }
        }
        self.tree = tree;
        self.min_vruntime = saved.min_vruntime;
        Ok(())
    }
}

/// Dynamic state of a [`CfsRunqueue`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedRunqueue {
    /// Queued `(vruntime, task)` pairs in tree order.
    pub entries: Vec<(Ps, TaskId)>,
    /// The monotonic `min_vruntime` floor at capture time.
    pub min_vruntime: Ps,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_vruntime_then_id() {
        let mut rq = CfsRunqueue::new();
        rq.insert(Ps::from_us(3), TaskId(9));
        rq.insert(Ps::from_us(1), TaskId(5));
        rq.insert(Ps::from_us(1), TaskId(2));
        let order: Vec<_> = rq.iter().map(|(_, id)| id).collect();
        assert_eq!(order, vec![TaskId(2), TaskId(5), TaskId(9)]);
        assert_eq!(rq.leftmost(), Some(TaskId(2)));
        assert_eq!(rq.len(), 3);
    }

    #[test]
    fn pop_both_ends() {
        let mut rq = CfsRunqueue::new();
        for i in 0..4u32 {
            rq.insert(Ps::from_us(u64::from(i)), TaskId(i));
        }
        assert_eq!(rq.pop_leftmost(), Some((Ps::ZERO, TaskId(0))));
        assert_eq!(rq.pop_rightmost(), Some((Ps::from_us(3), TaskId(3))));
        assert_eq!(rq.len(), 2);
    }

    #[test]
    fn min_vruntime_is_monotonic() {
        let mut rq = CfsRunqueue::new();
        rq.insert(Ps::from_us(10), TaskId(1));
        rq.pop_leftmost();
        assert_eq!(rq.min_vruntime(), Ps::from_us(10));
        rq.insert(Ps::from_us(2), TaskId(2));
        // Floor does not go backwards.
        assert_eq!(rq.min_vruntime(), Ps::from_us(10));
    }

    #[test]
    fn remove_specific() {
        let mut rq = CfsRunqueue::new();
        rq.insert(Ps::from_us(1), TaskId(1));
        assert!(rq.remove(Ps::from_us(1), TaskId(1)));
        assert!(!rq.remove(Ps::from_us(1), TaskId(1)));
        assert!(rq.is_empty());
    }

    #[test]
    #[should_panic(expected = "already enqueued")]
    fn duplicate_insert_panics() {
        let mut rq = CfsRunqueue::new();
        rq.insert(Ps::from_us(1), TaskId(1));
        rq.insert(Ps::from_us(1), TaskId(1));
    }
}

//! Property-based tests for the OS substrate.

use std::collections::BTreeSet;

use proptest::prelude::*;

use refsim_dram::geometry::Geometry;
use refsim_dram::mapping::{AddressMapping, MappingScheme};
use refsim_dram::time::Ps;
use refsim_os::bank_alloc::{BankAwareAllocator, BankVector};
use refsim_os::buddy::{BuddyAllocator, MAX_ORDER};
use refsim_os::partition::{plan, verify_coverage, PartitionInput, PartitionPlan};
use refsim_os::sched::{SchedPolicy, Scheduler};
use refsim_os::task::{Task, TaskId};

/// Random alloc/free workload against the buddy allocator, checking the
/// core invariants after every operation.
#[derive(Debug, Clone)]
enum BuddyOp {
    Alloc(u32),
    FreeIdx(usize),
}

fn arb_buddy_ops() -> impl Strategy<Value = Vec<BuddyOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..=MAX_ORDER).prop_map(BuddyOp::Alloc),
            any::<usize>().prop_map(BuddyOp::FreeIdx),
        ],
        1..200,
    )
}

proptest! {
    /// Buddy allocator: allocated blocks never overlap, accounting is
    /// exact, and freeing everything restores full capacity.
    #[test]
    fn buddy_no_overlap_and_full_merge(frames_exp in 6u32..13, ops in arb_buddy_ops()) {
        let frames = 1u64 << frames_exp;
        let mut b = BuddyAllocator::new(frames);
        let mut live: Vec<(u64, u32)> = Vec::new();
        for op in ops {
            match op {
                BuddyOp::Alloc(order) => {
                    if let Ok(start) = b.alloc(order) {
                        // No overlap with any live block.
                        let size = 1u64 << order;
                        for &(s, o) in &live {
                            let sz = 1u64 << o;
                            prop_assert!(
                                start + size <= s || s + sz <= start,
                                "overlap: [{start},{}) vs [{s},{})", start + size, s + sz
                            );
                        }
                        live.push((start, order));
                    }
                }
                BuddyOp::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (s, o) = live.swap_remove(i % live.len());
                        b.free(s, o);
                    }
                }
            }
            let used: u64 = live.iter().map(|&(_, o)| 1u64 << o).sum();
            prop_assert_eq!(b.free_frames(), frames - used);
        }
        for (s, o) in live.drain(..) {
            b.free(s, o);
        }
        prop_assert_eq!(b.free_frames(), frames);
    }

    /// BankVector behaves like a BTreeSet<u32> model.
    #[test]
    fn bank_vector_model(ops in prop::collection::vec((any::<bool>(), 0u32..64), 0..100)) {
        let mut v = BankVector::EMPTY;
        let mut model = BTreeSet::new();
        for (insert, bank) in ops {
            if insert {
                v.insert(bank);
                model.insert(bank);
            } else {
                v.remove(bank);
                model.remove(&bank);
            }
            prop_assert_eq!(v.count() as usize, model.len());
            prop_assert_eq!(v.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        }
        // next_after agrees with the model's cyclic successor.
        for start in 0..64u32 {
            let expect = model
                .iter()
                .copied()
                .map(|b| ((b + 64 - start - 1) % 64, b))
                .min()
                .map(|(_, b)| b);
            prop_assert_eq!(v.next_after(start, 64), expect);
        }
    }

    /// The bank-aware allocator never hands out a frame twice and only
    /// reports `fell_back` when the frame is outside the permitted set.
    #[test]
    fn bank_alloc_unique_and_honest(
        rows_exp in 4u32..8,
        masks in prop::collection::vec(1u64..u64::MAX, 1..4),
        allocs in 1usize..200,
    ) {
        let g = Geometry::ddr3_2rank_8bank(1 << rows_exp);
        let map = AddressMapping::new(g, MappingScheme::RowRankBankColumn);
        let mut alloc = BankAwareAllocator::new(map);
        let total = alloc.total_banks();
        let mut seen = BTreeSet::new();
        let mut last = vec![total - 1; masks.len()];
        for i in 0..allocs {
            let which = i % masks.len();
            let possible = BankVector::from_iter(
                (0..total).filter(|b| masks[which] & (1u64 << b) != 0),
            );
            match alloc.alloc_page(possible, &mut last[which]) {
                Ok(p) => {
                    prop_assert!(seen.insert(p.frame), "frame {} handed out twice", p.frame);
                    prop_assert_eq!(alloc.bank_of(p.frame), p.bank);
                    prop_assert_eq!(p.fell_back, !possible.contains(p.bank));
                }
                Err(_) => prop_assert_eq!(alloc.free_frames(), 0),
            }
        }
    }

    /// Partition isolation under allocation: pages allocated for a task
    /// against its planned soft/hard bank vector never silently leave
    /// the permitted set — `fell_back` is the only escape hatch, and
    /// under hard partitioning within capacity it never triggers, so a
    /// hard-partitioned task's frames all stay inside its partition.
    #[test]
    fn partition_alloc_never_leaves_permitted_banks(
        rows_exp in 4u32..8,
        hard in any::<bool>(),
        n_tasks in 1u32..9,
        requested in 1usize..128,
    ) {
        let g = Geometry::ddr3_2rank_8bank(1 << rows_exp);
        let map = AddressMapping::new(g, MappingScheme::RowRankBankColumn);
        let mut alloc = BankAwareAllocator::new(map);
        let total = alloc.total_banks();
        let kind = if hard { PartitionPlan::Hard } else { PartitionPlan::Soft };
        let part = plan(kind, PartitionInput {
            total_banks: total,
            banks_per_rank: 8,
            n_cores: 2,
            n_tasks,
        });
        // Stay inside per-partition capacity so hard mode has no
        // legitimate reason to spill: round-robin hands each task at
        // most ceil(requested / n_tasks) <= frames_per_bank pages.
        let frames_per_bank = (alloc.free_frames() / u64::from(total)) as usize;
        let allocs = requested.min(frames_per_bank * n_tasks as usize);
        let mut last = vec![total - 1; n_tasks as usize];
        for i in 0..allocs {
            let task = i % n_tasks as usize;
            let permitted = part.banks[task];
            let p = alloc.alloc_page(permitted, &mut last[task]);
            let p = p.expect("within capacity");
            prop_assert_eq!(
                p.fell_back,
                !permitted.contains(p.bank),
                "fell_back must be the only escape from the partition"
            );
            if hard {
                prop_assert!(
                    permitted.contains(p.bank),
                    "task {} got bank {} outside its hard partition {:?}",
                    task, p.bank, permitted
                );
            }
        }
        prop_assert_eq!(alloc.audit(), None);
    }

    /// Partition plans always produce full per-core group coverage when
    /// the exclusion windows can cover the rank (n·(B−k) ≥ B), for any
    /// core/task combination.
    #[test]
    fn partition_coverage(
        cores in 1u32..5,
        ratio in 2u32..6,
        ranks_exp in 0u32..2,
    ) {
        let banks_per_rank = 8u32;
        let input = PartitionInput {
            total_banks: banks_per_rank << ranks_exp,
            banks_per_rank,
            n_cores: cores,
            n_tasks: cores * ratio,
        };
        let p = plan(PartitionPlan::Soft, input);
        prop_assert_eq!(p.banks.len(), input.n_tasks as usize);
        prop_assert!(
            verify_coverage(&p, input).is_ok(),
            "soft plan must cover: {input:?}"
        );
        // Every task's vector is non-empty and within range.
        for v in &p.banks {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|b| b < input.total_banks));
        }
    }

    /// Hard partitions are always pairwise disjoint.
    #[test]
    fn hard_partition_disjoint(cores in 1u32..4, tasks in 1u32..16) {
        let input = PartitionInput {
            total_banks: 16,
            banks_per_rank: 8,
            n_cores: cores,
            n_tasks: tasks,
        };
        let p = plan(PartitionPlan::Hard, input);
        // Within bank capacity (tasks ≤ total banks) hard partitions are
        // pairwise disjoint; beyond it they wrap and may legally overlap.
        for i in 0..p.banks.len() {
            for j in (i + 1)..p.banks.len() {
                let inter = p.banks[i].bits() & p.banks[j].bits();
                prop_assert_eq!(inter, 0, "tasks {}/{} overlap", i, j);
            }
        }
    }

    /// CFS fairness: with equal slices, after k full rounds every task
    /// has identical cpu_time regardless of queue order.
    #[test]
    fn cfs_long_run_fairness(n_tasks in 1u32..8, rounds in 1u32..10) {
        let slice = Ps::from_ms(4);
        let mut s = Scheduler::new(SchedPolicy::Cfs, slice, 1);
        let mut tasks: Vec<Task> = (0..n_tasks)
            .map(|i| Task::new(TaskId(i), format!("t{i}"), 0, BankVector::all(16), 16))
            .collect();
        for t in &mut tasks {
            s.enqueue(t);
        }
        for _ in 0..(rounds * n_tasks) {
            let id = s.pick_next(0, BankVector::EMPTY, &mut tasks).unwrap();
            s.requeue(&mut tasks[id.0 as usize], slice);
        }
        for t in &tasks {
            prop_assert_eq!(t.cpu_time, slice * u64::from(rounds));
        }
    }

    /// Refresh-aware scheduling never picks a task that could be dodged:
    /// if any queued task avoids the bank, the pick avoids the bank.
    #[test]
    fn refresh_aware_pick_is_sound(
        bank in 0u32..16,
        masks in prop::collection::vec(1u64..0xFFFF, 1..8),
    ) {
        let mut s = Scheduler::new(
            SchedPolicy::RefreshAware { eta_thresh: 32, best_effort: true },
            Ps::from_ms(4),
            1,
        );
        let mut tasks: Vec<Task> = masks
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let v = BankVector::from_iter((0..16).filter(|b| m & (1 << b) != 0));
                Task::new(TaskId(i as u32), format!("t{i}"), 0, v, 16)
            })
            .collect();
        for t in &mut tasks {
            s.enqueue(t);
        }
        let someone_avoids = tasks.iter().any(|t| t.avoids_bank(bank));
        let id = s
            .pick_next(0, BankVector::single(bank), &mut tasks)
            .unwrap();
        if someone_avoids {
            prop_assert!(
                tasks[id.0 as usize].avoids_bank(bank),
                "picked {} although an avoiding task was queued",
                id
            );
        }
    }
}

//! Property-based tests for the workload models.

use proptest::prelude::*;

use refsim_workloads::mix::{table2, WorkloadMix};
use refsim_workloads::pattern::{PatternKind, PatternState};
use refsim_workloads::profiles::{Benchmark, TaskWorkload};

fn arb_bench() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    /// Generated addresses always stay inside the declared footprint and
    /// dependent accesses are always loads.
    #[test]
    fn addresses_in_footprint(bench in arb_bench(), seed in any::<u64>()) {
        let mut w = TaskWorkload::new(bench, seed);
        let fp = bench.profile().footprint;
        for _ in 0..2_000 {
            let op = w.next_op();
            if let Some(m) = op.mem {
                prop_assert!(m.vaddr < fp);
                if m.dependent {
                    prop_assert!(!m.write);
                }
            }
        }
    }

    /// The same seed regenerates the identical stream; the stream is an
    /// infinite generator (never panics).
    #[test]
    fn stream_determinism(bench in arb_bench(), seed in any::<u64>()) {
        let collect = |s| {
            let mut w = TaskWorkload::new(bench, s);
            (0..256).map(|_| w.next_op()).collect::<Vec<_>>()
        };
        prop_assert_eq!(collect(seed), collect(seed));
    }

    /// Measured memory-instruction density converges to the profile's
    /// `mem_per_mille` within 10%.
    #[test]
    fn mem_density_converges(bench in arb_bench(), seed in any::<u64>()) {
        let mut w = TaskWorkload::new(bench, seed);
        let mut instr = 0u64;
        let mut mem = 0u64;
        for _ in 0..20_000 {
            let op = w.next_op();
            instr += u64::from(op.non_mem) + 1;
            mem += u64::from(op.mem.is_some());
        }
        let target = f64::from(bench.profile().mem_per_mille);
        let measured = mem as f64 * 1000.0 / instr as f64;
        prop_assert!(
            (measured - target).abs() <= target * 0.10,
            "{bench}: measured {measured}, target {target}"
        );
    }

    /// Streaming patterns visit strictly increasing offsets per stream
    /// (mod wrap) and never leave the region.
    #[test]
    fn streaming_pattern_bounds(
        streams in 1u32..8,
        stride in 1u64..256,
        size_exp in 12u32..24,
        steps in 1usize..500,
        seed in any::<u64>(),
    ) {
        let size = 1u64 << size_exp;
        let mut p = PatternState::new(PatternKind::Streaming { streams, stride }, size);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for _ in 0..steps {
            let (off, dep) = p.next(&mut rng);
            prop_assert!(off < size);
            prop_assert!(!dep);
        }
    }

    /// Resizing a mix preserves the cyclic benchmark order.
    #[test]
    fn resize_cycles(n in 1usize..40) {
        for mix in table2() {
            let r = mix.resized(n);
            prop_assert_eq!(r.len(), n);
            for (i, b) in r.tasks.iter().enumerate() {
                prop_assert_eq!(*b, mix.tasks[i % mix.len()]);
            }
        }
    }

    /// from_groups expands counts exactly.
    #[test]
    fn groups_expand(a in 0usize..6, b in 0usize..6) {
        prop_assume!(a + b > 0);
        let m = WorkloadMix::from_groups(
            "g",
            &[(Benchmark::Mcf, a), (Benchmark::Povray, b)],
            "X",
        );
        prop_assert_eq!(m.len(), a + b);
        prop_assert!(m.tasks[..a].iter().all(|x| *x == Benchmark::Mcf));
        prop_assert!(m.tasks[a..].iter().all(|x| *x == Benchmark::Povray));
    }
}

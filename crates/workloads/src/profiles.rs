//! Benchmark models for the SPEC CPU2006 / STREAM / NAS programs used by
//! the paper's workloads (Table 2, §5.4.1, §6.1).
//!
//! Each [`BenchmarkProfile`] describes a synthetic program: its memory
//! footprint (from §5.4.1 where the paper reports one), the density of
//! memory instructions, how its references split between a small
//! cache-resident *hot* region and a large *cold* region, and the cold
//! region's access pattern. Pushed through the Table 1 cache hierarchy,
//! the models land in the paper's MPKI classes (H > 10 > M ≥ 1 > L) —
//! `refsim-core` carries a calibration test asserting exactly that.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::pattern::{MemAccess, PatternKind, PatternState, SavedPattern};

/// Memory-intensity class from Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MpkiClass {
    /// MPKI > 10.
    High,
    /// 1 ≤ MPKI ≤ 10.
    Medium,
    /// MPKI < 1.
    Low,
}

impl MpkiClass {
    /// Classifies a measured MPKI value (§6.1's thresholds).
    pub fn of(mpki: f64) -> Self {
        if mpki > 10.0 {
            MpkiClass::High
        } else if mpki >= 1.0 {
            MpkiClass::Medium
        } else {
            MpkiClass::Low
        }
    }

    /// Single-letter label used in Table 2.
    pub fn letter(self) -> char {
        match self {
            MpkiClass::High => 'H',
            MpkiClass::Medium => 'M',
            MpkiClass::Low => 'L',
        }
    }
}

/// The benchmarks modeled from the paper's suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// SPEC CPU2006 429.mcf — pointer-chasing, 1.7 GB footprint, H.
    Mcf,
    /// SPEC CPU2006 453.povray — cache-resident ray tracer, L.
    Povray,
    /// SPEC CPU2006 464.h264ref — video encoder, L.
    H264ref,
    /// SPEC CPU2006 459.GemsFDTD — FDTD stencil, 850 MB, M.
    GemsFdtd,
    /// SPEC CPU2006 410.bwaves — blast-wave CFD, 920 MB, H.
    Bwaves,
    /// STREAM — sequential triad kernels, 800 MB, M.
    Stream,
    /// NAS UA (unstructured adaptive mesh), M.
    NpbUa,
    /// SPEC CPU2006 462.libquantum — streaming, H (extra, sensitivity).
    Libquantum,
    /// SPEC CPU2006 433.milc — lattice QCD, M (extra, sensitivity).
    Milc,
}

impl Benchmark {
    /// Every modeled benchmark.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Mcf,
        Benchmark::Povray,
        Benchmark::H264ref,
        Benchmark::GemsFdtd,
        Benchmark::Bwaves,
        Benchmark::Stream,
        Benchmark::NpbUa,
        Benchmark::Libquantum,
        Benchmark::Milc,
    ];

    /// The SPEC-suite benchmarks whose footprints Figure 5 examines.
    pub const FIGURE5: [Benchmark; 7] = [
        Benchmark::Mcf,
        Benchmark::Povray,
        Benchmark::H264ref,
        Benchmark::GemsFdtd,
        Benchmark::Bwaves,
        Benchmark::Stream,
        Benchmark::NpbUa,
    ];

    /// The profile describing this benchmark's synthetic model.
    pub fn profile(self) -> BenchmarkProfile {
        const MB: u64 = 1 << 20;
        match self {
            Benchmark::Mcf => BenchmarkProfile {
                name: "mcf",
                footprint: 1_740 * MB, // 1.7 GB (§5.4.1)
                hot_bytes: 96 * 1024,
                mem_per_mille: 320,
                cold_per_mille: 130,
                write_per_mille: 240,
                dependent_per_mille: 600,
                cold_pattern: PatternKind::PointerChase,
                class: MpkiClass::High,
            },
            Benchmark::Povray => BenchmarkProfile {
                name: "povray",
                footprint: 8 * MB,
                hot_bytes: 24 * 1024,
                mem_per_mille: 300,
                cold_per_mille: 1,
                write_per_mille: 300,
                dependent_per_mille: 0,
                cold_pattern: PatternKind::Random,
                class: MpkiClass::Low,
            },
            Benchmark::H264ref => BenchmarkProfile {
                name: "h264ref",
                footprint: 64 * MB,
                hot_bytes: 24 * 1024,
                mem_per_mille: 340,
                cold_per_mille: 2,
                write_per_mille: 320,
                dependent_per_mille: 0,
                cold_pattern: PatternKind::Streaming {
                    streams: 2,
                    stride: 8,
                },
                class: MpkiClass::Low,
            },
            Benchmark::GemsFdtd => BenchmarkProfile {
                name: "GemsFDTD",
                footprint: 850 * MB, // §5.4.1
                hot_bytes: 64 * 1024,
                mem_per_mille: 380,
                cold_per_mille: 165,
                write_per_mille: 300,
                dependent_per_mille: 0,
                cold_pattern: PatternKind::Streaming {
                    streams: 6,
                    stride: 8,
                },
                class: MpkiClass::Medium,
            },
            Benchmark::Bwaves => BenchmarkProfile {
                name: "bwaves",
                footprint: 920 * MB, // §5.4.1
                hot_bytes: 64 * 1024,
                mem_per_mille: 400,
                cold_per_mille: 340,
                write_per_mille: 260,
                dependent_per_mille: 0,
                cold_pattern: PatternKind::Streaming {
                    streams: 4,
                    stride: 8,
                },
                class: MpkiClass::High,
            },
            Benchmark::Stream => BenchmarkProfile {
                name: "stream",
                footprint: 800 * MB, // §5.4.1
                hot_bytes: 32 * 1024,
                mem_per_mille: 420,
                cold_per_mille: 160,
                write_per_mille: 330, // triad: 2 loads + 1 store
                dependent_per_mille: 0,
                cold_pattern: PatternKind::Streaming {
                    streams: 3,
                    stride: 8,
                },
                class: MpkiClass::Medium,
            },
            Benchmark::NpbUa => BenchmarkProfile {
                name: "npb_ua",
                footprint: 480 * MB,
                hot_bytes: 64 * 1024,
                mem_per_mille: 360,
                cold_per_mille: 9,
                write_per_mille: 280,
                dependent_per_mille: 100,
                cold_pattern: PatternKind::Random,
                class: MpkiClass::Medium,
            },
            Benchmark::Libquantum => BenchmarkProfile {
                name: "libquantum",
                footprint: 128 * MB,
                hot_bytes: 16 * 1024,
                mem_per_mille: 380,
                cold_per_mille: 330,
                write_per_mille: 250,
                dependent_per_mille: 0,
                cold_pattern: PatternKind::Streaming {
                    streams: 1,
                    stride: 8,
                },
                class: MpkiClass::High,
            },
            Benchmark::Milc => BenchmarkProfile {
                name: "milc",
                footprint: 680 * MB,
                hot_bytes: 48 * 1024,
                mem_per_mille: 350,
                cold_per_mille: 8,
                write_per_mille: 300,
                dependent_per_mille: 0,
                cold_pattern: PatternKind::Random,
                class: MpkiClass::Medium,
            },
        }
        .assert_valid()
    }

    /// Short name (Table 2 spelling).
    pub fn name(self) -> &'static str {
        self.profile().name
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one synthetic benchmark model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name as printed in Table 2.
    pub name: &'static str,
    /// Total virtual footprint in bytes.
    pub footprint: u64,
    /// Size of the cache-resident hot region (start of the footprint).
    pub hot_bytes: u64,
    /// Memory instructions per 1000 instructions.
    pub mem_per_mille: u32,
    /// Of memory instructions, how many per 1000 reference the cold
    /// region (the rest hit the hot region).
    pub cold_per_mille: u32,
    /// Stores per 1000 memory instructions.
    pub write_per_mille: u32,
    /// Of cold loads, serializing (pointer-chase) fraction per 1000.
    pub dependent_per_mille: u32,
    /// Cold-region access pattern.
    pub cold_pattern: PatternKind,
    /// Expected MPKI class (Table 2).
    pub class: MpkiClass,
}

impl BenchmarkProfile {
    fn assert_valid(self) -> Self {
        assert!(
            self.footprint > self.hot_bytes,
            "{}: hot ⊄ footprint",
            self.name
        );
        assert!(self.mem_per_mille > 0 && self.mem_per_mille <= 1000);
        assert!(self.cold_per_mille <= 1000);
        assert!(self.write_per_mille <= 1000);
        assert!(self.dependent_per_mille <= 1000);
        self
    }

    /// First-order MPKI estimate from the model parameters (each cold
    /// access to a fresh line misses; streaming patterns touch a new line
    /// every `line/stride` accesses). The cache simulation refines this.
    pub fn nominal_mpki(&self) -> f64 {
        let new_line = match self.cold_pattern {
            PatternKind::Streaming { stride, .. } => (stride as f64 / 64.0).min(1.0),
            PatternKind::Random | PatternKind::PointerChase => 1.0,
        };
        f64::from(self.mem_per_mille) * f64::from(self.cold_per_mille) / 1000.0 * new_line
    }
}

/// One generated unit of work: `non_mem` plain instructions followed by
/// an optional memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    /// Non-memory instructions preceding the access.
    pub non_mem: u32,
    /// The memory access, if this op carries one.
    pub mem: Option<MemAccess>,
}

/// Dynamic state of a [`TaskWorkload`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedWorkload {
    /// Raw RNG state (resumes the exact random stream).
    pub rng_state: u64,
    /// Cold-region pattern cursors.
    pub cold: SavedPattern,
    /// Hot-region sequential cursor.
    pub hot_cursor: u64,
    /// Memory-instruction credit accumulator.
    pub mem_credit: u32,
}

/// Deterministic instruction-stream generator for one task.
///
/// # Examples
///
/// ```
/// use refsim_workloads::profiles::{Benchmark, TaskWorkload};
///
/// let mut w = TaskWorkload::new(Benchmark::Mcf, 7);
/// let op = w.next_op();
/// assert!(op.non_mem > 0 || op.mem.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TaskWorkload {
    benchmark: Benchmark,
    profile: BenchmarkProfile,
    rng: StdRng,
    cold: PatternState,
    hot_cursor: u64,
    /// Fixed-point accumulator scheduling memory instructions at
    /// `mem_per_mille` density.
    mem_credit: u32,
}

impl TaskWorkload {
    /// Creates the generator; `seed` individualizes tasks running the
    /// same benchmark.
    pub fn new(benchmark: Benchmark, seed: u64) -> Self {
        let profile = benchmark.profile();
        let cold_size = profile.footprint - profile.hot_bytes;
        TaskWorkload {
            benchmark,
            profile,
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5),
            cold: PatternState::new(profile.cold_pattern, cold_size),
            hot_cursor: 0,
            mem_credit: 0,
        }
    }

    /// The benchmark being modeled.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The profile in effect.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Captures the dynamic generator state (RNG, cursors) for
    /// checkpointing. The benchmark and profile are configuration.
    pub fn save_state(&self) -> SavedWorkload {
        SavedWorkload {
            rng_state: self.rng.state_u64(),
            cold: self.cold.save_state(),
            hot_cursor: self.hot_cursor,
            mem_credit: self.mem_credit,
        }
    }

    /// Reinstates state captured by [`TaskWorkload::save_state`] into a
    /// freshly built generator for the same benchmark.
    pub fn restore_state(&mut self, saved: &SavedWorkload) -> Result<(), String> {
        if saved.hot_cursor >= self.profile.hot_bytes {
            return Err(format!(
                "hot cursor {} out of range (hot region {} bytes)",
                saved.hot_cursor, self.profile.hot_bytes
            ));
        }
        self.cold.restore_state(&saved.cold)?;
        self.rng = StdRng::from_state_u64(saved.rng_state);
        self.hot_cursor = saved.hot_cursor;
        self.mem_credit = saved.mem_credit;
        Ok(())
    }

    /// Generates the next unit of work.
    pub fn next_op(&mut self) -> Op {
        // Schedule memory instructions at mem_per_mille density using a
        // credit accumulator: each call emits one memory instruction and
        // the number of plain instructions that precede it.
        let p = &self.profile;
        self.mem_credit += 1000;
        let non_mem = (self.mem_credit / p.mem_per_mille).saturating_sub(1);
        self.mem_credit -= (non_mem + 1) * p.mem_per_mille;

        let is_cold = self.rng.gen_range(0..1000) < p.cold_per_mille;
        let write = self.rng.gen_range(0..1000) < p.write_per_mille;
        let (vaddr, dependent) = if is_cold {
            let (off, dep) = self.cold.next(&mut self.rng);
            let dep = dep && self.rng.gen_range(0..1000) < p.dependent_per_mille;
            (p.hot_bytes + off, dep && !write)
        } else {
            // Hot region: tight sequential reuse loop.
            let off = self.hot_cursor;
            self.hot_cursor = (self.hot_cursor + 8) % p.hot_bytes;
            (off, false)
        };
        Op {
            non_mem,
            mem: Some(MemAccess {
                vaddr,
                write,
                dependent,
            }),
        }
    }

    /// Bit-identical twin of [`TaskWorkload::next_op`] for the batched
    /// hot path: same draws from the same stream in the same order, with
    /// `gen_range`'s u128 modulo replaced by its u64 equivalent (the
    /// remainder is identical for any span that fits in u64 — here
    /// 1000), and marked `#[inline]` so the call dissolves into the
    /// caller's loop. The stream-equivalence test below pins the
    /// op-for-op identity, so the two generators may be interleaved
    /// freely on one `TaskWorkload`.
    #[inline]
    pub fn next_op_fast(&mut self) -> Op {
        let p = &self.profile;
        self.mem_credit += 1000;
        let non_mem = (self.mem_credit / p.mem_per_mille).saturating_sub(1);
        self.mem_credit -= (non_mem + 1) * p.mem_per_mille;

        let is_cold = ((self.rng.next_u64() % 1000) as u32) < p.cold_per_mille;
        let write = ((self.rng.next_u64() % 1000) as u32) < p.write_per_mille;
        let (vaddr, dependent) = if is_cold {
            let (off, dep) = self.cold.next(&mut self.rng);
            // Mirrors next_op's short-circuit: the dependence die is
            // rolled only when the pattern marked the access dependent.
            let dep = dep && ((self.rng.next_u64() % 1000) as u32) < p.dependent_per_mille;
            (p.hot_bytes + off, dep && !write)
        } else {
            let off = self.hot_cursor;
            self.hot_cursor = (self.hot_cursor + 8) % p.hot_bytes;
            (off, false)
        };
        Op {
            non_mem,
            mem: Some(MemAccess {
                vaddr,
                write,
                dependent,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_valid_and_nominally_in_class() {
        for b in Benchmark::ALL {
            let p = b.profile();
            let nominal = p.nominal_mpki();
            match p.class {
                MpkiClass::High => assert!(nominal > 10.0, "{}: {nominal}", p.name),
                MpkiClass::Medium => {
                    assert!((1.0..=12.0).contains(&nominal), "{}: {nominal}", p.name)
                }
                MpkiClass::Low => assert!(nominal < 1.0, "{}: {nominal}", p.name),
            }
        }
    }

    #[test]
    fn footprints_match_section_5_4_1() {
        assert_eq!(Benchmark::Mcf.profile().footprint, 1_740 << 20);
        assert_eq!(Benchmark::Bwaves.profile().footprint, 920 << 20);
        assert_eq!(Benchmark::Stream.profile().footprint, 800 << 20);
        assert_eq!(Benchmark::GemsFdtd.profile().footprint, 850 << 20);
    }

    #[test]
    fn mem_density_matches_profile() {
        let mut w = TaskWorkload::new(Benchmark::Stream, 1);
        let mut instrs: u64 = 0;
        let mut mems: u64 = 0;
        for _ in 0..100_000 {
            let op = w.next_op();
            instrs += u64::from(op.non_mem) + 1;
            mems += u64::from(op.mem.is_some());
        }
        let per_mille = mems as f64 * 1000.0 / instrs as f64;
        let target = f64::from(Benchmark::Stream.profile().mem_per_mille);
        assert!(
            (per_mille - target).abs() < target * 0.05,
            "measured {per_mille}, target {target}"
        );
    }

    #[test]
    fn addresses_stay_within_footprint() {
        for b in [Benchmark::Mcf, Benchmark::Povray, Benchmark::Bwaves] {
            let mut w = TaskWorkload::new(b, 3);
            let fp = b.profile().footprint;
            for _ in 0..10_000 {
                if let Some(m) = w.next_op().mem {
                    assert!(m.vaddr < fp, "{b}: {:#x} >= {fp:#x}", m.vaddr);
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ_same_seed_agrees() {
        let collect = |seed| {
            let mut w = TaskWorkload::new(Benchmark::Mcf, seed);
            (0..100)
                .filter_map(|_| w.next_op().mem.map(|m| m.vaddr))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn dependent_only_on_cold_loads() {
        let mut w = TaskWorkload::new(Benchmark::Mcf, 5);
        let mut saw_dep = false;
        for _ in 0..50_000 {
            if let Some(m) = w.next_op().mem {
                if m.dependent {
                    assert!(!m.write, "stores are never dependent");
                    saw_dep = true;
                }
            }
        }
        assert!(saw_dep, "mcf should issue dependent loads");
    }

    #[test]
    fn fast_op_stream_is_bit_identical() {
        // Every benchmark, interleaved calls included: the fast
        // generator must consume the RNG stream exactly like the
        // reference, or the batched core path would diverge.
        for b in Benchmark::ALL {
            let mut reference = TaskWorkload::new(b, 11);
            let mut fast = TaskWorkload::new(b, 11);
            for i in 0..50_000 {
                let r = reference.next_op();
                let f = if i % 3 == 0 {
                    fast.next_op()
                } else {
                    fast.next_op_fast()
                };
                assert_eq!(r, f, "{b} diverged at op {i}");
            }
            assert_eq!(reference.save_state(), fast.save_state(), "{b}");
        }
    }

    #[test]
    fn class_letters() {
        assert_eq!(MpkiClass::of(42.0), MpkiClass::High);
        assert_eq!(MpkiClass::of(5.0), MpkiClass::Medium);
        assert_eq!(MpkiClass::of(0.2), MpkiClass::Low);
        assert_eq!(MpkiClass::High.letter(), 'H');
    }

    #[test]
    fn display_names() {
        assert_eq!(Benchmark::GemsFdtd.to_string(), "GemsFDTD");
        assert_eq!(Benchmark::NpbUa.to_string(), "npb_ua");
    }
}

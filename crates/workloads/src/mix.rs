//! Multi-programmed workload mixes: Table 2's WL-1 … WL-10 plus the
//! consolidation-ratio variants of the sensitivity study (§6.6).

use serde::{Deserialize, Serialize};

use crate::profiles::Benchmark;

/// A named multi-programmed workload: an ordered list of tasks, each
/// running one benchmark.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Name as used in the paper ("WL-1" …).
    pub name: String,
    /// One entry per task.
    pub tasks: Vec<Benchmark>,
    /// Table 2's MPKI-category label ("H", "M + L", …).
    pub category: String,
}

impl WorkloadMix {
    /// Builds a mix from `(benchmark, count)` groups, e.g. Table 2's
    /// "mcf(4), povray(4)".
    pub fn from_groups(
        name: impl Into<String>,
        groups: &[(Benchmark, usize)],
        category: impl Into<String>,
    ) -> Self {
        let mut tasks = Vec::new();
        for &(b, n) in groups {
            tasks.extend(std::iter::repeat_n(b, n));
        }
        WorkloadMix {
            name: name.into(),
            tasks,
            category: category.into(),
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the mix has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total declared footprint of all tasks in bytes.
    pub fn total_footprint(&self) -> u64 {
        self.tasks.iter().map(|b| b.profile().footprint).sum()
    }

    /// Rescales the mix to `n` tasks by repeating (or truncating) the
    /// benchmark sequence — used by the sensitivity sweeps, which run the
    /// same mixes at different core counts and consolidation ratios.
    pub fn resized(&self, n: usize) -> WorkloadMix {
        let tasks = self.tasks.iter().copied().cycle().take(n).collect();
        WorkloadMix {
            name: self.name.clone(),
            tasks,
            category: self.category.clone(),
        }
    }
}

impl std::fmt::Display for WorkloadMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}] {{", self.name, self.category)?;
        let mut first = true;
        let mut iter = self.tasks.iter().peekable();
        while let Some(b) = iter.next() {
            let mut n = 1;
            while iter.peek() == Some(&b) {
                iter.next();
                n += 1;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{b}({n})")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Table 2: the ten dual-core (1:4 consolidation) workloads.
pub fn table2() -> Vec<WorkloadMix> {
    use Benchmark::*;
    vec![
        WorkloadMix::from_groups("WL-1", &[(Mcf, 8)], "H"),
        WorkloadMix::from_groups("WL-2", &[(Povray, 8)], "L"),
        WorkloadMix::from_groups("WL-3", &[(H264ref, 8)], "L"),
        WorkloadMix::from_groups("WL-4", &[(Povray, 4), (H264ref, 4)], "L"),
        WorkloadMix::from_groups("WL-5", &[(GemsFdtd, 8)], "M"),
        WorkloadMix::from_groups("WL-6", &[(Mcf, 4), (Povray, 4)], "H + L"),
        WorkloadMix::from_groups("WL-7", &[(Stream, 4), (H264ref, 4)], "M + L"),
        WorkloadMix::from_groups("WL-8", &[(Bwaves, 4), (H264ref, 4)], "H + L"),
        WorkloadMix::from_groups("WL-9", &[(NpbUa, 4), (Povray, 4)], "M + L"),
        WorkloadMix::from_groups("WL-10", &[(Mcf, 4), (Bwaves, 2), (Povray, 2)], "H + L"),
    ]
}

/// Looks a Table 2 mix up by name (`"WL-7"`).
pub fn by_name(name: &str) -> Option<WorkloadMix> {
    table2().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::MpkiClass;

    #[test]
    fn table2_has_ten_mixes_of_eight_tasks() {
        let t = table2();
        assert_eq!(t.len(), 10);
        for m in &t {
            assert_eq!(m.len(), 8, "{} should have 8 tasks", m.name);
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn wl1_is_eight_mcf_class_h() {
        let m = by_name("WL-1").unwrap();
        assert!(m.tasks.iter().all(|b| *b == Benchmark::Mcf));
        assert_eq!(m.category, "H");
        assert_eq!(m.tasks[0].profile().class, MpkiClass::High);
    }

    #[test]
    fn wl10_grouping_matches_table() {
        let m = by_name("WL-10").unwrap();
        assert_eq!(
            m.tasks,
            vec![
                Benchmark::Mcf,
                Benchmark::Mcf,
                Benchmark::Mcf,
                Benchmark::Mcf,
                Benchmark::Bwaves,
                Benchmark::Bwaves,
                Benchmark::Povray,
                Benchmark::Povray,
            ]
        );
    }

    #[test]
    fn wl1_footprint_matches_section_5_4_1() {
        // 8 × 1.7 GB = 13.6 GB; §5.4.1 reports 27.2 GB for the quad-core
        // 16-task variant, i.e. exactly 2× this.
        let m = by_name("WL-1").unwrap();
        let quad = m.resized(16);
        assert_eq!(quad.total_footprint(), 2 * m.total_footprint());
        let gb = m.total_footprint() as f64 / (1u64 << 30) as f64;
        assert!((13.5..=13.7).contains(&gb), "WL-1 footprint {gb} GB");
    }

    #[test]
    fn resized_cycles_tasks() {
        let m = by_name("WL-4").unwrap();
        let small = m.resized(4);
        assert_eq!(small.len(), 4);
        assert_eq!(small.tasks, m.tasks[..4].to_vec());
        let big = m.resized(16);
        assert_eq!(big.tasks[8..], m.tasks[..]);
    }

    #[test]
    fn display_groups_runs() {
        let m = by_name("WL-10").unwrap();
        assert_eq!(
            m.to_string(),
            "WL-10 [H + L] {mcf(4), bwaves(2), povray(2)}"
        );
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("WL-99").is_none());
    }
}

//! Address-stream pattern generators.
//!
//! A pattern produces virtual addresses inside a task-private region
//! `[base, base + size)`. Patterns are deterministic given their RNG
//! state, and model the access-locality archetypes of the paper's
//! benchmark suites: sequential streaming (STREAM, bwaves), multi-stream
//! stencils (GemsFDTD), uniform-random and pointer-chasing irregular
//! access (mcf), and cache-resident compute (povray, h264ref).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One generated memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Virtual address (byte-granular).
    pub vaddr: u64,
    /// Store (true) or load (false).
    pub write: bool,
    /// Serializing load: the next access cannot issue until this one
    /// returns (pointer chase). Only meaningful for loads.
    pub dependent: bool,
}

/// Shape of a region's access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternKind {
    /// `streams` concurrent sequential walks at `stride` bytes, round-
    /// robin. One stream models STREAM/bwaves; several model stencil
    /// codes (GemsFDTD).
    Streaming {
        /// Concurrent walk count (≥ 1).
        streams: u32,
        /// Byte stride per access.
        stride: u64,
    },
    /// Uniform-random cache-line-granular accesses.
    Random,
    /// Uniform-random *dependent* loads (each must return before the
    /// next issues) — pointer chasing.
    PointerChase,
}

/// Dynamic state of a [`PatternState`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedPattern {
    /// Per-stream cursors (empty for random/pointer-chase kinds).
    pub cursors: Vec<u64>,
    /// Round-robin stream index.
    pub next_stream: u64,
}

/// Stateful generator for one [`PatternKind`] over a region of `size`
/// bytes.
#[derive(Debug, Clone)]
pub struct PatternState {
    kind: PatternKind,
    size: u64,
    /// Per-stream cursors for streaming kinds.
    cursors: Vec<u64>,
    next_stream: usize,
}

impl PatternState {
    /// Creates a pattern over `[0, size)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero, or a streaming pattern has zero streams
    /// or zero stride.
    pub fn new(kind: PatternKind, size: u64) -> Self {
        assert!(size > 0, "pattern region must be non-empty");
        let cursors = match kind {
            PatternKind::Streaming { streams, stride } => {
                assert!(streams >= 1, "streaming needs >= 1 stream");
                assert!(stride >= 1, "stride must be >= 1");
                // Spread stream origins evenly over the region.
                (0..u64::from(streams))
                    .map(|i| i * (size / u64::from(streams)))
                    .collect()
            }
            _ => Vec::new(),
        };
        PatternState {
            kind,
            size,
            cursors,
            next_stream: 0,
        }
    }

    /// The pattern kind.
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// Captures the dynamic cursor state for checkpointing. The kind and
    /// size are configuration and are re-derived on restore.
    pub fn save_state(&self) -> SavedPattern {
        SavedPattern {
            cursors: self.cursors.clone(),
            next_stream: self.next_stream as u64,
        }
    }

    /// Reinstates cursor state captured by [`PatternState::save_state`]
    /// into a freshly built pattern of the same kind and size.
    pub fn restore_state(&mut self, saved: &SavedPattern) -> Result<(), String> {
        if saved.cursors.len() != self.cursors.len() {
            return Err(format!(
                "pattern cursor count mismatch: saved {}, expected {}",
                saved.cursors.len(),
                self.cursors.len()
            ));
        }
        if !self.cursors.is_empty() && saved.next_stream >= self.cursors.len() as u64 {
            return Err(format!(
                "pattern stream index {} out of range ({} streams)",
                saved.next_stream,
                self.cursors.len()
            ));
        }
        self.cursors.clone_from(&saved.cursors);
        self.next_stream = saved.next_stream as usize;
        Ok(())
    }

    /// Produces the next region-relative offset and dependence flag.
    pub fn next<R: Rng>(&mut self, rng: &mut R) -> (u64, bool) {
        match self.kind {
            PatternKind::Streaming { stride, .. } => {
                let s = self.next_stream;
                self.next_stream = (self.next_stream + 1) % self.cursors.len();
                let off = self.cursors[s];
                self.cursors[s] = (off + stride) % self.size;
                (off, false)
            }
            PatternKind::Random => (rng.gen_range(0..self.size) & !63, false),
            PatternKind::PointerChase => (rng.gen_range(0..self.size) & !63, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn streaming_single_walks_sequentially_and_wraps() {
        let mut p = PatternState::new(
            PatternKind::Streaming {
                streams: 1,
                stride: 8,
            },
            64,
        );
        let mut r = rng();
        let offs: Vec<u64> = (0..9).map(|_| p.next(&mut r).0).collect();
        assert_eq!(offs, vec![0, 8, 16, 24, 32, 40, 48, 56, 0]);
    }

    #[test]
    fn streaming_multi_round_robins_spread_origins() {
        let mut p = PatternState::new(
            PatternKind::Streaming {
                streams: 4,
                stride: 8,
            },
            4096,
        );
        let mut r = rng();
        let offs: Vec<u64> = (0..4).map(|_| p.next(&mut r).0).collect();
        assert_eq!(offs, vec![0, 1024, 2048, 3072]);
        assert_eq!(p.next(&mut r).0, 8);
    }

    #[test]
    fn random_is_line_aligned_and_in_range() {
        let mut p = PatternState::new(PatternKind::Random, 1 << 20);
        let mut r = rng();
        for _ in 0..1000 {
            let (off, dep) = p.next(&mut r);
            assert_eq!(off % 64, 0);
            assert!(off < 1 << 20);
            assert!(!dep);
        }
    }

    #[test]
    fn pointer_chase_is_dependent() {
        let mut p = PatternState::new(PatternKind::PointerChase, 1 << 20);
        let mut r = rng();
        let (_, dep) = p.next(&mut r);
        assert!(dep);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let gen = || {
            let mut p = PatternState::new(PatternKind::Random, 1 << 24);
            let mut r = rng();
            (0..100).map(|_| p.next(&mut r).0).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_panics() {
        let _ = PatternState::new(PatternKind::Random, 0);
    }
}

//! # refsim-workloads
//!
//! Synthetic models of the SPEC CPU2006, STREAM and NAS programs used in
//! *"Hardware-Software Co-design to Mitigate DRAM Refresh Overheads"*
//! (ASPLOS'17): deterministic address-stream generators calibrated to the
//! paper's MPKI classes and reported footprints, plus Table 2's
//! multi-programmed workload mixes.
//!
//! The real benchmark binaries and reference inputs are not available in
//! this environment; DESIGN.md §2 documents why these models preserve the
//! behavior the paper's experiments measure (memory intensity class,
//! footprint, row locality, and memory-level parallelism character).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod mix;
pub mod pattern;
pub mod profiles;

/// Commonly used types.
pub mod prelude {
    pub use crate::mix::{by_name, table2, WorkloadMix};
    pub use crate::pattern::{MemAccess, PatternKind, PatternState};
    pub use crate::profiles::{Benchmark, BenchmarkProfile, MpkiClass, Op, TaskWorkload};
}

//! # refsim-cpu
//!
//! Processor-side substrate for refsim: an analytical out-of-order core
//! timing model ([`core`]) and a two-level private cache hierarchy
//! ([`cache`], [`hierarchy`]) matching the configuration in Table 1 of
//! the reproduced paper (3.2 GHz 8-wide cores, 128-entry ROB, 32 KiB L1,
//! 1 MiB-per-core L2, 64 B lines).
//!
//! The core model deliberately abstracts the pipeline: DRAM-refresh
//! experiments are sensitive to *memory stall time*, which the interval
//! model captures (bounded MLP, ROB-fill stalls, serializing dependent
//! loads), not to fetch/decode detail.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod core;
pub mod hierarchy;

/// Commonly used types.
pub mod prelude {
    pub use crate::cache::{Cache, CacheConfig, CacheStats, Lookup};
    pub use crate::core::{CoreConfig, ExecContext, StallReason};
    pub use crate::hierarchy::{CacheHierarchy, HierOutcome, HierStats};
}

//! Set-associative, write-back/write-allocate cache with LRU replacement.
//!
//! Caches here are *tag stores* only — the simulator tracks which lines
//! are resident and dirty, not their data. Allocation happens immediately
//! on miss (the fill's timing is modeled by the core/memory simulation,
//! not the tag store).

use serde::{Deserialize, Serialize};

/// Cache shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// The paper's L1: 32 KiB, 4-way, 64 B lines.
    pub const fn l1_32k() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// The paper's per-core L2: 1 MiB, 16-way, 64 B lines.
    pub const fn l2_1m() -> Self {
        CacheConfig {
            size_bytes: 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * u64::from(self.line_bytes))
    }

    /// Checks shape invariants.
    ///
    /// # Errors
    ///
    /// Returns a message if any count is zero, not a power of two where
    /// required, or the capacity is not an exact multiple of `ways ×
    /// line_bytes`.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.line_bytes == 0 || self.size_bytes == 0 {
            return Err("cache dimensions must be non-zero".to_owned());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line_bytes must be a power of two".to_owned());
        }
        let per_set = u64::from(self.ways) * u64::from(self.line_bytes);
        if !self.size_bytes.is_multiple_of(per_set) {
            return Err("size must be a multiple of ways × line".to_owned());
        }
        if !self.sets().is_power_of_two() {
            return Err("set count must be a power of two".to_owned());
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp; larger = more recently used.
    stamp: u64,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was resident.
    Hit,
    /// The line was not resident; it has been allocated. If a dirty
    /// victim was evicted, its line-aligned address is returned for
    /// writeback.
    Miss {
        /// Dirty victim to write back, if any.
        writeback: Option<u64>,
    },
}

impl Lookup {
    /// Whether this was a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

/// Per-cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty victims written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio, or `None` with no accesses.
    pub fn miss_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.misses as f64 / total as f64)
        }
    }
}

/// One tag-store line, captured for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedLine {
    /// Line tag.
    pub tag: u64,
    /// Valid bit.
    pub valid: bool,
    /// Dirty bit.
    pub dirty: bool,
    /// LRU stamp.
    pub stamp: u64,
}

/// Dynamic state of a [`Cache`], captured for checkpointing. The shape
/// is configuration and is re-derived on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedCache {
    /// All tag-store lines, row-major by set.
    pub lines: Vec<SavedLine>,
    /// LRU clock.
    pub tick: u64,
    /// Hit/miss/writeback counters.
    pub stats: CacheStats,
}

/// A physically indexed, physically tagged cache tag store.
///
/// # Examples
///
/// ```
/// use refsim_cpu::cache::{Cache, CacheConfig, Lookup};
///
/// let mut c = Cache::new(CacheConfig::l1_32k());
/// assert!(matches!(c.access(0x1000, false), Lookup::Miss { .. }));
/// assert_eq!(c.access(0x1000, false), Lookup::Hit);
/// assert_eq!(c.access(0x1004, false), Lookup::Hit); // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets × ways, row-major by set
    set_mask: u64,
    offset_bits: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid cache config: {e}"));
        let sets = cfg.sets();
        Cache {
            cfg,
            lines: vec![Line::default(); (sets * u64::from(cfg.ways)) as usize],
            set_mask: sets - 1,
            offset_bits: cfg.line_bytes.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Zeroes counters (cache contents are preserved — warm-up boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Captures the tag-store contents and counters for checkpointing.
    pub fn save_state(&self) -> SavedCache {
        SavedCache {
            lines: self
                .lines
                .iter()
                .map(|l| SavedLine {
                    tag: l.tag,
                    valid: l.valid,
                    dirty: l.dirty,
                    stamp: l.stamp,
                })
                .collect(),
            tick: self.tick,
            stats: self.stats,
        }
    }

    /// Reinstates state captured by [`Cache::save_state`] into a cache of
    /// the same shape.
    pub fn restore_state(&mut self, saved: &SavedCache) -> Result<(), String> {
        if saved.lines.len() != self.lines.len() {
            return Err(format!(
                "cache line count mismatch: saved {}, expected {}",
                saved.lines.len(),
                self.lines.len()
            ));
        }
        for (dst, src) in self.lines.iter_mut().zip(&saved.lines) {
            *dst = Line {
                tag: src.tag,
                valid: src.valid,
                dirty: src.dirty,
                stamp: src.stamp,
            };
        }
        self.tick = saved.tick;
        self.stats = saved.stats;
        Ok(())
    }

    /// Line-aligns an address.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.offset_bits << self.offset_bits
    }

    /// Absolute tag-store slot currently holding `addr`'s line, or
    /// `None` when not resident. No LRU update, no allocation — pair
    /// with [`Cache::touch`] for memoized repeat hits.
    #[inline]
    pub fn locate(&self, addr: u64) -> Option<usize> {
        let (set, tag) = self.index(addr);
        let base = set * self.cfg.ways as usize;
        self.lines[base..base + self.cfg.ways as usize]
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .map(|way| base + way)
    }

    /// Replays exactly the hit half of [`Cache::access`] against a slot
    /// obtained from [`Cache::locate`]: bumps the LRU clock, stamps the
    /// line, merges the dirty bit, and counts a hit. The caller
    /// guarantees the slot still holds the intended line — the batched
    /// hierarchy path invalidates its memo on every outcome that can
    /// move lines.
    #[inline]
    pub fn touch(&mut self, slot: usize, write: bool) {
        self.tick += 1;
        let line = &mut self.lines[slot];
        debug_assert!(line.valid, "touch on an invalid slot");
        line.stamp = self.tick;
        line.dirty |= write;
        self.stats.hits += 1;
    }

    /// Looks up `addr`, allocating on miss (write-allocate); `write`
    /// marks the line dirty.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> Lookup {
        self.tick += 1;
        let (set, tag) = self.index(addr);
        let base = set * self.cfg.ways as usize;
        let ways = &mut self.lines[base..base + self.cfg.ways as usize];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.tick;
            line.dirty |= write;
            self.stats.hits += 1;
            return Lookup::Hit;
        }

        self.stats.misses += 1;
        // Victim: invalid way first, else LRU.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.stamp } else { 0 })
            .map(|(i, _)| i)
            .expect("ways is non-empty");
        let old = ways[victim];
        ways[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.tick,
        };
        let writeback = if old.valid && old.dirty {
            self.stats.writebacks += 1;
            Some(self.rebuild_addr(old.tag, set as u64))
        } else {
            None
        };
        Lookup::Miss { writeback }
    }

    /// Whether `addr`'s line is resident (no LRU update, no allocation).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.cfg.ways as usize;
        self.lines[base..base + self.cfg.ways as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates `addr`'s line if resident, returning its address if it
    /// was dirty (back-invalidation from an inclusive outer level).
    pub fn invalidate(&mut self, addr: u64) -> Option<u64> {
        let (set, tag) = self.index(addr);
        let base = set * self.cfg.ways as usize;
        for l in &mut self.lines[base..base + self.cfg.ways as usize] {
            if l.valid && l.tag == tag {
                l.valid = false;
                if l.dirty {
                    return Some(self.rebuild_addr(tag, set as u64));
                }
                return None;
            }
        }
        None
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.offset_bits;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    fn rebuild_addr(&self, tag: u64, set: u64) -> u64 {
        ((tag << self.set_mask.count_ones()) | set) << self.offset_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_shapes() {
        let l1 = CacheConfig::l1_32k();
        assert_eq!(l1.sets(), 128);
        assert!(l1.validate().is_ok());
        let l2 = CacheConfig::l2_1m();
        assert_eq!(l2.sets(), 1024);
        assert!(l2.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = CacheConfig::l1_32k();
        c.line_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::l1_32k();
        c.ways = 0;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::l1_32k();
        c.size_bytes = 33 * 1024 + 7;
        assert!(c.validate().is_err());
    }

    #[test]
    fn hit_after_fill_and_line_granularity() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        assert!(!c.access(0x1000, false).is_hit());
        assert!(c.access(0x1000, false).is_hit());
        assert!(c.access(0x103f, false).is_hit());
        assert!(!c.access(0x1040, false).is_hit());
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct-mapped-ish scenario: fill all 4 ways of one set, touch
        // way 0 again, then force an eviction — way 1 must go.
        let mut c = Cache::new(CacheConfig::l1_32k());
        let set_stride = 128 * 64; // sets × line
        let a = |i: u64| i * set_stride; // all map to set 0
        for i in 0..4 {
            c.access(a(i), false);
        }
        c.access(a(0), false); // refresh way holding a(0)
        c.access(a(4), false); // evicts a(1)
        assert!(c.probe(a(0)));
        assert!(!c.probe(a(1)));
        assert!(c.probe(a(4)));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        let set_stride = 128 * 64;
        c.access(0, true); // dirty
        for i in 1..=4u64 {
            let r = c.access(i * set_stride, false);
            if i == 4 {
                match r {
                    Lookup::Miss { writeback } => assert_eq!(writeback, Some(0)),
                    Lookup::Hit => panic!("expected miss"),
                }
            }
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        let set_stride = 128 * 64;
        for i in 0..5u64 {
            match c.access(i * set_stride, false) {
                Lookup::Miss { writeback } => assert_eq!(writeback, None),
                Lookup::Hit => panic!("unexpected hit"),
            }
        }
    }

    #[test]
    fn invalidate_returns_dirty_address() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        c.access(0x2000, true);
        assert_eq!(c.invalidate(0x2000), Some(0x2000));
        assert!(!c.probe(0x2000));
        c.access(0x3000, false);
        assert_eq!(c.invalidate(0x3000), None);
        assert_eq!(c.invalidate(0x4000), None); // not resident
    }

    #[test]
    fn rebuild_addr_roundtrips_through_eviction() {
        let mut c = Cache::new(CacheConfig::l2_1m());
        let addr = 0x00de_adbe_efc0_u64 & !0x3f;
        c.access(addr, true);
        // Evict by filling the set.
        let set_stride = 1024 * 64;
        let mut wb = None;
        for i in 1..=16u64 {
            if let Lookup::Miss { writeback: Some(w) } = c.access(addr + i * set_stride, false) {
                wb = Some(w);
            }
        }
        assert_eq!(wb, Some(addr));
    }

    #[test]
    fn miss_rate_reporting() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        assert_eq!(c.stats().miss_rate(), None);
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.stats().miss_rate(), Some(0.5));
        c.reset_stats();
        assert_eq!(c.stats().miss_rate(), None);
        assert!(c.probe(0), "reset_stats must not drop contents");
    }
}

//! Analytical out-of-order core timing model.
//!
//! Instead of simulating a pipeline cycle-by-cycle, the model applies the
//! standard *interval analysis* of out-of-order processors: the core
//! issues instructions at a base rate; long-latency loads overlap with
//! execution (memory-level parallelism) until either the reorder buffer
//! fills behind the oldest outstanding load or the MSHRs are exhausted,
//! at which point the core stalls until that miss returns. Dependent
//! (pointer-chase) loads serialize immediately.
//!
//! Time is core-local [`Ps`]; the surrounding system fast-forwards a
//! stalled context to the completion instant reported by the memory
//! controller.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use refsim_dram::request::ReqId;
use refsim_dram::time::Ps;

/// Core shape and latency parameters (Table 1 defaults via
/// [`CoreConfig::table1`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Core clock period.
    pub period: Ps,
    /// Average picoseconds per instruction in the absence of memory
    /// stalls (base CPI × period).
    pub base_ppi: Ps,
    /// Reorder-buffer capacity in instructions.
    pub rob: u64,
    /// Maximum outstanding LLC misses (MSHRs).
    pub mshrs: usize,
    /// Effective exposed penalty of an L2 hit (partially hidden by OoO).
    pub l2_hit_penalty: Ps,
}

impl CoreConfig {
    /// The paper's core: 3.2 GHz, 8-wide issue, 128-entry ROB. Base CPI
    /// of 0.5 reflects typical SPEC issue-limited throughput; 16 MSHRs;
    /// 5-cycle exposed L2-hit penalty.
    pub fn table1() -> Self {
        let period = Ps::from_ps(312); // 3.2 GHz, rounded to whole ps
        CoreConfig {
            period,
            base_ppi: Ps::from_ps(156), // CPI 0.5
            rob: 128,
            mshrs: 16,
            l2_hit_penalty: Ps::from_ps(312 * 5),
        }
    }

    /// Cycles represented by a duration under this core's clock.
    pub fn cycles(&self, d: Ps) -> u64 {
        d.as_ps() / self.period.as_ps()
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if any field is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.period == Ps::ZERO || self.base_ppi == Ps::ZERO {
            return Err("period and base_ppi must be non-zero".to_owned());
        }
        if self.rob == 0 || self.mshrs == 0 {
            return Err("rob and mshrs must be non-zero".to_owned());
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::table1()
    }
}

/// An in-flight LLC miss tracked by the context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Outstanding {
    id: ReqId,
    /// Instruction position of the access.
    pos: u64,
    /// Loads block retirement at the ROB head; store fills do not.
    is_load: bool,
}

/// A consistent point-in-time snapshot of an [`ExecContext`]'s
/// observable counters (see [`ExecContext::probe`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreProbe {
    /// Core-local current time.
    pub now: Ps,
    /// Instructions issued so far.
    pub instructions: u64,
    /// Total time spent stalled on memory.
    pub stall_time: Ps,
    /// LLC misses issued.
    pub misses: u64,
    /// In-flight misses right now.
    pub outstanding: u64,
}

/// Why the context cannot issue further instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The ROB filled behind this outstanding load.
    RobFull(ReqId),
    /// All MSHRs are occupied; waiting for the oldest miss.
    MshrFull(ReqId),
    /// A dependent (serializing) load must return before anything else.
    Dependent(ReqId),
}

impl StallReason {
    /// The request whose completion unblocks the context.
    pub fn blocking_request(&self) -> ReqId {
        match *self {
            StallReason::RobFull(id) | StallReason::MshrFull(id) | StallReason::Dependent(id) => id,
        }
    }
}

/// Per-task execution timing state (saved/restored across context
/// switches; the hardware core itself is stateless between quanta apart
/// from caches).
///
/// # Examples
///
/// ```
/// use refsim_cpu::core::{CoreConfig, ExecContext};
/// use refsim_dram::time::Ps;
///
/// let cfg = CoreConfig::table1();
/// let mut ctx = ExecContext::new();
/// ctx.execute(&cfg, 1000); // a thousand ALU instructions
/// assert_eq!(ctx.now(), cfg.base_ppi * 1000);
/// assert_eq!(ctx.instructions(), 1000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecContext {
    now: Ps,
    issued: u64,
    outstanding: VecDeque<Outstanding>,
    dependent_block: Option<ReqId>,
    /// Cumulative time spent stalled on memory.
    stall_time: Ps,
    /// Number of LLC misses issued.
    misses: u64,
}

/// Dynamic state of an [`ExecContext`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedExecContext {
    /// Core-local time.
    pub now: Ps,
    /// Instructions issued.
    pub issued: u64,
    /// In-flight misses as `(request id, instruction position, is_load)`.
    pub outstanding: Vec<(u64, u64, bool)>,
    /// Serializing load currently blocking issue, if any.
    pub dependent_block: Option<u64>,
    /// Cumulative memory stall time.
    pub stall_time: Ps,
    /// LLC misses issued.
    pub misses: u64,
}

impl ExecContext {
    /// A fresh context at local time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures the full context state for checkpointing.
    pub fn save_state(&self) -> SavedExecContext {
        SavedExecContext {
            now: self.now,
            issued: self.issued,
            outstanding: self
                .outstanding
                .iter()
                .map(|o| (o.id.0, o.pos, o.is_load))
                .collect(),
            dependent_block: self.dependent_block.map(|id| id.0),
            stall_time: self.stall_time,
            misses: self.misses,
        }
    }

    /// Reinstates state captured by [`ExecContext::save_state`],
    /// replacing whatever this context held.
    pub fn restore_state(&mut self, saved: &SavedExecContext) {
        self.now = saved.now;
        self.issued = saved.issued;
        self.outstanding = saved
            .outstanding
            .iter()
            .map(|&(id, pos, is_load)| Outstanding {
                id: ReqId(id),
                pos,
                is_load,
            })
            .collect();
        self.dependent_block = saved.dependent_block.map(ReqId);
        self.stall_time = saved.stall_time;
        self.misses = saved.misses;
    }

    /// Core-local current time.
    #[inline]
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Sets the local clock (context-switch restore).
    pub fn set_now(&mut self, t: Ps) {
        debug_assert!(t >= self.now, "context time went backwards");
        self.now = t;
    }

    /// Instructions issued so far.
    pub fn instructions(&self) -> u64 {
        self.issued
    }

    /// Total time this context has spent stalled on memory.
    pub fn stall_time(&self) -> Ps {
        self.stall_time
    }

    /// LLC misses issued by this context.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of in-flight misses.
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// One-call snapshot of the context's observable counters, for
    /// auditors that sample every core each quantum and need a
    /// consistent view without four separate accessor calls.
    pub fn probe(&self) -> CoreProbe {
        CoreProbe {
            now: self.now,
            instructions: self.issued,
            stall_time: self.stall_time,
            misses: self.misses,
            outstanding: self.outstanding.len() as u64,
        }
    }

    /// Advances through `n` non-memory instructions.
    #[inline]
    pub fn execute(&mut self, cfg: &CoreConfig, n: u64) {
        self.issued += n;
        self.now += cfg.base_ppi * n;
    }

    /// Accounts one memory instruction that hit the L1 (fully pipelined —
    /// cost is part of the base CPI).
    #[inline]
    pub fn on_l1_hit(&mut self, _cfg: &CoreConfig) {
        self.issued += 1;
    }

    /// Accounts one memory instruction that hit the L2.
    #[inline]
    pub fn on_l2_hit(&mut self, cfg: &CoreConfig) {
        self.issued += 1;
        self.now += cfg.l2_hit_penalty;
    }

    /// Registers an LLC miss issued to the memory system as request `id`.
    ///
    /// `is_load` marks demand loads (block retirement); store fills only
    /// occupy an MSHR. `dependent` marks serializing loads.
    ///
    /// Returns the stall that now binds, if any; the caller must wait for
    /// the blocking request to complete (via
    /// [`ExecContext::on_completion`]) before issuing more work.
    pub fn on_miss(
        &mut self,
        cfg: &CoreConfig,
        id: ReqId,
        is_load: bool,
        dependent: bool,
    ) -> Option<StallReason> {
        self.issued += 1;
        self.misses += 1;
        self.outstanding.push_back(Outstanding {
            id,
            pos: self.issued,
            is_load,
        });
        if dependent && is_load {
            self.dependent_block = Some(id);
        }
        self.stall(cfg)
    }

    /// The stall currently binding, if any.
    #[inline]
    pub fn stall(&self, cfg: &CoreConfig) -> Option<StallReason> {
        if let Some(id) = self.dependent_block {
            return Some(StallReason::Dependent(id));
        }
        if self.outstanding.len() >= cfg.mshrs {
            return Some(StallReason::MshrFull(
                self.outstanding.front().expect("mshrs > 0").id,
            ));
        }
        // ROB: the oldest un-returned *load* pins the ROB tail.
        if let Some(oldest_load) = self.outstanding.iter().find(|o| o.is_load) {
            if self.issued - oldest_load.pos >= cfg.rob {
                return Some(StallReason::RobFull(oldest_load.id));
            }
        }
        None
    }

    /// How many further instructions (memory or not) can issue before any
    /// stall could possibly bind, assuming no new miss is registered. The
    /// batched core loop uses this to run stall-check-free bursts: while
    /// the headroom covers the next op's instruction count, `stall()` is
    /// guaranteed `None` at every intermediate decision point the
    /// reference per-op loop would have checked.
    ///
    /// Zero means a stall binds right now (dependent block or MSHRs
    /// full); `u64::MAX` means nothing outstanding can ever bind.
    #[inline]
    pub fn issue_headroom(&self, cfg: &CoreConfig) -> u64 {
        if self.dependent_block.is_some() || self.outstanding.len() >= cfg.mshrs {
            return 0;
        }
        match self.outstanding.iter().find(|o| o.is_load) {
            // ROB fills when `issued - pos >= rob`: exactly
            // `pos + rob - issued` more instructions may issue first.
            Some(oldest_load) => (oldest_load.pos + cfg.rob).saturating_sub(self.issued),
            None => u64::MAX,
        }
    }

    /// Records the completion of request `id` at absolute instant `at`.
    ///
    /// If the context was stalled on `id`, its clock jumps to `at` and
    /// the stall time is accounted.
    pub fn on_completion(&mut self, cfg: &CoreConfig, id: ReqId, at: Ps) {
        let was_blocking = self.stall(cfg).map(|s| s.blocking_request()) == Some(id);
        self.outstanding.retain(|o| o.id != id);
        if self.dependent_block == Some(id) {
            self.dependent_block = None;
        }
        if was_blocking && at > self.now {
            self.stall_time += at - self.now;
            self.now = at;
        }
    }

    /// The next instant this context can execute work on its own, or
    /// `None` while a stall binds (only a completion can wake it — the
    /// context has no timer-like events of its own).
    ///
    /// The event-horizon engine uses this to bound clock skips: an
    /// unstalled context is inert until the simulation step containing
    /// `now`, a stalled one until its blocking request completes.
    pub fn next_event_time(&self, cfg: &CoreConfig) -> Option<Ps> {
        if self.stall(cfg).is_some() {
            None
        } else {
            Some(self.now)
        }
    }

    /// Requests still in flight (drained by the system when a task exits).
    pub fn in_flight(&self) -> impl Iterator<Item = ReqId> + '_ {
        self.outstanding.iter().map(|o| o.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CoreConfig {
        CoreConfig::table1()
    }

    #[test]
    fn table1_validates() {
        assert!(cfg().validate().is_ok());
        let mut c = cfg();
        c.rob = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn execute_advances_at_base_cpi() {
        let mut ctx = ExecContext::new();
        ctx.execute(&cfg(), 2000);
        assert_eq!(ctx.now(), cfg().base_ppi * 2000);
        assert_eq!(ctx.instructions(), 2000);
        assert_eq!(ctx.stall_time(), Ps::ZERO);
    }

    #[test]
    fn l2_hit_costs_penalty() {
        let mut ctx = ExecContext::new();
        ctx.on_l2_hit(&cfg());
        assert_eq!(ctx.now(), cfg().l2_hit_penalty);
        ctx.on_l1_hit(&cfg());
        assert_eq!(ctx.instructions(), 2);
    }

    #[test]
    fn independent_misses_overlap_up_to_rob() {
        let c = cfg();
        let mut ctx = ExecContext::new();
        // First miss: no stall (ROB has room, MSHRs free).
        assert_eq!(ctx.on_miss(&c, ReqId(1), true, false), None);
        // Execute fewer than ROB instructions: still no stall.
        ctx.execute(&c, c.rob - 1);
        assert_eq!(ctx.stall(&c), None);
        // One more instruction fills the ROB behind the load.
        ctx.execute(&c, 1);
        assert_eq!(ctx.stall(&c), Some(StallReason::RobFull(ReqId(1))));
    }

    #[test]
    fn completion_unblocks_and_accounts_stall() {
        let c = cfg();
        let mut ctx = ExecContext::new();
        ctx.on_miss(&c, ReqId(7), true, false);
        ctx.execute(&c, c.rob);
        let stall_at = ctx.now();
        assert!(matches!(ctx.stall(&c), Some(StallReason::RobFull(_))));
        let done = stall_at + Ps::from_ns(100);
        ctx.on_completion(&c, ReqId(7), done);
        assert_eq!(ctx.now(), done);
        assert_eq!(ctx.stall_time(), Ps::from_ns(100));
        assert_eq!(ctx.stall(&c), None);
    }

    #[test]
    fn early_completion_does_not_rewind_clock() {
        let c = cfg();
        let mut ctx = ExecContext::new();
        ctx.on_miss(&c, ReqId(7), true, false);
        ctx.execute(&c, 10);
        let t = ctx.now();
        // Completion in the past (already absorbed): no jump, no stall.
        ctx.on_completion(&c, ReqId(7), Ps::ZERO);
        assert_eq!(ctx.now(), t);
        assert_eq!(ctx.stall_time(), Ps::ZERO);
    }

    #[test]
    fn mshr_exhaustion_blocks_on_oldest() {
        let c = cfg();
        let mut ctx = ExecContext::new();
        for i in 0..c.mshrs as u64 {
            // Stores: no ROB blocking, so only MSHRs bind.
            let stall = ctx.on_miss(&c, ReqId(i), false, false);
            if i < c.mshrs as u64 - 1 {
                assert_eq!(stall, None, "miss {i}");
            } else {
                assert_eq!(stall, Some(StallReason::MshrFull(ReqId(0))));
            }
        }
        assert_eq!(ctx.outstanding_count(), c.mshrs);
        ctx.on_completion(&c, ReqId(0), Ps::from_ns(50));
        assert_eq!(ctx.stall(&c), None);
    }

    #[test]
    fn store_fills_do_not_block_rob() {
        let c = cfg();
        let mut ctx = ExecContext::new();
        ctx.on_miss(&c, ReqId(1), false, false);
        ctx.execute(&c, c.rob * 4);
        assert_eq!(ctx.stall(&c), None, "stores retire early");
    }

    #[test]
    fn dependent_load_serializes() {
        let c = cfg();
        let mut ctx = ExecContext::new();
        let stall = ctx.on_miss(&c, ReqId(9), true, true);
        assert_eq!(stall, Some(StallReason::Dependent(ReqId(9))));
        ctx.on_completion(&c, ReqId(9), Ps::from_ns(80));
        assert_eq!(ctx.stall(&c), None);
        assert_eq!(ctx.stall_time(), Ps::from_ns(80));
    }

    #[test]
    fn completions_can_arrive_out_of_order() {
        let c = cfg();
        let mut ctx = ExecContext::new();
        ctx.on_miss(&c, ReqId(1), true, false);
        ctx.on_miss(&c, ReqId(2), true, false);
        ctx.on_completion(&c, ReqId(2), Ps::from_ns(10));
        assert_eq!(ctx.outstanding_count(), 1);
        ctx.on_completion(&c, ReqId(1), Ps::from_ns(20));
        assert_eq!(ctx.outstanding_count(), 0);
    }

    #[test]
    fn issue_headroom_matches_stall_boundary() {
        let c = cfg();
        let mut ctx = ExecContext::new();
        assert_eq!(ctx.issue_headroom(&c), u64::MAX, "nothing outstanding");
        ctx.on_miss(&c, ReqId(1), true, false);
        // Walk instruction by instruction: headroom must hit zero on
        // exactly the instruction where stall() starts binding.
        loop {
            let headroom = ctx.issue_headroom(&c);
            match ctx.stall(&c) {
                None => assert!(headroom > 0, "stall-free ⇒ headroom > 0"),
                Some(_) => {
                    assert_eq!(headroom, 0);
                    break;
                }
            }
            ctx.execute(&c, 1);
        }
        ctx.on_completion(&c, ReqId(1), ctx.now());
        assert_eq!(ctx.issue_headroom(&c), u64::MAX);
        // MSHR exhaustion and dependent blocks zero the headroom.
        let mut ctx = ExecContext::new();
        for i in 0..c.mshrs as u64 {
            ctx.on_miss(&c, ReqId(i), false, false);
        }
        assert_eq!(ctx.issue_headroom(&c), 0);
        let mut ctx = ExecContext::new();
        ctx.on_miss(&c, ReqId(1), true, true);
        assert_eq!(ctx.issue_headroom(&c), 0);
    }

    #[test]
    fn in_flight_lists_ids() {
        let c = cfg();
        let mut ctx = ExecContext::new();
        ctx.on_miss(&c, ReqId(3), true, false);
        ctx.on_miss(&c, ReqId(4), false, false);
        let ids: Vec<_> = ctx.in_flight().collect();
        assert_eq!(ids, vec![ReqId(3), ReqId(4)]);
    }
}

//! Two-level private cache hierarchy (L1 → L2) matching Table 1.

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheConfig, CacheStats, Lookup, SavedCache};

/// Where an access was satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierOutcome {
    /// Satisfied by the L1 (2-cycle path, folded into base CPI).
    L1Hit,
    /// Satisfied by the L2 (20-cycle path).
    L2Hit,
    /// Missed the whole hierarchy; a DRAM fill is required for
    /// `line_addr`, and any dirty L2 victim must be written back.
    Miss {
        /// Line-aligned fill address.
        line_addr: u64,
        /// Dirty L2 victim to write back to memory, if any.
        writeback: Option<u64>,
    },
}

/// Hierarchy-level counters (beyond the per-cache ones).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierStats {
    /// Total accesses presented to the hierarchy.
    pub accesses: u64,
    /// Accesses that missed both levels (LLC misses).
    pub llc_misses: u64,
    /// Dirty lines pushed to memory.
    pub writebacks: u64,
}

/// A private L1+L2 stack for one core.
///
/// The L2 is *mostly inclusive* the way real private stacks are: a fill
/// allocates in both levels; an L2 eviction back-invalidates the L1 so a
/// dirty L1 copy is not silently lost (its data is merged into the
/// outgoing writeback).
///
/// # Examples
///
/// ```
/// use refsim_cpu::hierarchy::{CacheHierarchy, HierOutcome};
///
/// let mut h = CacheHierarchy::table1();
/// assert!(matches!(h.access(0x1000, false), HierOutcome::Miss { .. }));
/// assert_eq!(h.access(0x1000, false), HierOutcome::L1Hit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    stats: HierStats,
    /// Hot-line memo for [`CacheHierarchy::access_fast`]: the last line
    /// that hit the L1 and the tag-store slot holding it. Runtime-only
    /// acceleration state — never checkpointed, cleared on restore and
    /// on every access that can move lines, so a stale slot can never be
    /// touched.
    hot: Option<(u64, usize)>,
}

impl CacheHierarchy {
    /// Builds a hierarchy with explicit configurations.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        CacheHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            stats: HierStats::default(),
            hot: None,
        }
    }

    /// The paper's per-core configuration: 32 KiB/4-way L1 and
    /// 1 MiB/16-way L2, 64 B lines.
    pub fn table1() -> Self {
        Self::new(CacheConfig::l1_32k(), CacheConfig::l2_1m())
    }

    /// Accesses `paddr`; `write` marks stores.
    pub fn access(&mut self, paddr: u64, write: bool) -> HierOutcome {
        // Any full lookup can evict the memoized line; drop the memo so
        // the fast path and this one can interleave freely.
        self.hot = None;
        self.stats.accesses += 1;
        if self.l1.access(paddr, write).is_hit() {
            return HierOutcome::L1Hit;
        }
        // L1 victim writebacks land in the L2 (allocate-on-writeback is
        // implicit: private L2 is filled on every L1 fill anyway).
        match self.l2.access(paddr, write) {
            Lookup::Hit => HierOutcome::L2Hit,
            Lookup::Miss { writeback } => {
                let mut wb = writeback;
                if let Some(victim) = wb {
                    // Back-invalidate the L1 copy of the evicted line; a
                    // dirty L1 copy rides out with the same writeback.
                    let _ = self.l1.invalidate(victim);
                    self.stats.writebacks += 1;
                    wb = Some(victim);
                }
                self.stats.llc_misses += 1;
                HierOutcome::Miss {
                    line_addr: self.l2.line_addr(paddr),
                    writeback: wb,
                }
            }
        }
    }

    /// Bit-identical twin of [`CacheHierarchy::access`] for the batched
    /// core loop: consecutive hits to one L1 line — the dominant case in
    /// hot-region-resident phases — skip the tag walk and replay the hit
    /// bookkeeping via [`Cache::touch`]. Every other outcome falls back
    /// to the full lookup and re-arms the memo, so counters, LRU order
    /// and dirty bits evolve exactly as under `access`.
    #[inline]
    pub fn access_fast(&mut self, paddr: u64, write: bool) -> HierOutcome {
        if let Some((line, slot)) = self.hot {
            if self.l1.line_addr(paddr) == line {
                self.stats.accesses += 1;
                self.l1.touch(slot, write);
                return HierOutcome::L1Hit;
            }
        }
        let out = self.access(paddr, write);
        // `access` allocates on every path, so the line is L1-resident
        // now regardless of outcome; memoize only clean L1 hits — after
        // an allocation the interesting next access is a different line
        // anyway, and keeping the arm condition narrow keeps it obvious
        // that a memoized slot was produced by an eviction-free lookup.
        if matches!(out, HierOutcome::L1Hit) {
            self.hot = self
                .l1
                .locate(paddr)
                .map(|slot| (self.l1.line_addr(paddr), slot));
        }
        out
    }

    /// LLC misses per kilo-instruction given an instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.stats.llc_misses as f64 * 1000.0 / instructions as f64
    }

    /// Hierarchy counters.
    pub fn stats(&self) -> &HierStats {
        &self.stats
    }

    /// L1 counters.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Zeroes all counters, preserving cache contents (warm-up boundary).
    pub fn reset_stats(&mut self) {
        self.stats = HierStats::default();
        self.l1.reset_stats();
        self.l2.reset_stats();
    }

    /// Captures both tag stores and the hierarchy counters for
    /// checkpointing.
    pub fn save_state(&self) -> SavedHierarchy {
        SavedHierarchy {
            l1: self.l1.save_state(),
            l2: self.l2.save_state(),
            stats: self.stats,
        }
    }

    /// Reinstates state captured by [`CacheHierarchy::save_state`] into a
    /// hierarchy of the same shape.
    pub fn restore_state(&mut self, saved: &SavedHierarchy) -> Result<(), String> {
        self.hot = None;
        self.l1.restore_state(&saved.l1)?;
        self.l2.restore_state(&saved.l2)?;
        self.stats = saved.stats;
        Ok(())
    }
}

/// Dynamic state of a [`CacheHierarchy`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedHierarchy {
    /// L1 tag store.
    pub l1: SavedCache,
    /// L2 tag store.
    pub l2: SavedCache,
    /// Hierarchy-level counters.
    pub stats: HierStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_fills_both_levels() {
        let mut h = CacheHierarchy::table1();
        match h.access(0x40_0000, false) {
            HierOutcome::Miss {
                line_addr,
                writeback,
            } => {
                assert_eq!(line_addr, 0x40_0000);
                assert_eq!(writeback, None);
            }
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(h.access(0x40_0000, false), HierOutcome::L1Hit);
        assert_eq!(h.stats().llc_misses, 1);
        assert_eq!(h.stats().accesses, 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = CacheHierarchy::table1();
        h.access(0, false);
        // Thrash L1 set 0 (128-set L1 → 8 KiB stride) but stay within the
        // L2 set 0's 16 ways (64 KiB stride in L2... careful: use L1-set
        // aliasing addresses that map to *different* L2 sets).
        for i in 1..=4u64 {
            h.access(i * 128 * 64, false);
        }
        // 0 is gone from L1 but still in L2.
        assert_eq!(h.access(0, false), HierOutcome::L2Hit);
    }

    #[test]
    fn dirty_l2_eviction_emits_writeback_and_back_invalidates() {
        let mut h = CacheHierarchy::table1();
        let l2_set_stride = 1024 * 64;
        h.access(0, true); // dirty in both levels
        let mut saw_wb = false;
        for i in 1..=16u64 {
            if let HierOutcome::Miss {
                writeback: Some(w), ..
            } = h.access(i * l2_set_stride, false)
            {
                assert_eq!(w, 0);
                saw_wb = true;
            }
        }
        assert!(saw_wb, "line 0 should have been evicted dirty");
        // And the L1 copy is gone too (inclusive-ish behavior).
        assert!(matches!(h.access(0, false), HierOutcome::Miss { .. }));
        assert_eq!(h.stats().writebacks, 1);
    }

    #[test]
    fn fast_access_is_bit_identical() {
        let mut reference = CacheHierarchy::table1();
        let mut fast = CacheHierarchy::table1();
        // Deterministic mix of tight reuse (memo hits), set-conflict
        // evictions and cold strides; interleave fast and plain calls on
        // the fast hierarchy to exercise memo invalidation.
        let mut x = 0x1234_5678_u64;
        for i in 0..200_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = match x % 10 {
                0..=5 => (x >> 32) % (24 * 1024),    // hot region
                6..=7 => ((x >> 32) % 4) * 128 * 64, // L1 set 0 conflicts
                _ => (x >> 16) % (256 << 20),        // cold sweep
            };
            let write = x.is_multiple_of(7);
            let r = reference.access(addr, write);
            let f = if i.is_multiple_of(17) {
                fast.access(addr, write)
            } else {
                fast.access_fast(addr, write)
            };
            assert_eq!(r, f, "diverged at access {i} addr {addr:#x}");
        }
        assert_eq!(reference.save_state(), fast.save_state());
    }

    #[test]
    fn mpki_computation() {
        let mut h = CacheHierarchy::table1();
        for i in 0..10u64 {
            h.access(i * 64 * 1024 * 1024, false); // all misses
        }
        assert!((h.mpki(1000) - 10.0).abs() < 1e-9);
        assert_eq!(h.mpki(0), 0.0);
    }

    #[test]
    fn reset_preserves_contents() {
        let mut h = CacheHierarchy::table1();
        h.access(0x9000, false);
        h.reset_stats();
        assert_eq!(h.stats().accesses, 0);
        assert_eq!(h.access(0x9000, false), HierOutcome::L1Hit);
    }
}

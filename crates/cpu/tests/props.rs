//! Property-based tests for the CPU substrate.

use std::collections::{HashSet, VecDeque};

use proptest::prelude::*;

use refsim_cpu::cache::{Cache, CacheConfig, Lookup};
use refsim_cpu::core::{CoreConfig, ExecContext};
use refsim_cpu::hierarchy::{CacheHierarchy, HierOutcome};
use refsim_dram::request::ReqId;
use refsim_dram::time::Ps;

/// A tiny reference model of a fully-associative-per-set LRU cache.
#[derive(Debug)]
struct ModelCache {
    sets: usize,
    ways: usize,
    line_bits: u32,
    contents: Vec<VecDeque<u64>>, // per set, most-recent at back
}

impl ModelCache {
    fn new(cfg: &CacheConfig) -> Self {
        ModelCache {
            sets: cfg.sets() as usize,
            ways: cfg.ways as usize,
            line_bits: cfg.line_bytes.trailing_zeros(),
            contents: vec![VecDeque::new(); cfg.sets() as usize],
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_bits;
        let set = (line as usize) % self.sets;
        let q = &mut self.contents[set];
        if let Some(pos) = q.iter().position(|&l| l == line) {
            q.remove(pos);
            q.push_back(line);
            true
        } else {
            if q.len() == self.ways {
                q.pop_front();
            }
            q.push_back(line);
            false
        }
    }
}

fn small_cache() -> CacheConfig {
    CacheConfig {
        size_bytes: 4 * 1024,
        ways: 4,
        line_bytes: 64,
    }
}

proptest! {
    /// The cache agrees hit-for-hit with a straightforward LRU model.
    #[test]
    fn cache_matches_lru_model(addrs in prop::collection::vec(0u64..(1 << 16), 1..500)) {
        let cfg = small_cache();
        let mut cache = Cache::new(cfg);
        let mut model = ModelCache::new(&cfg);
        for a in addrs {
            let expect_hit = model.access(a);
            let got = cache.access(a, false);
            prop_assert_eq!(got.is_hit(), expect_hit, "address {:#x}", a);
        }
    }

    /// Hits + misses always equals accesses; resident lines never exceed
    /// capacity.
    #[test]
    fn cache_accounting(addrs in prop::collection::vec(any::<u64>(), 1..300)) {
        let cfg = small_cache();
        let mut cache = Cache::new(cfg);
        let mut distinct = HashSet::new();
        for &a in &addrs {
            cache.access(a, a % 3 == 0);
            distinct.insert(cache.line_addr(a));
        }
        let s = *cache.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
        // Misses are at least the distinct-line count beyond capacity.
        let capacity_lines = (cfg.size_bytes / u64::from(cfg.line_bytes)) as usize;
        prop_assert!(s.misses as usize >= distinct.len().saturating_sub(capacity_lines));
        // Every line just accessed within the last `ways` accesses to its
        // set is still resident — weak but useful: last address resident.
        prop_assert!(cache.probe(*addrs.last().unwrap()));
    }

    /// Writebacks only ever emerge for lines that were written.
    #[test]
    fn writebacks_only_for_dirty_lines(
        ops in prop::collection::vec((0u64..(1 << 14), any::<bool>()), 1..400),
    ) {
        let cfg = small_cache();
        let mut cache = Cache::new(cfg);
        let mut written = HashSet::new();
        for (a, w) in ops {
            if w {
                written.insert(cache.line_addr(a));
            }
            if let Lookup::Miss { writeback: Some(v) } = cache.access(a, w) {
                prop_assert!(written.contains(&v), "clean victim {v:#x} written back");
            }
        }
    }

    /// Hierarchy: an L1 hit implies the line was accessed before, and a
    /// fresh address always misses to DRAM.
    #[test]
    fn hierarchy_first_touch_misses(addrs in prop::collection::vec(0u64..(1 << 30), 1..200)) {
        let mut h = CacheHierarchy::table1();
        let mut seen = HashSet::new();
        for &a in &addrs {
            let line = a & !63;
            let out = h.access(a, false);
            if !seen.contains(&line) {
                // First touch can only be a DRAM miss (nothing is
                // prefetched or aliased: table1 L2 has 1024 sets so two
                // distinct lines never merge).
                prop_assert!(
                    matches!(out, HierOutcome::Miss { .. }),
                    "first touch of {line:#x} produced {out:?}"
                );
            }
            seen.insert(line);
        }
        prop_assert_eq!(h.stats().accesses, addrs.len() as u64);
    }

    /// ExecContext: stall time only accumulates while blocked, and the
    /// clock never runs backwards under arbitrary miss/completion
    /// interleavings.
    #[test]
    fn exec_context_clock_monotone(
        script in prop::collection::vec((0u64..50, any::<bool>(), any::<bool>()), 1..100),
    ) {
        let cfg = CoreConfig::table1();
        let mut ctx = ExecContext::new();
        let mut next_id = 0u64;
        let mut outstanding: Vec<ReqId> = Vec::new();
        let mut last_now = Ps::ZERO;
        for (n, do_miss, complete) in script {
            ctx.execute(&cfg, n);
            prop_assert!(ctx.now() >= last_now);
            last_now = ctx.now();
            if do_miss && ctx.stall(&cfg).is_none() {
                let id = ReqId(next_id);
                next_id += 1;
                ctx.on_miss(&cfg, id, true, false);
                outstanding.push(id);
            }
            if complete && !outstanding.is_empty() {
                let id = outstanding.remove(0);
                let at = ctx.now() + Ps::from_ns(next_id % 90);
                let stall_before = ctx.stall_time();
                let was_blocking =
                    ctx.stall(&cfg).map(|s| s.blocking_request()) == Some(id);
                ctx.on_completion(&cfg, id, at);
                prop_assert!(ctx.now() >= last_now);
                if !was_blocking {
                    prop_assert_eq!(ctx.stall_time(), stall_before);
                }
                last_now = ctx.now();
            }
        }
        // Drain: completing everything always unblocks.
        for id in outstanding {
            let at = ctx.now() + Ps::from_ns(10);
            ctx.on_completion(&cfg, id, at);
        }
        prop_assert!(ctx.stall(&cfg).is_none());
        prop_assert_eq!(ctx.outstanding_count(), 0);
    }

    /// MSHR bound is never exceeded: the context reports a stall at or
    /// before the cap, for any cap.
    #[test]
    fn mshr_cap_respected(cap in 1usize..32, misses in 1u64..64) {
        let mut cfg = CoreConfig::table1();
        cfg.mshrs = cap;
        let mut ctx = ExecContext::new();
        for i in 0..misses {
            if ctx.stall(&cfg).is_some() {
                break;
            }
            ctx.on_miss(&cfg, ReqId(i), false, false);
        }
        prop_assert!(ctx.outstanding_count() <= cap);
    }
}

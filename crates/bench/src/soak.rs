//! Seed-driven chaos/soak harness for the invariant sanitizer.
//!
//! Each scenario is derived entirely from one `u64` seed: the seed
//! picks a refresh policy, device density, retention window, bank
//! partition, scheduler, workload mix, and a fault class (possibly
//! none), then runs the simulation under [`AuditLevel::Full`]. The
//! classification is a four-way contingency:
//!
//! | fault injected | sanitizer fired | outcome                    |
//! |----------------|-----------------|----------------------------|
//! | no             | no              | `pass`                     |
//! | no             | yes             | `VIOLATED` — quarantined   |
//! | yes            | yes             | `caught` (negative control)|
//! | yes            | no              | `missed` (reported only)   |
//!
//! A crash (panic, typed simulation error) in any scenario is also
//! quarantined. Quarantined seeds reproduce standalone: rerun the
//! binary with `--replay SEED` to get the full violation report for
//! exactly that scenario — the seed is the entire scenario description,
//! so no other state needs to be preserved.
//!
//! `missed` is informational, not failing: fault magnitudes are
//! randomized, and a low dose on a short window may legally stay below
//! every checker's threshold. The per-class negative-control *tests*
//! (see `refsim-core`'s system tests) pin aggressive doses that must
//! always be caught.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refsim_core::config::SystemConfig;
use refsim_core::error::RefsimError;
use refsim_core::executor::{default_threads, ExecutorOptions, WorkerFaultPlan};
use refsim_core::experiment::{run_many_checked, Job};
use refsim_core::faults::FaultPlan;
use refsim_core::report::Table;
use refsim_core::sanitize::AuditLevel;
use refsim_core::sweep::{run_many_resilient, SweepOptions};
use refsim_core::vfs::crashtest::{
    probe, reference_rows, run_point, CrashScenario, FaultMode, Verdict,
};
use refsim_dram::backend::BackendKind;
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::time::Ps;
use refsim_dram::timing::{Density, FgrMode, Retention};
use refsim_os::partition::PartitionPlan;
use refsim_os::sched::SchedPolicy;
use refsim_workloads::mix::table2;

/// Default number of scenarios for a full soak run.
pub const DEFAULT_SCENARIOS: usize = 120;
/// Default master seed.
pub const DEFAULT_SEED: u64 = 0x50AC;
/// Default time-scale divisor. Coarser than figure runs, but not
/// coarser than 512: the retention oracle's slack term (9·tREFI) does
/// not scale with time, so at scales where scaled tREFW drops below it,
/// tREFW-bounded delays and weak-row cover gaps become *legally*
/// tolerable and those fault classes can never be caught.
pub const DEFAULT_SCALE: u32 = 512;

/// The fault class a scenario injects, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// No fault: the run must be violation-free.
    None,
    /// Refresh commands silently dropped.
    Skip,
    /// Refresh commands delayed past their deadline.
    Delay,
    /// Retention-weak rows that decay faster than tREFW.
    Weak,
}

impl FaultClass {
    /// All classes, in scenario-draw order.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::None,
        FaultClass::Skip,
        FaultClass::Delay,
        FaultClass::Weak,
    ];

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::Skip => "skip",
            FaultClass::Delay => "delay",
            FaultClass::Weak => "weak",
        }
    }
}

/// How one scenario ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Clean scenario, clean run.
    Pass,
    /// Faulted scenario, sanitizer fired — the negative control worked.
    Caught,
    /// Faulted scenario, sanitizer silent — dose may be sub-threshold.
    Missed,
    /// Clean scenario, sanitizer fired — a real invariant bug. Failing.
    Violated,
    /// Any scenario that died on a non-sanitizer error. Failing.
    Crashed,
}

impl Outcome {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Pass => "pass",
            Outcome::Caught => "caught",
            Outcome::Missed => "missed",
            Outcome::Violated => "VIOLATED",
            Outcome::Crashed => "CRASHED",
        }
    }
}

/// Which harness a soak scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioClass {
    /// Invariant-sanitizer chaos run (the original soak draw).
    Sanitizer,
    /// One crash point of the durability matrix: the crashtest tiny
    /// sweep behind a fault-injecting filesystem (`bench --bin
    /// crashmat` enumerates the same points exhaustively).
    Crashmat {
        /// The I/O fault injected at the drawn operation index.
        mode: FaultMode,
        /// Salt reduced modulo the probed operation count to pick the
        /// crash point, so every index stays reachable as the I/O
        /// sequence evolves across releases.
        point_salt: u64,
    },
    /// One chaos run of the work-stealing sweep executor: a small job
    /// matrix under a seeded [`WorkerFaultPlan`] (a hung worker,
    /// transient worker panics, one crash-looping job class), held to
    /// the containment contract — every cell accounted for, healthy
    /// cells bit-identical to a clean single-threaded run, crash-class
    /// cells terminating as typed quarantined errors.
    ExecutorChaos {
        /// Seed for the scenario's [`WorkerFaultPlan`] and job matrix.
        plan_seed: u64,
    },
}

/// One fully derived scenario: the seed is the identity, everything
/// else is a pure function of it (plus the shared time scale).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed this scenario was derived from; `--replay` takes it.
    pub seed: u64,
    /// Injected fault class.
    pub fault: FaultClass,
    /// Which harness the scenario runs.
    pub class: ScenarioClass,
    /// Human-readable knob summary for the report row.
    pub label: String,
    /// The job to run.
    pub job: Job,
}

/// Derives one scenario from a seed. Deterministic: the same
/// `(seed, scale)` always yields the same configuration, workload, and
/// fault plan, which is what makes quarantined seeds reproducible.
///
/// `NoRefresh` is deliberately absent from the policy pool: it is an
/// idealized upper bound that makes no retention promise, so a soak
/// that runs past the oracle threshold would flag it every time.
pub fn build_scenario(seed: u64, scale: u32) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);

    let policies = [
        RefreshPolicyKind::AllBank,
        RefreshPolicyKind::PerBankRoundRobin,
        RefreshPolicyKind::PerBankSequential,
        RefreshPolicyKind::OooPerBank,
        RefreshPolicyKind::Fgr(FgrMode::X2),
        RefreshPolicyKind::Fgr(FgrMode::X4),
        RefreshPolicyKind::Adaptive,
        RefreshPolicyKind::Elastic,
    ];
    let policy = policies[rng.gen_range(0..policies.len())];
    let density = Density::EVALUATED[rng.gen_range(0..Density::EVALUATED.len())];
    let mut retention = if rng.gen_range(0..4u32) == 0 {
        Retention::Ms32
    } else {
        Retention::Ms64
    };
    let partition = match rng.gen_range(0..4u32) {
        0 => PartitionPlan::None,
        1 => PartitionPlan::Soft,
        2 => PartitionPlan::Hard,
        _ => PartitionPlan::Confine {
            banks_per_task: [2u32, 4, 6][rng.gen_range(0..3usize)],
        },
    };
    let sched = if rng.gen_range(0..2u32) == 0 {
        SchedPolicy::Cfs
    } else {
        SchedPolicy::RefreshAware {
            eta_thresh: rng.gen_range(2..7u32),
            best_effort: rng.gen_range(0..2u32) == 1,
        }
    };
    let mixes = table2();
    let mix = mixes[rng.gen_range(0..mixes.len())].resized(rng.gen_range(4..9usize));

    let fault = FaultClass::ALL[rng.gen_range(0..FaultClass::ALL.len())];
    if fault == FaultClass::Weak {
        // A weak row only trips when the gap between two covers of its
        // span (≈ scaled tREFW) exceeds its limit plus the oracle's
        // unscaled slack; the 32 ms window scaled down is too short for
        // that at any supported soak scale.
        retention = Retention::Ms64;
    }

    let mut cfg = SystemConfig::table1()
        .with_time_scale(scale)
        .with_refresh(policy)
        .with_density(density)
        .with_retention(retention)
        .with_partition(partition)
        .with_sched(sched)
        .with_seed(seed)
        .with_retention_tracking()
        .with_audit(AuditLevel::Full);
    // The run must outlive the retention oracle's staleness threshold
    // (scaled tREFW + 9·unscaled tREFI) or skipped refreshes can never
    // surface; the tREFI term dominates at coarse scales, so add it
    // explicitly instead of stretching the window count.
    cfg.warmup = cfg.trefw() / 4;
    cfg.measure = cfg.trefw() * 2 + retention.trefi_ab() * 10;

    cfg.fault_plan = match fault {
        FaultClass::None => None,
        FaultClass::Skip => Some(FaultPlan {
            seed,
            skip_ppm: rng.gen_range(400_000..900_001u32),
            delay_ppm: 0,
            max_delay: Ps::ZERO,
            weak_rows: 0,
            weak_limit: Ps::ZERO,
            horizon: 1_000_000,
        }),
        FaultClass::Delay => Some(FaultPlan {
            seed,
            skip_ppm: 0,
            delay_ppm: rng.gen_range(800_000..1_000_001u32),
            // Past the completeness threshold (tREFW + slack), not just
            // tREFW: a delay inside the slack is JEDEC-legal.
            max_delay: cfg.trefw() * 2,
            weak_rows: 0,
            weak_limit: Ps::ZERO,
            horizon: 1_000_000,
        }),
        FaultClass::Weak => Some(FaultPlan {
            seed,
            skip_ppm: 0,
            delay_ppm: 0,
            max_delay: Ps::ZERO,
            weak_rows: rng.gen_range(32..129u32),
            weak_limit: cfg.trefw() / 8,
            horizon: 0,
        }),
    };

    // Backend draw comes last so it never perturbs the knobs earlier
    // seeds already pinned: a quarter of the scenarios run the faults
    // against the independently written shadow model, which must catch
    // (or crash on) exactly what the primary does.
    if rng.gen_range(0..4u32) == 0 {
        cfg = cfg.with_backend(BackendKind::Shadow);
    }

    // The durability draw is appended after every sanitizer knob for
    // the same reason: one scenario in eight trades its sanitizer run
    // for a single crash point of the vfs crash matrix, exercising a
    // random I/O fault mode at a random operation index.
    let class = if rng.gen_range(0..8u32) == 0 {
        const MODES: [FaultMode; 5] = [
            FaultMode::Crash,
            FaultMode::Enospc,
            FaultMode::TornWrite,
            FaultMode::Interrupt,
            FaultMode::CorruptWrite,
        ];
        ScenarioClass::Crashmat {
            mode: MODES[rng.gen_range(0..MODES.len())],
            point_salt: rng.gen(),
        }
    } else if rng.gen_range(0..8u32) == 0 {
        // Drawn after the crashmat decision (and only on its else
        // branch) so every previously reachable scenario keeps its
        // exact RNG stream: one in eight of the remaining slots trades
        // its sanitizer run for an executor chaos run.
        ScenarioClass::ExecutorChaos {
            plan_seed: rng.gen(),
        }
    } else {
        ScenarioClass::Sanitizer
    };
    if let ScenarioClass::Crashmat { mode, .. } = class {
        return Scenario {
            seed,
            fault: FaultClass::None,
            class,
            label: format!("crashmat {mode}"),
            job: Job { cfg, mix },
        };
    }
    if let ScenarioClass::ExecutorChaos { .. } = class {
        return Scenario {
            seed,
            fault: FaultClass::None,
            class,
            label: "executor-chaos".to_owned(),
            job: Job { cfg, mix },
        };
    }

    let label = format!(
        "{policy} {density} {retention} {partition:?} {} {}x{}{}",
        match sched {
            SchedPolicy::Cfs => "cfs".to_owned(),
            SchedPolicy::RefreshAware { eta_thresh, .. } => format!("ra(η={eta_thresh})"),
        },
        mix.name,
        mix.len(),
        if cfg.backend == BackendKind::Shadow {
            " [shadow]"
        } else {
            ""
        },
    );
    Scenario {
        seed,
        fault,
        class: ScenarioClass::Sanitizer,
        label,
        job: Job { cfg, mix },
    }
}

/// Soak run parameters.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Number of scenarios to derive and run.
    pub scenarios: usize,
    /// Master seed; per-scenario seeds are drawn from it.
    pub seed: u64,
    /// Time-scale divisor for every scenario.
    pub scale: u32,
    /// Worker threads.
    pub threads: usize,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            scenarios: DEFAULT_SCENARIOS,
            seed: DEFAULT_SEED,
            scale: DEFAULT_SCALE,
            threads: default_threads(),
        }
    }
}

/// One classified scenario result.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario's reproducer seed.
    pub seed: u64,
    /// Injected fault class.
    pub fault: FaultClass,
    /// Which harness the scenario ran.
    pub class: ScenarioClass,
    /// Knob summary.
    pub label: String,
    /// Classified outcome.
    pub outcome: Outcome,
    /// `checker → violation count` when the sanitizer fired, else empty.
    pub by_checker: Vec<(&'static str, u64)>,
    /// Error display for crashed scenarios.
    pub error: Option<String>,
}

/// Aggregated soak report.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Per-scenario classified results, in scenario order.
    pub results: Vec<ScenarioResult>,
}

impl SoakReport {
    /// Seeds that must be triaged: clean-scenario violations and crashes.
    pub fn quarantined(&self) -> Vec<u64> {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Violated | Outcome::Crashed))
            .map(|r| r.seed)
            .collect()
    }

    /// Whether the soak run found a real problem.
    pub fn failed(&self) -> bool {
        !self.quarantined().is_empty()
    }

    /// Outcome counts keyed by label, plus per-fault-class caught/total.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new("soak summary", ["metric", "count"]);
        let count = |o: Outcome| self.results.iter().filter(|r| r.outcome == o).count();
        t.push(["scenarios".to_owned(), self.results.len().to_string()]);
        for o in [
            Outcome::Pass,
            Outcome::Caught,
            Outcome::Missed,
            Outcome::Violated,
            Outcome::Crashed,
        ] {
            t.push([o.label().to_owned(), count(o).to_string()]);
        }
        for class in [FaultClass::Skip, FaultClass::Delay, FaultClass::Weak] {
            let total = self.results.iter().filter(|r| r.fault == class).count();
            let caught = self
                .results
                .iter()
                .filter(|r| r.fault == class && r.outcome == Outcome::Caught)
                .count();
            t.push([
                format!("caught[{}]", class.label()),
                format!("{caught}/{total}"),
            ]);
        }
        let crash = self
            .results
            .iter()
            .filter(|r| matches!(r.class, ScenarioClass::Crashmat { .. }))
            .count();
        t.push(["crashmat points".to_owned(), crash.to_string()]);
        let chaos = self
            .results
            .iter()
            .filter(|r| matches!(r.class, ScenarioClass::ExecutorChaos { .. }))
            .count();
        t.push(["executor-chaos runs".to_owned(), chaos.to_string()]);
        t
    }

    /// Violation counts per checker, aggregated over every scenario
    /// where the sanitizer fired (caught or violated).
    pub fn checker_table(&self) -> Table {
        let mut agg: BTreeMap<&'static str, u64> = BTreeMap::new();
        for r in &self.results {
            for &(checker, n) in &r.by_checker {
                *agg.entry(checker).or_insert(0) += n;
            }
        }
        let mut t = Table::new("violations by checker", ["checker", "violations"]);
        for (checker, n) in agg {
            t.push([checker.to_owned(), n.to_string()]);
        }
        t
    }
}

/// Derives `opts.scenarios` scenarios from the master seed.
pub fn build_scenarios(opts: &SoakOptions) -> Vec<Scenario> {
    let mut master = StdRng::seed_from_u64(opts.seed);
    (0..opts.scenarios)
        .map(|_| build_scenario(master.gen_range(0..u64::MAX), opts.scale))
        .collect()
}

/// Runs the full soak: derive, run (panic-isolated, in parallel),
/// classify. Deterministic for a fixed `SoakOptions`.
///
/// Sanitizer scenarios run batched through the sweep runner; crashmat
/// scenarios each drive the crash-point harness standalone (the
/// harness is internally single-threaded so its I/O-operation indices
/// stay deterministic).
pub fn run_soak(opts: &SoakOptions) -> SoakReport {
    let scenarios = build_scenarios(opts);
    let sanitizer: Vec<usize> = (0..scenarios.len())
        .filter(|&i| scenarios[i].class == ScenarioClass::Sanitizer)
        .collect();
    let jobs: Vec<Job> = sanitizer
        .iter()
        .map(|&i| scenarios[i].job.clone())
        .collect();
    let runs = run_many_checked(&jobs, opts.threads);

    let mut slots: Vec<Option<ScenarioResult>> = scenarios.iter().map(|_| None).collect();
    for (&i, run) in sanitizer.iter().zip(&runs) {
        slots[i] = Some(classify(scenarios[i].clone(), run));
    }
    for (i, s) in scenarios.iter().enumerate() {
        if slots[i].is_none() {
            slots[i] = Some(match s.class {
                ScenarioClass::Crashmat { .. } => run_crash_scenario(s),
                ScenarioClass::ExecutorChaos { .. } => run_executor_chaos_scenario(s),
                ScenarioClass::Sanitizer => unreachable!("sanitizer slots were batched"),
            });
        }
    }
    SoakReport {
        results: slots
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect(),
    }
}

/// Runs one crashmat scenario: probe the tiny crash scenario's I/O
/// sequence, reduce the salt to a concrete operation index, inject the
/// drawn fault there, and map the harness verdict onto soak outcomes —
/// clean resume is a `pass`, graceful degradation is a `caught`
/// negative control, a contract violation is `VIOLATED`, and any
/// harness error is a crash. Violations carry a `crashmat` reproducer
/// command line in `error`.
pub fn run_crash_scenario(s: &Scenario) -> ScenarioResult {
    let ScenarioClass::Crashmat { mode, point_salt } = s.class else {
        panic!("run_crash_scenario takes a crashmat scenario");
    };
    let scn = CrashScenario::tiny(s.seed);
    let root = std::env::temp_dir().join(format!(
        "refsim-soak-crash-{}-{:016x}",
        std::process::id(),
        s.seed
    ));
    let outcome = (|| -> Result<(u64, Verdict), String> {
        let reference = reference_rows(&scn).map_err(|e| e.to_string())?;
        let (total, _) = probe(&scn, &root).map_err(|e| e.to_string())?;
        let k = point_salt % total.max(1);
        Ok((k, run_point(&scn, &root, k, mode, &reference).verdict))
    })();
    let _ = std::fs::remove_dir_all(&root);
    let (outcome, label, error) = match outcome {
        Ok((k, Verdict::Resumed)) => (Outcome::Pass, format!("crashmat {mode} @op {k}"), None),
        Ok((k, Verdict::Degraded(why))) => (
            Outcome::Caught,
            format!("crashmat {mode} @op {k}: {why}"),
            None,
        ),
        Ok((k, Verdict::Violation(why))) => (
            Outcome::Violated,
            format!("crashmat {mode} @op {k}"),
            Some(format!(
                "{why} — reproduce: cargo run --release -p refsim-bench --bin crashmat -- \
                 --scenario tiny --mode {mode} --point {k} --seed {}",
                s.seed
            )),
        ),
        Err(e) => (Outcome::Crashed, format!("crashmat {mode}"), Some(e)),
    };
    ScenarioResult {
        seed: s.seed,
        fault: FaultClass::None,
        class: s.class,
        label,
        outcome,
        by_checker: Vec::new(),
        error,
    }
}

/// The seeded chaos plan every executor scenario runs: one hung worker
/// that recovers after a claim, transient worker panics at a 15% rate,
/// and every third job index crash-looping.
fn chaos_plan(plan_seed: u64) -> WorkerFaultPlan {
    WorkerFaultPlan {
        hung_workers: 1,
        hang_claims: 1,
        panic_ppm: 150_000,
        crash_job_period: 3,
        ..WorkerFaultPlan::quiet(plan_seed)
    }
}

/// The small deterministic job matrix an executor-chaos scenario runs:
/// four distinct cells at a coarse time scale, seeds derived from the
/// plan seed.
fn chaos_jobs(plan_seed: u64) -> Vec<Job> {
    let mixes = table2();
    (0..4u64)
        .map(|i| {
            let mut cfg = SystemConfig::table1()
                .with_time_scale(4096)
                .with_seed(plan_seed.wrapping_add(i));
            cfg.warmup = cfg.trefw() / 8;
            cfg.measure = cfg.trefw() / 2;
            Job {
                cfg,
                mix: mixes[i as usize % mixes.len()].resized(4),
            }
        })
        .collect()
}

/// Runs one executor-chaos scenario: the job matrix clean and
/// single-threaded for reference, then on three workers under the
/// seeded [`WorkerFaultPlan`], and judges containment — every cell
/// accounted for, healthy cells bit-identical to the reference,
/// crash-class cells ending as typed quarantined errors. Classification
/// depends only on results, never on timing-sensitive telemetry, so a
/// scenario replays to the same outcome on any host.
pub fn run_executor_chaos_scenario(s: &Scenario) -> ScenarioResult {
    let ScenarioClass::ExecutorChaos { plan_seed } = s.class else {
        panic!("run_executor_chaos_scenario takes an executor-chaos scenario");
    };
    let plan = chaos_plan(plan_seed);
    let attempt = std::panic::catch_unwind(|| -> Result<(Outcome, String), RefsimError> {
        let jobs = chaos_jobs(plan_seed);
        let clean = run_many_resilient(&jobs, 1, &SweepOptions::default())?;
        let opts = SweepOptions {
            executor: ExecutorOptions {
                deadline_floor: std::time::Duration::from_millis(50),
                adaptive_factor: 4,
                stall_cap: std::time::Duration::from_millis(300),
                supervisor_tick: std::time::Duration::from_millis(2),
                max_worker_strikes: 2,
                fault_plan: Some(plan),
                ..ExecutorOptions::default()
            },
            ..SweepOptions::default()
        };
        let rep = run_many_resilient(&jobs, 3, &opts)?;
        let mut broken = Vec::new();
        if rep.results.len() != jobs.len() {
            broken.push(format!(
                "only {}/{} cells accounted for",
                rep.results.len(),
                jobs.len()
            ));
        }
        for (i, (chaos, reference)) in rep.results.iter().zip(&clean.results).enumerate() {
            if plan.crashes_job(i) {
                if !chaos.is_err() {
                    broken.push(format!("crash-class job {i} produced a result"));
                }
                if !rep.quarantined.contains(&i) {
                    broken.push(format!("crash-class job {i} missing a quarantine record"));
                }
            } else if format!("{chaos:?}") != format!("{reference:?}") {
                broken.push(format!("healthy job {i} diverged from the clean run"));
            }
        }
        let telemetry = format!(
            "{} steals, {} requeues, {} escalations, {} workers quarantined",
            rep.executor.steals,
            rep.executor.requeues,
            rep.executor.deadline_escalations,
            rep.executor.quarantined_workers,
        );
        if broken.is_empty() {
            Ok((Outcome::Caught, format!("executor-chaos: {telemetry}")))
        } else {
            Ok((
                Outcome::Violated,
                format!("executor-chaos: {}", broken.join("; ")),
            ))
        }
    });
    let (outcome, label, error) = match attempt {
        Ok(Ok((outcome, label))) => {
            let error = (outcome == Outcome::Violated)
                .then(|| format!("{label} (reproducer seed {})", s.seed));
            (outcome, label, error)
        }
        Ok(Err(e)) => (
            Outcome::Crashed,
            "executor-chaos".to_owned(),
            Some(e.to_string()),
        ),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            (Outcome::Crashed, "executor-chaos".to_owned(), Some(msg))
        }
    };
    ScenarioResult {
        seed: s.seed,
        fault: FaultClass::None,
        class: s.class,
        label,
        outcome,
        by_checker: Vec::new(),
        error,
    }
}

/// Classifies one scenario run against its fault expectation.
fn classify(
    s: Scenario,
    run: &Result<refsim_core::metrics::RunMetrics, RefsimError>,
) -> ScenarioResult {
    let expected = s.fault != FaultClass::None;
    let (outcome, by_checker, error) = match run {
        Ok(_) if expected => (Outcome::Missed, Vec::new(), None),
        Ok(_) => (Outcome::Pass, Vec::new(), None),
        Err(RefsimError::InvariantViolation(report)) => (
            if expected {
                Outcome::Caught
            } else {
                Outcome::Violated
            },
            report.by_checker(),
            None,
        ),
        Err(e) => (Outcome::Crashed, Vec::new(), Some(e.to_string())),
    };
    ScenarioResult {
        seed: s.seed,
        fault: s.fault,
        class: s.class,
        label: s.label,
        outcome,
        by_checker,
        error,
    }
}

/// Replays a single quarantined seed and returns the raw run result
/// alongside the rebuilt scenario, for detailed triage output.
pub fn replay_seed(
    seed: u64,
    scale: u32,
) -> (
    Scenario,
    Result<refsim_core::metrics::RunMetrics, RefsimError>,
) {
    let s = build_scenario(seed, scale);
    let runs = run_many_checked(std::slice::from_ref(&s.job), 1);
    let run = runs
        .into_iter()
        .next()
        .unwrap_or_else(|| Err(RefsimError::InvariantViolation(Box::default())));
    (s, run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_pure_functions_of_the_seed() {
        let a = build_scenario(42, 2048);
        let b = build_scenario(42, 2048);
        assert_eq!(a.label, b.label);
        assert_eq!(a.fault, b.fault);
        assert_eq!(a.job.cfg, b.job.cfg);
        assert_eq!(a.job.mix.name, b.job.mix.name);
        // Different seeds draw different scenarios (with overwhelming
        // probability over the knob space; these two differ).
        let c = build_scenario(43, 2048);
        assert!(a.label != c.label || a.fault != c.fault);
    }

    #[test]
    fn scenario_configs_validate() {
        let opts = SoakOptions {
            scenarios: 64,
            scale: 2048,
            ..SoakOptions::default()
        };
        for s in build_scenarios(&opts) {
            s.job
                .cfg
                .validate()
                .unwrap_or_else(|e| panic!("seed {} invalid: {e}", s.seed));
        }
    }

    /// Negative control for the backend wiring: a seeded fault plan must
    /// trip the sanitizer on at least one backend. A fault the shadow
    /// model silently absorbs while the primary catches it (or vice
    /// versa) would make every shadow soak slot a blind spot.
    #[test]
    fn seeded_fault_trips_a_checker_on_at_least_one_backend() {
        // Scale must stay at the soak default or finer: coarser scaled
        // windows make refresh faults legally tolerable (see module doc).
        let mut s = (0u64..)
            .map(|i| build_scenario(0xFA_0000 + i, DEFAULT_SCALE))
            .find(|s| s.fault == FaultClass::Skip)
            .expect("the generator draws skip faults");
        if let Some(plan) = s.job.cfg.fault_plan.as_mut() {
            plan.skip_ppm = 900_000; // pin an aggressive dose
        }
        let mut tripped = Vec::new();
        for kind in [BackendKind::Primary, BackendKind::Shadow] {
            let job = Job {
                cfg: s.job.cfg.clone().with_backend(kind),
                mix: s.job.mix.clone(),
            };
            let runs = run_many_checked(std::slice::from_ref(&job), 1);
            if matches!(runs[0], Err(RefsimError::InvariantViolation(_))) {
                tripped.push(kind);
            }
        }
        assert!(
            !tripped.is_empty(),
            "a 90% refresh-skip plan escaped both backends"
        );
    }

    /// The durability draw produces crashmat scenarios, and replaying
    /// one is deterministic: the same seed maps to the same fault mode,
    /// the same crash point, and the same outcome — and that outcome
    /// honors the durability contract.
    #[test]
    fn crashmat_scenarios_are_drawn_and_replay_deterministically() {
        let s = (0u64..)
            .map(|i| build_scenario(0xC4A5_0000 + i, DEFAULT_SCALE))
            .find(|s| matches!(s.class, ScenarioClass::Crashmat { .. }))
            .expect("the generator draws crashmat scenarios");
        let a = run_crash_scenario(&s);
        let b = run_crash_scenario(&s);
        assert_eq!(a.outcome, b.outcome);
        // Degradation notes may embed unique tmp-file names; the drawn
        // mode and operation index must replay identically.
        assert_eq!(
            a.label.split(':').next(),
            b.label.split(':').next(),
            "fault mode and crash point must be stable"
        );
        assert!(
            !matches!(a.outcome, Outcome::Violated | Outcome::Crashed),
            "crash point must satisfy the durability contract: {} {:?}",
            a.label,
            a.error
        );
    }

    /// The generator draws executor-chaos scenarios and the chaos runner
    /// contains the injected faults: the sweep finishes, every cell is
    /// accounted for, and healthy cells match the single-threaded reference.
    #[test]
    fn executor_chaos_scenarios_are_drawn_and_contained() {
        let s = (0u64..)
            .map(|i| build_scenario(0xEC_0000 + i, DEFAULT_SCALE))
            .find(|s| matches!(s.class, ScenarioClass::ExecutorChaos { .. }))
            .expect("the generator draws executor-chaos scenarios");
        let out = run_executor_chaos_scenario(&s);
        assert!(
            matches!(out.outcome, Outcome::Caught),
            "chaos must be contained, got {:?}: {} {:?}",
            out.outcome,
            out.label,
            out.error
        );
    }

    /// A small soak is deterministic end to end: two runs from the same
    /// master seed classify identically, and a clean re-derivation of a
    /// quarantined seed reproduces the same scenario.
    #[test]
    fn soak_is_deterministic() {
        let opts = SoakOptions {
            scenarios: 8,
            scale: 4096,
            ..SoakOptions::default()
        };
        let a = run_soak(&opts);
        let b = run_soak(&opts);
        assert_eq!(a.summary_table(), b.summary_table());
        assert_eq!(a.checker_table(), b.checker_table());
        assert_eq!(a.quarantined(), b.quarantined());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.outcome, y.outcome, "seed {} diverged", x.seed);
        }
    }
}

//! Regenerates Figure 11: average memory access latency per workload.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::figure11(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

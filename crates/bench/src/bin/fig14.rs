//! Regenerates Figure 14: comparison with OOO per-bank refresh (Chang et
//! al.) and Adaptive Refresh (Mukundan et al.) at 32 Gb.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::figure14(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

//! Ablation study: the co-design's pieces in isolation (hardware-only,
//! software-only, η sweep, hard vs soft partitioning).

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::ablation(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

//! Prints Table 1: the evaluated configuration.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::table01(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

//! Diagnostic: isolates the co-design's pieces (partitioning without
//! scheduling, scheduling without partitioning, …) with per-task IPCs —
//! the tool that exposed the group-pairing interference fixed in the
//! partition planner (DESIGN.md §5.3).

use refsim_core::config::SystemConfig;
use refsim_core::experiment::{run_many, ExpOptions, Job};
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_os::partition::PartitionPlan;
use refsim_workloads::mix::by_name;

fn main() {
    let mut opts = ExpOptions::full();
    opts.time_scale = 128;
    opts.measure_windows = 1;
    let base = opts.base_config();
    let variants: Vec<(&str, SystemConfig)> = vec![
        ("all-bank", base.clone()),
        (
            "no-refresh",
            base.clone().with_refresh(RefreshPolicyKind::NoRefresh),
        ),
        (
            "no-refresh+confine6",
            base.clone()
                .with_refresh(RefreshPolicyKind::NoRefresh)
                .with_partition(PartitionPlan::Confine { banks_per_task: 6 }),
        ),
        (
            "seqref+part+cfs",
            base.clone()
                .with_refresh(RefreshPolicyKind::PerBankSequential)
                .with_partition(PartitionPlan::Soft),
        ),
        (
            "seqref only",
            base.clone()
                .with_refresh(RefreshPolicyKind::PerBankSequential),
        ),
        ("co-design", base.clone().co_design()),
        (
            "per-bank",
            base.clone()
                .with_refresh(RefreshPolicyKind::PerBankRoundRobin),
        ),
    ];
    for wl in ["WL-8", "WL-1", "WL-7"] {
        let mix = by_name(wl).unwrap();
        let jobs: Vec<Job> = variants
            .iter()
            .map(|(_, c)| Job {
                cfg: c.clone(),
                mix: mix.clone(),
            })
            .collect();
        let runs = run_many(&jobs, opts.threads);
        println!("\n== {wl} ==");
        for ((label, _), r) in variants.iter().zip(&runs) {
            let per_task: Vec<String> = r
                .tasks
                .iter()
                .map(|t| {
                    format!(
                        "{}:{:.3}",
                        &t.label[..2.min(t.label.len())],
                        t.ipc(r.cpu_period)
                    )
                })
                .collect();
            println!(
                "{:20} hmean {:.4} ({:+.2}%)  lat {:6.1}  dodges {:5} fallbk {:4}  [{}]",
                label,
                r.hmean_ipc(),
                (r.speedup_over(&runs[0]) - 1.0) * 100.0,
                r.avg_read_latency_cycles(),
                r.sched.refresh_dodges,
                r.sched.eta_fallbacks,
                per_task.join(" ")
            );
        }
    }
}

//! Robustness report: retention-oracle and fault-injection counters per
//! scheme — first a clean sweep (all counters should be zero except the
//! scheduler's η fallbacks), then the same sweep with a deterministic
//! fault plan installed (skipped/delayed refresh commands plus weak
//! rows), where every injected skip must surface as a retention
//! violation instead of silent data loss.

use refsim_core::experiment::robustness_table;
use refsim_core::faults::FaultPlan;
use refsim_dram::time::Ps;

fn main() {
    let cli = refsim_bench::Cli::parse();

    let clean = robustness_table(&cli.opts, None);
    cli.emit(&clean);

    let mut plan = FaultPlan::none(cli.opts.seed);
    plan.skip_ppm = 100_000; // 10 % of refresh commands silently dropped
    plan.delay_ppm = 20_000; // 2 % delayed by up to 2 µs
    plan.max_delay = Ps::from_us(2);
    plan.weak_rows = 2; // retention-weak cells at tREFW/8
    plan.weak_limit = cli.opts.base_config().trefw() / 8;
    plan.horizon = 1_000_000;
    let faulted = robustness_table(&cli.opts, Some(&plan));
    cli.emit(&faulted);

    cli.finish();
}

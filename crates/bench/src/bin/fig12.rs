//! Regenerates Figure 12: DDR4 fine-granularity refresh (1x/2x/4x) vs
//! the co-design.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::figure12(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

//! Energy extension: per-scheme DRAM energy breakdown (not a paper
//! figure; see EXPERIMENTS.md's extensions section).

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::energy_table(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

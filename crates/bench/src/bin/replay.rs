//! Deterministic-replay auditor CLI.
//!
//! Verifies the simulator's bit-identity contract on the configured
//! workload mixes, for both the baseline and the co-design scheme:
//!
//! * `--verify` (default) — run each config twice, expect zero
//!   divergence at every sampled quantum;
//! * `--resumed` — interrupt the second run at a mid-run checkpoint,
//!   serialize, restore, resume; expect zero divergence (exercises the
//!   full crash/resume codec path);
//! * `--perturb N` — corrupt the workload RNG at quantum `N` of the
//!   second run and check the auditor blames the `workloads` component
//!   at exactly that quantum (negative control).
//!
//! Exits non-zero on any contract violation, so CI can gate on it.

use refsim_core::experiment::ExpOptions;
use refsim_core::replay::{
    replay_verify, replay_verify_perturbed, replay_verify_resumed, ReplayOptions, ReplayReport,
};
use refsim_core::report::Table;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Verify,
    Resumed,
    Perturb(u64),
}

fn parse_args(args: impl IntoIterator<Item = String>) -> (Mode, ExpOptions, bool) {
    let mut mode = Mode::Verify;
    let mut opts = ExpOptions::full();
    let mut csv = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--verify" => mode = Mode::Verify,
            "--resumed" => mode = Mode::Resumed,
            "--perturb" => {
                let v = it.next().expect("--perturb needs a quantum index");
                mode = Mode::Perturb(v.parse().expect("--perturb must be an integer"));
            }
            "--quick" => {
                let threads = opts.threads;
                opts = ExpOptions::quick();
                opts.threads = threads;
            }
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                opts.time_scale = v.parse().expect("--scale must be an integer");
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                opts.seed = v.parse().expect("--seed must be an integer");
            }
            "--csv" => csv = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: [--verify | --resumed | --perturb N] \
                     [--quick] [--scale N] [--seed N] [--csv]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    (mode, opts, csv)
}

fn main() {
    let (mode, opts, csv) = parse_args(std::env::args().skip(1));
    let mut table = Table::new(
        match mode {
            Mode::Verify => "Replay audit: run-twice bit-identity".to_owned(),
            Mode::Resumed => "Replay audit: checkpoint/resume bit-identity".to_owned(),
            Mode::Perturb(q) => format!("Replay audit: perturbation control (quantum {q})"),
        },
        ["mix", "scheme", "samples", "verdict"],
    );
    let mut violations = 0u32;
    for mix in &opts.workloads {
        for (scheme, cfg) in [
            ("baseline", opts.base_config()),
            ("co-design", opts.base_config().co_design()),
        ] {
            let ropts = ReplayOptions::for_config(&cfg);
            let report = match mode {
                Mode::Verify => replay_verify(&cfg, mix, &ropts),
                Mode::Resumed => replay_verify_resumed(&cfg, mix, &ropts),
                Mode::Perturb(q) => replay_verify_perturbed(&cfg, mix, &ropts, q),
            };
            let (samples, verdict, bad) = match (&mode, report) {
                (_, Err(e)) => (0, format!("run failed: {e}"), true),
                (Mode::Perturb(q), Ok(r)) => summarize_perturbed(*q, &r),
                (_, Ok(r)) => match &r.divergence {
                    None => (r.samples, "clean".to_owned(), false),
                    Some(d) => (r.samples, d.to_string(), true),
                },
            };
            violations += u32::from(bad);
            table.push([
                mix.name.clone(),
                scheme.to_owned(),
                samples.to_string(),
                verdict,
            ]);
        }
    }
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
    if violations > 0 {
        eprintln!("replay audit FAILED: {violations} contract violation(s)");
        std::process::exit(1);
    }
}

/// A perturbed run must diverge, in the `workloads` component, at the
/// quantum where the fault was injected — anything else means the
/// auditor is blind or misattributing.
fn summarize_perturbed(q: u64, r: &ReplayReport) -> (usize, String, bool) {
    match &r.divergence {
        Some(d) if d.quantum == q && d.component == "workloads" => {
            (r.samples, format!("detected: {d}"), false)
        }
        Some(d) => (r.samples, format!("misattributed: {d}"), true),
        None => (r.samples, "UNDETECTED perturbation".to_owned(), true),
    }
}

//! Wall-clock throughput harness for the simulation engines.
//!
//! Runs a fixed scenario matrix once per advancement engine and reports
//! *simulated picoseconds per wall-clock second* — the end-to-end
//! figure of merit for the event-horizon engine. The matrix spans the
//! regimes that matter: the memory-stall-heavy reference scenario at
//! DRAM-clock fidelity (`step` = 1 tCK, where fixed-step pays an
//! iteration per 1.25 ns while event-skip leaps between completions),
//! the same scenario at the default 250 ns pitch, a compute-bound
//! counterpoint (where skipping can at best break even), and
//! mixed/policy variants in between.
//!
//! Results go to stdout as an aligned table and to `BENCH_simwall.json`
//! (hand-formatted; the workspace deliberately has no JSON dependency)
//! for CI artifact upload.
//!
//! Flags:
//!
//! * `--quick` — fewer timing reps (CI smoke);
//! * `--scale N` — time-scale divisor for every scenario (default 256);
//! * `--reps N` — timing repetitions; the median rep wins (default 3);
//! * `--out PATH` — JSON output path (default `BENCH_simwall.json`);
//! * `--threads LIST` — additionally time the 16-cell refresh-policy
//!   sweep at each comma-separated worker count (e.g. `1,2,4`) and
//!   append a `"scaling"` block to the JSON artifact;
//! * `--chaos` — run only the executor chaos smoke: the sweep on four
//!   workers under a seeded [`WorkerFaultPlan`] (one hung worker, one
//!   slow worker) must complete every cell bit-identical to a clean
//!   single-threaded run with ≥ 1 deadline escalation; exits non-zero
//!   on any violation;
//! * `--check` — exit non-zero unless event-skip wins ≥ 3× on the
//!   reference scenario and is no slower than fixed-step (to timing
//!   jitter) everywhere else; additionally enforces the batched
//!   tick-path floors (≥ 2× over the scalar reference walk on the
//!   compute-bound scenarios); with `--threads`, also enforces the
//!   ≥ 1.7× sweep-scaling floor at 4 workers when the host has that
//!   many cores (the JSON records the measured host class either way).
//!
//! Besides the engine table, every run times each scenario on both
//! tick paths (`TickPath::Batched` vs `TickPath::ScalarReference`) and
//! appends a `"hotpath"` block to the artifact: scalar/batched medians,
//! their ratio, and `ns_per_command` — wall nanoseconds per retired
//! DRAM command on the batched path, the profile-stable unit cost that
//! flamegraph diffs are normalized against (see `scripts/profile.sh`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use refsim_core::config::{EngineKind, DEFAULT_STEP};
use refsim_core::executor::{ExecutorOptions, WorkerFaultPlan};
use refsim_core::experiment::Job;
use refsim_core::prelude::*;
use refsim_core::sweep::{run_many_resilient, SweepOptions, SweepReport};
use refsim_dram::backend::TickPath;
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::time::Ps;
use refsim_dram::timing::{FgrMode, Retention};
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

/// The scenario event-skip must win ≥ 3× on under `--check`.
const REFERENCE: &str = "stall_heavy_hifi";

/// Worker count the sweep-scaling floor applies to.
const FLOOR_THREADS: usize = 4;

/// Minimum sweep speedup at [`FLOOR_THREADS`] workers under `--check`.
const SCALING_FLOOR: f64 = 1.7;

/// Minimum batched-over-scalar tick-path speedup on the compute-bound
/// scenarios under `--check`. These are the rows where the hot loop
/// (core issue path + channel tick) is ~95 % of wall time, so the SoA
/// batching must show up here or it is not real.
const HOTPATH_FLOOR: f64 = 2.0;

/// Shard-thread count the intra-run sharding floor applies to (one
/// worker per channel of [`SHARD_CHANNELS`]).
const SHARD_FLOOR_THREADS: u32 = 4;

/// Minimum sharded-over-serial speedup at [`SHARD_FLOOR_THREADS`]
/// workers under `--check` (hosts with at least that many cores).
const SHARD_FLOOR: f64 = 1.5;

/// Channels in the sharding scenario — wide enough that per-channel
/// ticking dominates the step loop and the parallel win is honest.
const SHARD_CHANNELS: u32 = 4;

/// Scenarios the [`HOTPATH_FLOOR`] applies to.
const HOTPATH_FLOORED: [&str; 2] = ["compute_heavy", "mixed"];

/// One DDR3-1600 command clock — the finest pitch at which the
/// controller can schedule distinct commands, i.e. command-level
/// temporal fidelity for completion delivery.
const TCK: Ps = Ps(1_250);

struct Scenario {
    name: &'static str,
    mix: WorkloadMix,
    policy: RefreshPolicyKind,
    step: Ps,
    retention: Retention,
}

fn matrix() -> Vec<Scenario> {
    vec![
        // Reference: a pointer-chasing task per core at DRAM-clock
        // fidelity, on a hot device (32 ms retention — the paper's
        // above-85 °C operating point, so all-bank refresh blocks the
        // channel twice as often). Dependent LLC misses serialize —
        // each core issues a short op burst, then stalls ~100+ ns on
        // the in-flight load — so the machine spends most of its time
        // with every core memory-stalled. The fixed-step engine grinds
        // through ~90 empty 1.25 ns boundaries per stall (hundreds per
        // tRFC block); event-skip leaps straight to the boundary where
        // the next completion is delivered.
        Scenario {
            name: REFERENCE,
            mix: WorkloadMix::from_groups("chase-hifi", &[(Benchmark::Mcf, 2)], "H"),
            policy: RefreshPolicyKind::AllBank,
            step: TCK,
            retention: Retention::Ms32,
        },
        // The same machine at the default 250 ns pitch: completions
        // arrive faster than the step, so there is little to elide and
        // this row pins "no slower than fixed-step" at coarse pitch.
        Scenario {
            name: "stall_heavy",
            mix: WorkloadMix::from_groups("stall-heavy", &[(Benchmark::Stream, 4)], "H"),
            policy: RefreshPolicyKind::AllBank,
            step: DEFAULT_STEP,
            retention: Retention::Ms64,
        },
        // Compute-bound counterpoint: cache-friendly tasks keep both
        // cores busy retiring instructions, so the horizon is almost
        // always the very next step and skipping buys little. This row
        // exists to catch regressions in the skip-decision overhead.
        Scenario {
            name: "compute_heavy",
            mix: WorkloadMix::from_groups("compute-heavy", &[(Benchmark::Povray, 4)], "L"),
            policy: RefreshPolicyKind::AllBank,
            step: DEFAULT_STEP,
            retention: Retention::Ms64,
        },
        Scenario {
            name: "mixed",
            mix: WorkloadMix::from_groups(
                "mixed",
                &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
                "M + L",
            ),
            policy: RefreshPolicyKind::AllBank,
            step: DEFAULT_STEP,
            retention: Retention::Ms64,
        },
        // Elastic refresh reads the utilization estimate every decision,
        // exercising the per-epoch advance caps on the skip path.
        Scenario {
            name: "elastic_stall",
            mix: WorkloadMix::from_groups("elastic-stall", &[(Benchmark::Stream, 4)], "H"),
            policy: RefreshPolicyKind::Elastic,
            step: DEFAULT_STEP,
            retention: Retention::Ms64,
        },
    ]
}

/// One timed run: build, run the span, return wall seconds and the
/// step-loop iteration count.
fn time_run(cfg: &SystemConfig, mix: &WorkloadMix, span: Ps) -> (f64, u64) {
    let mut sys = System::try_new(cfg.clone(), mix).expect("scenario must build");
    let t0 = Instant::now();
    sys.try_run_until(span).expect("scenario must run clean");
    (t0.elapsed().as_secs_f64(), sys.engine_stats().iterations)
}

struct EngineResult {
    wall_s: f64,
    sim_ps_per_s: f64,
    iterations: u64,
}

/// One scenario's tick-path comparison: median walls on the scalar
/// reference walk and the batched SoA path, plus the batched path's
/// per-command unit cost.
struct HotpathRow {
    name: &'static str,
    scalar_wall: f64,
    batched_wall: f64,
    /// Scalar wall over batched wall (higher = batching wins).
    ratio: f64,
    /// Retired DRAM commands over the span (channel 0 == the machine;
    /// the scenario matrix is single-channel).
    commands: u64,
    /// Batched wall nanoseconds per retired DRAM command.
    ns_per_command: f64,
}

/// One timed run returning wall seconds and the retired DRAM command
/// count (the `ns_per_command` denominator).
fn time_commands_run(cfg: &SystemConfig, mix: &WorkloadMix, span: Ps) -> (f64, u64) {
    let mut sys = System::try_new(cfg.clone(), mix).expect("scenario must build");
    let t0 = Instant::now();
    sys.try_run_until(span).expect("scenario must run clean");
    let wall = t0.elapsed().as_secs_f64();
    let commands = sys.collect().controller.commands_total();
    (wall, commands)
}

/// Times one scenario on both tick paths (fixed-step engine: the
/// regime where the per-op hot loop dominates) and returns the medians.
fn bench_hotpath(base: &SystemConfig, sc: &Scenario, span: Ps, reps: u32) -> HotpathRow {
    let mut cfg = base
        .clone()
        .with_refresh(sc.policy)
        .with_step(sc.step)
        .with_engine(EngineKind::FixedStep);
    cfg.retention = sc.retention;
    let median = |cfg: &SystemConfig| -> (f64, u64) {
        let _ = time_commands_run(cfg, &sc.mix, span); // untimed warmup
        let mut commands = 0;
        let mut samples: Vec<f64> = (0..reps.max(1))
            .map(|_| {
                let (w, c) = time_commands_run(cfg, &sc.mix, span);
                commands = c;
                w
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        (samples[samples.len() / 2], commands)
    };
    let (scalar_wall, scalar_commands) =
        median(&cfg.clone().with_tick_path(TickPath::ScalarReference));
    let (batched_wall, commands) = median(&cfg.clone().with_tick_path(TickPath::Batched));
    assert_eq!(
        scalar_commands, commands,
        "{}: tick paths disagreed on retired commands — equivalence bug",
        sc.name
    );
    HotpathRow {
        name: sc.name,
        scalar_wall,
        batched_wall,
        ratio: scalar_wall / batched_wall,
        commands,
        ns_per_command: batched_wall * 1e9 / commands.max(1) as f64,
    }
}

fn bench_engine(
    base: &SystemConfig,
    engine: EngineKind,
    mix: &WorkloadMix,
    span: Ps,
    reps: u32,
) -> EngineResult {
    let cfg = base.clone().with_engine(engine);
    // Untimed warmup rep to populate caches/allocator, then the median
    // of `reps` timed repetitions. The fastest-of-N estimator looked
    // lower-noise but made `--check` flaky on shared hosts: a single
    // lucky fixed-step rep (or an interference burst hitting every
    // event-skip rep) skews the ratio. The median discards the outlier
    // in either direction instead of always crediting it to one side.
    let (_, iterations) = time_run(&cfg, mix, span);
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| time_run(&cfg, mix, span).0)
        .collect();
    samples.sort_by(f64::total_cmp);
    let wall_s = samples[samples.len() / 2];
    EngineResult {
        wall_s,
        sim_ps_per_s: span.as_ps() as f64 / wall_s,
        iterations,
    }
}

/// The 16-cell matrix behind `--threads` and `--chaos`: every refresh
/// policy crossed with a stall-heavy mix on a hot device and a mixed
/// compute/memory mix at nominal retention. Policy diversity gives the
/// work-stealing executor genuinely uneven cell costs; two mixes keep
/// the matrix honest about both regimes.
fn sweep_jobs(scale: u32) -> Vec<Job> {
    let policies = [
        RefreshPolicyKind::NoRefresh,
        RefreshPolicyKind::AllBank,
        RefreshPolicyKind::PerBankRoundRobin,
        RefreshPolicyKind::PerBankSequential,
        RefreshPolicyKind::OooPerBank,
        RefreshPolicyKind::Fgr(FgrMode::X2),
        RefreshPolicyKind::Adaptive,
        RefreshPolicyKind::Elastic,
    ];
    let mixes = [
        (
            WorkloadMix::from_groups("stall-heavy", &[(Benchmark::Stream, 4)], "H"),
            Retention::Ms32,
        ),
        (
            WorkloadMix::from_groups(
                "mixed",
                &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
                "M + L",
            ),
            Retention::Ms64,
        ),
    ];
    let mut jobs = Vec::new();
    for policy in policies {
        for (mix, retention) in &mixes {
            let mut cfg = SystemConfig::table1()
                .with_time_scale(scale)
                .with_refresh(policy);
            cfg.retention = *retention;
            cfg.warmup = cfg.trefw() / 8;
            cfg.measure = cfg.trefw();
            jobs.push(Job {
                cfg,
                mix: mix.clone(),
            });
        }
    }
    jobs
}

/// One sweep-scaling measurement: the median wall over `reps`
/// repetitions at the given worker count, plus the last repetition's
/// report (for result comparison and executor telemetry). Uncached and
/// unpersisted on purpose — the row times the executor, not the disk.
fn time_sweep(jobs: &[Job], threads: usize, reps: u32) -> (f64, SweepReport) {
    let opts = SweepOptions::default();
    let mut samples = Vec::new();
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let rep = run_many_resilient(jobs, threads, &opts).expect("scaling sweep must run clean");
        samples.push(t0.elapsed().as_secs_f64());
        last = Some(rep);
    }
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], last.expect("reps >= 1"))
}

/// A measured `--threads` row. Result Debug strings ride along so every
/// worker count can be checked bit-identical against the baseline.
struct ScalingRow {
    threads: usize,
    wall_s: f64,
    steals: u64,
    requeues: u64,
    results: Vec<String>,
}

fn measure_scaling_row(jobs: &[Job], threads: usize, reps: u32) -> ScalingRow {
    let (wall_s, rep) = time_sweep(jobs, threads, reps);
    ScalingRow {
        threads,
        wall_s,
        steals: rep.executor.steals,
        requeues: rep.executor.requeues,
        results: rep.results.iter().map(|r| format!("{r:?}")).collect(),
    }
}

/// The intra-run sharding scenario: a [`SHARD_CHANNELS`]-channel
/// machine at the default 250 ns pitch on a hot device, streaming on
/// every core. The pitch matters: each step hands the channels one
/// batch of ~µs-scale controller work, so the per-step worker handoff
/// (one atomic release + spin acquire) amortizes to noise and
/// `ShardMode::Channel` can approach one-worker-per-channel scaling.
/// (At DRAM-clock pitch the per-step channel work is smaller than the
/// handoff itself and sharding can only lose — that regime stays on
/// the serial walk.) The serial walk over the same config is the
/// baseline every sharded row must beat *and* bit-match.
fn shard_scenario(scale: u32) -> (SystemConfig, WorkloadMix) {
    let mut cfg = SystemConfig::table1()
        .with_time_scale(scale)
        .with_channels(SHARD_CHANNELS)
        .with_refresh(RefreshPolicyKind::AllBank)
        .with_step(DEFAULT_STEP)
        .with_engine(EngineKind::FixedStep);
    cfg.retention = Retention::Ms32;
    let mix = WorkloadMix::from_groups("shard-stall", &[(Benchmark::Stream, 4)], "H");
    (cfg, mix)
}

/// One timed run of the sharding scenario: wall seconds plus the
/// collected metrics' Debug string, so every worker count can be
/// checked bit-identical against the serial baseline.
fn time_shard_run(cfg: &SystemConfig, mix: &WorkloadMix, span: Ps) -> (f64, String) {
    let mut sys = System::try_new(cfg.clone(), mix).expect("shard scenario must build");
    let t0 = Instant::now();
    sys.try_run_until(span)
        .expect("shard scenario must run clean");
    let wall = t0.elapsed().as_secs_f64();
    (wall, format!("{:?}", sys.collect()))
}

/// A measured sharding row. `threads == 1` is the serial walk
/// (`ShardMode::Serial`, the correctness anchor); other counts run
/// `ShardMode::Channel` with that explicit worker budget.
struct ShardRow {
    threads: u32,
    wall_s: f64,
    result: String,
}

fn measure_shard_row(
    base: &SystemConfig,
    mix: &WorkloadMix,
    span: Ps,
    threads: u32,
    reps: u32,
) -> ShardRow {
    let cfg = if threads <= 1 {
        base.clone()
    } else {
        base.clone().with_shard_threads(threads)
    };
    let (_, mut result) = time_shard_run(&cfg, mix, span); // untimed warmup
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let (w, r) = time_shard_run(&cfg, mix, span);
            result = r;
            w
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    ShardRow {
        threads,
        wall_s: samples[samples.len() / 2],
        result,
    }
}

/// The `--chaos` smoke: runs the sweep matrix clean on one worker, then
/// on four workers with one seeded hung worker (reclaimed twice by the
/// supervisor) and one slow worker, and verifies containment — every
/// cell completes `Ok`, bit-identical to the clean run, and the
/// supervisor logged at least one deadline escalation. Returns the
/// violations (empty = pass).
fn chaos_smoke(scale: u32) -> Vec<String> {
    let jobs = sweep_jobs(scale);
    let clean =
        run_many_resilient(&jobs, 1, &SweepOptions::default()).expect("clean sweep must run");
    let plan = WorkerFaultPlan {
        hung_workers: 1,
        hang_claims: 2,
        slow_workers: 1,
        slow_delay: Duration::from_millis(10),
        ..WorkerFaultPlan::quiet(0xC0DE)
    };
    let opts = SweepOptions {
        executor: ExecutorOptions {
            deadline_floor: Duration::from_millis(100),
            adaptive_factor: 4,
            escalate_factor: 1,
            supervisor_tick: Duration::from_millis(5),
            stall_cap: Duration::from_secs(5),
            max_worker_strikes: 2,
            fault_plan: Some(plan),
            ..ExecutorOptions::default()
        },
        ..SweepOptions::default()
    };
    let rep = run_many_resilient(&jobs, FLOOR_THREADS, &opts).expect("chaos sweep must run");
    println!("chaos executor: {}", rep.executor.summary());
    let mut broken = Vec::new();
    if rep.results.len() != jobs.len() {
        broken.push(format!(
            "only {}/{} cells accounted for",
            rep.results.len(),
            jobs.len()
        ));
    }
    for (i, (chaos, reference)) in rep.results.iter().zip(&clean.results).enumerate() {
        if chaos.is_err() {
            broken.push(format!("cell {i} failed under chaos: {chaos:?}"));
        } else if format!("{chaos:?}") != format!("{reference:?}") {
            broken.push(format!(
                "cell {i} diverged from the clean single-threaded run"
            ));
        }
    }
    if rep.executor.deadline_escalations < 1 {
        broken.push("the hung worker never tripped a deadline escalation".to_owned());
    }
    broken
}

fn main() {
    let mut scale: u32 = 256;
    let mut reps: u32 = 3;
    let mut out = String::from("BENCH_simwall.json");
    let mut check = false;
    let mut threads_list: Vec<usize> = Vec::new();
    // Serial anchor plus one-worker-per-two-channels and one-per-channel.
    let mut shard_threads_list: Vec<u32> = vec![1, 2, SHARD_FLOOR_THREADS];
    let mut chaos = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                // Cut repetitions, not the span: sub-millisecond spans
                // make per-row wall times so short that host jitter can
                // flap the --check floors, and the full matrix already
                // finishes in a couple of seconds.
                reps = 2;
            }
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = v.parse().expect("--scale must be an integer");
            }
            "--reps" => {
                let v = it.next().expect("--reps needs a value");
                reps = v.parse().expect("--reps must be an integer");
            }
            "--out" => out = it.next().expect("--out needs a path"),
            "--threads" => {
                let v = it.next().expect("--threads needs a comma list, e.g. 1,2,4");
                threads_list = v
                    .split(',')
                    .map(|t| {
                        let n: usize = t.trim().parse().expect("--threads takes positive integers");
                        assert!(n > 0, "--threads entries must be positive");
                        n
                    })
                    .collect();
            }
            "--shard-threads" => {
                let v = it
                    .next()
                    .expect("--shard-threads needs a comma list, e.g. 1,2,4");
                shard_threads_list = v
                    .split(',')
                    .map(|t| {
                        let n: u32 = t
                            .trim()
                            .parse()
                            .expect("--shard-threads takes positive integers");
                        assert!(n > 0, "--shard-threads entries must be positive");
                        n
                    })
                    .collect();
            }
            "--chaos" => chaos = true,
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: [--quick] [--scale N] [--reps N] [--out PATH] \
                     [--threads LIST] [--shard-threads LIST] [--chaos] [--check]"
                );
                return;
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }

    if chaos {
        println!("simwall --chaos: sweep matrix under a seeded WorkerFaultPlan, scale {scale}");
        let broken = chaos_smoke(scale);
        if broken.is_empty() {
            println!("chaos smoke passed: all cells bit-identical, hung worker contained");
            return;
        }
        for b in &broken {
            eprintln!("FAIL: {b}");
        }
        std::process::exit(1);
    }

    let base = SystemConfig::table1().with_time_scale(scale);
    // Four retention windows per run: long enough that host jitter is a
    // few percent of each measurement.
    let span = base.trefw() * 4;
    println!(
        "simwall: span {} us per run, scale {scale}, median of {reps} rep(s)\n",
        span.as_ps() / 1_000_000
    );
    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>11} {:>11} {:>14} {:>8}",
        "scenario",
        "step",
        "fixed (s)",
        "skip (s)",
        "fixed iters",
        "skip iters",
        "skip ps/s",
        "speedup"
    );

    let measure = |sc: &Scenario| {
        let mut cfg = base.clone().with_refresh(sc.policy).with_step(sc.step);
        cfg.retention = sc.retention;
        let fixed = bench_engine(&cfg, EngineKind::FixedStep, &sc.mix, span, reps);
        let skip = bench_engine(&cfg, EngineKind::EventSkip, &sc.mix, span, reps);
        let speedup = skip.sim_ps_per_s / fixed.sim_ps_per_s;
        (span, fixed, skip, speedup)
    };
    let print_row = |sc: &Scenario, fixed: &EngineResult, skip: &EngineResult, speedup: f64| {
        println!(
            "{:<18} {:>7}ns {:>12.3} {:>12.3} {:>11} {:>11} {:>14.3e} {:>7.2}x",
            sc.name,
            sc.step.as_ps() as f64 / 1000.0,
            fixed.wall_s,
            skip.wall_s,
            fixed.iterations,
            skip.iterations,
            skip.sim_ps_per_s,
            speedup
        );
    };
    let floor_of = |name: &str| if name == REFERENCE { 3.0 } else { 0.90 };

    let scenarios = matrix();
    let mut rows = Vec::new();
    for sc in &scenarios {
        let (sc_span, fixed, skip, speedup) = measure(sc);
        print_row(sc, &fixed, &skip, speedup);
        rows.push((sc.name, sc.step, sc_span, fixed, skip, speedup));
    }

    if check {
        // A shared host can hand one scenario a burst of interference
        // (CI runners especially); before failing a floor, re-measure
        // that scenario up to twice and keep its best observation. A
        // genuine regression fails all three measurements.
        for (i, sc) in scenarios.iter().enumerate() {
            for attempt in 0..2 {
                if rows[i].5 >= floor_of(sc.name) {
                    break;
                }
                eprintln!(
                    "note: {} speedup {:.2}x below {:.2}x floor; re-measuring ({}/2)",
                    sc.name,
                    rows[i].5,
                    floor_of(sc.name),
                    attempt + 1
                );
                let (sc_span, fixed, skip, speedup) = measure(sc);
                print_row(sc, &fixed, &skip, speedup);
                if speedup > rows[i].5 {
                    rows[i] = (sc.name, sc.step, sc_span, fixed, skip, speedup);
                }
            }
        }
    }

    // ---- tick-path hot-loop comparison -------------------------------
    println!(
        "\nhotpath: scalar reference walk vs batched SoA tick \
         (fixed-step engine, median of {reps} rep(s))"
    );
    println!(
        "{:<18} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "scenario", "scalar (s)", "batched (s)", "ratio", "commands", "ns/cmd"
    );
    let print_hotpath = |row: &HotpathRow| {
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>7.2}x {:>12} {:>10.2}",
            row.name,
            row.scalar_wall,
            row.batched_wall,
            row.ratio,
            row.commands,
            row.ns_per_command
        );
    };
    let mut hotpath_rows: Vec<HotpathRow> = Vec::new();
    for sc in &scenarios {
        let row = bench_hotpath(&base, sc, span, reps);
        print_hotpath(&row);
        hotpath_rows.push(row);
    }
    if check {
        // Same interference policy as the engine floors.
        for (i, sc) in scenarios.iter().enumerate() {
            if !HOTPATH_FLOORED.contains(&sc.name) {
                continue;
            }
            for attempt in 0..2 {
                if hotpath_rows[i].ratio >= HOTPATH_FLOOR {
                    break;
                }
                eprintln!(
                    "note: {} hotpath ratio {:.2}x below {HOTPATH_FLOOR:.2}x floor; \
                     re-measuring ({}/2)",
                    sc.name,
                    hotpath_rows[i].ratio,
                    attempt + 1
                );
                let again = bench_hotpath(&base, sc, span, reps);
                print_hotpath(&again);
                if again.ratio > hotpath_rows[i].ratio {
                    hotpath_rows[i] = again;
                }
            }
        }
    }

    // ---- sweep scaling matrix (--threads) ----------------------------
    let mut scaling_rows: Vec<ScalingRow> = Vec::new();
    let mut scaling_jobs_len = 0;
    if !threads_list.is_empty() {
        let jobs = sweep_jobs(scale);
        scaling_jobs_len = jobs.len();
        println!(
            "\nsweep scaling: {} cells, median of {reps} rep(s) per worker count",
            jobs.len()
        );
        println!(
            "{:<8} {:>10} {:>9} {:>8} {:>9}",
            "threads", "wall (s)", "speedup", "steals", "requeues"
        );
        // Untimed warmup pass (allocator, page cache) so the first
        // measured worker count is not penalized.
        let _ = time_sweep(&jobs, *threads_list.iter().max().expect("non-empty"), 1);
        for &t in &threads_list {
            scaling_rows.push(measure_scaling_row(&jobs, t, reps));
        }
        let baseline_idx = (0..scaling_rows.len())
            .min_by_key(|&i| scaling_rows[i].threads)
            .expect("non-empty");
        // Result assembly must be worker-count-invariant; a divergence
        // is a correctness bug, not jitter, so it fails unconditionally.
        for row in &scaling_rows {
            assert_eq!(
                row.results, scaling_rows[baseline_idx].results,
                "sweep results diverged between {} and {} workers",
                scaling_rows[baseline_idx].threads, row.threads
            );
        }
        if check {
            // Same interference policy as the engine floors: re-measure
            // a failing floor row up to twice, keep the best wall.
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
            for i in 0..scaling_rows.len() {
                if scaling_rows[i].threads != FLOOR_THREADS || cores < FLOOR_THREADS {
                    continue;
                }
                for attempt in 0..2 {
                    let speedup = scaling_rows[baseline_idx].wall_s / scaling_rows[i].wall_s;
                    if speedup >= SCALING_FLOOR {
                        break;
                    }
                    eprintln!(
                        "note: {}-worker speedup {speedup:.2}x below {SCALING_FLOOR:.2}x \
                         floor; re-measuring ({}/2)",
                        FLOOR_THREADS,
                        attempt + 1
                    );
                    let again = measure_scaling_row(&jobs, FLOOR_THREADS, reps);
                    if again.wall_s < scaling_rows[i].wall_s {
                        scaling_rows[i] = again;
                    }
                }
            }
        }
        let baseline_wall = scaling_rows[baseline_idx].wall_s;
        for row in &scaling_rows {
            println!(
                "{:<8} {:>10.3} {:>8.2}x {:>8} {:>9}",
                row.threads,
                row.wall_s,
                baseline_wall / row.wall_s,
                row.steals,
                row.requeues
            );
        }
    }

    // ---- intra-run channel sharding ----------------------------------
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let (shard_cfg, shard_mix) = shard_scenario(scale);
    // Same four-window span as the engine matrix: long enough that
    // host jitter is a few percent of each measurement.
    let shard_span = shard_cfg.trefw() * 4;
    println!(
        "\nsharding: {SHARD_CHANNELS}-channel stall-heavy at {:.0} ns pitch, \
         serial walk vs ShardMode::Channel, median of {reps} rep(s)",
        shard_cfg.step.as_ps() as f64 / 1000.0
    );
    println!("{:<8} {:>10} {:>9}", "threads", "wall (s)", "speedup");
    let mut shard_rows: Vec<ShardRow> = Vec::new();
    for &t in &shard_threads_list {
        shard_rows.push(measure_shard_row(
            &shard_cfg, &shard_mix, shard_span, t, reps,
        ));
    }
    let shard_baseline_idx = (0..shard_rows.len())
        .min_by_key(|&i| shard_rows[i].threads)
        .expect("non-empty");
    // The sharded walk must assemble the *same machine* as the serial
    // walk at every worker count; a divergence is a determinism bug,
    // not jitter, so it fails unconditionally.
    for row in &shard_rows {
        assert_eq!(
            row.result, shard_rows[shard_baseline_idx].result,
            "sharded run diverged from the serial walk at {} shard thread(s)",
            row.threads
        );
    }
    if check {
        // Same interference policy as every other floor: re-measure a
        // failing floor row up to twice, keep the best wall. The floor
        // only applies on hosts with enough cores to park one worker
        // per channel.
        for i in 0..shard_rows.len() {
            if shard_rows[i].threads != SHARD_FLOOR_THREADS
                || host_cores < SHARD_FLOOR_THREADS as usize
            {
                continue;
            }
            for attempt in 0..2 {
                let speedup = shard_rows[shard_baseline_idx].wall_s / shard_rows[i].wall_s;
                if speedup >= SHARD_FLOOR {
                    break;
                }
                eprintln!(
                    "note: {SHARD_FLOOR_THREADS}-thread shard speedup {speedup:.2}x below \
                     {SHARD_FLOOR:.2}x floor; re-measuring ({}/2)",
                    attempt + 1
                );
                let again = measure_shard_row(
                    &shard_cfg,
                    &shard_mix,
                    shard_span,
                    SHARD_FLOOR_THREADS,
                    reps,
                );
                if again.wall_s < shard_rows[i].wall_s {
                    shard_rows[i] = again;
                }
            }
        }
    }
    let shard_baseline_wall = shard_rows[shard_baseline_idx].wall_s;
    for row in &shard_rows {
        println!(
            "{:<8} {:>10.3} {:>8.2}x",
            row.threads,
            row.wall_s,
            shard_baseline_wall / row.wall_s
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"simwall\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"span_ps\": {},", span.as_ps());
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"reference\": \"{REFERENCE}\",");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, (name, step, sc_span, fixed, skip, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"step_ps\": {}, \"span_ps\": {}, \
             \"fixed\": {{\"wall_s\": {:.6}, \"sim_ps_per_s\": {:.1}}}, \
             \"event_skip\": {{\"wall_s\": {:.6}, \"sim_ps_per_s\": {:.1}}}, \
             \"speedup\": {speedup:.4}}}{comma}",
            step.as_ps(),
            sc_span.as_ps(),
            fixed.wall_s,
            fixed.sim_ps_per_s,
            skip.wall_s,
            skip.sim_ps_per_s
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"hotpath\": {{");
    let _ = writeln!(json, "    \"reps\": {reps},");
    let _ = writeln!(json, "    \"floor\": {HOTPATH_FLOOR},");
    let _ = writeln!(
        json,
        "    \"floored_scenarios\": [{}],",
        HOTPATH_FLOORED
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "    \"rows\": [");
    for (i, row) in hotpath_rows.iter().enumerate() {
        let comma = if i + 1 < hotpath_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"name\": \"{}\", \"scalar_wall_s\": {:.6}, \"batched_wall_s\": {:.6}, \
             \"ratio\": {:.4}, \"commands\": {}, \"ns_per_command\": {:.2}}}{comma}",
            row.name,
            row.scalar_wall,
            row.batched_wall,
            row.ratio,
            row.commands,
            row.ns_per_command
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    if !scaling_rows.is_empty() {
        let baseline_wall = scaling_rows
            .iter()
            .min_by_key(|r| r.threads)
            .expect("non-empty")
            .wall_s;
        let _ = writeln!(json, "  \"scaling\": {{");
        let _ = writeln!(json, "    \"jobs\": {scaling_jobs_len},");
        let _ = writeln!(json, "    \"reps\": {reps},");
        let _ = writeln!(json, "    \"floor_threads\": {FLOOR_THREADS},");
        let _ = writeln!(json, "    \"floor\": {SCALING_FLOOR},");
        // The floor is calibrated against a host class, not wished onto
        // whatever machine happens to run CI: record the measured core
        // count, and say outright when the floor cannot apply here.
        let _ = writeln!(json, "    \"host_cores\": {host_cores},");
        let _ = writeln!(
            json,
            "    \"floor_skipped\": {},",
            host_cores < FLOOR_THREADS
        );
        if host_cores < FLOOR_THREADS {
            let _ = writeln!(
                json,
                "    \"note\": \"host has {host_cores} core(s), below the \
                 {FLOOR_THREADS}-worker floor class; speedups are recorded but not gated\","
            );
        }
        let _ = writeln!(json, "    \"rows\": [");
        for (i, row) in scaling_rows.iter().enumerate() {
            let comma = if i + 1 < scaling_rows.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      {{\"threads\": {}, \"wall_s\": {:.6}, \"speedup\": {:.4}, \
                 \"steals\": {}, \"requeues\": {}}}{comma}",
                row.threads,
                row.wall_s,
                baseline_wall / row.wall_s,
                row.steals,
                row.requeues
            );
        }
        let _ = writeln!(json, "    ]");
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"sharding\": {{");
    let _ = writeln!(json, "    \"channels\": {SHARD_CHANNELS},");
    let _ = writeln!(json, "    \"span_ps\": {},", shard_span.as_ps());
    let _ = writeln!(json, "    \"reps\": {reps},");
    let _ = writeln!(json, "    \"floor_threads\": {SHARD_FLOOR_THREADS},");
    let _ = writeln!(json, "    \"floor\": {SHARD_FLOOR},");
    // Same host-class honesty as the scaling block: record the core
    // count and say outright when the floor cannot apply here.
    let _ = writeln!(json, "    \"host_cores\": {host_cores},");
    let _ = writeln!(
        json,
        "    \"floor_skipped\": {},",
        host_cores < SHARD_FLOOR_THREADS as usize
    );
    if host_cores < SHARD_FLOOR_THREADS as usize {
        let _ = writeln!(
            json,
            "    \"note\": \"host has {host_cores} core(s), below the \
             {SHARD_FLOOR_THREADS}-thread floor class; speedups are recorded but not gated\","
        );
    }
    let _ = writeln!(json, "    \"rows\": [");
    for (i, row) in shard_rows.iter().enumerate() {
        let comma = if i + 1 < shard_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"threads\": {}, \"wall_s\": {:.6}, \"speedup\": {:.4}}}{comma}",
            row.threads,
            row.wall_s,
            shard_baseline_wall / row.wall_s
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    // Atomic publish so a concurrent reader (or a crash mid-write)
    // never observes a truncated artifact.
    refsim_core::vfs::write_atomic(
        &refsim_core::vfs::StdVfs,
        std::path::Path::new(&out),
        json.as_bytes(),
    )
    .expect("publish JSON artifact");
    println!("\nwrote {out}");

    if check {
        let mut failed = false;
        for (name, _, _, _, _, speedup) in &rows {
            // Reference must clear 3×; elsewhere event-skip must not be
            // slower than fixed-step (0.90 floor absorbs timer jitter on
            // rows where the honest expectation is parity).
            let floor = floor_of(name);
            if *speedup < floor {
                eprintln!("FAIL: {name} speedup {speedup:.2}x is below the {floor:.2}x floor");
                failed = true;
            }
        }
        for row in &hotpath_rows {
            if !HOTPATH_FLOORED.contains(&row.name) {
                continue;
            }
            if row.ratio < HOTPATH_FLOOR {
                eprintln!(
                    "FAIL: {} batched tick path is only {:.2}x over the scalar \
                     reference, below the {HOTPATH_FLOOR:.2}x floor",
                    row.name, row.ratio
                );
                failed = true;
            }
        }
        if !scaling_rows.is_empty() {
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
            let baseline_wall = scaling_rows
                .iter()
                .min_by_key(|r| r.threads)
                .expect("non-empty")
                .wall_s;
            for row in &scaling_rows {
                if row.threads != FLOOR_THREADS {
                    continue;
                }
                let speedup = baseline_wall / row.wall_s;
                if cores < FLOOR_THREADS {
                    eprintln!(
                        "note: host has {cores} core(s); skipping the {FLOOR_THREADS}-worker \
                         {SCALING_FLOOR:.2}x scaling floor"
                    );
                } else if speedup < SCALING_FLOOR {
                    eprintln!(
                        "FAIL: sweep speedup {speedup:.2}x at {FLOOR_THREADS} workers is \
                         below the {SCALING_FLOOR:.2}x floor"
                    );
                    failed = true;
                }
            }
        }
        for row in &shard_rows {
            if row.threads != SHARD_FLOOR_THREADS {
                continue;
            }
            let speedup = shard_baseline_wall / row.wall_s;
            if host_cores < SHARD_FLOOR_THREADS as usize {
                eprintln!(
                    "note: host has {host_cores} core(s); skipping the \
                     {SHARD_FLOOR_THREADS}-thread {SHARD_FLOOR:.2}x sharding floor"
                );
            } else if speedup < SHARD_FLOOR {
                eprintln!(
                    "FAIL: sharded speedup {speedup:.2}x at {SHARD_FLOOR_THREADS} threads is \
                     below the {SHARD_FLOOR:.2}x floor"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: event-skip >=3x on {REFERENCE}, no slower elsewhere; \
             batched tick >= {HOTPATH_FLOOR}x on {HOTPATH_FLOORED:?}; \
             sharded walk bit-identical to serial"
        );
    }
}

//! Wall-clock throughput harness for the simulation engines.
//!
//! Runs a fixed scenario matrix once per advancement engine and reports
//! *simulated picoseconds per wall-clock second* — the end-to-end
//! figure of merit for the event-horizon engine. The matrix spans the
//! regimes that matter: the memory-stall-heavy reference scenario at
//! DRAM-clock fidelity (`step` = 1 tCK, where fixed-step pays an
//! iteration per 1.25 ns while event-skip leaps between completions),
//! the same scenario at the default 250 ns pitch, a compute-bound
//! counterpoint (where skipping can at best break even), and
//! mixed/policy variants in between.
//!
//! Results go to stdout as an aligned table and to `BENCH_simwall.json`
//! (hand-formatted; the workspace deliberately has no JSON dependency)
//! for CI artifact upload.
//!
//! Flags:
//!
//! * `--quick` — fewer timing reps (CI smoke);
//! * `--scale N` — time-scale divisor for every scenario (default 256);
//! * `--reps N` — timing repetitions; the median rep wins (default 3);
//! * `--out PATH` — JSON output path (default `BENCH_simwall.json`);
//! * `--check` — exit non-zero unless event-skip wins ≥ 3× on the
//!   reference scenario and is no slower than fixed-step (to timing
//!   jitter) everywhere else.

use std::fmt::Write as _;
use std::time::Instant;

use refsim_core::config::{EngineKind, DEFAULT_STEP};
use refsim_core::prelude::*;
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::time::Ps;
use refsim_dram::timing::Retention;
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

/// The scenario event-skip must win ≥ 3× on under `--check`.
const REFERENCE: &str = "stall_heavy_hifi";

/// One DDR3-1600 command clock — the finest pitch at which the
/// controller can schedule distinct commands, i.e. command-level
/// temporal fidelity for completion delivery.
const TCK: Ps = Ps(1_250);

struct Scenario {
    name: &'static str,
    mix: WorkloadMix,
    policy: RefreshPolicyKind,
    step: Ps,
    retention: Retention,
}

fn matrix() -> Vec<Scenario> {
    vec![
        // Reference: a pointer-chasing task per core at DRAM-clock
        // fidelity, on a hot device (32 ms retention — the paper's
        // above-85 °C operating point, so all-bank refresh blocks the
        // channel twice as often). Dependent LLC misses serialize —
        // each core issues a short op burst, then stalls ~100+ ns on
        // the in-flight load — so the machine spends most of its time
        // with every core memory-stalled. The fixed-step engine grinds
        // through ~90 empty 1.25 ns boundaries per stall (hundreds per
        // tRFC block); event-skip leaps straight to the boundary where
        // the next completion is delivered.
        Scenario {
            name: REFERENCE,
            mix: WorkloadMix::from_groups("chase-hifi", &[(Benchmark::Mcf, 2)], "H"),
            policy: RefreshPolicyKind::AllBank,
            step: TCK,
            retention: Retention::Ms32,
        },
        // The same machine at the default 250 ns pitch: completions
        // arrive faster than the step, so there is little to elide and
        // this row pins "no slower than fixed-step" at coarse pitch.
        Scenario {
            name: "stall_heavy",
            mix: WorkloadMix::from_groups("stall-heavy", &[(Benchmark::Stream, 4)], "H"),
            policy: RefreshPolicyKind::AllBank,
            step: DEFAULT_STEP,
            retention: Retention::Ms64,
        },
        // Compute-bound counterpoint: cache-friendly tasks keep both
        // cores busy retiring instructions, so the horizon is almost
        // always the very next step and skipping buys little. This row
        // exists to catch regressions in the skip-decision overhead.
        Scenario {
            name: "compute_heavy",
            mix: WorkloadMix::from_groups("compute-heavy", &[(Benchmark::Povray, 4)], "L"),
            policy: RefreshPolicyKind::AllBank,
            step: DEFAULT_STEP,
            retention: Retention::Ms64,
        },
        Scenario {
            name: "mixed",
            mix: WorkloadMix::from_groups(
                "mixed",
                &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
                "M + L",
            ),
            policy: RefreshPolicyKind::AllBank,
            step: DEFAULT_STEP,
            retention: Retention::Ms64,
        },
        // Elastic refresh reads the utilization estimate every decision,
        // exercising the per-epoch advance caps on the skip path.
        Scenario {
            name: "elastic_stall",
            mix: WorkloadMix::from_groups("elastic-stall", &[(Benchmark::Stream, 4)], "H"),
            policy: RefreshPolicyKind::Elastic,
            step: DEFAULT_STEP,
            retention: Retention::Ms64,
        },
    ]
}

/// One timed run: build, run the span, return wall seconds and the
/// step-loop iteration count.
fn time_run(cfg: &SystemConfig, mix: &WorkloadMix, span: Ps) -> (f64, u64) {
    let mut sys = System::try_new(cfg.clone(), mix).expect("scenario must build");
    let t0 = Instant::now();
    sys.try_run_until(span).expect("scenario must run clean");
    (t0.elapsed().as_secs_f64(), sys.engine_stats().iterations)
}

struct EngineResult {
    wall_s: f64,
    sim_ps_per_s: f64,
    iterations: u64,
}

fn bench_engine(
    base: &SystemConfig,
    engine: EngineKind,
    mix: &WorkloadMix,
    span: Ps,
    reps: u32,
) -> EngineResult {
    let cfg = base.clone().with_engine(engine);
    // Untimed warmup rep to populate caches/allocator, then the median
    // of `reps` timed repetitions. The fastest-of-N estimator looked
    // lower-noise but made `--check` flaky on shared hosts: a single
    // lucky fixed-step rep (or an interference burst hitting every
    // event-skip rep) skews the ratio. The median discards the outlier
    // in either direction instead of always crediting it to one side.
    let (_, iterations) = time_run(&cfg, mix, span);
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| time_run(&cfg, mix, span).0)
        .collect();
    samples.sort_by(f64::total_cmp);
    let wall_s = samples[samples.len() / 2];
    EngineResult {
        wall_s,
        sim_ps_per_s: span.as_ps() as f64 / wall_s,
        iterations,
    }
}

fn main() {
    let mut scale: u32 = 256;
    let mut reps: u32 = 3;
    let mut out = String::from("BENCH_simwall.json");
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                // Cut repetitions, not the span: sub-millisecond spans
                // make per-row wall times so short that host jitter can
                // flap the --check floors, and the full matrix already
                // finishes in a couple of seconds.
                reps = 2;
            }
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = v.parse().expect("--scale must be an integer");
            }
            "--reps" => {
                let v = it.next().expect("--reps needs a value");
                reps = v.parse().expect("--reps must be an integer");
            }
            "--out" => out = it.next().expect("--out needs a path"),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("flags: [--quick] [--scale N] [--reps N] [--out PATH] [--check]");
                return;
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }

    let base = SystemConfig::table1().with_time_scale(scale);
    // Four retention windows per run: long enough that host jitter is a
    // few percent of each measurement.
    let span = base.trefw() * 4;
    println!(
        "simwall: span {} us per run, scale {scale}, median of {reps} rep(s)\n",
        span.as_ps() / 1_000_000
    );
    println!(
        "{:<18} {:>9} {:>12} {:>12} {:>11} {:>11} {:>14} {:>8}",
        "scenario",
        "step",
        "fixed (s)",
        "skip (s)",
        "fixed iters",
        "skip iters",
        "skip ps/s",
        "speedup"
    );

    let measure = |sc: &Scenario| {
        let mut cfg = base.clone().with_refresh(sc.policy).with_step(sc.step);
        cfg.retention = sc.retention;
        let fixed = bench_engine(&cfg, EngineKind::FixedStep, &sc.mix, span, reps);
        let skip = bench_engine(&cfg, EngineKind::EventSkip, &sc.mix, span, reps);
        let speedup = skip.sim_ps_per_s / fixed.sim_ps_per_s;
        (span, fixed, skip, speedup)
    };
    let print_row = |sc: &Scenario, fixed: &EngineResult, skip: &EngineResult, speedup: f64| {
        println!(
            "{:<18} {:>7}ns {:>12.3} {:>12.3} {:>11} {:>11} {:>14.3e} {:>7.2}x",
            sc.name,
            sc.step.as_ps() as f64 / 1000.0,
            fixed.wall_s,
            skip.wall_s,
            fixed.iterations,
            skip.iterations,
            skip.sim_ps_per_s,
            speedup
        );
    };
    let floor_of = |name: &str| if name == REFERENCE { 3.0 } else { 0.90 };

    let scenarios = matrix();
    let mut rows = Vec::new();
    for sc in &scenarios {
        let (sc_span, fixed, skip, speedup) = measure(sc);
        print_row(sc, &fixed, &skip, speedup);
        rows.push((sc.name, sc.step, sc_span, fixed, skip, speedup));
    }

    if check {
        // A shared host can hand one scenario a burst of interference
        // (CI runners especially); before failing a floor, re-measure
        // that scenario up to twice and keep its best observation. A
        // genuine regression fails all three measurements.
        for (i, sc) in scenarios.iter().enumerate() {
            for attempt in 0..2 {
                if rows[i].5 >= floor_of(sc.name) {
                    break;
                }
                eprintln!(
                    "note: {} speedup {:.2}x below {:.2}x floor; re-measuring ({}/2)",
                    sc.name,
                    rows[i].5,
                    floor_of(sc.name),
                    attempt + 1
                );
                let (sc_span, fixed, skip, speedup) = measure(sc);
                print_row(sc, &fixed, &skip, speedup);
                if speedup > rows[i].5 {
                    rows[i] = (sc.name, sc.step, sc_span, fixed, skip, speedup);
                }
            }
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"simwall\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"span_ps\": {},", span.as_ps());
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"reference\": \"{REFERENCE}\",");
    let _ = writeln!(json, "  \"scenarios\": [");
    for (i, (name, step, sc_span, fixed, skip, speedup)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"step_ps\": {}, \"span_ps\": {}, \
             \"fixed\": {{\"wall_s\": {:.6}, \"sim_ps_per_s\": {:.1}}}, \
             \"event_skip\": {{\"wall_s\": {:.6}, \"sim_ps_per_s\": {:.1}}}, \
             \"speedup\": {speedup:.4}}}{comma}",
            step.as_ps(),
            sc_span.as_ps(),
            fixed.wall_s,
            fixed.sim_ps_per_s,
            skip.wall_s,
            skip.sim_ps_per_s
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    // Atomic publish so a concurrent reader (or a crash mid-write)
    // never observes a truncated artifact.
    refsim_core::vfs::write_atomic(
        &refsim_core::vfs::StdVfs,
        std::path::Path::new(&out),
        json.as_bytes(),
    )
    .expect("publish JSON artifact");
    println!("\nwrote {out}");

    if check {
        let mut failed = false;
        for (name, _, _, _, _, speedup) in &rows {
            // Reference must clear 3×; elsewhere event-skip must not be
            // slower than fixed-step (0.90 floor absorbs timer jitter on
            // rows where the honest expectation is parity).
            let floor = floor_of(name);
            if *speedup < floor {
                eprintln!("FAIL: {name} speedup {speedup:.2}x is below the {floor:.2}x floor");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("check passed: event-skip >=3x on {REFERENCE}, no slower elsewhere");
    }
}

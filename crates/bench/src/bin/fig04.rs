//! Regenerates Figure 4: IPC with tasks confined to k banks per rank and
//! all tRFC overheads removed, normalized to the 8-bank all-bank baseline.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::figure04(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

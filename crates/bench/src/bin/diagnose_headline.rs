//! Diagnostic: headline scheme comparison with per-run controller and
//! scheduler detail — useful when tuning workload models or policies.
//! Not part of the figure set; see `all_figures` for the evaluation.

use refsim_core::experiment::{run_many, ExpOptions, Job, Scheme};
use refsim_workloads::mix::by_name;

fn main() {
    let mut opts = ExpOptions::full();
    if std::env::args().any(|a| a == "--quick") {
        opts.time_scale = 128;
        opts.measure_windows = 1;
    }
    let base = opts.base_config();
    let schemes = [
        Scheme::NoRefresh,
        Scheme::AllBank,
        Scheme::PerBank,
        Scheme::OooPerBank,
        Scheme::Adaptive,
        Scheme::CoDesign,
    ];
    for wl in ["WL-1", "WL-5", "WL-8", "WL-4"] {
        let mix = by_name(wl).unwrap();
        let jobs: Vec<Job> = schemes
            .iter()
            .map(|s| Job {
                cfg: s.apply(&base),
                mix: mix.clone(),
            })
            .collect();
        let t0 = std::time::Instant::now();
        let runs = run_many(&jobs, opts.threads);
        let ab = &runs[1];
        println!("\n== {wl} ({}) [{:?}] ==", mix.category, t0.elapsed());
        for (s, r) in schemes.iter().zip(&runs) {
            println!(
                "{:14} hmean IPC {:.4}  vs all-bank {:+.2}%  lat {:7.1} cyc  rowhit {:4.1}%  refpb {:6} refab {:5} dodges {:6} mpki {:5.1}",
                s.label(),
                r.hmean_ipc(),
                (r.speedup_over(ab) - 1.0) * 100.0,
                r.avg_read_latency_cycles(),
                r.controller.row_hit_rate().unwrap_or(0.0) * 100.0,
                r.controller.refreshes_pb,
                r.controller.refreshes_ab,
                r.sched.refresh_dodges,
                r.mpki(),
            );
        }
    }
}

//! Regenerates Figure 5: percentage of each benchmark's footprint that a
//! bank-0-first allocator can place on a single bank, per density.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::figure05();
    cli.emit(&t);
    cli.finish();
}

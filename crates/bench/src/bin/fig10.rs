//! Regenerates Figure 10: per-bank refresh and the co-design vs all-bank
//! refresh across Table 2's workloads and 16/24/32 Gb densities.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let tables = refsim_core::experiment::figure10(&cli.opts);
    cli.emit_all(&tables);
    cli.finish();
}

//! Runs the complete evaluation — every table and figure — and prints
//! markdown suitable for EXPERIMENTS.md.

use refsim_core::experiment as exp;

fn main() {
    let cli = refsim_bench::Cli::parse();
    let o = &cli.opts;
    let started = std::time::Instant::now();
    println!("# refsim — full evaluation run\n");
    println!(
        "time-scale 1/{}, {} workloads, {} measured window(s), seed {:#x}\n",
        o.time_scale,
        o.workloads.len(),
        o.measure_windows,
        o.seed
    );
    let sections: Vec<(String, Vec<refsim_core::report::Table>)> = vec![
        ("Table 1".into(), vec![exp::table01(o)]),
        ("Table 2".into(), vec![exp::table02(o)]),
        ("Figure 3".into(), vec![exp::figure03(o)]),
        ("Figure 4".into(), vec![exp::figure04(o)]),
        ("Figure 5".into(), vec![exp::figure05()]),
        ("Figure 10".into(), exp::figure10(o)),
        ("Figure 11".into(), vec![exp::figure11(o)]),
        ("Figure 12".into(), vec![exp::figure12(o)]),
        ("Figure 13".into(), exp::figure13(o)),
        ("Figure 14".into(), vec![exp::figure14(o)]),
        ("Figure 15".into(), vec![exp::figure15(o)]),
        ("Ablation".into(), vec![exp::ablation(o)]),
    ];
    for (name, tables) in &sections {
        eprintln!("[{:8.1?}] {name} done", started.elapsed());
        for t in tables {
            println!("{}", t.to_markdown());
        }
    }
    eprintln!("total: {:?}", started.elapsed());
}

//! Runs the complete evaluation — every table and figure — and prints
//! markdown suitable for EXPERIMENTS.md.
//!
//! Unlike the single-figure binaries, this one runs in two passes over a
//! shared [`RunPool`]: the first pass only *collects* every job each
//! figure would run, the pool executes the deduplicated union on one
//! thread pool (serving repeats from the run cache when enabled), and the
//! second pass renders each figure from the shared result map.

use std::sync::Arc;

use refsim_core::experiment::{self as exp, ExpOptions, RunPool};
use refsim_core::report::Table;

fn sections(o: &ExpOptions) -> Vec<(String, Vec<Table>)> {
    vec![
        ("Table 1".into(), vec![exp::table01(o)]),
        ("Table 2".into(), vec![exp::table02(o)]),
        ("Figure 3".into(), vec![exp::figure03(o)]),
        ("Figure 4".into(), vec![exp::figure04(o)]),
        ("Figure 5".into(), vec![exp::figure05()]),
        ("Figure 10".into(), exp::figure10(o)),
        ("Figure 11".into(), vec![exp::figure11(o)]),
        ("Figure 12".into(), vec![exp::figure12(o)]),
        ("Figure 13".into(), exp::figure13(o)),
        ("Figure 14".into(), vec![exp::figure14(o)]),
        ("Figure 15".into(), vec![exp::figure15(o)]),
        ("Ablation".into(), vec![exp::ablation(o)]),
    ]
}

fn main() {
    let mut cli = refsim_bench::Cli::parse();
    let pool = Arc::new(RunPool::new());
    cli.opts.pool = Some(Arc::clone(&pool));
    let o = &cli.opts;
    let started = std::time::Instant::now();

    // Pass 1: every figure registers its jobs; tables are placeholders.
    let _ = sections(o);
    eprintln!(
        "[{:8.1?}] collected {} unique jobs across all figures",
        started.elapsed(),
        pool.unique_jobs()
    );

    // Execute the deduplicated union on one shared pool.
    pool.execute(o);
    eprintln!("[{:8.1?}] shared pool drained", started.elapsed());

    // Pass 2: render every figure from the shared result map.
    println!("# refsim — full evaluation run\n");
    println!(
        "time-scale 1/{}, {} workloads, {} measured window(s), seed {:#x}\n",
        o.time_scale,
        o.workloads.len(),
        o.measure_windows,
        o.seed
    );
    for (name, tables) in &sections(o) {
        eprintln!("[{:8.1?}] {name} done", started.elapsed());
        for t in tables {
            println!("{}", t.to_markdown());
        }
    }
    eprintln!("total: {:?}", started.elapsed());
    cli.finish();
}

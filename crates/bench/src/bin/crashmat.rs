//! Crash-matrix CLI: enumerate kill points across every persistence
//! surface and prove the durability contract holds at each one.
//!
//! Runs the representative resilient sweep of
//! `refsim_core::vfs::crashtest` behind a fault-injecting filesystem,
//! crashing (or degrading) it at every I/O operation index, then
//! scanning the aftermath and restarting on a clean filesystem. Any
//! contract violation — a panic, a torn file at a final path, a
//! non-bit-identical restart, a quarantined healthy job — fails the
//! run and prints a reproducer command line.
//!
//! * default — exhaustive enumeration (stride 1) of the `crash`,
//!   `enospc`, `torn-write`, `interrupt`, and `corrupt-write` modes;
//! * `--quick` — the CI configuration: a coarse stride of the same
//!   modes, sized to finish in well under a minute;
//! * `--mode M[,M...]` — restrict to specific modes;
//! * `--stride N` — test every Nth operation index;
//! * `--point K` — test exactly one crash point (reproducer mode);
//! * `--negative-control` — defeat rename atomicity on the metrics
//!   surface (`crash-defeat-rename`) at every metrics-publish rename
//!   and *require* the harness to flag it — proof the scan has teeth;
//! * `--seed S` — scenario + fault-schedule seed;
//! * `--report PATH` — append the full per-point log to a text file
//!   (written atomically);
//! * `--dir PATH` — working directory root (default: a per-process
//!   directory under the system temp dir).
//!
//! Exits non-zero on any violation, or — under `--negative-control` —
//! when the deliberately broken rename goes *undetected*.

use std::fmt::Write as _;
use std::path::PathBuf;

use refsim_core::report::Table;
use refsim_core::vfs::crashtest::{
    enumerate, probe, reference_rows, run_point, CrashMatrix, CrashScenario, FaultMode, Verdict,
};
use refsim_core::vfs::{self, IoOp, StdVfs};

#[derive(Debug)]
struct Args {
    modes: Vec<FaultMode>,
    stride: u64,
    point: Option<u64>,
    seed: u64,
    negative_control: bool,
    report: Option<String>,
    dir: Option<PathBuf>,
    scenario: Option<String>,
}

const DEFAULT_MODES: [FaultMode; 5] = [
    FaultMode::Crash,
    FaultMode::Enospc,
    FaultMode::TornWrite,
    FaultMode::Interrupt,
    FaultMode::CorruptWrite,
];

/// `--quick` tests roughly this many points per mode.
const QUICK_POINTS: u64 = 10;

fn parse_args(args: impl IntoIterator<Item = String>) -> Args {
    let mut out = Args {
        modes: DEFAULT_MODES.to_vec(),
        stride: 1,
        point: None,
        seed: 42,
        negative_control: false,
        report: None,
        dir: None,
        scenario: None,
    };
    let mut quick = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--mode" => {
                let v = it.next().expect("--mode needs a value");
                out.modes = v
                    .split(',')
                    .map(|s| {
                        FaultMode::parse(s.trim())
                            .unwrap_or_else(|| panic!("unknown mode `{s}`; try --help"))
                    })
                    .collect();
            }
            "--stride" => {
                let v = it.next().expect("--stride needs a value");
                out.stride = v.parse().expect("--stride must be an integer");
            }
            "--point" => {
                let v = it.next().expect("--point needs a value");
                out.point = Some(v.parse().expect("--point must be an integer"));
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                out.seed = v.parse().expect("--seed must be an integer");
            }
            "--negative-control" => out.negative_control = true,
            "--report" => out.report = Some(it.next().expect("--report needs a path")),
            "--dir" => out.dir = Some(PathBuf::from(it.next().expect("--dir needs a path"))),
            "--scenario" => {
                out.scenario = Some(it.next().expect("--scenario needs tiny|dense"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: [--quick] [--mode M[,M...]] [--stride N] [--point K] [--seed S] \
                     [--negative-control] [--report PATH] [--dir PATH] [--scenario tiny|dense]\n\
                     modes: crash crash-defeat-rename enospc torn-write interrupt corrupt-write"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    if quick {
        out.stride = 0; // resolved against the probed op count below
    }
    out
}

fn reproducer(scenario: &str, seed: u64, mode: FaultMode, k: u64) -> String {
    format!(
        "cargo run --release --bin crashmat -- --scenario {scenario} --mode {mode} \
         --point {k} --seed {seed}"
    )
}

fn log_matrix(log: &mut String, scenario: &str, seed: u64, matrix: &CrashMatrix) {
    let _ = writeln!(log, "{}", matrix.summary());
    for p in &matrix.points {
        match &p.verdict {
            Verdict::Resumed => {}
            Verdict::Degraded(why) => {
                let _ = writeln!(log, "  op {:>4} degraded: {why}", p.index);
            }
            Verdict::Violation(why) => {
                let _ = writeln!(
                    log,
                    "  op {:>4} VIOLATION: {why}\n    reproduce: {}",
                    p.index,
                    reproducer(scenario, seed, matrix.mode, p.index)
                );
            }
        }
    }
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    // Exhaustive (stride 1) runs enumerate the dense scenario — a few
    // hundred crash points; everything else uses the tiny one. An
    // explicit --scenario wins, so reproducer lines replay faithfully.
    let scenario = args.scenario.clone().unwrap_or_else(|| {
        if args.stride == 1 && args.point.is_none() && !args.negative_control {
            "dense".to_owned()
        } else {
            "tiny".to_owned()
        }
    });
    let scn = match scenario.as_str() {
        "tiny" => CrashScenario::tiny(args.seed),
        "dense" => CrashScenario::dense(args.seed),
        other => panic!("unknown scenario `{other}`; expected tiny or dense"),
    };
    let root = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("refsim-crashmat-{}", std::process::id()))
    });
    let mut log = String::new();
    let mut failed = false;

    if args.negative_control {
        // Defeat rename atomicity on the metrics surface and crash on
        // every metrics-publish rename: the scan MUST flag at least one
        // torn destination, or the whole matrix is security theater.
        let reference = reference_rows(&scn).expect("reference sweep");
        let (_, oplog) = probe(&scn, &root).expect("probe sweep");
        let renames: Vec<u64> = oplog
            .iter()
            .filter(|r| r.op == IoOp::Rename && r.path.to_string_lossy().ends_with(".metrics"))
            .map(|r| r.index)
            .collect();
        assert!(
            !renames.is_empty(),
            "the scenario never published metrics via rename"
        );
        let mut detected = 0usize;
        for &k in &renames {
            let p = run_point(&scn, &root, k, FaultMode::CrashDefeatRename, &reference);
            if let Verdict::Violation(why) = &p.verdict {
                detected += 1;
                let _ = writeln!(log, "op {k} detected the defeated rename: {why}");
            }
        }
        let _ = writeln!(
            log,
            "negative control: {detected}/{} defeated renames detected",
            renames.len()
        );
        print!("{log}");
        if detected == 0 {
            eprintln!("FAIL: a non-atomic rename on the metrics surface went undetected");
            std::process::exit(1);
        }
        write_report(&args, &log);
        return;
    }

    if let Some(k) = args.point {
        // Reproducer mode: one point, full detail.
        let reference = reference_rows(&scn).expect("reference sweep");
        for &mode in &args.modes {
            let p = run_point(&scn, &root, k, mode, &reference);
            println!(
                "mode {mode} op {k}: {:?}\n  op there: {:?}",
                p.verdict, p.op
            );
            if matches!(p.verdict, Verdict::Violation(_)) {
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }

    let mut table = Table::new(
        format!("Crash matrix (seed {})", args.seed),
        ["mode", "ops", "points", "clean", "degraded", "violations"],
    );
    for &mode in &args.modes {
        let stride = if args.stride == 0 {
            // --quick: size the stride off a probe so every mode tests
            // about QUICK_POINTS indices across the full range.
            let (total, _) = probe(&scn, &root).expect("probe sweep");
            (total / QUICK_POINTS).max(1)
        } else {
            args.stride
        };
        let matrix = enumerate(&scn, &root, stride, mode).expect("enumerate");
        log_matrix(&mut log, &scenario, args.seed, &matrix);
        let (mut clean, mut degraded) = (0usize, 0usize);
        for p in &matrix.points {
            match p.verdict {
                Verdict::Resumed => clean += 1,
                Verdict::Degraded(_) => degraded += 1,
                Verdict::Violation(_) => {}
            }
        }
        let violations = matrix.violations().len();
        if violations > 0 {
            failed = true;
        }
        table.push([
            mode.to_string(),
            matrix.total_ops.to_string(),
            matrix.points.len().to_string(),
            clean.to_string(),
            degraded.to_string(),
            violations.to_string(),
        ]);
    }
    println!("{table}");
    print!("{log}");
    write_report(&args, &log);
    let _ = std::fs::remove_dir_all(&root);
    if failed {
        eprintln!("crash matrix FAILED: see reproducer lines above");
        std::process::exit(1);
    }
}

fn write_report(args: &Args, log: &str) {
    if let Some(path) = &args.report {
        vfs::write_atomic(&StdVfs, std::path::Path::new(path), log.as_bytes())
            .expect("write crash-matrix report");
        eprintln!("report written to {path}");
    }
}

//! Regenerates Figure 13: the 32 ms-retention (> 85 °C) study.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let tables = refsim_core::experiment::figure13(&cli.opts);
    cli.emit_all(&tables);
    cli.finish();
}

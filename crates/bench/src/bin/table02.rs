//! Prints Table 2: workload mixes with measured benchmark MPKIs.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::table02(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

//! Diagnostic: row-buffer locality of the workload models, solo vs
//! co-running (cross-task bank interference shows up as conflicts).
use refsim_core::config::SystemConfig;
use refsim_core::system::System;
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

fn main() {
    let mut cfg = SystemConfig::table1().with_time_scale(512);
    cfg.warmup = cfg.trefw() / 4;
    cfg.measure = cfg.trefw();
    for (label, mix) in [
        (
            "stream x1",
            WorkloadMix::from_groups("s1", &[(Benchmark::Stream, 1)], "M"),
        ),
        (
            "stream x2",
            WorkloadMix::from_groups("s2", &[(Benchmark::Stream, 2)], "M"),
        ),
        (
            "bwaves x1",
            WorkloadMix::from_groups("b1", &[(Benchmark::Bwaves, 1)], "H"),
        ),
        (
            "bwaves x2",
            WorkloadMix::from_groups("b2", &[(Benchmark::Bwaves, 2)], "H"),
        ),
        (
            "mcf    x2",
            WorkloadMix::from_groups("m2", &[(Benchmark::Mcf, 2)], "H"),
        ),
    ] {
        let mut sys = System::new(cfg.clone(), &mix);
        let m = sys.run();
        let c = &m.controller;
        println!(
            "{label}: rowhit {:4.1}%  hits {:6} misses {:6} conflicts {:6}  wr_drains {:4} writes {:6} mpki {:5.2} lat {:5.1}",
            c.row_hit_rate().unwrap_or(0.0) * 100.0,
            c.row_hits, c.row_misses, c.row_conflicts,
            c.write_drains, c.writes_completed,
            m.mpki(),
            m.avg_read_latency_cycles(),
        );
    }
}

//! Differential cross-validation CLI: primary vs. shadow memory backend.
//!
//! Runs every workload mix through the full refresh-policy matrix on
//! both memory backends and cross-checks the results within the
//! calibrated tolerances (see `refsim_core::diffval`):
//!
//! * default — expect agreement on every cell; any divergence is
//!   classified (tolerance-exceeded vs. protocol-divergent), triaged
//!   through the replay auditor, appended to the report file, and fails
//!   the run;
//! * `--perturb N` — negative control: drop every `N`-th refresh inside
//!   the shadow model and check the harness catches the divergence on
//!   every refreshing policy (and stays clean on `no-refresh`, where
//!   there is nothing to drop).
//!
//! Exits non-zero on any contract violation, so CI can gate on it. The
//! report file (`--report PATH`, default `crossval-divergence.txt`) is
//! only written when something diverged — CI uploads it as an artifact.

use std::fmt::Write as _;

use refsim_core::diffval::{cross_validate, DivergenceClass, Tolerances, POLICY_MATRIX};
use refsim_core::error::RefsimError;
use refsim_core::experiment::ExpOptions;
use refsim_core::report::Table;
use refsim_core::vfs::{self, StdVfs};
use refsim_dram::refresh::RefreshPolicyKind;

#[derive(Debug)]
struct Args {
    opts: ExpOptions,
    perturb: Option<u64>,
    report: String,
    csv: bool,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Args {
    let mut out = Args {
        opts: ExpOptions::full(),
        perturb: None,
        report: "crossval-divergence.txt".to_owned(),
        csv: false,
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                let threads = out.opts.threads;
                out.opts = ExpOptions::quick();
                out.opts.threads = threads;
            }
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                out.opts.time_scale = v.parse().expect("--scale must be an integer");
            }
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                out.opts.seed = v.parse().expect("--seed must be an integer");
            }
            "--perturb" => {
                let v = it.next().expect("--perturb needs a drop period");
                out.perturb = Some(v.parse().expect("--perturb must be an integer >= 1"));
            }
            "--report" => {
                out.report = it.next().expect("--report needs a path");
            }
            "--csv" => out.csv = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: [--quick] [--scale N] [--seed N] [--perturb N] \
                     [--report PATH] [--csv]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    out
}

/// Whether a negative-control cell behaved as required: every policy
/// that issues refreshes must trip a protocol divergence with an
/// attributed quantum; `no-refresh` has nothing to drop and must agree.
fn control_verdict(
    policy: RefreshPolicyKind,
    result: &Result<refsim_core::diffval::DiffvalOutcome, RefsimError>,
) -> (String, bool) {
    match result {
        Ok(_) if policy == RefreshPolicyKind::NoRefresh => ("clean (expected)".to_owned(), false),
        Ok(_) => ("UNDETECTED perturbation".to_owned(), true),
        Err(RefsimError::BackendDivergence(r)) => {
            if r.class != DivergenceClass::ProtocolDivergent {
                (format!("misclassified: {}", r.class), true)
            } else if r.attribution.is_none() {
                ("detected but unattributed".to_owned(), true)
            } else {
                (
                    format!(
                        "detected: {}",
                        r.attribution
                            .as_ref()
                            .map(|a| a.to_string())
                            .unwrap_or_default()
                    ),
                    false,
                )
            }
        }
        Err(e) => (format!("run failed: {e}"), true),
    }
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let tol = Tolerances::default();
    let title = match args.perturb {
        None => "Backend cross-validation: primary vs shadow".to_owned(),
        Some(n) => format!("Backend cross-validation: perturbation control (drop 1/{n})"),
    };
    let mut table = Table::new(
        title,
        ["mix", "policy", "hmean p/s", "refreshes p/s", "verdict"],
    );
    let mut violations = 0u32;
    let mut report_body = String::new();

    for mix in &args.opts.workloads {
        for &policy in &POLICY_MATRIX {
            let mut cfg = args.opts.base_config().with_refresh(policy);
            if let Some(n) = args.perturb {
                cfg = cfg.with_shadow_drop_every(n);
            }
            let result = cross_validate(&cfg, mix, &tol);
            let (hmean, refreshes) = match &result {
                Ok(out) => (
                    format!(
                        "{:.4}/{:.4}",
                        out.primary.hmean_ipc(),
                        out.shadow.hmean_ipc()
                    ),
                    format!(
                        "{}/{}",
                        out.primary.controller.refreshes_total(),
                        out.shadow.controller.refreshes_total()
                    ),
                ),
                Err(RefsimError::BackendDivergence(r)) => {
                    let get = |name: &str| {
                        r.deltas
                            .iter()
                            .find(|d| d.metric == name)
                            .map(|d| (d.primary, d.shadow))
                            .unwrap_or((0.0, 0.0))
                    };
                    let (hp, hs) = get("hmean_ipc");
                    let (rp, rs) = get("refreshes_total");
                    (format!("{hp:.4}/{hs:.4}"), format!("{rp:.0}/{rs:.0}"))
                }
                Err(_) => ("-".to_owned(), "-".to_owned()),
            };
            let (verdict, bad) = match args.perturb {
                Some(_) => control_verdict(policy, &result),
                None => match &result {
                    Ok(_) => ("agree".to_owned(), false),
                    Err(RefsimError::BackendDivergence(r)) => (r.class.to_string(), true),
                    Err(e) => (format!("run failed: {e}"), true),
                },
            };
            if bad {
                violations += 1;
                let detail = match &result {
                    Err(RefsimError::BackendDivergence(r)) => {
                        let mut s = format!("{r}\n  all deltas:\n");
                        for d in &r.deltas {
                            let _ = writeln!(s, "    {d}");
                        }
                        s
                    }
                    Err(e) => format!("{e}\n"),
                    Ok(_) => verdict.clone() + "\n",
                };
                let _ = writeln!(
                    report_body,
                    "== mix {} policy {policy:?} ==\n{detail}",
                    mix.name
                );
            }
            table.push([
                mix.name.clone(),
                policy.to_string(),
                hmean,
                refreshes,
                verdict,
            ]);
        }
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
    if violations > 0 {
        // Atomic publish: CI pulls this as an artifact, and a torn
        // half-report is worse than none.
        if let Err(e) = vfs::write_atomic(
            &StdVfs,
            std::path::Path::new(&args.report),
            report_body.as_bytes(),
        ) {
            eprintln!("could not write {}: {e}", args.report);
        } else {
            eprintln!("divergence report written to {}", args.report);
        }
        eprintln!("cross-validation FAILED: {violations} violating cell(s)");
        std::process::exit(1);
    }
}

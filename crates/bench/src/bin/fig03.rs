//! Regenerates Figure 3: performance degradation due to refresh vs the
//! ideal no-refresh system, across densities and retention windows.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::figure03(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

//! Regenerates Figure 15: sensitivity to consolidation ratio, core count
//! and DIMMs per channel.

fn main() {
    let cli = refsim_bench::Cli::parse();
    let t = refsim_core::experiment::figure15(&cli.opts);
    cli.emit(&t);
    cli.finish();
}

//! Chaos/soak harness: randomized config × workload × fault scenarios
//! under `AuditLevel::Full`, with a violation summary and quarantined
//! reproducer seeds (see `refsim_bench::soak` and README §soak).
//!
//! Exit status is non-zero iff a clean scenario violated an invariant
//! or any scenario crashed — `missed` negative controls only warn.

use refsim_bench::soak::{
    build_scenario, replay_seed, run_crash_scenario, run_soak, FaultClass, Outcome, ScenarioClass,
    SoakOptions,
};
use refsim_core::error::RefsimError;
use refsim_core::report::Table;

struct Args {
    opts: SoakOptions,
    csv: bool,
    replay: Option<u64>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Args {
    let mut opts = SoakOptions::default();
    let mut csv = false;
    let mut replay = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs an integer value"))
        };
        match a.as_str() {
            "--scenarios" => opts.scenarios = num("--scenarios") as usize,
            "--seed" => opts.seed = num("--seed"),
            "--scale" => opts.scale = num("--scale") as u32,
            "--threads" => opts.threads = num("--threads") as usize,
            "--replay" => replay = Some(num("--replay")),
            "--csv" => csv = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: [--scenarios N] [--seed N] [--scale N] [--threads N] \
                     [--replay SEED] [--csv]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    Args { opts, csv, replay }
}

fn emit(csv: bool, t: &Table) {
    if csv {
        print!("{}", t.to_csv());
    } else {
        println!("{t}");
    }
}

fn main() {
    let args = parse_args(std::env::args().skip(1));

    if let Some(seed) = args.replay {
        std::process::exit(replay(seed, args.opts.scale));
    }

    let report = run_soak(&args.opts);
    emit(args.csv, &report.summary_table());
    emit(args.csv, &report.checker_table());

    for r in &report.results {
        if matches!(r.outcome, Outcome::Violated | Outcome::Crashed) {
            eprintln!(
                "{}: seed {} [{}] {} — replay with: soak --replay {} --scale {}",
                r.outcome.label(),
                r.seed,
                r.fault.label(),
                r.error.as_deref().unwrap_or("invariant violation"),
                r.seed,
                args.opts.scale,
            );
        } else if r.outcome == Outcome::Missed {
            eprintln!(
                "missed: seed {} [{}] {} — dose below every checker threshold",
                r.seed,
                r.fault.label(),
                r.label
            );
        }
    }
    let quarantined = report.quarantined();
    if !quarantined.is_empty() {
        eprintln!("quarantined seeds: {quarantined:?}");
    }
    std::process::exit(i32::from(report.failed()));
}

/// Reruns one scenario seed and prints full violation detail.
fn replay(seed: u64, scale: u32) -> i32 {
    // A crashmat seed replays through the crash-point harness, not the
    // sanitizer pipeline; its `error` carries a `crashmat` reproducer
    // line for byte-level triage.
    let scenario = build_scenario(seed, scale);
    if matches!(scenario.class, ScenarioClass::Crashmat { .. }) {
        let r = run_crash_scenario(&scenario);
        println!("seed {}: {} — {}", r.seed, r.label, r.outcome.label());
        if let Some(e) = &r.error {
            println!("  {e}");
        }
        return i32::from(matches!(r.outcome, Outcome::Violated | Outcome::Crashed));
    }

    let (s, run) = replay_seed(seed, scale);
    println!("seed {}: {} fault={}", s.seed, s.label, s.fault.label());
    match run {
        Ok(m) => {
            println!(
                "clean: hmean IPC {:.4}, {} retention violations",
                m.hmean_ipc(),
                m.controller.retention_violations
            );
            0
        }
        Err(RefsimError::InvariantViolation(report)) => {
            println!(
                "sanitizer fired: {} total, {} errors",
                report.total, report.errors
            );
            for v in &report.violations {
                println!(
                    "  [{}/{:?}] {} at {} (quantum {}): {}",
                    v.layer, v.severity, v.checker, v.at, v.quantum, v.evidence
                );
            }
            let mut t = Table::new("violations by checker", ["checker", "violations"]);
            for (c, n) in report.by_checker() {
                t.push([c.to_owned(), n.to_string()]);
            }
            println!("{t}");
            i32::from(s.fault == FaultClass::None)
        }
        Err(e) => {
            println!("crashed: {e}");
            1
        }
    }
}

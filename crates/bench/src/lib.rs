//! # refsim-bench
//!
//! Binaries that regenerate every results table and figure of the
//! reproduced paper (see DESIGN.md §4 for the index), plus Criterion
//! benches over the simulator's hot paths.
//!
//! Every figure binary accepts:
//!
//! * `--quick` — 4 representative mixes, coarser time scale (smoke run);
//! * `--scale N` — override the time-scale divisor;
//! * `--seed N` — override the workload seed;
//! * `--csv` — emit CSV instead of aligned text;
//! * `--cache-dir PATH` — persistent run cache (default: the
//!   `REFSIM_CACHE_DIR` environment variable, if set);
//! * `--no-cache` — ignore any cache directory;
//! * `--stats-out PATH` — write dedup/cache telemetry as JSON;
//! * `--min-hit-rate X` — exit non-zero unless the cache hit rate
//!   reaches `X` (CI warm-cache gate).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::path::PathBuf;

use refsim_core::experiment::ExpOptions;
use refsim_core::report::Table;
use refsim_core::runcache::RunCache;

pub mod soak;

/// Parsed command line shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment options assembled from the flags.
    pub opts: ExpOptions,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Telemetry JSON destination, if requested.
    pub stats_out: Option<PathBuf>,
    /// Minimum acceptable cache hit rate, if gated.
    pub min_hit_rate: Option<f64>,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = ExpOptions::full();
        let mut csv = false;
        let mut cache = RunCache::from_env();
        let mut no_cache = false;
        let mut stats_out = None;
        let mut min_hit_rate = None;
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => {
                    let threads = opts.threads;
                    opts = ExpOptions::quick();
                    opts.threads = threads;
                }
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    opts.time_scale = v.parse().expect("--scale must be an integer");
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed must be an integer");
                }
                "--threads" => {
                    let v = it.next().expect("--threads needs a value");
                    opts.threads = v.parse().expect("--threads must be an integer");
                }
                "--csv" => csv = true,
                "--cache-dir" => {
                    let v = it.next().expect("--cache-dir needs a path");
                    cache = Some(RunCache::new(v));
                }
                "--no-cache" => no_cache = true,
                "--stats-out" => {
                    let v = it.next().expect("--stats-out needs a path");
                    stats_out = Some(PathBuf::from(v));
                }
                "--min-hit-rate" => {
                    let v = it.next().expect("--min-hit-rate needs a value");
                    min_hit_rate = Some(v.parse().expect("--min-hit-rate must be a number"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: [--quick] [--scale N] [--seed N] [--threads N] [--csv] \
                         [--cache-dir PATH] [--no-cache] [--stats-out PATH] [--min-hit-rate X]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        opts.cache = if no_cache { None } else { cache };
        Cli {
            opts,
            csv,
            stats_out,
            min_hit_rate,
        }
    }

    /// End-of-run bookkeeping every figure binary shares: prints the
    /// dedup/cache and executor telemetry to stderr (when any sweep ran),
    /// writes the `--stats-out` JSON artifact, and enforces
    /// `--min-hit-rate`.
    ///
    /// The artifact keeps the historical cache fields at the top level
    /// and nests the executor counters under an `"executor"` key, so
    /// existing consumers of the flat layout keep working.
    ///
    /// # Panics
    ///
    /// Panics when the stats artifact cannot be written.
    pub fn finish(&self) {
        let stats = self.opts.telemetry.snapshot();
        let exec = self.opts.telemetry.exec_snapshot();
        if stats.requested > 0 {
            eprintln!("runcache: {}", stats.summary());
        }
        if exec.items > 0 {
            eprintln!("executor: {}", exec.summary());
        }
        if let Some(path) = &self.stats_out {
            let combined = combined_stats_json(&stats, &exec);
            refsim_core::vfs::write_atomic(&refsim_core::vfs::StdVfs, path, combined.as_bytes())
                .expect("write stats artifact");
            eprintln!("wrote {}", path.display());
        }
        if let Some(floor) = self.min_hit_rate {
            if stats.hit_rate() < floor {
                eprintln!(
                    "FAIL: cache hit rate {:.3} is below the {floor:.3} floor",
                    stats.hit_rate()
                );
                std::process::exit(1);
            }
        }
    }

    /// Prints a table in the selected format.
    pub fn emit(&self, table: &Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }

    /// Prints several tables.
    pub fn emit_all<'a>(&self, tables: impl IntoIterator<Item = &'a Table>) {
        for t in tables {
            self.emit(t);
            println!();
        }
    }
}

/// Splices [`refsim_core::executor::ExecutorStats`] into the cache
/// telemetry JSON: historical cache fields stay at the top level, the
/// executor counters nest under an `"executor"` key.
///
/// # Panics
///
/// Panics if the cache JSON is not a brace-terminated object.
#[must_use]
pub fn combined_stats_json(
    cache: &refsim_core::runcache::CacheStats,
    exec: &refsim_core::executor::ExecutorStats,
) -> String {
    let cache_json = cache.to_json();
    let body = cache_json
        .trim_end()
        .strip_suffix('}')
        .expect("cache stats JSON ends with an object brace")
        .trim_end();
    format!("{body},\n  \"executor\": {}\n}}\n", exec.to_json("  "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let cli =
            Cli::from_args(["--quick", "--scale", "64", "--seed", "7", "--csv"].map(String::from));
        assert!(cli.csv);
        assert_eq!(cli.opts.time_scale, 64);
        assert_eq!(cli.opts.seed, 7);
        assert_eq!(cli.opts.workloads.len(), 4);
    }

    #[test]
    fn parses_cache_flags() {
        let cli = Cli::from_args(
            [
                "--cache-dir",
                "/tmp/rc",
                "--stats-out",
                "stats.json",
                "--min-hit-rate",
                "0.9",
            ]
            .map(String::from),
        );
        assert_eq!(cli.opts.cache, Some(RunCache::new("/tmp/rc")));
        assert_eq!(
            cli.stats_out.as_deref(),
            Some(std::path::Path::new("stats.json"))
        );
        assert_eq!(cli.min_hit_rate, Some(0.9));
    }

    #[test]
    fn no_cache_overrides_cache_dir() {
        let cli = Cli::from_args(["--cache-dir", "/tmp/rc", "--no-cache"].map(String::from));
        assert_eq!(cli.opts.cache, None);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        let _ = Cli::from_args(["--bogus".to_owned()]);
    }

    #[test]
    fn stats_artifact_nests_executor_under_the_cache_fields() {
        let cache = refsim_core::runcache::CacheStats::default();
        let exec = refsim_core::executor::ExecutorStats {
            workers: 4,
            items: 16,
            ..Default::default()
        };
        let json = combined_stats_json(&cache, &exec);
        assert!(json.contains("\"hit_rate\""), "cache fields stay top-level");
        assert!(json.contains("\"executor\": {"), "executor object nested");
        assert!(json.contains("\"workers\": 4"));
        assert!(json.trim_end().ends_with('}'), "well-formed object");
        assert_eq!(
            json.matches("\"executor\"").count(),
            1,
            "exactly one executor key"
        );
    }
}

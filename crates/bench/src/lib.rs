//! # refsim-bench
//!
//! Binaries that regenerate every results table and figure of the
//! reproduced paper (see DESIGN.md §4 for the index), plus Criterion
//! benches over the simulator's hot paths.
//!
//! Every figure binary accepts:
//!
//! * `--quick` — 4 representative mixes, coarser time scale (smoke run);
//! * `--scale N` — override the time-scale divisor;
//! * `--seed N` — override the workload seed;
//! * `--csv` — emit CSV instead of aligned text.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use refsim_core::experiment::ExpOptions;
use refsim_core::report::Table;

pub mod soak;

/// Parsed command line shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment options assembled from the flags.
    pub opts: ExpOptions,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = ExpOptions::full();
        let mut csv = false;
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => {
                    let threads = opts.threads;
                    opts = ExpOptions::quick();
                    opts.threads = threads;
                }
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    opts.time_scale = v.parse().expect("--scale must be an integer");
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed must be an integer");
                }
                "--threads" => {
                    let v = it.next().expect("--threads needs a value");
                    opts.threads = v.parse().expect("--threads must be an integer");
                }
                "--csv" => csv = true,
                "--help" | "-h" => {
                    eprintln!("flags: [--quick] [--scale N] [--seed N] [--threads N] [--csv]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        Cli { opts, csv }
    }

    /// Prints a table in the selected format.
    pub fn emit(&self, table: &Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }

    /// Prints several tables.
    pub fn emit_all<'a>(&self, tables: impl IntoIterator<Item = &'a Table>) {
        for t in tables {
            self.emit(t);
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let cli =
            Cli::from_args(["--quick", "--scale", "64", "--seed", "7", "--csv"].map(String::from));
        assert!(cli.csv);
        assert_eq!(cli.opts.time_scale, 64);
        assert_eq!(cli.opts.seed, 7);
        assert_eq!(cli.opts.workloads.len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        let _ = Cli::from_args(["--bogus".to_owned()]);
    }
}

//! Criterion benches over the OS substrate's hot paths: buddy
//! allocation, bank-aware allocation, scheduler picks, plus cache and
//! address-mapping microbenches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use refsim_cpu::cache::{Cache, CacheConfig};
use refsim_dram::geometry::Geometry;
use refsim_dram::mapping::{AddressMapping, MappingScheme};
use refsim_dram::time::Ps;
use refsim_os::bank_alloc::{BankAwareAllocator, BankVector};
use refsim_os::buddy::BuddyAllocator;
use refsim_os::sched::{SchedPolicy, Scheduler};
use refsim_os::task::{Task, TaskId};

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_1k_pages", |b| {
        b.iter(|| {
            let mut buddy = BuddyAllocator::new(1 << 16);
            let frames: Vec<_> = (0..1024).map(|_| buddy.alloc(0).unwrap()).collect();
            for f in frames {
                buddy.free(f, 0);
            }
            buddy.free_frames()
        })
    });
}

fn bench_bank_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("bank_alloc");
    for (label, mask) in [("all_banks", u64::MAX), ("six_of_eight", 0x3F3F)] {
        g.bench_with_input(BenchmarkId::new("1k_pages", label), &mask, |b, &m| {
            b.iter(|| {
                let g = Geometry::ddr3_2rank_8bank(1 << 10);
                let map = AddressMapping::new(g, MappingScheme::RowRankBankColumn);
                let mut alloc = BankAwareAllocator::new(map);
                let possible = BankVector::from_iter((0..16).filter(|b| m & (1u64 << b) != 0));
                let mut last = 15;
                let mut acc = 0u64;
                for _ in 0..1024 {
                    acc += alloc.alloc_page(possible, &mut last).unwrap().frame;
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    for (label, policy) in [
        ("cfs", SchedPolicy::Cfs),
        ("refresh_aware", SchedPolicy::refresh_aware()),
    ] {
        g.bench_with_input(BenchmarkId::new("pick_cycle", label), &policy, |b, &p| {
            b.iter(|| {
                let mut s = Scheduler::new(p, Ps::from_ms(4), 1);
                let mut tasks: Vec<Task> = (0..8)
                    .map(|i| {
                        let banks: BankVector = (0..16u32).filter(|b| b % 8 != i % 8).collect();
                        Task::new(TaskId(i), "t", 0, banks, 16)
                    })
                    .collect();
                for t in &mut tasks {
                    s.enqueue(t);
                }
                let mut picked = 0u64;
                for round in 0..256u32 {
                    let bank = BankVector::single(round % 16);
                    let id = s.pick_next(0, bank, &mut tasks).unwrap();
                    picked += u64::from(id.0);
                    s.requeue(&mut tasks[id.0 as usize], Ps::from_ms(4));
                }
                picked
            })
        });
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1_access_streaming_4k", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::l1_32k());
            let mut hits = 0u64;
            for i in 0..4096u64 {
                if cache.access(i * 8, false).is_hit() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_mapping(c: &mut Criterion) {
    let map = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
    c.bench_function("address_decode_4k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..4096u64 {
                let loc = map.decode(i.wrapping_mul(0x9E37_79B9) & ((32 << 30) - 1));
                acc = acc.wrapping_add(loc.row);
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_buddy,
    bench_bank_alloc,
    bench_scheduler,
    bench_cache,
    bench_mapping
);
criterion_main!(benches);

//! Criterion benches over the simulator engine's hot paths: memory-
//! controller command scheduling under each refresh policy, and the
//! full-system step loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use refsim_core::config::SystemConfig;
use refsim_core::system::System;
use refsim_dram::controller::{ControllerConfig, MemoryController};
use refsim_dram::geometry::Geometry;
use refsim_dram::mapping::{AddressMapping, MappingScheme};
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::request::{MemRequest, ReqId, ReqKind};
use refsim_dram::time::Ps;
use refsim_dram::timing::{Density, FgrMode, RefreshTiming, Retention, TimingParams};
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

/// Drives one controller with a fixed synthetic request stream for 100 µs
/// of simulated time.
fn drive_controller(policy: RefreshPolicyKind) -> u64 {
    let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
    let mut mc = MemoryController::new(
        mapping,
        TimingParams::ddr3_1600(),
        RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 64),
        policy,
        ControllerConfig::default(),
    );
    let mut t = Ps::ZERO;
    let mut id = 0u64;
    while t < Ps::from_us(100) {
        mc.advance_to(t);
        let paddr = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((32 << 30) - 1) & !0x3f;
        let _ = mc.enqueue(MemRequest {
            id: ReqId(id),
            kind: if id.is_multiple_of(4) {
                ReqKind::Write
            } else {
                ReqKind::Read
            },
            paddr,
            loc: mc.mapping().decode(paddr),
            arrival: t,
            core: 0,
            task: 0,
        });
        id += 1;
        t += Ps::from_ns(40);
    }
    mc.advance_to(t);
    mc.stats().reads_completed
}

fn bench_controller_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller");
    for policy in [
        RefreshPolicyKind::NoRefresh,
        RefreshPolicyKind::AllBank,
        RefreshPolicyKind::PerBankRoundRobin,
        RefreshPolicyKind::PerBankSequential,
        RefreshPolicyKind::OooPerBank,
        RefreshPolicyKind::Fgr(FgrMode::X4),
        RefreshPolicyKind::Adaptive,
    ] {
        g.bench_with_input(
            BenchmarkId::new("100us_stream", policy.to_string()),
            &policy,
            |b, &p| b.iter(|| drive_controller(p)),
        );
    }
    g.finish();
}

fn bench_full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    let mix = WorkloadMix::from_groups(
        "bench",
        &[(Benchmark::GemsFdtd, 2), (Benchmark::Povray, 2)],
        "M + L",
    );
    for (label, co) in [("baseline", false), ("co-design", true)] {
        let mix = mix.clone();
        g.bench_function(BenchmarkId::new("half_window", label), move |b| {
            b.iter(|| {
                let mut cfg = SystemConfig::table1().with_time_scale(512);
                if co {
                    cfg = cfg.co_design();
                }
                cfg.warmup = Ps::ZERO;
                cfg.measure = cfg.trefw() / 2;
                System::new(cfg, &mix).run().hmean_ipc()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_controller_policies, bench_full_system);
criterion_main!(benches);

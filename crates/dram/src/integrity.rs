//! Retention-integrity oracle and refresh fault injection.
//!
//! The whole point of the co-design is that every DRAM row is refreshed
//! within `tREFW` while the OS hides the cost — but nothing in the
//! simulator *checked* that invariant: a buggy policy could silently
//! drop rows and still report great IPC. The [`RetentionTracker`] is
//! that check. It mirrors the device's internal refresh-counter
//! semantics: every refresh command covers the next `rows` rows of the
//! bank's cyclic sweep, so the tracker keeps, per bank, a ring of
//! [row-span → last-refresh-instant] records and flags any span whose
//! re-refresh interval exceeds the (scaled) retention limit plus a
//! bounded postponement slack as a [`RetentionViolation`].
//!
//! [`RefreshFaults`] complements the oracle with deterministic fault
//! injection at the controller: *skipped* refresh commands (the policy's
//! schedule advances but no rows are refreshed — the classic silent
//! data-loss fault the oracle must catch), *delayed* commands (issue
//! slack the schedule must tolerate), and *weak rows* whose retention is
//! shorter than `tREFW` (the RAIDR failure model — undetectable by any
//! stock policy, so the oracle must report them).
//!
//! The slack term exists because refresh is not isochronous: commands
//! legally issue late while their scope drains (JEDEC allows up to eight
//! postponed intervals, which the elastic policy exploits in full), so
//! the oracle's default threshold is `tREFW + 9·tREFI`. Tests that want
//! a sharper oracle pass an explicit [`IntegrityConfig::slack`].

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::error::DramError;
use crate::time::Ps;

/// How many violations keep their full detail; beyond this only the
/// counters advance (a broken policy can violate per-command).
const DETAIL_CAP: usize = 64;

/// Configuration for a [`RetentionTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrityConfig {
    /// Retention limit: the scaled `tREFW`.
    pub limit: Ps,
    /// Allowed lateness past `limit` before an interval is a violation
    /// (covers legal postponement; see module docs).
    pub slack: Ps,
}

impl IntegrityConfig {
    /// Oracle threshold: `limit + slack`.
    pub fn threshold(&self) -> Ps {
        self.limit + self.slack
    }
}

/// A row with retention shorter than the device-wide `tREFW`
/// (the RAIDR / retention-variation failure model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeakRow {
    /// Flat bank index within the channel.
    pub flat_bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// This row's (shortened) retention limit.
    pub limit: Ps,
}

/// What kind of retention failure was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A span was re-refreshed later than the oracle threshold.
    LateRefresh,
    /// A span was still unrefreshed past the threshold at end of run.
    StaleAtEnd,
    /// A weak row exceeded its shortened retention limit.
    WeakRow,
}

/// One detected retention failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionViolation {
    /// Failure class.
    pub kind: ViolationKind,
    /// Flat bank index within the channel.
    pub flat_bank: u32,
    /// First row of the violating span.
    pub row_start: u32,
    /// One past the last row of the violating span.
    pub row_end: u32,
    /// Observed refresh interval for the span.
    pub interval: Ps,
    /// The limit the span was held to (`tREFW` or the weak-row limit).
    pub limit: Ps,
    /// Instant of detection.
    pub at: Ps,
}

/// A contiguous run of rows last refreshed at the same instant.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: u32,
    end: u32,
    at: Ps,
}

/// Per-bank sweep state: a cursor mirroring the device's internal
/// refresh counter plus the ring of last-refresh spans, front-aligned
/// with the cursor.
#[derive(Debug)]
struct BankTrack {
    cursor: u32,
    spans: VecDeque<Span>,
}

/// Deterministic refresh fault plan applied by the controller.
///
/// `skip` and `delay` are keyed by the controller's global refresh
/// sequence number (the N-th refresh command it would issue), making
/// injection reproducible irrespective of request traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshFaults {
    /// Sorted refresh sequence numbers to drop entirely: the schedule
    /// advances as if issued, no rows are refreshed. Must be detected.
    pub skip: Vec<u64>,
    /// Per-sequence extra issue delay: `(seq, delay)`, sorted by `seq`.
    /// The sequential schedule must tolerate bounded delay silently.
    pub delay: Vec<(u64, Ps)>,
    /// Rows with shortened retention, checked by the tracker.
    pub weak_rows: Vec<WeakRow>,
}

impl RefreshFaults {
    /// Whether this plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.skip.is_empty() && self.delay.is_empty() && self.weak_rows.is_empty()
    }

    /// Whether refresh command `seq` should be dropped.
    pub fn skips(&self, seq: u64) -> bool {
        self.skip.binary_search(&seq).is_ok()
    }

    /// Extra issue delay for refresh command `seq`.
    pub fn delay_for(&self, seq: u64) -> Ps {
        match self.delay.binary_search_by_key(&seq, |&(s, _)| s) {
            Ok(i) => self.delay[i].1,
            Err(_) => Ps::ZERO,
        }
    }
}

/// The retention-integrity oracle for one channel.
///
/// # Examples
///
/// ```
/// use refsim_dram::integrity::{IntegrityConfig, RetentionTracker};
/// use refsim_dram::time::Ps;
///
/// let cfg = IntegrityConfig { limit: Ps::from_us(64), slack: Ps::from_us(1) };
/// let mut t = RetentionTracker::new(2, 128, cfg);
/// // Bank 0 fully swept at 10us, and again within the window at 70us.
/// t.on_refresh(0, 128, Ps::from_us(10)).unwrap();
/// t.on_refresh(0, 128, Ps::from_us(70)).unwrap();
/// assert_eq!(t.total_violations(), 0);
/// // Bank 1 never refreshed: stale at end of a 80us run.
/// t.finalize(Ps::from_us(80));
/// assert!(t.total_violations() > 0);
/// ```
#[derive(Debug)]
pub struct RetentionTracker {
    cfg: IntegrityConfig,
    rows_per_bank: u32,
    banks: Vec<BankTrack>,
    /// Weak rows with their own last-refresh instant.
    weak: Vec<(WeakRow, Ps)>,
    violations: Vec<RetentionViolation>,
    total: u64,
}

impl RetentionTracker {
    /// A tracker for `n_banks` banks of `rows_per_bank` rows, with every
    /// cell treated as written at the simulation epoch.
    pub fn new(n_banks: u32, rows_per_bank: u32, cfg: IntegrityConfig) -> Self {
        assert!(rows_per_bank > 0, "rows_per_bank must be positive");
        let banks = (0..n_banks)
            .map(|_| BankTrack {
                cursor: 0,
                spans: VecDeque::from([Span {
                    start: 0,
                    end: rows_per_bank,
                    at: Ps::ZERO,
                }]),
            })
            .collect();
        RetentionTracker {
            cfg,
            rows_per_bank,
            banks,
            weak: Vec::new(),
            violations: Vec::new(),
            total: 0,
        }
    }

    /// The oracle configuration in effect.
    pub fn config(&self) -> &IntegrityConfig {
        &self.cfg
    }

    /// Registers weak rows to hold to their own limits.
    pub fn set_weak_rows(&mut self, rows: &[WeakRow]) {
        self.weak = rows.iter().map(|&w| (w, Ps::ZERO)).collect();
    }

    /// Records a refresh command covering the next `rows` rows of
    /// `flat_bank`'s sweep, checking the re-refresh interval of every
    /// span it covers.
    ///
    /// # Errors
    ///
    /// [`DramError::BrokenInvariant`] if the oracle's span ring runs
    /// dry mid-sweep — its spans always tile the bank exactly, so an
    /// empty ring means the bookkeeping itself is corrupt and every
    /// subsequent verdict would be meaningless.
    pub fn on_refresh(&mut self, flat_bank: u32, rows: u32, at: Ps) -> Result<(), DramError> {
        let threshold = self.cfg.threshold();
        let limit = self.cfg.limit;
        let bank = &mut self.banks[flat_bank as usize];
        let n = rows.min(self.rows_per_bank);
        if n == 0 {
            return Ok(());
        }
        let start = bank.cursor;
        let mut remaining = n;
        let mut late: Option<(u32, u32, Ps)> = None; // coalesced per command
        while remaining > 0 {
            let Some(span) = bank.spans.front_mut() else {
                return Err(DramError::BrokenInvariant {
                    what: format!(
                        "retention oracle span ring for bank {flat_bank} ran dry with \
                         {remaining} rows uncovered at {at}"
                    ),
                });
            };
            let covered = (span.end - span.start).min(remaining);
            let interval = at.saturating_sub(span.at);
            if interval > threshold {
                late = Some(match late {
                    None => (span.start, span.start + covered, interval),
                    Some((s, _, worst)) => (s, span.start + covered, worst.max(interval)),
                });
            }
            if covered == span.end - span.start {
                bank.spans.pop_front();
            } else {
                span.start += covered;
            }
            remaining -= covered;
        }
        if let Some((row_start, row_end, interval)) = late {
            self.record(RetentionViolation {
                kind: ViolationKind::LateRefresh,
                flat_bank,
                row_start,
                row_end,
                interval,
                limit,
                at,
            });
        }
        // Re-borrow after recording (record needs &mut self).
        let bank = &mut self.banks[flat_bank as usize];
        let end = start + n;
        if end <= self.rows_per_bank {
            bank.spans.push_back(Span { start, end, at });
            bank.cursor = end % self.rows_per_bank;
        } else {
            bank.spans.push_back(Span {
                start,
                end: self.rows_per_bank,
                at,
            });
            bank.spans.push_back(Span {
                start: 0,
                end: end - self.rows_per_bank,
                at,
            });
            bank.cursor = end - self.rows_per_bank;
        }
        // Weak rows covered by this command restart their own clocks.
        let mut weak_hits = Vec::new();
        for (w, last) in &mut self.weak {
            if w.flat_bank != flat_bank {
                continue;
            }
            let in_cover = if end <= self.rows_per_bank {
                (start..end).contains(&w.row)
            } else {
                w.row >= start || w.row < end - self.rows_per_bank
            };
            if in_cover {
                let interval = at.saturating_sub(*last);
                if interval > w.limit + self.cfg.slack {
                    weak_hits.push(RetentionViolation {
                        kind: ViolationKind::WeakRow,
                        flat_bank,
                        row_start: w.row,
                        row_end: w.row + 1,
                        interval,
                        limit: w.limit,
                        at,
                    });
                }
                *last = at;
            }
        }
        for v in weak_hits {
            self.record(v);
        }
        Ok(())
    }

    /// End-of-run audit: any span (or weak row) older than its threshold
    /// at `now` is a violation — this is what catches rows whose refresh
    /// never came at all (e.g. a policy that stops early, or `NoRefresh`
    /// on an un-confined workload).
    pub fn finalize(&mut self, now: Ps) {
        let threshold = self.cfg.threshold();
        let limit = self.cfg.limit;
        let mut stale = Vec::new();
        for (b, bank) in self.banks.iter().enumerate() {
            for span in &bank.spans {
                let interval = now.saturating_sub(span.at);
                if interval > threshold {
                    stale.push(RetentionViolation {
                        kind: ViolationKind::StaleAtEnd,
                        flat_bank: b as u32,
                        row_start: span.start,
                        row_end: span.end,
                        interval,
                        limit,
                        at: now,
                    });
                }
            }
        }
        for (w, last) in &self.weak {
            let interval = now.saturating_sub(*last);
            if interval > w.limit + self.cfg.slack {
                stale.push(RetentionViolation {
                    kind: ViolationKind::WeakRow,
                    flat_bank: w.flat_bank,
                    row_start: w.row,
                    row_end: w.row + 1,
                    interval,
                    limit: w.limit,
                    at: now,
                });
            }
        }
        for v in stale {
            self.record(v);
        }
    }

    fn record(&mut self, v: RetentionViolation) {
        self.total += 1;
        if self.violations.len() < DETAIL_CAP {
            self.violations.push(v);
        }
    }

    /// Detailed violations (capped at the first 64).
    pub fn violations(&self) -> &[RetentionViolation] {
        &self.violations
    }

    /// Total violations observed, including beyond the detail cap.
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Whether the run is clean so far.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Captures the sweep ledger, weak-row clocks, and violation record
    /// for checkpointing.
    pub fn save_state(&self) -> SavedTracker {
        SavedTracker {
            banks: self
                .banks
                .iter()
                .map(|b| SavedBankTrack {
                    cursor: b.cursor,
                    spans: b.spans.iter().map(|s| (s.start, s.end, s.at)).collect(),
                })
                .collect(),
            weak_last: self.weak.iter().map(|&(_, last)| last).collect(),
            violations: self.violations.clone(),
            total: self.total,
        }
    }

    /// Reinstates state captured by [`RetentionTracker::save_state`] into
    /// a tracker built with the same geometry and weak-row set.
    pub fn restore_state(&mut self, saved: &SavedTracker) -> Result<(), String> {
        if saved.banks.len() != self.banks.len() {
            return Err(format!(
                "tracker bank count mismatch: saved {}, expected {}",
                saved.banks.len(),
                self.banks.len()
            ));
        }
        if saved.weak_last.len() != self.weak.len() {
            return Err(format!(
                "weak-row count mismatch: saved {}, expected {}",
                saved.weak_last.len(),
                self.weak.len()
            ));
        }
        for (dst, src) in self.banks.iter_mut().zip(&saved.banks) {
            if src.spans.is_empty() {
                return Err("saved span ring is empty".to_owned());
            }
            dst.cursor = src.cursor;
            dst.spans = src
                .spans
                .iter()
                .map(|&(start, end, at)| Span { start, end, at })
                .collect();
        }
        for ((_, last), &saved_last) in self.weak.iter_mut().zip(&saved.weak_last) {
            *last = saved_last;
        }
        self.violations.clone_from(&saved.violations);
        self.total = saved.total;
        Ok(())
    }
}

/// Per-bank sweep state of a [`RetentionTracker`], captured for
/// checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedBankTrack {
    /// Sweep cursor (next row to refresh).
    pub cursor: u32,
    /// Span ring as `(row_start, row_end, last_refresh)` front-to-back.
    pub spans: Vec<(u32, u32, Ps)>,
}

/// Dynamic state of a [`RetentionTracker`], captured for checkpointing.
/// The config and weak-row definitions are configuration and are
/// re-derived on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedTracker {
    /// Per-bank sweep ledgers.
    pub banks: Vec<SavedBankTrack>,
    /// Last-refresh instant per registered weak row, in registration
    /// order.
    pub weak_last: Vec<Ps>,
    /// Detailed violations recorded so far.
    pub violations: Vec<RetentionViolation>,
    /// Total violations including beyond the detail cap.
    pub total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(limit_us: u64, slack_us: u64) -> IntegrityConfig {
        IntegrityConfig {
            limit: Ps::from_us(limit_us),
            slack: Ps::from_us(slack_us),
        }
    }

    /// Sweeps bank 0 fully in `cmds` commands ending near `end`.
    fn sweep(t: &mut RetentionTracker, rows_per_bank: u32, cmds: u32, start: Ps, period: Ps) {
        let per = rows_per_bank / cmds;
        for i in 0..cmds {
            t.on_refresh(0, per, start + period * i as u64).unwrap();
        }
    }

    #[test]
    fn clean_periodic_sweeps_have_no_violations() {
        let mut t = RetentionTracker::new(1, 64, cfg(64, 1));
        // 8 commands of 8 rows per window, window = 64us.
        for w in 0..4u64 {
            sweep(&mut t, 64, 8, Ps::from_us(64 * w), Ps::from_us(8));
        }
        t.finalize(Ps::from_us(256));
        assert!(t.is_clean(), "{:?}", t.violations());
    }

    #[test]
    fn late_re_refresh_is_flagged_with_interval() {
        let mut t = RetentionTracker::new(1, 64, cfg(64, 1));
        sweep(&mut t, 64, 8, Ps::ZERO, Ps::from_us(8));
        // Second sweep 10us late: every span interval = 74us > 65us.
        sweep(&mut t, 64, 8, Ps::from_us(74), Ps::from_us(8));
        assert!(!t.is_clean());
        let v = t.violations()[0];
        assert_eq!(v.kind, ViolationKind::LateRefresh);
        assert_eq!(v.interval, Ps::from_us(74));
        assert_eq!(v.limit, Ps::from_us(64));
    }

    #[test]
    fn slack_absorbs_bounded_lateness() {
        let mut t = RetentionTracker::new(1, 64, cfg(64, 12));
        sweep(&mut t, 64, 8, Ps::ZERO, Ps::from_us(8));
        sweep(&mut t, 64, 8, Ps::from_us(74), Ps::from_us(8));
        assert!(t.is_clean(), "{:?}", t.violations());
    }

    #[test]
    fn skipped_command_shifts_coverage_and_is_caught() {
        let mut t = RetentionTracker::new(1, 64, cfg(64, 1));
        // Sweep 1 complete; sweep 2 misses one command (only 7 of 8), so
        // the sweep cursor lags 8 rows: sweep 3's commands re-cover every
        // span 72us after its last refresh — past the 65us threshold.
        sweep(&mut t, 64, 8, Ps::ZERO, Ps::from_us(8));
        for i in 0..7u64 {
            t.on_refresh(0, 8, Ps::from_us(64) + Ps::from_us(8) * i)
                .unwrap();
        }
        sweep(&mut t, 64, 8, Ps::from_us(128), Ps::from_us(8));
        assert!(!t.is_clean());
        assert_eq!(t.violations()[0].kind, ViolationKind::LateRefresh);
        assert_eq!(t.violations()[0].interval, Ps::from_us(72));
        assert_eq!(
            t.violations()[0].row_start,
            56,
            "the lagged tail rows violate first"
        );
    }

    #[test]
    fn never_refreshed_rows_are_stale_at_end() {
        let mut t = RetentionTracker::new(2, 64, cfg(64, 1));
        // Bank 0 swept every window; bank 1 never touched.
        sweep(&mut t, 64, 8, Ps::ZERO, Ps::from_us(8));
        sweep(&mut t, 64, 8, Ps::from_us(64), Ps::from_us(8));
        t.finalize(Ps::from_us(125));
        let stale: Vec<_> = t
            .violations()
            .iter()
            .filter(|v| v.kind == ViolationKind::StaleAtEnd)
            .collect();
        assert!(!stale.is_empty());
        assert!(stale.iter().all(|v| v.flat_bank == 1));
    }

    #[test]
    fn weak_row_violates_under_normal_schedule() {
        let mut t = RetentionTracker::new(1, 64, cfg(64, 1));
        t.set_weak_rows(&[WeakRow {
            flat_bank: 0,
            row: 17,
            limit: Ps::from_us(20),
        }]);
        sweep(&mut t, 64, 8, Ps::ZERO, Ps::from_us(8));
        sweep(&mut t, 64, 8, Ps::from_us(64), Ps::from_us(8));
        let weak: Vec<_> = t
            .violations()
            .iter()
            .filter(|v| v.kind == ViolationKind::WeakRow)
            .collect();
        assert!(
            !weak.is_empty(),
            "weak row must violate under a tREFW-period schedule"
        );
        assert_eq!(weak[0].row_start, 17);
        assert_eq!(weak[0].limit, Ps::from_us(20));
    }

    #[test]
    fn wrap_around_coverage_is_exact() {
        let mut t = RetentionTracker::new(1, 10, cfg(64, 1));
        // Commands of 4 rows over a 10-row bank force wrap splits.
        for i in 0..25u64 {
            t.on_refresh(0, 4, Ps::from_us(6 * i)).unwrap();
        }
        t.finalize(Ps::from_us(150));
        assert!(t.is_clean(), "{:?}", t.violations());
    }

    #[test]
    fn refresh_faults_lookup() {
        let f = RefreshFaults {
            skip: vec![3, 10, 11],
            delay: vec![(5, Ps::from_us(2))],
            weak_rows: vec![],
        };
        assert!(f.skips(10) && !f.skips(4));
        assert_eq!(f.delay_for(5), Ps::from_us(2));
        assert_eq!(f.delay_for(6), Ps::ZERO);
        assert!(!f.is_empty());
        assert!(RefreshFaults::default().is_empty());
    }

    #[test]
    fn detail_cap_keeps_counting() {
        let mut t = RetentionTracker::new(1, 4, cfg(1, 0));
        for i in 0..200u64 {
            // Every command violates (period 10us >> 1us limit).
            t.on_refresh(0, 4, Ps::from_us(10 * (i + 1))).unwrap();
        }
        assert_eq!(t.violations().len(), DETAIL_CAP);
        assert_eq!(t.total_violations(), 200);
    }
}

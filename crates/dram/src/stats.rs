//! Memory-controller statistics.

use serde::{Deserialize, Serialize};

use crate::time::Ps;

/// Counters collected by a [`crate::controller::MemoryController`].
///
/// All counters are cumulative since construction or the last
/// [`ControllerStats::reset`]; the controller's warm-up handling calls
/// `reset` at the measurement boundary.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Read requests accepted into the read queue.
    pub reads_enqueued: u64,
    /// Write requests accepted into the write queue.
    pub writes_enqueued: u64,
    /// Reads whose data was returned.
    pub reads_completed: u64,
    /// Writes whose data was written to DRAM.
    pub writes_completed: u64,
    /// Reads served by forwarding from a queued write (no DRAM access).
    pub forwarded_reads: u64,
    /// Column accesses that hit the open row.
    pub row_hits: u64,
    /// Column accesses that required opening a closed row.
    pub row_misses: u64,
    /// Column accesses that required closing a different open row first.
    pub row_conflicts: u64,
    /// All-bank (rank-level) refresh commands issued.
    pub refreshes_ab: u64,
    /// Per-bank refresh commands issued.
    pub refreshes_pb: u64,
    /// Total lateness of refresh commands past their due instants.
    pub refresh_postpone_total: Ps,
    /// Worst single refresh postponement.
    pub refresh_postpone_max: Ps,
    /// Sum of read latencies (arrival → last data beat).
    pub read_latency_total: Ps,
    /// Worst single read latency.
    pub read_latency_max: Ps,
    /// Completed reads that were delayed by an in-progress refresh at
    /// some point while queued.
    pub refresh_blocked_reads: u64,
    /// Time the data bus carried data.
    pub data_bus_busy: Ps,
    /// Read enqueue attempts rejected because the queue was full.
    pub queue_reject_reads: u64,
    /// Write enqueue attempts rejected because the queue was full.
    pub queue_reject_writes: u64,
    /// Write-drain episodes entered (high-watermark crossings).
    pub write_drains: u64,
    /// Retention violations found by the integrity oracle. Unlike the
    /// other counters this mirrors the tracker's *run-cumulative* total
    /// (integrity is a property of the whole run, not the measurement
    /// window), so it survives the warm-up `reset`.
    pub retention_violations: u64,
    /// Refresh commands dropped by the active fault plan.
    pub injected_skip_faults: u64,
    /// Refresh commands delayed by the active fault plan.
    pub injected_delay_faults: u64,
}

impl ControllerStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes every counter (measurement-phase boundary).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Folds another channel's counters into this one for multi-channel
    /// aggregation: counts and time totals add, worst-case fields take
    /// the max. Accumulating a default (all-zero) value is the identity.
    pub fn accumulate(&mut self, other: &ControllerStats) {
        self.reads_enqueued += other.reads_enqueued;
        self.writes_enqueued += other.writes_enqueued;
        self.reads_completed += other.reads_completed;
        self.writes_completed += other.writes_completed;
        self.forwarded_reads += other.forwarded_reads;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.refreshes_ab += other.refreshes_ab;
        self.refreshes_pb += other.refreshes_pb;
        self.refresh_postpone_total += other.refresh_postpone_total;
        self.refresh_postpone_max = self.refresh_postpone_max.max(other.refresh_postpone_max);
        self.read_latency_total += other.read_latency_total;
        self.read_latency_max = self.read_latency_max.max(other.read_latency_max);
        self.refresh_blocked_reads += other.refresh_blocked_reads;
        self.data_bus_busy += other.data_bus_busy;
        self.queue_reject_reads += other.queue_reject_reads;
        self.queue_reject_writes += other.queue_reject_writes;
        self.write_drains += other.write_drains;
        self.retention_violations += other.retention_violations;
        self.injected_skip_faults += other.injected_skip_faults;
        self.injected_delay_faults += other.injected_delay_faults;
    }

    /// Average read latency, or `None` if no read completed.
    pub fn avg_read_latency(&self) -> Option<Ps> {
        let n = self.reads_completed.saturating_sub(self.forwarded_reads);
        if n == 0 {
            None
        } else {
            Some(self.read_latency_total / n)
        }
    }

    /// Average read latency in DRAM clock cycles of period `tck`.
    pub fn avg_read_latency_cycles(&self, tck: Ps) -> Option<f64> {
        self.avg_read_latency()
            .map(|l| l.as_ps() as f64 / tck.as_ps() as f64)
    }

    /// Row-buffer hit rate over all classified column accesses.
    pub fn row_hit_rate(&self) -> Option<f64> {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            None
        } else {
            Some(self.row_hits as f64 / total as f64)
        }
    }

    /// Total refresh commands of either granularity.
    pub fn refreshes_total(&self) -> u64 {
        self.refreshes_ab + self.refreshes_pb
    }

    /// Completed DRAM commands of every kind the controller retires —
    /// column accesses plus refreshes. The denominator for the
    /// `ns_per_command` benchmark metric (wall time spent per retired
    /// command), so the figure stays comparable across scenarios with
    /// different read/write/refresh mixes.
    pub fn commands_total(&self) -> u64 {
        self.reads_completed + self.writes_completed + self.refreshes_ab + self.refreshes_pb
    }

    /// Data-bus utilization over `elapsed` wall-clock simulation time.
    pub fn bus_utilization(&self, elapsed: Ps) -> f64 {
        if elapsed == Ps::ZERO {
            0.0
        } else {
            self.data_bus_busy.as_ps() as f64 / elapsed.as_ps() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_empty_are_none() {
        let s = ControllerStats::new();
        assert_eq!(s.avg_read_latency(), None);
        assert_eq!(s.row_hit_rate(), None);
        assert_eq!(s.bus_utilization(Ps::ZERO), 0.0);
    }

    #[test]
    fn averages_and_rates() {
        let s = ControllerStats {
            reads_completed: 4,
            read_latency_total: Ps::from_ns(400),
            row_hits: 3,
            row_misses: 1,
            row_conflicts: 0,
            data_bus_busy: Ps::from_ns(50),
            ..Default::default()
        };
        assert_eq!(s.avg_read_latency(), Some(Ps::from_ns(100)));
        assert_eq!(s.row_hit_rate(), Some(0.75));
        assert!((s.bus_utilization(Ps::from_ns(100)) - 0.5).abs() < 1e-12);
        let cycles = s.avg_read_latency_cycles(Ps::from_ps(1_250)).unwrap();
        assert!((cycles - 80.0).abs() < 1e-9);
    }

    #[test]
    fn forwarded_reads_excluded_from_latency_average() {
        let s = ControllerStats {
            reads_completed: 5,
            forwarded_reads: 1,
            read_latency_total: Ps::from_ns(400),
            ..Default::default()
        };
        assert_eq!(s.avg_read_latency(), Some(Ps::from_ns(100)));
    }

    #[test]
    fn commands_total_spans_column_and_refresh_commands() {
        let s = ControllerStats {
            reads_completed: 4,
            writes_completed: 3,
            refreshes_ab: 2,
            refreshes_pb: 5,
            ..Default::default()
        };
        assert_eq!(s.commands_total(), 14);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = ControllerStats {
            reads_completed: 9,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, ControllerStats::new());
    }
}

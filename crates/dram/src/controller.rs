//! The per-channel memory controller: FR-FCFS scheduling, open-row
//! policy, batched write draining, and refresh execution.
//!
//! The controller is a discrete-event machine: [`MemoryController::advance_to`]
//! replays all command issue up to a target instant, and
//! [`MemoryController::next_event_time`] tells the surrounding system
//! when the controller next wants to act. Commands are aligned to the
//! DRAM clock grid and one command may issue per clock (command-bus
//! constraint), which makes the event-driven schedule equal to the
//! cycle-by-cycle one.

use serde::{Deserialize, Serialize};

use crate::backend::TickPath;
use crate::bank::{BankLanes, BankPhase, RankState, SavedBank, SavedRank, NO_ROW};
use crate::error::{ControllerSnapshot, DramError};
use crate::geometry::BankId;
use crate::integrity::{IntegrityConfig, RefreshFaults, RetentionTracker, SavedTracker};
use crate::mapping::AddressMapping;
use crate::refresh::{
    BusyForecast, PolicyTable, QueueSnapshot, RefreshOp, RefreshPolicy, RefreshPolicyKind,
};
use crate::request::{Completion, MemRequest, ReqId, ReqKind};
use crate::stats::ControllerStats;
use crate::time::Ps;
use crate::timing::{RefreshTiming, TimingParams};

/// Queue sizing and write-drain watermarks (Table 1 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Read queue capacity.
    pub read_queue: usize,
    /// Write queue capacity.
    pub write_queue: usize,
    /// Enter write-drain when the write queue reaches this depth.
    pub wq_high: usize,
    /// Leave write-drain when the write queue falls to this depth.
    pub wq_low: usize,
    /// Epoch for bandwidth-utilization reporting to the refresh policy.
    pub utilization_epoch: Ps,
    /// Enable the [`RetentionTracker`] oracle (per-row retention
    /// accounting; costs memory proportional to refresh granularity).
    pub track_retention: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            read_queue: 64,
            write_queue: 64,
            wq_high: 54,
            wq_low: 32,
            utilization_epoch: Ps::from_us(8),
            track_retention: false,
        }
    }
}

/// Error returned by [`MemoryController::enqueue`] when the target queue
/// is full; the caller must retry after draining completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory controller transaction queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// A DRAM command kind, as recorded in the command trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceCmd {
    /// Row activate.
    Act {
        /// Activated row.
        row: u32,
    },
    /// Column read.
    Rd,
    /// Column write.
    Wr,
    /// Precharge.
    Pre,
    /// Rank-level (all-bank) refresh.
    RefAb,
    /// Bank-level refresh.
    RefPb,
}

/// One issued command in the trace (see
/// [`MemoryController::enable_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Issue instant.
    pub at: Ps,
    /// The command.
    pub cmd: TraceCmd,
    /// Target rank.
    pub rank: u8,
    /// Target bank within the rank (`u8::MAX` for rank-wide commands).
    pub bank: u8,
}

/// Portable image of one queued transaction (see
/// [`MemoryController::save_state`]). The DRAM [`crate::mapping::Location`]
/// is not stored — it is re-derived from `paddr` through the rebuilt
/// controller's address mapping on restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedEntry {
    /// Requester-assigned id ([`crate::request::ReqId`] payload).
    pub id: u64,
    /// True for a write transaction.
    pub write: bool,
    /// Physical byte address.
    pub paddr: u64,
    /// Queue-entry arrival instant.
    pub arrival: Ps,
    /// Originating core.
    pub core: u8,
    /// Originating task.
    pub task: u32,
    /// The request has needed an ACT so far (row miss).
    pub needed_act: bool,
    /// The request has needed a PRE first (row conflict).
    pub needed_pre: bool,
    /// The request was delayed by refresh at some point.
    pub refresh_blocked: bool,
}

/// Portable image of a refresh that was due but not yet issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedPendingRefresh {
    /// The selected refresh command.
    pub op: RefreshOp,
    /// The policy's scheduled due instant.
    pub due: Ps,
    /// Extra issue delay injected by the active fault plan.
    pub injected_delay: Ps,
}

/// Portable image of the full dynamic state of a [`MemoryController`],
/// produced by [`MemoryController::save_state`].
///
/// Captures everything needed to resume to a bit-identical future:
/// bank/rank timing state, both transaction queues, bus bookkeeping,
/// the in-flight refresh, utilization-epoch accumulators, undrained
/// completions, statistics, the retention-oracle ledger, and the refresh
/// policy's internal schedule (as opaque words). Deliberately *not*
/// captured: the command trace buffer (diagnostic only) and the fault
/// plan / configuration (both are inputs re-supplied when the controller
/// is rebuilt).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedController {
    /// Per-bank state, flat-indexed.
    pub banks: Vec<SavedBank>,
    /// Per-rank state.
    pub ranks: Vec<SavedRank>,
    /// Read queue entries, in queue order.
    pub read_q: Vec<SavedEntry>,
    /// Write queue entries, in queue order.
    pub write_q: Vec<SavedEntry>,
    /// Whether the controller is in write-drain mode.
    pub draining: bool,
    /// The event cursor.
    pub cursor: Ps,
    /// Command bus free instant.
    pub cmd_bus_free: Ps,
    /// Data bus free instant.
    pub data_bus_free: Ps,
    /// Rank owning the last data-bus transfer.
    pub data_bus_owner: Option<u8>,
    /// Refresh awaiting its scope to go idle, if any.
    pub pending_refresh: Option<SavedPendingRefresh>,
    /// Start of the current utilization epoch.
    pub epoch_start: Ps,
    /// Bus-busy time accumulated in the current epoch.
    pub epoch_bus_busy: Ps,
    /// Utilization reported for the previous epoch.
    pub last_utilization: f64,
    /// Read completions produced but not yet drained.
    pub completions: Vec<Completion>,
    /// Statistics accumulated so far.
    pub stats: ControllerStats,
    /// Retention-oracle ledger (present iff tracking was enabled).
    pub integrity: Option<SavedTracker>,
    /// Global refresh command sequence number.
    pub refresh_seq: u64,
    /// Refresh policy internal schedule, in the policy's own word format.
    pub policy_words: Vec<u64>,
}

/// A queued transaction plus scheduling bookkeeping.
#[derive(Debug, Clone)]
struct Entry {
    req: MemRequest,
    /// This request has (so far) needed an ACT (row miss).
    needed_act: bool,
    /// This request has needed a PRE first (row conflict).
    needed_pre: bool,
    /// The request was delayed by refresh at some point.
    refresh_blocked: bool,
}

impl Entry {
    fn new(req: MemRequest) -> Self {
        Entry {
            req,
            needed_act: false,
            needed_pre: false,
            refresh_blocked: false,
        }
    }
}

/// A refresh that has become due and is waiting for its scope to go idle.
#[derive(Debug, Clone)]
struct PendingRefresh {
    op: RefreshOp,
    due: Ps,
    /// Extra issue delay injected by the active fault plan.
    injected_delay: Ps,
}

/// Serving-queue depth at or below which the batched tick plans via
/// the scalar walk instead of the lane scan: the scan's fixed setup
/// (rank floors + a full `act_floor` pass) beats the walk only once a
/// handful of entries share it. Only the queue FR-FCFS is actually
/// serving counts — a deep write queue behind a read-serving walk
/// contributes no per-entry work.
const SMALL_PLAN_QUEUE: usize = 6;

/// A memoized planning decision: the result of [`MemoryController::plan`]
/// at a given cursor, valid until the next state mutation.
#[derive(Debug, Clone, Copy)]
struct PlanCache {
    /// Cursor the plan was computed at.
    cursor: Ps,
    /// The cached decision.
    result: Option<(Ps, Action)>,
}

/// Reusable scratch for the batched planner: per-rank issue floors
/// hoisted out of the queue walk (every entry on a rank shares them).
/// Kept on the controller so steady-state planning allocates nothing.
#[derive(Debug, Default)]
struct PlanScratch {
    /// Earliest ACT per rank (tRRD / tFAW window / refresh lockout).
    rank_act: Vec<Ps>,
    /// Earliest CAS issue per rank for the direction being served
    /// (turnaround + data-bus handoff, minus the CAS latency).
    rank_cas: Vec<Ps>,
    /// Earliest-ACT floor per bank ([`Ps::MAX`]-sentinel for Active
    /// banks, which must precharge first).
    act_floor: Vec<Ps>,
}

/// The next thing the controller will do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Fix the target of the refresh that became due (policy `select`).
    SelectRefresh,
    /// Precharge `bank` so a pending refresh can start.
    PreForRefresh { flat: usize },
    /// Start the pending refresh.
    IssueRefresh,
    /// Precharge for queue entry `idx` (row conflict).
    Pre { idx: usize, flat: usize },
    /// Activate the row for queue entry `idx`.
    Act { idx: usize, flat: usize },
    /// Column access for queue entry `idx`.
    Cas { idx: usize, flat: usize },
}

/// Per-channel DDR memory controller.
///
/// # Examples
///
/// ```
/// use refsim_dram::controller::MemoryController;
/// use refsim_dram::geometry::Geometry;
/// use refsim_dram::mapping::{AddressMapping, MappingScheme};
/// use refsim_dram::refresh::RefreshPolicyKind;
/// use refsim_dram::request::{MemRequest, ReqId, ReqKind};
/// use refsim_dram::time::Ps;
/// use refsim_dram::timing::{Density, RefreshTiming, Retention, TimingParams};
///
/// let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
/// let mut mc = MemoryController::new(
///     mapping,
///     TimingParams::ddr3_1600(),
///     RefreshTiming::new(Density::Gb32, Retention::Ms64),
///     RefreshPolicyKind::PerBankSequential,
///     Default::default(),
/// );
/// let req = MemRequest {
///     id: ReqId(1),
///     kind: ReqKind::Read,
///     paddr: 0x1000,
///     loc: mc.mapping().decode(0x1000),
///     arrival: Ps::ZERO,
///     core: 0,
///     task: 0,
/// };
/// mc.enqueue(req)?;
/// mc.advance_to(Ps::from_us(1));
/// assert_eq!(mc.drain_completions().len(), 1);
/// # Ok::<(), refsim_dram::controller::QueueFull>(())
/// ```
#[derive(Debug)]
pub struct MemoryController {
    mapping: AddressMapping,
    timing: TimingParams,
    refresh_timing: RefreshTiming,
    policy: Box<dyn RefreshPolicy>,
    cfg: ControllerConfig,

    lanes: BankLanes,
    ranks: Vec<RankState>,
    banks_per_rank: u32,

    /// Which planner runs ([`TickPath::Batched`] lanes scan by default;
    /// the scalar reference walk is the bit-identity anchor).
    tick_path: TickPath,
    /// Cached decision table of the active refresh policy.
    policy_table: PolicyTable,
    /// Memoized plan, invalidated on any mutation or cursor change.
    plan_cache: Option<PlanCache>,
    /// Allocation-free scratch for the batched planner.
    scratch: PlanScratch,

    read_q: Vec<Entry>,
    write_q: Vec<Entry>,
    draining: bool,

    cursor: Ps,
    cmd_bus_free: Ps,
    data_bus_free: Ps,
    data_bus_owner: Option<u8>,

    pending_refresh: Option<PendingRefresh>,

    epoch_start: Ps,
    epoch_bus_busy: Ps,
    last_utilization: f64,

    completions: Vec<Completion>,
    stats: ControllerStats,
    trace: Option<Vec<TraceEntry>>,

    /// Retention-integrity oracle (None unless enabled).
    integrity: Option<RetentionTracker>,
    /// Active refresh fault plan (empty by default).
    faults: RefreshFaults,
    /// Global refresh command sequence number (keys fault injection).
    refresh_seq: u64,
}

impl MemoryController {
    /// Creates a controller for the channel described by `mapping`.
    pub fn new(
        mapping: AddressMapping,
        timing: TimingParams,
        refresh_timing: RefreshTiming,
        policy: RefreshPolicyKind,
        cfg: ControllerConfig,
    ) -> Self {
        timing
            .validate()
            .unwrap_or_else(|e| panic!("invalid timing: {e}"));
        let g = *mapping.geometry();
        let policy = crate::refresh::build_policy(policy, &refresh_timing, &g);
        let n_banks = g.banks_per_channel() as usize;
        let integrity = cfg.track_retention.then(|| {
            RetentionTracker::new(
                n_banks as u32,
                g.rows_per_bank,
                Self::default_integrity_config(&refresh_timing),
            )
        });
        let policy_table = policy.table();
        MemoryController {
            mapping,
            timing,
            refresh_timing,
            policy,
            cfg,
            lanes: BankLanes::new(n_banks),
            ranks: (0..g.ranks_per_channel).map(|_| RankState::new()).collect(),
            banks_per_rank: g.banks_per_rank,
            tick_path: TickPath::default(),
            policy_table,
            plan_cache: None,
            scratch: PlanScratch::default(),
            read_q: Vec::with_capacity(cfg.read_queue),
            write_q: Vec::with_capacity(cfg.write_queue),
            draining: false,
            cursor: Ps::ZERO,
            cmd_bus_free: Ps::ZERO,
            data_bus_free: Ps::ZERO,
            data_bus_owner: None,
            pending_refresh: None,
            epoch_start: Ps::ZERO,
            epoch_bus_busy: Ps::ZERO,
            last_utilization: 0.0,
            completions: Vec::new(),
            stats: ControllerStats::new(),
            trace: None,
            integrity,
            faults: RefreshFaults::default(),
            refresh_seq: 0,
        }
    }

    /// The oracle threshold used when retention tracking is enabled via
    /// [`ControllerConfig::track_retention`]: the scaled `tREFW` plus a
    /// slack of nine `tREFI` covering JEDEC's eight-interval postponement
    /// allowance (exploited in full by the elastic policy) plus one
    /// in-flight command.
    pub fn default_integrity_config(rt: &RefreshTiming) -> IntegrityConfig {
        IntegrityConfig {
            limit: rt.trefw,
            slack: rt.trefi_ab * 9,
        }
    }

    /// Starts recording every issued DRAM command. Used by the timing
    /// auditor in the test suite and for debugging; costs a small
    /// allocation per command while enabled.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the commands recorded since
    /// [`enable_trace`](Self::enable_trace) / the previous call.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Appends the commands recorded since the previous drain to `out`
    /// and clears the internal buffer, without allocating: the hot-path
    /// form of [`take_trace`](Self::take_trace) — the caller owns (and
    /// reuses) the destination buffer, so steady-state stepping performs
    /// zero per-step allocations once both buffers reach their high-water
    /// capacity.
    pub fn drain_trace_into(&mut self, out: &mut Vec<TraceEntry>) {
        if let Some(t) = &mut self.trace {
            out.append(t);
        }
    }

    fn record(&mut self, at: Ps, cmd: TraceCmd, rank: u8, bank: u8) {
        if let Some(t) = &mut self.trace {
            t.push(TraceEntry {
                at,
                cmd,
                rank,
                bank,
            });
        }
    }

    /// The address mapping of this channel (the hardware information the
    /// co-design exposes to the OS).
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// The refresh timing in effect.
    pub fn refresh_timing(&self) -> &RefreshTiming {
        &self.refresh_timing
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Enables the retention-integrity oracle with an explicit
    /// configuration (replacing any existing tracker). Weak rows from a
    /// previously installed fault plan are re-registered.
    pub fn enable_integrity(&mut self, cfg: IntegrityConfig) {
        let g = self.mapping.geometry();
        let mut tracker = RetentionTracker::new(g.banks_per_channel(), g.rows_per_bank, cfg);
        tracker.set_weak_rows(&self.faults.weak_rows);
        self.integrity = Some(tracker);
    }

    /// The retention oracle, if enabled.
    pub fn integrity(&self) -> Option<&RetentionTracker> {
        self.integrity.as_ref()
    }

    /// Installs a deterministic refresh fault plan. Weak rows are
    /// registered with the oracle when one is enabled (enable integrity
    /// first — weak rows are invisible without the oracle).
    pub fn inject_faults(&mut self, faults: RefreshFaults) {
        if let Some(t) = &mut self.integrity {
            t.set_weak_rows(&faults.weak_rows);
        }
        self.faults = faults;
        self.plan_cache = None;
    }

    /// Runs the end-of-run retention audit at `now` and returns the
    /// total violation count (0 when tracking is disabled). Also folds
    /// the count into [`ControllerStats::retention_violations`].
    pub fn audit_retention(&mut self, now: Ps) -> u64 {
        match &mut self.integrity {
            Some(t) => {
                t.finalize(now);
                let total = t.total_violations();
                self.stats.retention_violations = total;
                total
            }
            None => 0,
        }
    }

    /// A diagnostic digest of current controller state (attached to
    /// [`DramError`]s; also useful for logging).
    pub fn state_snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            cursor: self.cursor,
            read_q: self.read_q.len(),
            write_q: self.write_q.len(),
            draining: self.draining,
            pending_refresh_due: self.pending_refresh.as_ref().map(|p| p.due),
            next_refresh_due: self.policy.next_due(),
            policy: self.policy.kind(),
            refreshes_issued: self.refresh_seq,
            retention_violations: self.integrity.as_ref().map_or(0, |t| t.total_violations()),
        }
    }

    /// Zeroes statistics (measurement-phase boundary). Bank state and
    /// schedules are left untouched.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Selects which planner the controller runs: the batched
    /// [`BankLanes`] scan (default) or the scalar reference walk kept as
    /// the bit-identity anchor. Both produce identical command schedules
    /// — the knob exists so equivalence tests and benchmarks can pit
    /// them against each other.
    pub fn set_tick_path(&mut self, path: TickPath) {
        self.tick_path = path;
        self.plan_cache = None;
    }

    /// The active tick path.
    pub fn tick_path(&self) -> TickPath {
        self.tick_path
    }

    /// The refresh-schedule forecast for `[start, end)` — the co-design's
    /// HW→SW interface (§5.1).
    pub fn refresh_forecast(&self, start: Ps, end: Ps) -> BusyForecast {
        self.policy.forecast(start, end)
    }

    /// Next refresh-schedule boundary after `t`, for quantum alignment.
    pub fn refresh_boundary_after(&self, t: Ps) -> Option<Ps> {
        self.policy.next_boundary(t)
    }

    /// Per-bank activity summary: `(bank, activations, rows refreshed,
    /// time spent refreshing)` for every bank of the channel — handy for
    /// visualizing how partitioning confines traffic and how the refresh
    /// schedule distributes bank lockout.
    pub fn bank_report(&self) -> Vec<(BankId, u64, u64, Ps)> {
        (0..self.lanes.len())
            .map(|f| {
                (
                    BankId::from_flat(f as u32, self.banks_per_rank),
                    self.lanes.activations(f),
                    self.lanes.rows_refreshed(f),
                    self.lanes.refresh_busy_total(f),
                )
            })
            .collect()
    }

    /// Whether a read can be accepted right now.
    pub fn can_accept_read(&self) -> bool {
        self.read_q.len() < self.cfg.read_queue
    }

    /// Whether a write can be accepted right now.
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.cfg.write_queue
    }

    /// Current queue occupancy `(reads, writes)`.
    pub fn queue_depths(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    /// Submits a transaction.
    ///
    /// Reads that match a queued write are served by store-forwarding
    /// and complete after a fixed 4-clock turnaround without a DRAM
    /// access.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] if the target queue is at capacity; the caller
    /// should retry after the controller makes progress.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        match req.kind {
            ReqKind::Read => {
                if let Some(w) = self.write_q.iter().find(|e| e.req.paddr == req.paddr) {
                    debug_assert_eq!(w.req.kind, ReqKind::Write);
                    let at = req.arrival + self.timing.tck * 4;
                    self.completions.push(Completion {
                        id: req.id,
                        at,
                        latency: at - req.arrival,
                    });
                    self.stats.reads_completed += 1;
                    self.stats.forwarded_reads += 1;
                    return Ok(());
                }
                if !self.can_accept_read() {
                    self.stats.queue_reject_reads += 1;
                    return Err(QueueFull);
                }
                self.stats.reads_enqueued += 1;
                self.plan_cache = None;
                let mut e = Entry::new(req);
                e.refresh_blocked = self.arrives_into_refresh(&req);
                self.read_q.push(e);
            }
            ReqKind::Write => {
                if !self.can_accept_write() {
                    self.stats.queue_reject_writes += 1;
                    return Err(QueueFull);
                }
                self.stats.writes_enqueued += 1;
                self.plan_cache = None;
                let mut e = Entry::new(req);
                e.refresh_blocked = self.arrives_into_refresh(&req);
                self.write_q.push(e);
                if !self.draining && self.write_q.len() >= self.cfg.wq_high {
                    self.draining = true;
                    self.stats.write_drains += 1;
                }
            }
        }
        Ok(())
    }

    /// Takes all read completions produced since the last call.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Appends all read completions produced since the last drain to
    /// `out` and clears the internal buffer — the allocation-free form of
    /// [`drain_completions`](Self::drain_completions) for callers that
    /// reuse one buffer across steps.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    /// Whether undrained read completions are buffered.
    pub fn has_completions(&self) -> bool {
        !self.completions.is_empty()
    }

    /// End of the current bandwidth-utilization epoch: the next instant
    /// at which an advance will roll the epoch accumulator and report
    /// utilization to the refresh policy. The event-skip engine never
    /// leaps a controller with queued transactions across this boundary,
    /// so the roll ↔ CAS interleaving matches fixed-step advancement.
    pub fn next_epoch_roll(&self) -> Ps {
        self.epoch_start + self.cfg.utilization_epoch
    }

    /// The furthest instant a single `try_advance_to` call may target
    /// while remaining interleaving-equivalent to a chain of smaller
    /// advances through the same instants, or `None` when the channel is
    /// completely inert (no queued transactions and no refresh schedule)
    /// and can be leapt arbitrarily far.
    ///
    /// The binding boundary is the utilization-epoch roll: an advance
    /// rolls every epoch ending at or before its target *before*
    /// executing the span's actions, so leaping a non-inert channel
    /// across a roll would let refresh-rate decisions (which consult
    /// per-epoch utilization) observe a different history than stepwise
    /// advancement — the event-skip engine stops short of it instead.
    pub fn advance_cap(&self) -> Option<Ps> {
        let inert = self.read_q.is_empty()
            && self.write_q.is_empty()
            && self.pending_refresh.is_none()
            && self.policy.next_due().is_none();
        if inert {
            None
        } else {
            Some(self.next_epoch_roll())
        }
    }

    /// The instant of the controller's next internally scheduled action,
    /// or `None` when it is fully idle (no queued work and no refresh —
    /// only possible under [`RefreshPolicyKind::NoRefresh`]).
    pub fn next_event_time(&mut self) -> Option<Ps> {
        self.plan().map(|(t, _)| t)
    }

    /// Advances the controller, executing every command that issues at or
    /// before `target`. Read completions are buffered for
    /// [`drain_completions`](Self::drain_completions).
    ///
    /// Panics on the faults [`try_advance_to`](Self::try_advance_to)
    /// reports — callers that must degrade gracefully (the experiment
    /// harness) use the fallible form instead.
    pub fn advance_to(&mut self, target: Ps) {
        if let Err(e) = self.try_advance_to(target) {
            panic!("memory controller fault: {e}");
        }
    }

    /// Fallible form of [`advance_to`](Self::advance_to).
    ///
    /// # Errors
    ///
    /// - [`DramError::TimeRegression`] if `target` precedes the cursor
    ///   (previously a `debug_assert!` that release builds skipped).
    /// - [`DramError::Livelock`] if the command scheduler executes more
    ///   actions inside the window than the command bus could physically
    ///   issue — forward progress has stopped. Both errors carry a
    ///   [`ControllerSnapshot`] for post-hoc diagnosis.
    /// - [`DramError::BrokenInvariant`] if an internal consistency
    ///   condition fails while executing an action (refresh machinery or
    ///   retention-oracle bookkeeping).
    pub fn try_advance_to(&mut self, target: Ps) -> Result<(), DramError> {
        self.advance_loop(target, false).map(|_| ())
    }

    /// Advances like [`try_advance_to`](Self::try_advance_to), but stops
    /// immediately after the first action that produces a read
    /// completion, returning its issue instant; the cursor is left at
    /// that action and a later `try_advance_to` resumes seamlessly.
    /// Returns `None` after a full advance to `target` with no
    /// completion.
    ///
    /// The event-skip engine uses this to discover how far the machine
    /// can leap while every core is stalled: the first completion bounds
    /// the skip, because delivering it can unblock a core.
    ///
    /// # Errors
    ///
    /// Exactly those of [`try_advance_to`](Self::try_advance_to).
    pub fn try_advance_until_completion(&mut self, target: Ps) -> Result<Option<Ps>, DramError> {
        self.advance_loop(target, true)
    }

    fn advance_loop(
        &mut self,
        target: Ps,
        stop_on_completion: bool,
    ) -> Result<Option<Ps>, DramError> {
        if target < self.cursor {
            return Err(DramError::TimeRegression {
                cursor: self.cursor,
                target,
                snapshot: Box::new(self.state_snapshot()),
            });
        }
        // Forward-progress watchdog: per DRAM clock at most one command
        // issues, plus bounded non-issuing actions (refresh selection /
        // postponement). Anything past this budget is a planning loop.
        let ticks = (target - self.cursor).as_ps() / self.timing.tck.as_ps().max(1);
        let budget = 10_000 + ticks.saturating_mul(4);
        let from = self.cursor;
        let mut iterations = 0u64;
        loop {
            self.roll_epochs(target);
            match self.plan() {
                Some((at, action)) if at <= target => {
                    iterations += 1;
                    if iterations > budget {
                        return Err(DramError::Livelock {
                            from,
                            to: target,
                            iterations,
                            snapshot: Box::new(self.state_snapshot()),
                        });
                    }
                    self.cursor = at;
                    let had = self.completions.len();
                    self.execute(action, at)?;
                    if stop_on_completion && self.completions.len() > had {
                        return Ok(Some(at));
                    }
                }
                _ => break,
            }
        }
        self.cursor = target;
        self.roll_epochs(target);
        Ok(None)
    }

    /// Captures the controller's full dynamic state for checkpointing.
    ///
    /// The image pairs with a controller rebuilt from the *same*
    /// configuration (mapping, timing, policy kind, queue sizing):
    /// restore re-derives DRAM locations from physical addresses and
    /// hands the policy back its schedule words, so any structural
    /// mismatch is rejected by [`restore_state`](Self::restore_state).
    pub fn save_state(&self) -> SavedController {
        let save_entry = |e: &Entry| SavedEntry {
            id: e.req.id.0,
            write: !e.req.is_read(),
            paddr: e.req.paddr,
            arrival: e.req.arrival,
            core: e.req.core,
            task: e.req.task,
            needed_act: e.needed_act,
            needed_pre: e.needed_pre,
            refresh_blocked: e.refresh_blocked,
        };
        SavedController {
            banks: (0..self.lanes.len())
                .map(|f| self.lanes.save_lane(f))
                .collect(),
            ranks: self.ranks.iter().map(RankState::save_state).collect(),
            read_q: self.read_q.iter().map(save_entry).collect(),
            write_q: self.write_q.iter().map(save_entry).collect(),
            draining: self.draining,
            cursor: self.cursor,
            cmd_bus_free: self.cmd_bus_free,
            data_bus_free: self.data_bus_free,
            data_bus_owner: self.data_bus_owner,
            pending_refresh: self.pending_refresh.as_ref().map(|p| SavedPendingRefresh {
                op: p.op,
                due: p.due,
                injected_delay: p.injected_delay,
            }),
            epoch_start: self.epoch_start,
            epoch_bus_busy: self.epoch_bus_busy,
            last_utilization: self.last_utilization,
            completions: self.completions.clone(),
            stats: self.stats.clone(),
            integrity: self.integrity.as_ref().map(RetentionTracker::save_state),
            refresh_seq: self.refresh_seq,
            policy_words: self.policy.save_words(),
        }
    }

    /// Restores the dynamic state captured by
    /// [`save_state`](Self::save_state) into this controller, which must
    /// have been built with the same configuration.
    ///
    /// # Errors
    ///
    /// A description of the first structural mismatch (bank/rank counts,
    /// queue overflow, integrity-tracking presence, or policy words the
    /// active policy rejects). The controller may be partially updated
    /// when an error is returned; callers treat that as fatal and
    /// discard it.
    pub fn restore_state(&mut self, s: &SavedController) -> Result<(), String> {
        if s.banks.len() != self.lanes.len() {
            return Err(format!(
                "bank count mismatch: saved {}, controller {}",
                s.banks.len(),
                self.lanes.len()
            ));
        }
        if s.ranks.len() != self.ranks.len() {
            return Err(format!(
                "rank count mismatch: saved {}, controller {}",
                s.ranks.len(),
                self.ranks.len()
            ));
        }
        if s.read_q.len() > self.cfg.read_queue {
            return Err(format!(
                "saved read queue ({}) exceeds capacity {}",
                s.read_q.len(),
                self.cfg.read_queue
            ));
        }
        if s.write_q.len() > self.cfg.write_queue {
            return Err(format!(
                "saved write queue ({}) exceeds capacity {}",
                s.write_q.len(),
                self.cfg.write_queue
            ));
        }
        if !self.policy.load_words(&s.policy_words) {
            return Err(format!(
                "refresh policy {:?} rejected {} saved schedule words",
                self.policy.kind(),
                s.policy_words.len()
            ));
        }
        match (&mut self.integrity, &s.integrity) {
            (Some(t), Some(saved)) => t
                .restore_state(saved)
                .map_err(|e| format!("retention tracker: {e}"))?,
            (None, None) => {}
            (have, _) => {
                return Err(format!(
                    "integrity tracking mismatch: saved {}, controller {}",
                    if s.integrity.is_some() { "on" } else { "off" },
                    if have.is_some() { "on" } else { "off" },
                ));
            }
        }
        for (f, saved) in s.banks.iter().enumerate() {
            self.lanes.restore_lane(f, saved);
        }
        for (r, saved) in self.ranks.iter_mut().zip(&s.ranks) {
            r.restore_state(saved);
        }
        let load_entry = |e: &SavedEntry, mapping: &AddressMapping| Entry {
            req: MemRequest {
                id: ReqId(e.id),
                kind: if e.write {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                },
                paddr: e.paddr,
                loc: mapping.decode(e.paddr),
                arrival: e.arrival,
                core: e.core,
                task: e.task,
            },
            needed_act: e.needed_act,
            needed_pre: e.needed_pre,
            refresh_blocked: e.refresh_blocked,
        };
        self.read_q = s
            .read_q
            .iter()
            .map(|e| load_entry(e, &self.mapping))
            .collect();
        self.write_q = s
            .write_q
            .iter()
            .map(|e| load_entry(e, &self.mapping))
            .collect();
        self.draining = s.draining;
        self.cursor = s.cursor;
        self.cmd_bus_free = s.cmd_bus_free;
        self.data_bus_free = s.data_bus_free;
        self.data_bus_owner = s.data_bus_owner;
        self.pending_refresh = s.pending_refresh.map(|p| PendingRefresh {
            op: p.op,
            due: p.due,
            injected_delay: p.injected_delay,
        });
        self.epoch_start = s.epoch_start;
        self.epoch_bus_busy = s.epoch_bus_busy;
        self.last_utilization = s.last_utilization;
        self.completions = s.completions.clone();
        self.stats = s.stats.clone();
        self.refresh_seq = s.refresh_seq;
        self.plan_cache = None;
        Ok(())
    }

    // ---- internals ----------------------------------------------------

    /// Whether `req` arrives while its bank (or rank) is mid-refresh.
    fn arrives_into_refresh(&self, req: &MemRequest) -> bool {
        let flat = self.flat(req.loc.bank_id());
        self.lanes.refresh_end(flat) > req.arrival
            || self.ranks[req.loc.rank as usize].is_refreshing(req.arrival)
    }

    fn flat(&self, b: BankId) -> usize {
        b.flat(self.banks_per_rank) as usize
    }

    fn unflat(&self, flat: usize) -> (u8, u8) {
        let id = BankId::from_flat(flat as u32, self.banks_per_rank);
        (id.rank, id.bank)
    }

    /// Banks covered by a refresh op, as flat indices.
    fn refresh_scope(&self, op: &RefreshOp) -> (usize, usize) {
        match *op {
            RefreshOp::AllBank { rank, .. } => {
                let b = self.banks_per_rank as usize;
                (usize::from(rank) * b, usize::from(rank) * b + b)
            }
            RefreshOp::PerBank { bank, .. } => {
                let f = self.flat(bank);
                (f, f + 1)
            }
        }
    }

    fn in_refresh_scope(&self, flat: usize) -> bool {
        match &self.pending_refresh {
            Some(p) => {
                let (lo, hi) = self.refresh_scope(&p.op);
                flat >= lo && flat < hi
            }
            None => false,
        }
    }

    fn snapshot(&self) -> QueueSnapshot {
        let mut per_bank_queued = vec![0u32; self.lanes.len()];
        for e in self.read_q.iter().chain(self.write_q.iter()) {
            per_bank_queued[self.flat(e.req.loc.bank_id())] += 1;
        }
        QueueSnapshot {
            per_bank_queued,
            utilization: self.last_utilization,
        }
    }

    fn roll_epochs(&mut self, now: Ps) {
        let epoch = self.cfg.utilization_epoch;
        if self.epoch_start + epoch > now {
            return; // nothing to roll — the overwhelmingly common case
        }
        // Rolling can change last_utilization and (for adaptive-style
        // policies) the refresh schedule itself.
        self.plan_cache = None;
        // Decision table: the utilization callback is a no-op for every
        // policy that does not observe it — skip the virtual dispatch on
        // the batched path.
        let skip_observe =
            self.tick_path == TickPath::Batched && !self.policy_table.observes_utilization;
        while self.epoch_start + epoch <= now {
            let busy = self.epoch_bus_busy.min(epoch);
            self.last_utilization = busy.as_ps() as f64 / epoch.as_ps() as f64;
            self.epoch_bus_busy = self.epoch_bus_busy.saturating_sub(busy);
            self.epoch_start += epoch;
            let u = self.last_utilization;
            let t = self.epoch_start;
            if !skip_observe {
                self.policy.observe_utilization(u, t);
            }
        }
    }

    /// Aligns `t` to the command clock grid, no earlier than the command
    /// bus becoming free or the controller cursor.
    fn align(&self, t: Ps) -> Ps {
        t.max(self.cmd_bus_free)
            .max(self.cursor)
            .round_up(self.timing.tck)
    }

    /// Earliest instant the data bus allows a column command at `t_cas`,
    /// whose data occupies `[t_cas + lat, t_cas + lat + tBURST)`.
    fn bus_ready_cas(&self, rank: u8, lat: Ps) -> Ps {
        let mut free = self.data_bus_free;
        if let Some(owner) = self.data_bus_owner {
            if owner != rank {
                free += self.timing.trtrs;
            }
        }
        free.saturating_sub(lat)
    }

    /// Computes the controller's next action and its issue time,
    /// dispatching on the active [`TickPath`].
    ///
    /// On the batched path the decision is memoized: planning is pure in
    /// everything but the idempotent in-scope settles, so the result
    /// stays valid until the cursor moves or state mutates (enqueue,
    /// execute, epoch roll, restore — each clears the memo). This
    /// removes the double planning pass the engines otherwise pay per
    /// step (`next_event_time` followed by the advance itself).
    fn plan(&mut self) -> Option<(Ps, Action)> {
        match self.tick_path {
            TickPath::Batched => {
                if let Some(c) = &self.plan_cache {
                    if c.cursor == self.cursor {
                        return c.result;
                    }
                }
                // Planner selection by occupancy: the batched scan
                // pre-computes per-rank floors and a full `act_floor`
                // lane pass, a fixed cost that only amortizes once the
                // walk visits enough queue entries. Near-empty queues
                // (the stall-serialized regime: one or two dependent
                // loads in flight) plan cheaper through the scalar
                // walk. Both planners are bit-identical, so this is a
                // pure cost choice; the memo covers either result.
                let serving_depth = if self.draining || self.read_q.is_empty() {
                    self.write_q.len()
                } else {
                    self.read_q.len()
                };
                let result = if serving_depth <= SMALL_PLAN_QUEUE {
                    self.plan_reference()
                } else {
                    self.plan_batched()
                };
                self.plan_cache = Some(PlanCache {
                    cursor: self.cursor,
                    result,
                });
                result
            }
            TickPath::ScalarReference => self.plan_reference(),
        }
    }

    /// Considers refresh machinery (priority 0) for either planner:
    /// settles in-scope banks at the cursor, proposes PREs for open
    /// in-scope banks, and proposes the refresh itself once the scope is
    /// idle. `consider`-equivalent tie-breaking is preserved by visiting
    /// candidates in the same order as the original single-pass walk.
    fn plan_refresh_candidates(&mut self, best: &mut Option<(Ps, u8, Action)>) {
        let consider = Self::consider;
        if let Some(p) = &self.pending_refresh {
            let op = p.op;
            // Injected delay shifts the issue instant; the schedule and
            // lateness stats still reference the policy's `due`.
            let earliest = p.due + p.injected_delay;
            let (lo, hi) = self.refresh_scope(&op);
            // Settle any finished refreshes in scope before inspecting.
            for f in lo..hi {
                self.lanes.settle(f, self.cursor);
            }
            // Precharge open banks in scope first.
            let mut all_idle = true;
            let mut ready = earliest;
            for f in lo..hi {
                match self.lanes.phase(f) {
                    BankPhase::Active => {
                        all_idle = false;
                        // Active banks always report an earliest-PRE
                        // instant; a None here would mean the phase
                        // machine desynchronized — skip the bank and let
                        // the livelock watchdog surface the stall.
                        if let Some(pre) = self.lanes.earliest_pre(f) {
                            let t = self.align(pre);
                            consider(
                                Some((t.max(earliest), 0, Action::PreForRefresh { flat: f })),
                                best,
                            );
                        }
                        // Only plan one PRE at a time (command bus serializes
                        // anyway); the earliest is picked by `consider`.
                    }
                    BankPhase::Refreshing => {
                        all_idle = false;
                        ready = ready.max(self.lanes.refresh_end(f));
                    }
                    BankPhase::Idle => {
                        if let Some(r) = self.lanes.earliest_refresh(f) {
                            ready = ready.max(r);
                        }
                    }
                }
            }
            if all_idle {
                let t = self.align(ready);
                consider(Some((t, 0, Action::IssueRefresh)), best);
            }
        } else if let Some(due) = self.policy.next_due() {
            consider(Some((due.max(self.cursor), 0, Action::SelectRefresh)), best);
        }
    }

    /// FR-FCFS tie-breaking: earliest time wins, then lowest priority
    /// class, then first-considered (queue order).
    fn consider(cand: Option<(Ps, u8, Action)>, best: &mut Option<(Ps, u8, Action)>) {
        if let Some((t, p, a)) = cand {
            let better = match best {
                None => true,
                Some((bt, bp, _)) => t < *bt || (t == *bt && p < *bp),
            };
            if better {
                *best = Some((t, p, a));
            }
        }
    }

    /// The scalar reference planner: the pre-batching walk, reading one
    /// bank's state at a time through the per-lane accessors. Kept
    /// verbatim as the bit-identity and performance anchor for
    /// [`plan_batched`](Self::plan_batched) (selected via
    /// [`TickPath::ScalarReference`]).
    fn plan_reference(&mut self) -> Option<(Ps, Action)> {
        let mut best: Option<(Ps, u8, Action)> = None; // (time, priority, action)

        // Refresh machinery (priority 0).
        self.plan_refresh_candidates(&mut best);

        // Transaction scheduling: FR-FCFS over the active queue.
        let serving_writes = self.draining || self.read_q.is_empty();
        let queue: &[Entry] = if serving_writes {
            &self.write_q
        } else {
            &self.read_q
        };
        for (idx, e) in queue.iter().enumerate() {
            let flat = self.flat(e.req.loc.bank_id());
            if self.in_refresh_scope(flat) {
                continue; // scope frozen until the refresh issues
            }
            let rank = e.req.loc.rank;
            let rk = &self.ranks[rank as usize];
            let is_write = !e.req.is_read();
            // A request cannot be serviced before it arrives (cores may
            // run slightly ahead of the controller cursor).
            let arr = e.req.arrival;
            // Row hit → CAS (priority 1: first-ready-FCFS).
            if self.lanes.phase(flat) == BankPhase::Active
                && self.lanes.is_row_hit(flat, e.req.loc.row)
            {
                let Some(cas0) = self.lanes.earliest_cas(flat, e.req.loc.row) else {
                    continue; // phase/row-hit disagree: skip, don't abort
                };
                let rank_ready = if is_write {
                    rk.earliest_wr()
                } else {
                    rk.earliest_rd()
                };
                let lat = if is_write {
                    self.timing.tcwl
                } else {
                    self.timing.tcl
                };
                let t = self.align(
                    cas0.max(rank_ready)
                        .max(self.bus_ready_cas(rank, lat))
                        .max(arr),
                );
                Self::consider(Some((t, 1, Action::Cas { idx, flat })), &mut best);
            } else if self.lanes.phase(flat) == BankPhase::Active {
                // Row conflict → PRE (priority 2, FCFS order by queue pos).
                let Some(pre) = self.lanes.earliest_pre(flat) else {
                    continue;
                };
                let t = self.align(pre.max(arr));
                Self::consider(Some((t, 2, Action::Pre { idx, flat })), &mut best);
            } else {
                // Idle or refreshing → ACT when possible.
                let act0 = match self.lanes.earliest_act(flat) {
                    Some(t) => t,
                    None => continue,
                };
                let t = self.align(act0.max(rk.earliest_act(&self.timing)).max(arr));
                Self::consider(Some((t, 2, Action::Act { idx, flat })), &mut best);
            }
        }

        best.map(|(t, _, a)| (t, a))
    }

    /// The batched planner: the same decision procedure as
    /// [`plan_reference`](Self::plan_reference), restructured around the
    /// [`BankLanes`] arrays. Per-bank ready-times are computed by one
    /// contiguous scan over the lanes, and per-rank issue floors (tFAW
    /// window, turnaround, data-bus handoff) are hoisted out of the
    /// queue walk — the reference walk recomputes both per queue entry.
    /// Candidate visit order matches the reference walk exactly, so
    /// tie-breaking (and therefore the command schedule) is
    /// bit-identical; the `dram/tests/lanes.rs` suite enforces this
    /// across every refresh policy.
    fn plan_batched(&mut self) -> Option<(Ps, Action)> {
        let mut best: Option<(Ps, u8, Action)> = None; // (time, priority, action)

        // Refresh machinery (priority 0) — shared with the reference
        // planner; the scope spans at most one rank's lanes.
        self.plan_refresh_candidates(&mut best);

        let serving_writes = self.draining || self.read_q.is_empty();
        let queue: &[Entry] = if serving_writes {
            &self.write_q
        } else {
            &self.read_q
        };
        if queue.is_empty() {
            return best.map(|(t, _, a)| (t, a));
        }

        // Hoist per-rank floors: every entry on a rank shares them.
        let lat = if serving_writes {
            self.timing.tcwl
        } else {
            self.timing.tcl
        };
        let data_bus_free = self.data_bus_free;
        let data_bus_owner = self.data_bus_owner;
        let trtrs = self.timing.trtrs;
        self.scratch.rank_act.clear();
        self.scratch.rank_cas.clear();
        for (r, rk) in self.ranks.iter().enumerate() {
            self.scratch.rank_act.push(rk.earliest_act(&self.timing));
            let rank_ready = if serving_writes {
                rk.earliest_wr()
            } else {
                rk.earliest_rd()
            };
            let mut bus_free = data_bus_free;
            if let Some(owner) = data_bus_owner {
                if owner != r as u8 {
                    bus_free += trtrs;
                }
            }
            self.scratch
                .rank_cas
                .push(rank_ready.max(bus_free.saturating_sub(lat)));
        }

        // One contiguous scan over the lanes: the earliest-ACT floor per
        // bank (Ps::MAX marks Active banks, which must precharge first).
        self.scratch.act_floor.clear();
        let phases = self.lanes.phase_lanes();
        let acts = self.lanes.act_lanes();
        let busys = self.lanes.busy_lanes();
        for f in 0..phases.len() {
            self.scratch.act_floor.push(match phases[f] {
                BankPhase::Active => Ps::MAX,
                BankPhase::Refreshing => busys[f].max(acts[f]),
                BankPhase::Idle => acts[f],
            });
        }

        let scope = self
            .pending_refresh
            .as_ref()
            .map(|p| self.refresh_scope(&p.op));
        let rows = self.lanes.row_lanes();
        let cas_l = self.lanes.cas_lanes();
        let pre_l = self.lanes.pre_lanes();
        for (idx, e) in queue.iter().enumerate() {
            let flat = self.flat(e.req.loc.bank_id());
            if let Some((lo, hi)) = scope {
                if flat >= lo && flat < hi {
                    continue; // scope frozen until the refresh issues
                }
            }
            let rank = e.req.loc.rank as usize;
            let arr = e.req.arrival;
            // `rows[flat]` folds the phase check into the row compare:
            // the lane holds NO_ROW unless the bank is Active with a row
            // latched, so one compare classifies hit vs conflict.
            if rows[flat] == e.req.loc.row {
                let t = self.align(cas_l[flat].max(self.scratch.rank_cas[rank]).max(arr));
                Self::consider(Some((t, 1, Action::Cas { idx, flat })), &mut best);
            } else if rows[flat] != NO_ROW {
                let t = self.align(pre_l[flat].max(arr));
                Self::consider(Some((t, 2, Action::Pre { idx, flat })), &mut best);
            } else {
                let act0 = self.scratch.act_floor[flat];
                debug_assert_ne!(act0, Ps::MAX, "Active bank with no open row");
                let t = self.align(act0.max(self.scratch.rank_act[rank]).max(arr));
                Self::consider(Some((t, 2, Action::Act { idx, flat })), &mut best);
            }
        }

        best.map(|(t, _, a)| (t, a))
    }

    fn execute(&mut self, action: Action, at: Ps) -> Result<(), DramError> {
        // Every action mutates scheduling state; the memoized plan dies.
        self.plan_cache = None;
        match action {
            Action::SelectRefresh => {
                // Decision table: when neither `select` nor
                // `try_postpone` reads queue occupancy the per-bank scan
                // is dead work — hand over an empty snapshot instead
                // (batched path only; the scalar reference keeps the
                // pre-existing sequence verbatim).
                let snap = if self.tick_path == TickPath::Batched && !self.policy_table.reads_queue
                {
                    QueueSnapshot {
                        per_bank_queued: Vec::new(),
                        utilization: self.last_utilization,
                    }
                } else {
                    self.snapshot()
                };
                // Elastic-style policies may defer the refresh into a
                // quieter moment (bounded internally); re-plan if so.
                // Policies whose table says they never postpone skip the
                // virtual probe on the batched path (it always answers
                // `false`).
                if (self.tick_path != TickPath::Batched || self.policy_table.postpones)
                    && self.policy.try_postpone(&snap, at)
                {
                    return Ok(());
                }
                let op = self.policy.select(&snap);
                let Some(due) = self.policy.next_due() else {
                    return Err(DramError::BrokenInvariant {
                        what: format!(
                            "SelectRefresh executed at {at} but the policy \
                             reports no due refresh"
                        ),
                    });
                };
                let injected_delay = self.faults.delay_for(self.refresh_seq);
                if injected_delay > Ps::ZERO {
                    self.stats.injected_delay_faults += 1;
                }
                self.pending_refresh = Some(PendingRefresh {
                    op,
                    due,
                    injected_delay,
                });
            }
            Action::PreForRefresh { flat } => {
                self.lanes.do_pre(flat, at, &self.timing);
                let (r, b) = self.unflat(flat);
                self.record(at, TraceCmd::Pre, r, b);
                self.bump_cmd_bus(at);
            }
            Action::IssueRefresh => {
                let Some(p) = self.pending_refresh.take() else {
                    return Err(DramError::BrokenInvariant {
                        what: format!("IssueRefresh executed at {at} with no pending refresh"),
                    });
                };
                let seq = self.refresh_seq;
                self.refresh_seq += 1;
                if self.faults.skips(seq) {
                    // Injected skip: the command is dropped on the floor.
                    // The policy believes it issued (its schedule moves
                    // on) but no rows are refreshed and the oracle's
                    // sweep cursor stays put — exactly the silent
                    // data-loss scenario the tracker must expose.
                    self.stats.injected_skip_faults += 1;
                    self.policy.issued(&p.op, at);
                    return Ok(());
                }
                let dur = self.policy.duration(&p.op);
                let (lo, hi) = self.refresh_scope(&p.op);
                let rows = match p.op {
                    RefreshOp::AllBank { rows, .. } | RefreshOp::PerBank { rows, .. } => rows,
                };
                for f in lo..hi {
                    self.lanes.settle(f, at);
                    self.lanes.do_refresh(f, at, dur, rows);
                }
                if let Some(t) = &mut self.integrity {
                    for f in lo..hi {
                        t.on_refresh(f as u32, rows, at)?;
                    }
                    self.stats.retention_violations = t.total_violations();
                }
                match p.op {
                    RefreshOp::AllBank { rank, .. } => {
                        self.ranks[rank as usize].on_all_bank_refresh(at, dur);
                        self.stats.refreshes_ab += 1;
                        self.record(at, TraceCmd::RefAb, rank, u8::MAX);
                    }
                    RefreshOp::PerBank { bank, .. } => {
                        self.stats.refreshes_pb += 1;
                        self.record(at, TraceCmd::RefPb, bank.rank, bank.bank);
                    }
                }
                let late = at.saturating_sub(p.due);
                self.stats.refresh_postpone_total += late;
                self.stats.refresh_postpone_max = self.stats.refresh_postpone_max.max(late);
                self.policy.issued(&p.op, at);
                self.bump_cmd_bus(at);
                // Mark queued requests to the refreshed banks as blocked.
                for e in self.read_q.iter_mut().chain(self.write_q.iter_mut()) {
                    let f = e.req.loc.bank_id().flat(self.banks_per_rank) as usize;
                    if f >= lo && f < hi {
                        e.refresh_blocked = true;
                    }
                }
            }
            Action::Pre { idx, flat } => {
                let serving_writes = self.draining || self.read_q.is_empty();
                {
                    let q = if serving_writes {
                        &mut self.write_q
                    } else {
                        &mut self.read_q
                    };
                    q[idx].needed_pre = true;
                }
                self.lanes.do_pre(flat, at, &self.timing);
                let (r, b) = self.unflat(flat);
                self.record(at, TraceCmd::Pre, r, b);
                self.bump_cmd_bus(at);
            }
            Action::Act { idx, flat } => {
                self.lanes.settle(flat, at);
                let serving_writes = self.draining || self.read_q.is_empty();
                let (row, rank) = {
                    let q = if serving_writes {
                        &mut self.write_q
                    } else {
                        &mut self.read_q
                    };
                    q[idx].needed_act = true;
                    (q[idx].req.loc.row, q[idx].req.loc.rank)
                };
                self.lanes.do_act(flat, at, row, &self.timing);
                self.ranks[rank as usize].on_act(at, &self.timing);
                let (r, b) = self.unflat(flat);
                self.record(at, TraceCmd::Act { row }, r, b);
                self.bump_cmd_bus(at);
            }
            Action::Cas { idx, flat } => {
                let serving_writes = self.draining || self.read_q.is_empty();
                let entry = if serving_writes {
                    self.write_q.remove(idx)
                } else {
                    self.read_q.remove(idx)
                };
                let rank = entry.req.loc.rank;
                // Row-locality classification.
                if entry.needed_pre {
                    self.stats.row_conflicts += 1;
                } else if entry.needed_act {
                    self.stats.row_misses += 1;
                } else {
                    self.stats.row_hits += 1;
                }
                if entry.refresh_blocked && entry.req.is_read() {
                    self.stats.refresh_blocked_reads += 1;
                }
                {
                    let (r, b) = self.unflat(flat);
                    let cmd = if entry.req.is_read() {
                        TraceCmd::Rd
                    } else {
                        TraceCmd::Wr
                    };
                    self.record(at, cmd, r, b);
                }
                let data_end = if entry.req.is_read() {
                    let end = self.lanes.do_read(flat, at, &self.timing);
                    self.stats.reads_completed += 1;
                    let latency = end - entry.req.arrival;
                    self.stats.read_latency_total += latency;
                    self.stats.read_latency_max = self.stats.read_latency_max.max(latency);
                    self.completions.push(Completion {
                        id: entry.req.id,
                        at: end,
                        latency,
                    });
                    end
                } else {
                    let end = self.lanes.do_write(flat, at, &self.timing);
                    self.ranks[rank as usize].on_write(end, &self.timing);
                    self.stats.writes_completed += 1;
                    end
                };
                self.data_bus_free = data_end;
                self.data_bus_owner = Some(rank);
                self.stats.data_bus_busy += self.timing.tburst;
                self.epoch_bus_busy += self.timing.tburst;
                if serving_writes && self.draining && self.write_q.len() <= self.cfg.wq_low {
                    self.draining = false;
                }
                self.bump_cmd_bus(at);
            }
        }
        Ok(())
    }

    fn bump_cmd_bus(&mut self, at: Ps) {
        self.cmd_bus_free = at + self.timing.tck;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::mapping::MappingScheme;
    use crate::request::ReqId;
    use crate::timing::{Density, Retention};

    fn mc(policy: RefreshPolicyKind) -> MemoryController {
        let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
        MemoryController::new(
            mapping,
            TimingParams::ddr3_1600(),
            RefreshTiming::new(Density::Gb32, Retention::Ms64),
            policy,
            ControllerConfig::default(),
        )
    }

    fn read_req(mc: &MemoryController, id: u64, paddr: u64, at: Ps) -> MemRequest {
        MemRequest {
            id: ReqId(id),
            kind: ReqKind::Read,
            paddr,
            loc: mc.mapping().decode(paddr),
            arrival: at,
            core: 0,
            task: 0,
        }
    }

    fn write_req(mc: &MemoryController, id: u64, paddr: u64, at: Ps) -> MemRequest {
        MemRequest {
            kind: ReqKind::Write,
            ..read_req(mc, id, paddr, at)
        }
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let mut c = mc(RefreshPolicyKind::NoRefresh);
        let r = read_req(&c, 1, 0x10_0000, Ps::ZERO);
        c.enqueue(r).unwrap();
        c.advance_to(Ps::from_us(1));
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        let t = TimingParams::ddr3_1600();
        // ACT at tCK-aligned 0, RD at tRCD (aligned), data done CL+tBURST later.
        let rd_at = t.trcd.round_up(t.tck);
        assert_eq!(done[0].at, rd_at + t.tcl + t.tburst);
        assert_eq!(c.stats().row_misses, 1);
        assert_eq!(c.stats().reads_completed, 1);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut c = mc(RefreshPolicyKind::NoRefresh);
        c.enqueue(read_req(&c, 1, 0x10_0000, Ps::ZERO)).unwrap();
        c.advance_to(Ps::from_us(1));
        let first = c.drain_completions()[0];
        // Same row, next line.
        c.enqueue(read_req(&c, 2, 0x10_0040, Ps::from_us(1)))
            .unwrap();
        c.advance_to(Ps::from_us(2));
        let second = c.drain_completions()[0];
        assert!(second.latency < first.latency);
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_needs_pre_act() {
        let mut c = mc(RefreshPolicyKind::NoRefresh);
        c.enqueue(read_req(&c, 1, 0x10_0000, Ps::ZERO)).unwrap();
        c.advance_to(Ps::from_us(1));
        c.drain_completions();
        // Same bank, different row: row stride for default mapping is
        // 4 KiB × banks × ranks × channels = 64 KiB.
        c.enqueue(read_req(&c, 2, 0x11_0000, Ps::from_us(1)))
            .unwrap();
        c.advance_to(Ps::from_us(2));
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(c.stats().row_conflicts, 1);
    }

    #[test]
    fn store_forwarding_serves_read_from_write_queue() {
        let mut c = mc(RefreshPolicyKind::NoRefresh);
        c.enqueue(write_req(&c, 1, 0x20_0000, Ps::ZERO)).unwrap();
        c.enqueue(read_req(&c, 2, 0x20_0000, Ps::ZERO)).unwrap();
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, ReqId(2));
        assert_eq!(c.stats().forwarded_reads, 1);
    }

    #[test]
    fn queue_full_rejects() {
        let mut c = mc(RefreshPolicyKind::NoRefresh);
        for i in 0..64 {
            c.enqueue(read_req(&c, i, 0x100_0000 + i * 0x10_0000, Ps::ZERO))
                .unwrap();
        }
        let err = c.enqueue(read_req(&c, 99, 0x0, Ps::ZERO));
        assert_eq!(err, Err(QueueFull));
        assert_eq!(c.stats().queue_reject_reads, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_until_high_watermark() {
        let mut c = mc(RefreshPolicyKind::NoRefresh);
        // A read and a write to different banks: the read is served first
        // because writes are not drained below the watermark.
        c.enqueue(write_req(&c, 1, 0x30_0000, Ps::ZERO)).unwrap();
        c.enqueue(read_req(&c, 2, 0x40_0000, Ps::ZERO)).unwrap();
        c.advance_to(Ps::from_ns(60));
        assert_eq!(c.stats().reads_completed, 1);
        assert_eq!(c.stats().writes_completed, 0);
        // With no reads left, the write drains opportunistically.
        c.advance_to(Ps::from_us(1));
        assert_eq!(c.stats().writes_completed, 1);
    }

    #[test]
    fn write_drain_enters_at_high_watermark() {
        let mut c = mc(RefreshPolicyKind::NoRefresh);
        // Keep a steady read stream while filling the write queue.
        for i in 0..54u64 {
            c.enqueue(write_req(
                &c,
                1000 + i,
                0x800_0000 + i * 0x10_0000,
                Ps::ZERO,
            ))
            .unwrap();
        }
        assert_eq!(c.stats().write_drains, 1);
        c.advance_to(Ps::from_us(5));
        // Drained down to the low watermark, then stopped (no reads).
        // Opportunistic service continues since the read queue is empty,
        // so eventually all writes complete.
        assert!(c.stats().writes_completed >= (54 - 32));
    }

    #[test]
    fn all_bank_refresh_blocks_rank_and_is_counted() {
        let mut c = mc(RefreshPolicyKind::AllBank);
        c.advance_to(Ps::from_us(80)); // > 10 tREFI
                                       // 2 ranks × one refresh per tREFI each... staggered halves: about
                                       // 80us / 7.8us ≈ 10 per rank... total ≈ 20.
        let n = c.stats().refreshes_ab;
        assert!((18..=22).contains(&n), "got {n} all-bank refreshes");
        assert_eq!(c.stats().refreshes_pb, 0);
    }

    #[test]
    fn per_bank_refresh_counts() {
        let mut c = mc(RefreshPolicyKind::PerBankRoundRobin);
        c.advance_to(Ps::from_us(78));
        // tREFIpb = 487.5 ns → ~160 per-bank refreshes in 78 µs.
        let n = c.stats().refreshes_pb;
        assert!((155..=165).contains(&n), "got {n} per-bank refreshes");
    }

    #[test]
    fn read_to_refreshing_bank_waits_for_trfc() {
        let mut c = mc(RefreshPolicyKind::PerBankSequential);
        // Sequential schedule refreshes r0b0 first. Let one refresh start,
        // then issue a read to r0b0: it must wait ~tRFCpb.
        c.advance_to(Ps::from_ns(200)); // first refresh issued at ~0
        assert_eq!(c.stats().refreshes_pb, 1);
        let r = read_req(&c, 1, 0, Ps::from_ns(200)); // paddr 0 → r0b0
        assert_eq!(r.loc.bank_id(), BankId::new(0, 0));
        c.enqueue(r).unwrap();
        c.advance_to(Ps::from_us(2));
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        // tRFCpb = 890/2.3 ≈ 387 ns: the read could not start before that.
        assert!(
            done[0].latency > Ps::from_ns(150),
            "latency {} too small to have been refresh-blocked",
            done[0].latency
        );
        assert_eq!(c.stats().refresh_blocked_reads, 1);
    }

    #[test]
    fn read_to_other_bank_proceeds_during_per_bank_refresh() {
        let mut c = mc(RefreshPolicyKind::PerBankSequential);
        c.advance_to(Ps::from_ns(100));
        // r0b1 is free while r0b0 refreshes.
        let paddr = 0x1000; // bank bits follow column: 0x1000 >> 12 & 7 = 1
        let r = read_req(&c, 1, paddr, Ps::from_ns(100));
        assert_eq!(r.loc.bank_id(), BankId::new(0, 1));
        c.enqueue(r).unwrap();
        c.advance_to(Ps::from_us(1));
        let done = c.drain_completions();
        assert_eq!(done.len(), 1);
        let t = TimingParams::ddr3_1600();
        let unloaded = t.trcd + t.tcl + t.tburst + t.tck * 2;
        assert!(
            done[0].latency <= unloaded,
            "latency {} should be unloaded (≤ {unloaded})",
            done[0].latency
        );
    }

    #[test]
    fn next_event_time_tracks_refresh_when_idle() {
        let mut c = mc(RefreshPolicyKind::AllBank);
        assert_eq!(c.next_event_time(), Some(Ps::ZERO)); // first refresh select
        let mut n = mc(RefreshPolicyKind::NoRefresh);
        assert_eq!(n.next_event_time(), None);
    }

    #[test]
    fn bank_report_reflects_traffic_and_refresh() {
        let mut c = mc(RefreshPolicyKind::PerBankSequential);
        // One read to bank r0b1 plus the sequential schedule hitting r0b0.
        c.enqueue(read_req(&c, 1, 0x1000, Ps::ZERO)).unwrap();
        c.advance_to(Ps::from_us(2));
        let report = c.bank_report();
        assert_eq!(report.len(), 16);
        let b0 = &report[0];
        let b1 = &report[1];
        assert_eq!(b0.0, BankId::new(0, 0));
        assert!(b0.2 > 0, "bank 0 refreshed rows");
        assert!(b0.3 > Ps::ZERO, "bank 0 spent time refreshing");
        assert_eq!(b1.1, 1, "bank 1 activated once for the read");
        assert_eq!(b1.2, 0, "bank 1 not refreshed yet");
    }

    #[test]
    fn determinism_same_inputs_same_stats() {
        let run = || {
            let mut c = mc(RefreshPolicyKind::PerBankRoundRobin);
            for i in 0..200u64 {
                let paddr = (i * 0x9E37_79B9) & ((1 << 30) - 1) & !0x3f;
                let at = Ps::from_ns(i * 37);
                c.advance_to(at);
                let req = if i % 4 == 0 {
                    write_req(&c, i, paddr, at)
                } else {
                    read_req(&c, i, paddr, at)
                };
                let _ = c.enqueue(req);
            }
            c.advance_to(Ps::from_us(100));
            format!("{:?}", c.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn time_regression_is_a_typed_error() {
        let mut c = mc(RefreshPolicyKind::AllBank);
        c.advance_to(Ps::from_us(10));
        match c.try_advance_to(Ps::from_us(5)) {
            Err(DramError::TimeRegression {
                cursor,
                target,
                snapshot,
            }) => {
                assert_eq!(cursor, Ps::from_us(10));
                assert_eq!(target, Ps::from_us(5));
                assert_eq!(snapshot.policy, RefreshPolicyKind::AllBank);
                assert!(snapshot.refreshes_issued > 0);
            }
            other => panic!("expected TimeRegression, got {other:?}"),
        }
        // The error is recoverable: the controller still advances forward.
        c.try_advance_to(Ps::from_us(20)).unwrap();
    }

    #[test]
    #[should_panic(expected = "memory controller fault: time went backwards")]
    fn advance_to_rewind_fails_loudly_even_in_release() {
        let mut c = mc(RefreshPolicyKind::NoRefresh);
        c.advance_to(Ps::from_us(10));
        c.advance_to(Ps::from_us(5));
    }

    #[test]
    fn refresh_coverage_under_load() {
        // Even with a saturating request stream, every bank must receive
        // its refresh coverage within one (scaled) retention window.
        let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
        let timing = RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 512);
        let trefw = timing.trefw;
        let mut c = MemoryController::new(
            mapping,
            TimingParams::ddr3_1600(),
            timing,
            RefreshPolicyKind::PerBankSequential,
            ControllerConfig::default(),
        );
        let mut t = Ps::ZERO;
        let mut id = 0u64;
        while t < trefw {
            c.advance_to(t);
            let paddr = id.wrapping_mul(0x5851_F42D_4C95_7F2D) & ((32u64 << 30) - 1) & !0x3f;
            let _ = c.enqueue(read_req(&c, id, paddr, t));
            id += 1;
            t += Ps::from_ns(50);
        }
        c.advance_to(trefw + Ps::from_us(10));
        // All 16 banks × full row coverage: commands = 16 × ceil-ish; at
        // scale 512 the window is 125 µs, tREFIpb = 487.5 ns → 256 cmds.
        assert!(c.stats().refreshes_pb >= 250, "{}", c.stats().refreshes_pb);
    }
}

//! DRAM topology: channels, DIMMs, ranks, banks, rows and columns.
//!
//! The geometry mirrors Figure 1 of the paper: each memory controller
//! drives one *channel*; a channel holds one or more *DIMMs*; each DIMM
//! holds *ranks*; each rank holds *banks*; each bank is a 2-D array of
//! *rows* (one DRAM page, typically 4 KiB) by *columns* (cache lines).
//!
//! # Examples
//!
//! ```
//! use refsim_dram::geometry::Geometry;
//!
//! let g = Geometry::ddr3_2rank_8bank(512 * 1024); // 32 Gb devices
//! assert_eq!(g.banks_per_channel(), 16);
//! assert_eq!(g.bank_bytes(), 512 * 1024 * 4096);
//! assert_eq!(g.total_bytes(), 2 * 8 * 512 * 1024 * 4096);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a bank within a single channel: `(rank, bank)`.
///
/// This is the unit at which per-bank refresh operates and the unit the
/// co-design exposes to the OS ("the bank that will be refreshed next").
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BankId {
    /// Rank index within the channel.
    pub rank: u8,
    /// Bank index within the rank.
    pub bank: u8,
}

impl BankId {
    /// Creates a bank id.
    pub const fn new(rank: u8, bank: u8) -> Self {
        BankId { rank, bank }
    }

    /// Flat index of this bank in `[0, ranks * banks_per_rank)`, ordered
    /// rank-major — the indexing used by Algorithm 1's `refreshBankIdx`.
    pub fn flat(self, banks_per_rank: u32) -> u32 {
        u32::from(self.rank) * banks_per_rank + u32::from(self.bank)
    }

    /// Inverse of [`BankId::flat`].
    pub fn from_flat(flat: u32, banks_per_rank: u32) -> Self {
        BankId {
            rank: (flat / banks_per_rank) as u8,
            bank: (flat % banks_per_rank) as u8,
        }
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}b{}", self.rank, self.bank)
    }
}

/// A fully decoded DRAM location for one cache-line request.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Channel index.
    pub channel: u8,
    /// Rank index within the channel.
    pub rank: u8,
    /// Bank index within the rank.
    pub bank: u8,
    /// Row index within the bank.
    pub row: u32,
    /// Column index (cache line within the row).
    pub col: u32,
}

impl Location {
    /// The `(rank, bank)` part of the location.
    pub fn bank_id(&self) -> BankId {
        BankId::new(self.rank, self.bank)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/r{}b{}/row{:#x}/col{}",
            self.channel, self.rank, self.bank, self.row, self.col
        )
    }
}

/// Physical organization of the memory system.
///
/// All counts must be powers of two so that address fields map to bit
/// ranges; [`Geometry::validate`] enforces this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of independent channels (memory controllers).
    pub channels: u32,
    /// Ranks per channel (DIMMs × ranks/DIMM).
    pub ranks_per_channel: u32,
    /// Banks per rank (8 for DDR3).
    pub banks_per_rank: u32,
    /// Rows per bank; scales with device density (Table 1: 256K/384K/512K
    /// for 16/24/32 Gb — 384K is rounded up to 512K-compatible mapping by
    /// using a 19-bit row field with only 384K valid rows).
    pub rows_per_bank: u32,
    /// Bytes per row (DRAM page), 4 KiB in Table 1.
    pub row_bytes: u32,
    /// Bytes per cache line / memory burst (64 B).
    pub line_bytes: u32,
}

impl Geometry {
    /// The paper's default: 1 channel, 1 DIMM, 2 ranks, 8 banks/rank,
    /// 4 KiB rows, 64 B lines, with the given `rows_per_bank`.
    pub const fn ddr3_2rank_8bank(rows_per_bank: u32) -> Self {
        Geometry {
            channels: 1,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            rows_per_bank,
            row_bytes: 4096,
            line_bytes: 64,
        }
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: all counts
    /// must be non-zero, and every count except `rows_per_bank` must be a
    /// power of two (row counts like 384 Ki are allowed; the row field is
    /// sized by `next_power_of_two`).
    pub fn validate(&self) -> Result<(), String> {
        let pow2 = |v: u32, name: &str| -> Result<(), String> {
            if v == 0 {
                Err(format!("{name} must be non-zero"))
            } else if !v.is_power_of_two() {
                Err(format!("{name} must be a power of two, got {v}"))
            } else {
                Ok(())
            }
        };
        pow2(self.channels, "channels")?;
        pow2(self.ranks_per_channel, "ranks_per_channel")?;
        pow2(self.banks_per_rank, "banks_per_rank")?;
        pow2(self.row_bytes, "row_bytes")?;
        pow2(self.line_bytes, "line_bytes")?;
        if self.rows_per_bank == 0 {
            return Err("rows_per_bank must be non-zero".to_owned());
        }
        if self.line_bytes > self.row_bytes {
            return Err("line_bytes must not exceed row_bytes".to_owned());
        }
        Ok(())
    }

    /// Banks per channel across all ranks.
    pub fn banks_per_channel(&self) -> u32 {
        self.ranks_per_channel * self.banks_per_rank
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.banks_per_channel()
    }

    /// Cache lines per row.
    pub fn lines_per_row(&self) -> u32 {
        self.row_bytes / self.line_bytes
    }

    /// Capacity of one bank in bytes.
    pub fn bank_bytes(&self) -> u64 {
        u64::from(self.rows_per_bank) * u64::from(self.row_bytes)
    }

    /// Capacity of one rank in bytes.
    pub fn rank_bytes(&self) -> u64 {
        self.bank_bytes() * u64::from(self.banks_per_rank)
    }

    /// Total system capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.rank_bytes() * u64::from(self.ranks_per_channel) * u64::from(self.channels)
    }

    /// Number of physical 4 KiB-row-sized frames... see `frame` docs in
    /// `refsim-os`; here: total cache lines in the system.
    pub fn total_lines(&self) -> u64 {
        self.total_bytes() / u64::from(self.line_bytes)
    }

    /// Bits needed for the column (line-within-row) field.
    pub fn col_bits(&self) -> u32 {
        self.lines_per_row().trailing_zeros()
    }

    /// Bits needed for the bank field.
    pub fn bank_bits(&self) -> u32 {
        self.banks_per_rank.trailing_zeros()
    }

    /// Bits needed for the rank field.
    pub fn rank_bits(&self) -> u32 {
        self.ranks_per_channel.trailing_zeros()
    }

    /// Bits needed for the channel field.
    pub fn channel_bits(&self) -> u32 {
        self.channels.trailing_zeros()
    }

    /// Bits needed for the row field (rounded up for non-power-of-two row
    /// counts such as 384 Ki).
    pub fn row_bits(&self) -> u32 {
        self.rows_per_bank.next_power_of_two().trailing_zeros()
    }

    /// Bits of the line-offset field (byte within cache line).
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Iterates over every `(rank, bank)` id in the channel, rank-major.
    pub fn bank_ids(&self) -> impl Iterator<Item = BankId> + '_ {
        let banks = self.banks_per_rank;
        (0..self.ranks_per_channel)
            .flat_map(move |r| (0..banks).map(move |b| BankId::new(r as u8, b as u8)))
    }
}

impl Default for Geometry {
    /// 32 Gb devices (512 Ki rows/bank) in the paper's 2-rank, 8-bank
    /// single-channel configuration.
    fn default() -> Self {
        Geometry::ddr3_2rank_8bank(512 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1_32gb() {
        let g = Geometry::default();
        assert_eq!(g.channels, 1);
        assert_eq!(g.ranks_per_channel, 2);
        assert_eq!(g.banks_per_rank, 8);
        assert_eq!(g.rows_per_bank, 512 * 1024);
        assert_eq!(g.row_bytes, 4096);
        assert!(g.validate().is_ok());
        // 2 GiB per bank, 16 GiB per rank, 32 GiB total.
        assert_eq!(g.bank_bytes(), 2 << 30);
        assert_eq!(g.rank_bytes(), 16 << 30);
        assert_eq!(g.total_bytes(), 32 << 30);
    }

    #[test]
    fn bit_field_widths() {
        let g = Geometry::default();
        assert_eq!(g.offset_bits(), 6);
        assert_eq!(g.col_bits(), 6); // 64 lines per 4 KiB row
        assert_eq!(g.bank_bits(), 3);
        assert_eq!(g.rank_bits(), 1);
        assert_eq!(g.channel_bits(), 0);
        assert_eq!(g.row_bits(), 19);
    }

    #[test]
    fn validate_rejects_non_pow2() {
        let g = Geometry {
            banks_per_rank: 6,
            ..Geometry::default()
        };
        assert!(g.validate().unwrap_err().contains("banks_per_rank"));
        let g = Geometry {
            channels: 0,
            ..Geometry::default()
        };
        assert!(g.validate().is_err());
        let g = Geometry {
            line_bytes: 8192,
            ..Geometry::default()
        };
        assert!(g.validate().unwrap_err().contains("line_bytes"));
    }

    #[test]
    fn non_pow2_rows_allowed_24gb() {
        let g = Geometry::ddr3_2rank_8bank(384 * 1024); // 24 Gb
        assert!(g.validate().is_ok());
        assert_eq!(g.row_bits(), 19); // rounded up to 512 Ki field
    }

    #[test]
    fn bank_id_flat_roundtrip() {
        let g = Geometry::default();
        for id in g.bank_ids() {
            let f = id.flat(g.banks_per_rank);
            assert_eq!(BankId::from_flat(f, g.banks_per_rank), id);
        }
    }

    #[test]
    fn bank_ids_is_rank_major_and_complete() {
        let g = Geometry::default();
        let ids: Vec<_> = g.bank_ids().collect();
        assert_eq!(ids.len(), 16);
        assert_eq!(ids[0], BankId::new(0, 0));
        assert_eq!(ids[7], BankId::new(0, 7));
        assert_eq!(ids[8], BankId::new(1, 0));
        assert_eq!(ids[15], BankId::new(1, 7));
    }

    #[test]
    fn display_formats() {
        assert_eq!(BankId::new(1, 5).to_string(), "r1b5");
        let loc = Location {
            channel: 0,
            rank: 1,
            bank: 2,
            row: 0x10,
            col: 3,
        };
        assert_eq!(loc.to_string(), "ch0/r1b2/row0x10/col3");
        assert_eq!(loc.bank_id(), BankId::new(1, 2));
    }
}

//! Typed diagnostic errors for the DRAM substrate.
//!
//! The controller's internal invariants used to be `debug_assert!`s,
//! which vanish in release builds — a violated invariant would silently
//! corrupt a whole figure sweep. They are now [`DramError`] values
//! carrying a [`ControllerSnapshot`] of the machine state at the point
//! of failure, so a bad run degrades into one diagnosable error row
//! instead of an abort (or worse, silence).

use std::fmt;

use crate::refresh::RefreshPolicyKind;
use crate::time::Ps;

/// A point-in-time digest of controller state, attached to diagnostic
/// errors so livelocks and time regressions can be debugged post-hoc
/// from an experiment log alone.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSnapshot {
    /// Controller cursor (last replayed instant).
    pub cursor: Ps,
    /// Read-queue occupancy.
    pub read_q: usize,
    /// Write-queue occupancy.
    pub write_q: usize,
    /// Whether the controller was in a write-drain episode.
    pub draining: bool,
    /// Due instant of the refresh waiting for its scope, if any.
    pub pending_refresh_due: Option<Ps>,
    /// Next refresh due from the policy's schedule, if any.
    pub next_refresh_due: Option<Ps>,
    /// Active refresh policy.
    pub policy: RefreshPolicyKind,
    /// Refresh commands issued so far (both granularities).
    pub refreshes_issued: u64,
    /// Retention violations recorded so far (0 when tracking is off).
    pub retention_violations: u64,
}

impl fmt::Display for ControllerSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cursor={} rq={} wq={} draining={} pending_due={:?} next_due={:?} \
             policy={} refreshes={} violations={}",
            self.cursor,
            self.read_q,
            self.write_q,
            self.draining,
            self.pending_refresh_due,
            self.next_refresh_due,
            self.policy,
            self.refreshes_issued,
            self.retention_violations,
        )
    }
}

/// Diagnostic error from the DRAM substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DramError {
    /// `advance_to` was asked to rewind: `target` precedes the cursor.
    TimeRegression {
        /// The controller's current instant.
        cursor: Ps,
        /// The (earlier) instant requested.
        target: Ps,
        /// Machine state at the failure.
        snapshot: Box<ControllerSnapshot>,
    },
    /// An internal consistency condition the scheduler relies on did
    /// not hold — e.g. a refresh issuing with nothing pending, or the
    /// retention oracle's span ring running dry. The machine state can
    /// no longer be trusted, so the run must be abandoned, not retried.
    BrokenInvariant {
        /// Human-readable description of the violated condition.
        what: String,
    },
    /// The command scheduler stopped making forward progress: more
    /// actions executed inside one `advance_to` window than the command
    /// bus could physically issue.
    Livelock {
        /// Start of the stuck replay window.
        from: Ps,
        /// End of the stuck replay window.
        to: Ps,
        /// Actions executed before the watchdog fired.
        iterations: u64,
        /// Machine state at the failure.
        snapshot: Box<ControllerSnapshot>,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::TimeRegression {
                cursor,
                target,
                snapshot,
            } => write!(
                f,
                "time went backwards: advance_to({target}) while cursor={cursor} [{snapshot}]"
            ),
            DramError::BrokenInvariant { what } => {
                write!(f, "broken controller invariant: {what}")
            }
            DramError::Livelock {
                from,
                to,
                iterations,
                snapshot,
            } => write!(
                f,
                "controller livelock: {iterations} actions replaying [{from}, {to}] \
                 without retiring the window [{snapshot}]"
            ),
        }
    }
}

impl std::error::Error for DramError {}

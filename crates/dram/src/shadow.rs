//! The shadow DRAM timing model: an independently written DDR timing
//! simulator used as a differential cross-validation anchor for the
//! primary [`crate::controller::MemoryController`].
//!
//! # Design
//!
//! The shadow is deliberately structured *differently* from the primary
//! model so the two do not share bugs:
//!
//! * **Flat per-bank ready-time records** instead of phase state
//!   machines: each bank carries the earliest instants at which it can
//!   accept an ACT, a CAS to its open row, or a PRE, plus the end of its
//!   current refresh window. Legality is pure max-algebra over those
//!   instants.
//! * **Table-driven constraints**: every inter-command gap is
//!   precomputed once from [`TimingParams`] into a [`ShadowTables`]
//!   record; the scheduler never consults raw JEDEC fields.
//! * **Transaction-chained execution**: a transaction is serviced as one
//!   atomic PRE→ACT→CAS chain whose command instants are computed up
//!   front, rather than interleaving individual commands. There is no
//!   command-bus model; chains serialize through bank, rank, and
//!   data-bus ready times only.
//!
//! What the shadow *shares* with the primary is exactly the interface
//! layer, never the timing logic: the [`crate::refresh::RefreshPolicy`]
//! objects (the schedules under test), the
//! [`crate::integrity::RetentionTracker`] oracle, the fault plan, and
//! the statistics structure. Both models drive the policies through the
//! same documented protocol (`next_due` → `try_postpone` → `select`
//! once → issue when timing allows → `issued`).
//!
//! # Divergence knob
//!
//! [`ShadowConfig::drop_refresh_every`] deliberately drops every Nth
//! refresh command (the schedule still advances, no rows are refreshed).
//! It exists to prove the differential harness catches a buggy model;
//! runs with the knob set are never cached.

use serde::{Deserialize, Serialize};

use crate::backend::{BackendDescriptor, BackendKind, MemoryBackend, SavedBackend};
use crate::controller::{
    ControllerConfig, QueueFull, SavedEntry, SavedPendingRefresh, TraceCmd, TraceEntry,
};
use crate::error::{ControllerSnapshot, DramError};
use crate::geometry::BankId;
use crate::integrity::{IntegrityConfig, RefreshFaults, RetentionTracker, SavedTracker};
use crate::mapping::AddressMapping;
use crate::refresh::{BusyForecast, QueueSnapshot, RefreshOp, RefreshPolicy, RefreshPolicyKind};
use crate::request::{Completion, MemRequest, ReqId, ReqKind};
use crate::stats::ControllerStats;
use crate::time::Ps;
use crate::timing::{RefreshTiming, TimingParams};

/// Shadow-model-specific knobs (ignored by the primary backend).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShadowConfig {
    /// Debug fault: drop every Nth refresh command (1-based; 0 = off).
    /// The policy schedule advances as if the command issued, but no
    /// rows are refreshed and no command reaches the trace — a seeded
    /// model bug for validating the differential harness.
    pub drop_refresh_every: u64,
}

impl ShadowConfig {
    /// Whether any deliberate perturbation is active.
    pub fn is_perturbed(&self) -> bool {
        self.drop_refresh_every != 0
    }
}

/// Precomputed inter-command constraint table (all durations).
#[derive(Debug, Clone, Copy)]
pub struct ShadowTables {
    /// Scheduling grid (one DRAM clock).
    clock: Ps,
    /// ACT → CAS, same bank (`tRCD`).
    act_to_cas: Ps,
    /// ACT → PRE, same bank (`tRAS`).
    act_to_pre: Ps,
    /// ACT → ACT, same bank (`tRC`).
    act_to_act_bank: Ps,
    /// ACT → ACT, same rank (`tRRD`).
    act_to_act_rank: Ps,
    /// Four-activate window per rank (`tFAW`).
    four_act_window: Ps,
    /// Read CAS → first data beat (`tCL`).
    read_latency: Ps,
    /// Write CAS → first data beat (`tCWL`).
    write_latency: Ps,
    /// Data burst duration (`tBURST`).
    burst: Ps,
    /// Read CAS → PRE (`tRTP`).
    read_to_pre: Ps,
    /// End of write data → PRE (`tWR`).
    write_recovery: Ps,
    /// End of write data → read CAS, same rank (`tWTR`).
    write_to_read: Ps,
    /// PRE → ACT (`tRP`).
    pre_to_act: Ps,
    /// Rank-to-rank data-bus switch penalty (`tRTRS`).
    rank_switch: Ps,
    /// Store-forwarding turnaround (4 clocks, matching the primary).
    forward: Ps,
}

impl ShadowTables {
    /// Derives the constraint table from raw JEDEC parameters.
    pub fn new(t: &TimingParams) -> Self {
        ShadowTables {
            clock: t.tck,
            act_to_cas: t.trcd,
            act_to_pre: t.tras,
            act_to_act_bank: t.trc,
            act_to_act_rank: t.trrd,
            four_act_window: t.tfaw,
            read_latency: t.tcl,
            write_latency: t.tcwl,
            burst: t.tburst,
            read_to_pre: t.trtp,
            write_recovery: t.twr,
            write_to_read: t.twtr,
            pre_to_act: t.trp,
            rank_switch: t.trtrs,
            forward: t.tck * 4,
        }
    }
}

/// Per-bank ready-time record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShadowBank {
    /// Currently open row, if any.
    open_row: Option<u32>,
    /// Instant of the last ACT (anchors `tRAS`/`tRC`).
    last_act: Ps,
    /// Earliest instant the bank can accept an ACT (or a refresh).
    ready_act: Ps,
    /// Earliest instant the bank can accept a CAS to its open row.
    ready_cas: Ps,
    /// Earliest instant the bank can accept a PRE.
    ready_pre: Ps,
    /// End of the bank's current refresh window.
    refresh_until: Ps,
    /// Instant of the bank's last issued command (refresh serialization).
    last_cmd: Ps,
    /// Rows refreshed so far (monotone).
    rows_refreshed: u64,
    /// ACT commands so far.
    activations: u64,
    /// Cumulative time spent inside refresh windows.
    refresh_busy: Ps,
}

impl ShadowBank {
    fn new() -> Self {
        ShadowBank {
            open_row: None,
            last_act: Ps::ZERO,
            ready_act: Ps::ZERO,
            ready_cas: Ps::ZERO,
            ready_pre: Ps::ZERO,
            refresh_until: Ps::ZERO,
            last_cmd: Ps::ZERO,
            rows_refreshed: 0,
            activations: 0,
            refresh_busy: Ps::ZERO,
        }
    }
}

/// Per-rank ready-time record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShadowRank {
    /// Ring of the last four ACT instants (for `tFAW`).
    acts: [Ps; 4],
    /// Next slot in `acts` to overwrite.
    act_pos: u8,
    /// Earliest instant a read CAS may issue (write→read turnaround).
    read_ready: Ps,
    /// End of the rank's current all-bank refresh window.
    refresh_until: Ps,
}

impl ShadowRank {
    fn new() -> Self {
        ShadowRank {
            acts: [Ps::ZERO; 4],
            act_pos: 0,
            read_ready: Ps::ZERO,
            refresh_until: Ps::ZERO,
        }
    }

    /// Earliest instant this rank can accept another ACT.
    fn act_ready(&self, t: &ShadowTables) -> Ps {
        let newest = self.acts[(self.act_pos.wrapping_sub(1) & 3) as usize];
        let oldest = self.acts[self.act_pos as usize];
        let rrd = if newest == Ps::ZERO {
            Ps::ZERO
        } else {
            newest + t.act_to_act_rank
        };
        let faw = if oldest == Ps::ZERO {
            Ps::ZERO
        } else {
            oldest + t.four_act_window
        };
        rrd.max(faw)
    }

    fn note_act(&mut self, at: Ps) {
        self.acts[self.act_pos as usize] = at;
        self.act_pos = (self.act_pos + 1) & 3;
    }
}

/// A queued transaction.
#[derive(Debug, Clone)]
struct ShadowEntry {
    req: MemRequest,
    /// The request was delayed by refresh at some point.
    refresh_blocked: bool,
}

/// A refresh that became due and is waiting for its scope to clear.
#[derive(Debug, Clone, Copy)]
struct ShadowPending {
    op: RefreshOp,
    due: Ps,
    injected_delay: Ps,
}

/// Row-locality class of a planned service chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowClass {
    Hit,
    Miss,
    Conflict,
}

/// Fully resolved command instants for one transaction chain.
#[derive(Debug, Clone, Copy)]
struct ServiceTimes {
    class: RowClass,
    pre_at: Option<Ps>,
    act_at: Option<Ps>,
    cas_at: Ps,
    /// First command instant (the chain's issue slot).
    first: Ps,
}

/// The next thing the shadow will do.
#[derive(Debug, Clone, Copy)]
enum ShadowAction {
    /// Fix the target of a refresh that became due.
    SelectRefresh,
    /// Close an open row so the pending refresh can start.
    PreForRefresh { flat: usize },
    /// Start the pending refresh.
    IssueRefresh,
    /// Service one queued transaction as an atomic chain.
    Service { write_queue: bool, idx: usize },
}

/// Portable image of the full dynamic state of a [`ShadowController`].
#[derive(Debug, Clone, PartialEq)]
pub struct SavedShadow {
    /// Per-bank records, flat-indexed: `(open_row_plus_one, last_act,
    /// ready_act, ready_cas, ready_pre, refresh_until, last_cmd,
    /// rows_refreshed, activations, refresh_busy)`.
    pub banks: Vec<SavedShadowBank>,
    /// Per-rank records.
    pub ranks: Vec<SavedShadowRank>,
    /// Read queue entries, in queue order.
    pub read_q: Vec<SavedEntry>,
    /// Write queue entries, in queue order.
    pub write_q: Vec<SavedEntry>,
    /// Whether the model is in write-drain mode.
    pub draining: bool,
    /// The event cursor.
    pub cursor: Ps,
    /// Data bus free instant.
    pub data_bus_free: Ps,
    /// Rank owning the last data-bus transfer.
    pub data_bus_owner: Option<u8>,
    /// Refresh awaiting its scope, if any.
    pub pending_refresh: Option<SavedPendingRefresh>,
    /// Start of the current utilization epoch.
    pub epoch_start: Ps,
    /// Bus-busy time accumulated in the current epoch.
    pub epoch_bus_busy: Ps,
    /// Utilization reported for the previous epoch.
    pub last_utilization: f64,
    /// Read completions produced but not yet drained.
    pub completions: Vec<Completion>,
    /// Statistics accumulated so far.
    pub stats: ControllerStats,
    /// Retention-oracle ledger (present iff tracking was enabled).
    pub integrity: Option<SavedTracker>,
    /// Global refresh command sequence number.
    pub refresh_seq: u64,
    /// Refresh policy internal schedule words.
    pub policy_words: Vec<u64>,
}

/// Portable image of one [`ShadowController`] bank record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedShadowBank {
    /// Open row, if any.
    pub open_row: Option<u32>,
    /// Instant of the last ACT.
    pub last_act: Ps,
    /// Earliest ACT instant.
    pub ready_act: Ps,
    /// Earliest CAS instant.
    pub ready_cas: Ps,
    /// Earliest PRE instant.
    pub ready_pre: Ps,
    /// End of the current refresh window.
    pub refresh_until: Ps,
    /// Instant of the last issued command.
    pub last_cmd: Ps,
    /// Rows refreshed so far.
    pub rows_refreshed: u64,
    /// ACT commands so far.
    pub activations: u64,
    /// Cumulative refresh-window time.
    pub refresh_busy: Ps,
}

/// Portable image of one [`ShadowController`] rank record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedShadowRank {
    /// Ring of the last four ACT instants.
    pub acts: [Ps; 4],
    /// Next ring slot.
    pub act_pos: u8,
    /// Earliest read-CAS instant.
    pub read_ready: Ps,
    /// End of the current all-bank refresh window.
    pub refresh_until: Ps,
}

/// The shadow per-channel DRAM model (see the module docs).
#[derive(Debug)]
pub struct ShadowController {
    mapping: AddressMapping,
    tables: ShadowTables,
    refresh_timing: RefreshTiming,
    policy: Box<dyn RefreshPolicy>,
    cfg: ControllerConfig,
    shadow_cfg: ShadowConfig,

    banks: Vec<ShadowBank>,
    ranks: Vec<ShadowRank>,
    banks_per_rank: u32,

    read_q: Vec<ShadowEntry>,
    write_q: Vec<ShadowEntry>,
    draining: bool,

    cursor: Ps,
    data_bus_free: Ps,
    data_bus_owner: Option<u8>,

    pending_refresh: Option<ShadowPending>,

    epoch_start: Ps,
    epoch_bus_busy: Ps,
    last_utilization: f64,

    completions: Vec<Completion>,
    stats: ControllerStats,
    trace: Option<Vec<TraceEntry>>,

    integrity: Option<RetentionTracker>,
    faults: RefreshFaults,
    refresh_seq: u64,
}

impl ShadowController {
    /// Creates a shadow model for the channel described by `mapping`.
    pub fn new(
        mapping: AddressMapping,
        timing: TimingParams,
        refresh_timing: RefreshTiming,
        policy: RefreshPolicyKind,
        cfg: ControllerConfig,
        shadow_cfg: ShadowConfig,
    ) -> Self {
        timing
            .validate()
            .unwrap_or_else(|e| panic!("invalid timing: {e}"));
        let g = *mapping.geometry();
        let policy = crate::refresh::build_policy(policy, &refresh_timing, &g);
        let n_banks = g.banks_per_channel() as usize;
        let integrity = cfg.track_retention.then(|| {
            RetentionTracker::new(
                n_banks as u32,
                g.rows_per_bank,
                crate::controller::MemoryController::default_integrity_config(&refresh_timing),
            )
        });
        ShadowController {
            mapping,
            tables: ShadowTables::new(&timing),
            refresh_timing,
            policy,
            cfg,
            shadow_cfg,
            banks: (0..n_banks).map(|_| ShadowBank::new()).collect(),
            ranks: (0..g.ranks_per_channel)
                .map(|_| ShadowRank::new())
                .collect(),
            banks_per_rank: g.banks_per_rank,
            read_q: Vec::with_capacity(cfg.read_queue),
            write_q: Vec::with_capacity(cfg.write_queue),
            draining: false,
            cursor: Ps::ZERO,
            data_bus_free: Ps::ZERO,
            data_bus_owner: None,
            pending_refresh: None,
            epoch_start: Ps::ZERO,
            epoch_bus_busy: Ps::ZERO,
            last_utilization: 0.0,
            completions: Vec::new(),
            stats: ControllerStats::new(),
            trace: None,
            integrity,
            faults: RefreshFaults::default(),
            refresh_seq: 0,
        }
    }

    // ---- small helpers ------------------------------------------------

    fn flat(&self, b: BankId) -> usize {
        b.flat(self.banks_per_rank) as usize
    }

    fn unflat(&self, flat: usize) -> (u8, u8) {
        let id = BankId::from_flat(flat as u32, self.banks_per_rank);
        (id.rank, id.bank)
    }

    fn record(&mut self, at: Ps, cmd: TraceCmd, rank: u8, bank: u8) {
        if let Some(t) = &mut self.trace {
            t.push(TraceEntry {
                at,
                cmd,
                rank,
                bank,
            });
        }
    }

    /// Snaps `t` to the clock grid, no earlier than the cursor.
    fn grid(&self, t: Ps) -> Ps {
        t.max(self.cursor).round_up(self.tables.clock)
    }

    /// Earliest CAS instant the data bus allows for a transfer of
    /// command-to-data latency `lat` from `rank`.
    fn bus_ready(&self, rank: u8, lat: Ps) -> Ps {
        let mut free = self.data_bus_free;
        if let Some(owner) = self.data_bus_owner {
            if owner != rank {
                free += self.tables.rank_switch;
            }
        }
        free.saturating_sub(lat)
    }

    fn refresh_scope(&self, op: &RefreshOp) -> (usize, usize) {
        match *op {
            RefreshOp::AllBank { rank, .. } => {
                let b = self.banks_per_rank as usize;
                (usize::from(rank) * b, usize::from(rank) * b + b)
            }
            RefreshOp::PerBank { bank, .. } => {
                let f = self.flat(bank);
                (f, f + 1)
            }
        }
    }

    fn in_refresh_scope(&self, flat: usize) -> bool {
        match &self.pending_refresh {
            Some(p) => {
                let (lo, hi) = self.refresh_scope(&p.op);
                flat >= lo && flat < hi
            }
            None => false,
        }
    }

    fn queue_snapshot(&self) -> QueueSnapshot {
        let mut per_bank_queued = vec![0u32; self.banks.len()];
        for e in self.read_q.iter().chain(self.write_q.iter()) {
            per_bank_queued[self.flat(e.req.loc.bank_id())] += 1;
        }
        QueueSnapshot {
            per_bank_queued,
            utilization: self.last_utilization,
        }
    }

    fn roll_epochs(&mut self, now: Ps) {
        let epoch = self.cfg.utilization_epoch;
        while self.epoch_start + epoch <= now {
            let busy = self.epoch_bus_busy.min(epoch);
            self.last_utilization = busy.as_ps() as f64 / epoch.as_ps() as f64;
            self.epoch_bus_busy = self.epoch_bus_busy.saturating_sub(busy);
            self.epoch_start += epoch;
            let u = self.last_utilization;
            let t = self.epoch_start;
            self.policy.observe_utilization(u, t);
        }
    }

    fn arrives_into_refresh(&self, req: &MemRequest) -> bool {
        let flat = self.flat(req.loc.bank_id());
        self.banks[flat].refresh_until > req.arrival
            || self.ranks[req.loc.rank as usize].refresh_until > req.arrival
    }

    /// Resolves the full command chain for servicing `e` right now.
    fn service_times(&self, e: &ShadowEntry) -> ServiceTimes {
        let flat = self.flat(e.req.loc.bank_id());
        let bank = &self.banks[flat];
        let rank_id = e.req.loc.rank;
        let rank = &self.ranks[rank_id as usize];
        let t = &self.tables;
        let is_read = e.req.is_read();
        let lat = if is_read {
            t.read_latency
        } else {
            t.write_latency
        };
        let base = e.req.arrival;
        let cas_floor = |cas0: Ps| {
            let mut c = cas0.max(self.bus_ready(rank_id, lat));
            if is_read {
                c = c.max(rank.read_ready);
            }
            c
        };
        match bank.open_row {
            Some(row) if row == e.req.loc.row => {
                let cas_at = self.grid(cas_floor(bank.ready_cas.max(base)));
                ServiceTimes {
                    class: RowClass::Hit,
                    pre_at: None,
                    act_at: None,
                    cas_at,
                    first: cas_at,
                }
            }
            Some(_) => {
                let pre_at = self.grid(bank.ready_pre.max(base));
                let act_at = self.grid(
                    (pre_at + t.pre_to_act)
                        .max(bank.ready_act)
                        .max(rank.act_ready(t)),
                );
                let cas_at = self.grid(cas_floor(act_at + t.act_to_cas));
                ServiceTimes {
                    class: RowClass::Conflict,
                    pre_at: Some(pre_at),
                    act_at: Some(act_at),
                    cas_at,
                    first: pre_at,
                }
            }
            None => {
                let act_at = self.grid(bank.ready_act.max(rank.act_ready(t)).max(base));
                let cas_at = self.grid(cas_floor(act_at + t.act_to_cas));
                ServiceTimes {
                    class: RowClass::Miss,
                    pre_at: None,
                    act_at: Some(act_at),
                    cas_at,
                    first: act_at,
                }
            }
        }
    }

    /// Computes the next action and its instant.
    fn plan(&self) -> Option<(Ps, ShadowAction)> {
        let mut best: Option<(Ps, u8, ShadowAction)> = None;
        let consider = |cand: Option<(Ps, u8, ShadowAction)>,
                        best: &mut Option<(Ps, u8, ShadowAction)>| {
            if let Some((t, p, a)) = cand {
                let better = match best {
                    None => true,
                    Some((bt, bp, _)) => t < *bt || (t == *bt && p < *bp),
                };
                if better {
                    *best = Some((t, p, a));
                }
            }
        };

        // Refresh machinery (priority 0).
        if let Some(p) = &self.pending_refresh {
            let (lo, hi) = self.refresh_scope(&p.op);
            let earliest = p.due + p.injected_delay;
            // Close open rows in scope first; pick the earliest PRE.
            let mut open: Option<(Ps, usize)> = None;
            for f in lo..hi {
                if self.banks[f].open_row.is_some() {
                    let at = self.grid(self.banks[f].ready_pre);
                    if open.is_none_or(|(t, _)| at < t) {
                        open = Some((at, f));
                    }
                }
            }
            if let Some((at, flat)) = open {
                consider(
                    Some((at.max(earliest), 0, ShadowAction::PreForRefresh { flat })),
                    &mut best,
                );
            } else {
                let mut ready = earliest;
                for f in lo..hi {
                    let b = &self.banks[f];
                    ready = ready
                        .max(b.ready_act)
                        .max(b.refresh_until)
                        .max(b.last_cmd + self.tables.clock);
                }
                ready = ready.max(self.ranks[p.op.rank() as usize].refresh_until);
                consider(
                    Some((self.grid(ready), 0, ShadowAction::IssueRefresh)),
                    &mut best,
                );
            }
        } else if let Some(due) = self.policy.next_due() {
            consider(
                Some((due.max(self.cursor), 0, ShadowAction::SelectRefresh)),
                &mut best,
            );
        }

        // Transaction service — the shadow's analogue of FR-FCFS at
        // transaction granularity. Within one bank a row hit outranks a
        // conflict (a conflict's PRE must not close a row that queued
        // hits still want: the primary's per-read tRTP pushback protects
        // those chains the same way); across banks the earliest-issuable
        // chain wins, mirroring the primary's command interleaving.
        let write_queue = self.draining || self.read_q.is_empty();
        let queue: &[ShadowEntry] = if write_queue {
            &self.write_q
        } else {
            &self.read_q
        };
        for (idx, e) in queue.iter().enumerate() {
            let flat = self.flat(e.req.loc.bank_id());
            if self.in_refresh_scope(flat) {
                continue; // scope frozen until the refresh issues
            }
            let st = self.service_times(e);
            let prio = if st.class == RowClass::Hit { 1 } else { 2 };
            consider(
                Some((st.first, prio, ShadowAction::Service { write_queue, idx })),
                &mut best,
            );
        }

        best.map(|(t, _, a)| (t, a))
    }

    fn execute(&mut self, action: ShadowAction, at: Ps) -> Result<(), DramError> {
        match action {
            ShadowAction::SelectRefresh => {
                let snap = self.queue_snapshot();
                if self.policy.try_postpone(&snap, at) {
                    return Ok(());
                }
                let op = self.policy.select(&snap);
                let Some(due) = self.policy.next_due() else {
                    return Err(DramError::BrokenInvariant {
                        what: format!(
                            "shadow SelectRefresh at {at} but the policy reports no due refresh"
                        ),
                    });
                };
                let injected_delay = self.faults.delay_for(self.refresh_seq);
                if injected_delay > Ps::ZERO {
                    self.stats.injected_delay_faults += 1;
                }
                self.pending_refresh = Some(ShadowPending {
                    op,
                    due,
                    injected_delay,
                });
            }
            ShadowAction::PreForRefresh { flat } => {
                let t = self.tables;
                let b = &mut self.banks[flat];
                b.open_row = None;
                b.ready_act = b.ready_act.max(at + t.pre_to_act);
                b.last_cmd = at;
                let (r, bk) = self.unflat(flat);
                self.record(at, TraceCmd::Pre, r, bk);
            }
            ShadowAction::IssueRefresh => {
                let Some(p) = self.pending_refresh.take() else {
                    return Err(DramError::BrokenInvariant {
                        what: format!("shadow IssueRefresh at {at} with no pending refresh"),
                    });
                };
                let seq = self.refresh_seq;
                self.refresh_seq += 1;
                if self.faults.skips(seq) {
                    self.stats.injected_skip_faults += 1;
                    self.policy.issued(&p.op, at);
                    return Ok(());
                }
                let n = self.shadow_cfg.drop_refresh_every;
                if n != 0 && seq % n == n - 1 {
                    // The seeded model bug: the command evaporates while
                    // the schedule believes it issued.
                    self.policy.issued(&p.op, at);
                    return Ok(());
                }
                let dur = self.policy.duration(&p.op);
                let (lo, hi) = self.refresh_scope(&p.op);
                let rows = match p.op {
                    RefreshOp::AllBank { rows, .. } | RefreshOp::PerBank { rows, .. } => rows,
                };
                for f in lo..hi {
                    let b = &mut self.banks[f];
                    let end = at + dur;
                    b.refresh_until = end;
                    b.ready_act = b.ready_act.max(end);
                    b.ready_pre = b.ready_pre.max(end);
                    b.ready_cas = b.ready_cas.max(end);
                    b.last_cmd = at;
                    b.rows_refreshed += u64::from(rows);
                    b.refresh_busy += dur;
                }
                if let Some(t) = &mut self.integrity {
                    for f in lo..hi {
                        t.on_refresh(f as u32, rows, at)?;
                    }
                    self.stats.retention_violations = t.total_violations();
                }
                match p.op {
                    RefreshOp::AllBank { rank, .. } => {
                        self.ranks[rank as usize].refresh_until = at + dur;
                        self.stats.refreshes_ab += 1;
                        self.record(at, TraceCmd::RefAb, rank, u8::MAX);
                    }
                    RefreshOp::PerBank { bank, .. } => {
                        self.stats.refreshes_pb += 1;
                        self.record(at, TraceCmd::RefPb, bank.rank, bank.bank);
                    }
                }
                let late = at.saturating_sub(p.due);
                self.stats.refresh_postpone_total += late;
                self.stats.refresh_postpone_max = self.stats.refresh_postpone_max.max(late);
                self.policy.issued(&p.op, at);
                for e in self.read_q.iter_mut().chain(self.write_q.iter_mut()) {
                    let f = e.req.loc.bank_id().flat(self.banks_per_rank) as usize;
                    if f >= lo && f < hi {
                        e.refresh_blocked = true;
                    }
                }
            }
            ShadowAction::Service { write_queue, idx } => {
                let st = {
                    let q = if write_queue {
                        &self.write_q
                    } else {
                        &self.read_q
                    };
                    self.service_times(&q[idx])
                };
                let entry = if write_queue {
                    self.write_q.remove(idx)
                } else {
                    self.read_q.remove(idx)
                };
                let t = self.tables;
                let flat = self.flat(entry.req.loc.bank_id());
                let rank_id = entry.req.loc.rank;
                let (tr_r, tr_b) = self.unflat(flat);
                let is_read = entry.req.is_read();
                match st.class {
                    RowClass::Hit => self.stats.row_hits += 1,
                    RowClass::Miss => self.stats.row_misses += 1,
                    RowClass::Conflict => self.stats.row_conflicts += 1,
                }
                if entry.refresh_blocked && is_read {
                    self.stats.refresh_blocked_reads += 1;
                }
                if let Some(pre_at) = st.pre_at {
                    self.banks[flat].open_row = None;
                    self.record(pre_at, TraceCmd::Pre, tr_r, tr_b);
                }
                if let Some(act_at) = st.act_at {
                    let row = entry.req.loc.row;
                    {
                        let b = &mut self.banks[flat];
                        b.open_row = Some(row);
                        b.last_act = act_at;
                        b.ready_cas = act_at + t.act_to_cas;
                        b.activations += 1;
                    }
                    self.ranks[rank_id as usize].note_act(act_at);
                    self.record(act_at, TraceCmd::Act { row }, tr_r, tr_b);
                }
                let cas_at = st.cas_at;
                self.record(
                    cas_at,
                    if is_read { TraceCmd::Rd } else { TraceCmd::Wr },
                    tr_r,
                    tr_b,
                );
                let lat = if is_read {
                    t.read_latency
                } else {
                    t.write_latency
                };
                let data_end = cas_at + lat + t.burst;
                {
                    let b = &mut self.banks[flat];
                    b.last_cmd = cas_at;
                    b.ready_act = b.ready_act.max(b.last_act + t.act_to_act_bank);
                    if is_read {
                        b.ready_pre = b
                            .ready_pre
                            .max(b.last_act + t.act_to_pre)
                            .max(cas_at + t.read_to_pre);
                    } else {
                        b.ready_pre = b
                            .ready_pre
                            .max(b.last_act + t.act_to_pre)
                            .max(data_end + t.write_recovery);
                    }
                }
                if is_read {
                    self.stats.reads_completed += 1;
                    let latency = data_end - entry.req.arrival;
                    self.stats.read_latency_total += latency;
                    self.stats.read_latency_max = self.stats.read_latency_max.max(latency);
                    self.completions.push(Completion {
                        id: entry.req.id,
                        at: data_end,
                        latency,
                    });
                } else {
                    self.stats.writes_completed += 1;
                    let r = &mut self.ranks[rank_id as usize];
                    r.read_ready = r.read_ready.max(data_end + t.write_to_read);
                }
                self.data_bus_free = data_end;
                self.data_bus_owner = Some(rank_id);
                self.stats.data_bus_busy += t.burst;
                self.epoch_bus_busy += t.burst;
                if write_queue && self.draining && self.write_q.len() <= self.cfg.wq_low {
                    self.draining = false;
                }
            }
        }
        Ok(())
    }

    fn advance_loop(
        &mut self,
        target: Ps,
        stop_on_completion: bool,
    ) -> Result<Option<Ps>, DramError> {
        if target < self.cursor {
            return Err(DramError::TimeRegression {
                cursor: self.cursor,
                target,
                snapshot: Box::new(self.snapshot_inner()),
            });
        }
        let ticks = (target - self.cursor).as_ps() / self.tables.clock.as_ps().max(1);
        let budget = 10_000 + ticks.saturating_mul(4);
        let from = self.cursor;
        let mut iterations = 0u64;
        loop {
            self.roll_epochs(target);
            match self.plan() {
                Some((at, action)) if at <= target => {
                    iterations += 1;
                    if iterations > budget {
                        return Err(DramError::Livelock {
                            from,
                            to: target,
                            iterations,
                            snapshot: Box::new(self.snapshot_inner()),
                        });
                    }
                    self.cursor = at;
                    let had = self.completions.len();
                    self.execute(action, at)?;
                    if stop_on_completion && self.completions.len() > had {
                        return Ok(Some(at));
                    }
                }
                _ => break,
            }
        }
        self.cursor = target;
        self.roll_epochs(target);
        Ok(None)
    }

    fn snapshot_inner(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            cursor: self.cursor,
            read_q: self.read_q.len(),
            write_q: self.write_q.len(),
            draining: self.draining,
            pending_refresh_due: self.pending_refresh.as_ref().map(|p| p.due),
            next_refresh_due: self.policy.next_due(),
            policy: self.policy.kind(),
            refreshes_issued: self.refresh_seq,
            retention_violations: self.integrity.as_ref().map_or(0, |t| t.total_violations()),
        }
    }

    /// Captures the shadow's full dynamic state for checkpointing.
    pub fn save_state(&self) -> SavedShadow {
        let save_entry = |e: &ShadowEntry| SavedEntry {
            id: e.req.id.0,
            write: !e.req.is_read(),
            paddr: e.req.paddr,
            arrival: e.req.arrival,
            core: e.req.core,
            task: e.req.task,
            needed_act: false,
            needed_pre: false,
            refresh_blocked: e.refresh_blocked,
        };
        SavedShadow {
            banks: self
                .banks
                .iter()
                .map(|b| SavedShadowBank {
                    open_row: b.open_row,
                    last_act: b.last_act,
                    ready_act: b.ready_act,
                    ready_cas: b.ready_cas,
                    ready_pre: b.ready_pre,
                    refresh_until: b.refresh_until,
                    last_cmd: b.last_cmd,
                    rows_refreshed: b.rows_refreshed,
                    activations: b.activations,
                    refresh_busy: b.refresh_busy,
                })
                .collect(),
            ranks: self
                .ranks
                .iter()
                .map(|r| SavedShadowRank {
                    acts: r.acts,
                    act_pos: r.act_pos,
                    read_ready: r.read_ready,
                    refresh_until: r.refresh_until,
                })
                .collect(),
            read_q: self.read_q.iter().map(save_entry).collect(),
            write_q: self.write_q.iter().map(save_entry).collect(),
            draining: self.draining,
            cursor: self.cursor,
            data_bus_free: self.data_bus_free,
            data_bus_owner: self.data_bus_owner,
            pending_refresh: self.pending_refresh.as_ref().map(|p| SavedPendingRefresh {
                op: p.op,
                due: p.due,
                injected_delay: p.injected_delay,
            }),
            epoch_start: self.epoch_start,
            epoch_bus_busy: self.epoch_bus_busy,
            last_utilization: self.last_utilization,
            completions: self.completions.clone(),
            stats: self.stats.clone(),
            integrity: self.integrity.as_ref().map(RetentionTracker::save_state),
            refresh_seq: self.refresh_seq,
            policy_words: self.policy.save_words(),
        }
    }

    /// Restores state captured by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// A description of the first structural mismatch; the model may be
    /// partially updated on error and must be discarded.
    pub fn restore_state(&mut self, s: &SavedShadow) -> Result<(), String> {
        if s.banks.len() != self.banks.len() {
            return Err(format!(
                "bank count mismatch: saved {}, shadow {}",
                s.banks.len(),
                self.banks.len()
            ));
        }
        if s.ranks.len() != self.ranks.len() {
            return Err(format!(
                "rank count mismatch: saved {}, shadow {}",
                s.ranks.len(),
                self.ranks.len()
            ));
        }
        if s.read_q.len() > self.cfg.read_queue {
            return Err(format!(
                "saved read queue ({}) exceeds capacity {}",
                s.read_q.len(),
                self.cfg.read_queue
            ));
        }
        if s.write_q.len() > self.cfg.write_queue {
            return Err(format!(
                "saved write queue ({}) exceeds capacity {}",
                s.write_q.len(),
                self.cfg.write_queue
            ));
        }
        if !self.policy.load_words(&s.policy_words) {
            return Err(format!(
                "refresh policy {:?} rejected {} saved schedule words",
                self.policy.kind(),
                s.policy_words.len()
            ));
        }
        match (&mut self.integrity, &s.integrity) {
            (Some(t), Some(saved)) => t
                .restore_state(saved)
                .map_err(|e| format!("retention tracker: {e}"))?,
            (None, None) => {}
            (have, _) => {
                return Err(format!(
                    "integrity tracking mismatch: saved {}, shadow {}",
                    if s.integrity.is_some() { "on" } else { "off" },
                    if have.is_some() { "on" } else { "off" },
                ));
            }
        }
        for (b, saved) in self.banks.iter_mut().zip(&s.banks) {
            *b = ShadowBank {
                open_row: saved.open_row,
                last_act: saved.last_act,
                ready_act: saved.ready_act,
                ready_cas: saved.ready_cas,
                ready_pre: saved.ready_pre,
                refresh_until: saved.refresh_until,
                last_cmd: saved.last_cmd,
                rows_refreshed: saved.rows_refreshed,
                activations: saved.activations,
                refresh_busy: saved.refresh_busy,
            };
        }
        for (r, saved) in self.ranks.iter_mut().zip(&s.ranks) {
            *r = ShadowRank {
                acts: saved.acts,
                act_pos: saved.act_pos,
                read_ready: saved.read_ready,
                refresh_until: saved.refresh_until,
            };
        }
        let load_entry = |e: &SavedEntry, mapping: &AddressMapping| ShadowEntry {
            req: MemRequest {
                id: ReqId(e.id),
                kind: if e.write {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                },
                paddr: e.paddr,
                loc: mapping.decode(e.paddr),
                arrival: e.arrival,
                core: e.core,
                task: e.task,
            },
            refresh_blocked: e.refresh_blocked,
        };
        self.read_q = s
            .read_q
            .iter()
            .map(|e| load_entry(e, &self.mapping))
            .collect();
        self.write_q = s
            .write_q
            .iter()
            .map(|e| load_entry(e, &self.mapping))
            .collect();
        self.draining = s.draining;
        self.cursor = s.cursor;
        self.data_bus_free = s.data_bus_free;
        self.data_bus_owner = s.data_bus_owner;
        self.pending_refresh = s.pending_refresh.map(|p| ShadowPending {
            op: p.op,
            due: p.due,
            injected_delay: p.injected_delay,
        });
        self.epoch_start = s.epoch_start;
        self.epoch_bus_busy = s.epoch_bus_busy;
        self.last_utilization = s.last_utilization;
        self.completions = s.completions.clone();
        self.stats = s.stats.clone();
        self.refresh_seq = s.refresh_seq;
        Ok(())
    }
}

impl MemoryBackend for ShadowController {
    fn descriptor(&self) -> BackendDescriptor {
        BackendDescriptor {
            kind: BackendKind::Shadow,
            model: "table-driven transaction-level shadow",
            geometry: *self.mapping.geometry(),
        }
    }

    fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    fn refresh_timing(&self) -> &RefreshTiming {
        &self.refresh_timing
    }

    fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn can_accept_read(&self) -> bool {
        self.read_q.len() < self.cfg.read_queue
    }

    fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.cfg.write_queue
    }

    fn queue_depths(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }

    fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        match req.kind {
            ReqKind::Read => {
                if self.write_q.iter().any(|e| e.req.paddr == req.paddr) {
                    let at = req.arrival + self.tables.forward;
                    self.completions.push(Completion {
                        id: req.id,
                        at,
                        latency: at - req.arrival,
                    });
                    self.stats.reads_completed += 1;
                    self.stats.forwarded_reads += 1;
                    return Ok(());
                }
                if !self.can_accept_read() {
                    self.stats.queue_reject_reads += 1;
                    return Err(QueueFull);
                }
                self.stats.reads_enqueued += 1;
                let refresh_blocked = self.arrives_into_refresh(&req);
                self.read_q.push(ShadowEntry {
                    req,
                    refresh_blocked,
                });
            }
            ReqKind::Write => {
                if !self.can_accept_write() {
                    self.stats.queue_reject_writes += 1;
                    return Err(QueueFull);
                }
                self.stats.writes_enqueued += 1;
                let refresh_blocked = self.arrives_into_refresh(&req);
                self.write_q.push(ShadowEntry {
                    req,
                    refresh_blocked,
                });
                if !self.draining && self.write_q.len() >= self.cfg.wq_high {
                    self.draining = true;
                    self.stats.write_drains += 1;
                }
            }
        }
        Ok(())
    }

    fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    fn has_completions(&self) -> bool {
        !self.completions.is_empty()
    }

    fn try_advance_to(&mut self, target: Ps) -> Result<(), DramError> {
        self.advance_loop(target, false).map(|_| ())
    }

    fn try_advance_until_completion(&mut self, target: Ps) -> Result<Option<Ps>, DramError> {
        self.advance_loop(target, true)
    }

    fn next_event_time(&mut self) -> Option<Ps> {
        self.plan().map(|(t, _)| t)
    }

    fn advance_cap(&self) -> Option<Ps> {
        let inert = self.read_q.is_empty()
            && self.write_q.is_empty()
            && self.pending_refresh.is_none()
            && self.policy.next_due().is_none();
        if inert {
            None
        } else {
            Some(self.next_epoch_roll())
        }
    }

    fn next_epoch_roll(&self) -> Ps {
        self.epoch_start + self.cfg.utilization_epoch
    }

    fn refresh_forecast(&self, start: Ps, end: Ps) -> BusyForecast {
        self.policy.forecast(start, end)
    }

    fn refresh_boundary_after(&self, t: Ps) -> Option<Ps> {
        self.policy.next_boundary(t)
    }

    fn bank_report(&self) -> Vec<(BankId, u64, u64, Ps)> {
        self.banks
            .iter()
            .enumerate()
            .map(|(f, b)| {
                (
                    BankId::from_flat(f as u32, self.banks_per_rank),
                    b.activations,
                    b.rows_refreshed,
                    b.refresh_busy,
                )
            })
            .collect()
    }

    fn state_snapshot(&self) -> ControllerSnapshot {
        self.snapshot_inner()
    }

    fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn drain_trace_into(&mut self, out: &mut Vec<TraceEntry>) {
        if let Some(t) = &mut self.trace {
            out.append(t);
        }
    }

    fn enable_integrity(&mut self, cfg: IntegrityConfig) {
        let g = self.mapping.geometry();
        let mut tracker = RetentionTracker::new(g.banks_per_channel(), g.rows_per_bank, cfg);
        tracker.set_weak_rows(&self.faults.weak_rows);
        self.integrity = Some(tracker);
    }

    fn integrity(&self) -> Option<&RetentionTracker> {
        self.integrity.as_ref()
    }

    fn inject_faults(&mut self, faults: RefreshFaults) {
        if let Some(t) = &mut self.integrity {
            t.set_weak_rows(&faults.weak_rows);
        }
        self.faults = faults;
    }

    fn audit_retention(&mut self, now: Ps) -> u64 {
        match &mut self.integrity {
            Some(t) => {
                t.finalize(now);
                let total = t.total_violations();
                self.stats.retention_violations = total;
                total
            }
            None => 0,
        }
    }

    fn save_backend(&self) -> SavedBackend {
        SavedBackend::Shadow(self.save_state())
    }

    fn restore_backend(&mut self, saved: &SavedBackend) -> Result<(), String> {
        match saved {
            SavedBackend::Shadow(s) => self.restore_state(s),
            SavedBackend::Primary(_) => Err(
                "backend kind mismatch: saved image is from the primary controller, \
                 this channel runs the shadow model"
                    .to_owned(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::mapping::MappingScheme;
    use crate::timing::{Density, Retention};

    fn shadow(policy: RefreshPolicyKind) -> ShadowController {
        shadow_cfg(policy, ShadowConfig::default())
    }

    fn shadow_cfg(policy: RefreshPolicyKind, scfg: ShadowConfig) -> ShadowController {
        let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
        ShadowController::new(
            mapping,
            TimingParams::ddr3_1600(),
            RefreshTiming::new(Density::Gb32, Retention::Ms64),
            policy,
            ControllerConfig::default(),
            scfg,
        )
    }

    fn read_req(sc: &ShadowController, id: u64, paddr: u64, at: Ps) -> MemRequest {
        MemRequest {
            id: ReqId(id),
            kind: ReqKind::Read,
            paddr,
            loc: sc.mapping.decode(paddr),
            arrival: at,
            core: 0,
            task: 0,
        }
    }

    fn write_req(sc: &ShadowController, id: u64, paddr: u64, at: Ps) -> MemRequest {
        MemRequest {
            kind: ReqKind::Write,
            ..read_req(sc, id, paddr, at)
        }
    }

    #[test]
    fn single_read_latency_matches_jedec_chain() {
        let mut c = shadow(RefreshPolicyKind::NoRefresh);
        c.enqueue(read_req(&c, 1, 0x10_0000, Ps::ZERO)).unwrap();
        c.try_advance_to(Ps::from_us(1)).unwrap();
        let mut done = Vec::new();
        c.drain_completions_into(&mut done);
        assert_eq!(done.len(), 1);
        let t = TimingParams::ddr3_1600();
        let rd_at = t.trcd.round_up(t.tck);
        assert_eq!(done[0].at, rd_at + t.tcl + t.tburst);
        assert_eq!(c.stats().row_misses, 1);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut c = shadow(RefreshPolicyKind::NoRefresh);
        c.enqueue(read_req(&c, 1, 0x10_0000, Ps::ZERO)).unwrap();
        c.try_advance_to(Ps::from_us(1)).unwrap();
        let mut done = Vec::new();
        c.drain_completions_into(&mut done);
        let first = done[0];
        c.enqueue(read_req(&c, 2, 0x10_0040, Ps::from_us(1)))
            .unwrap();
        c.try_advance_to(Ps::from_us(2)).unwrap();
        done.clear();
        c.drain_completions_into(&mut done);
        assert!(done[0].latency < first.latency);
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn store_forwarding_matches_primary_semantics() {
        let mut c = shadow(RefreshPolicyKind::NoRefresh);
        c.enqueue(write_req(&c, 1, 0x20_0000, Ps::ZERO)).unwrap();
        c.enqueue(read_req(&c, 2, 0x20_0000, Ps::ZERO)).unwrap();
        let mut done = Vec::new();
        c.drain_completions_into(&mut done);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, ReqId(2));
        assert_eq!(c.stats().forwarded_reads, 1);
        assert_eq!(c.stats().reads_completed, 1);
        assert_eq!(c.stats().reads_enqueued, 0);
    }

    #[test]
    fn refresh_counts_track_the_schedule() {
        let mut c = shadow(RefreshPolicyKind::AllBank);
        c.try_advance_to(Ps::from_us(80)).unwrap();
        let n = c.stats().refreshes_ab;
        assert!((18..=22).contains(&n), "got {n} all-bank refreshes");
        let mut pb = shadow(RefreshPolicyKind::PerBankRoundRobin);
        pb.try_advance_to(Ps::from_us(78)).unwrap();
        let n = pb.stats().refreshes_pb;
        assert!((155..=165).contains(&n), "got {n} per-bank refreshes");
    }

    #[test]
    fn read_to_refreshing_bank_waits_out_the_window() {
        let mut c = shadow(RefreshPolicyKind::PerBankSequential);
        c.try_advance_to(Ps::from_ns(200)).unwrap();
        assert_eq!(c.stats().refreshes_pb, 1);
        let r = read_req(&c, 1, 0, Ps::from_ns(200));
        assert_eq!(r.loc.bank_id(), BankId::new(0, 0));
        c.enqueue(r).unwrap();
        c.try_advance_to(Ps::from_us(2)).unwrap();
        let mut done = Vec::new();
        c.drain_completions_into(&mut done);
        assert_eq!(done.len(), 1);
        assert!(
            done[0].latency > Ps::from_ns(150),
            "latency {} too small to have been refresh-blocked",
            done[0].latency
        );
        assert_eq!(c.stats().refresh_blocked_reads, 1);
    }

    #[test]
    fn trace_commands_never_overlap_refresh_windows() {
        // The tRFC-overlap guarantee, checked directly on the trace.
        let mut c = shadow(RefreshPolicyKind::PerBankRoundRobin);
        c.enable_trace();
        let mut t = Ps::ZERO;
        let mut id = 0u64;
        while t < Ps::from_us(100) {
            c.try_advance_to(t).unwrap();
            let paddr = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((32u64 << 30) - 1) & !0x3f;
            let _ = c.enqueue(read_req(&c, id, paddr, t));
            id += 1;
            t += Ps::from_ns(40);
        }
        c.try_advance_to(Ps::from_us(110)).unwrap();
        let mut trace = Vec::new();
        c.drain_trace_into(&mut trace);
        assert!(trace.iter().any(|e| e.cmd == TraceCmd::RefPb));
        let trfc_pb = c.refresh_timing().trfc_pb;
        let mut windows: Vec<(u8, u8, Ps, Ps)> = Vec::new();
        for e in &trace {
            if e.cmd == TraceCmd::RefPb {
                windows.push((e.rank, e.bank, e.at, e.at + trfc_pb));
            }
        }
        for e in &trace {
            if e.cmd == TraceCmd::RefPb {
                continue;
            }
            for &(r, b, lo, hi) in &windows {
                assert!(
                    !(e.rank == r && e.bank == b && e.at >= lo && e.at < hi),
                    "{:?} at {} inside refresh window [{lo}, {hi}) of r{r}b{b}",
                    e.cmd,
                    e.at
                );
            }
        }
    }

    #[test]
    fn determinism_same_inputs_same_stats() {
        let run = || {
            let mut c = shadow(RefreshPolicyKind::PerBankRoundRobin);
            for i in 0..200u64 {
                let paddr = (i * 0x9E37_79B9) & ((1 << 30) - 1) & !0x3f;
                let at = Ps::from_ns(i * 37);
                c.try_advance_to(at).unwrap();
                let req = if i % 4 == 0 {
                    write_req(&c, i, paddr, at)
                } else {
                    read_req(&c, i, paddr, at)
                };
                let _ = c.enqueue(req);
            }
            c.try_advance_to(Ps::from_us(100)).unwrap();
            format!("{:?}", c.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn step_granularity_does_not_change_results() {
        let run = |step_ns: u64| {
            let mut c = shadow(RefreshPolicyKind::Elastic);
            for i in 0..100u64 {
                let paddr = (i * 0x5851_F42D) & ((1 << 30) - 1) & !0x3f;
                let at = Ps::from_ns(i * 53);
                c.try_advance_to(at).unwrap();
                let _ = c.enqueue(read_req(&c, i, paddr, at));
            }
            let mut t = Ps::from_ns(100 * 53);
            while t < Ps::from_us(60) {
                c.try_advance_to(t).unwrap();
                t += Ps::from_ns(step_ns);
            }
            c.try_advance_to(Ps::from_us(60)).unwrap();
            format!("{:?}", c.stats())
        };
        assert_eq!(run(100), run(7_919));
    }

    #[test]
    fn save_restore_roundtrip_is_bit_identical() {
        let mut c = shadow(RefreshPolicyKind::PerBankSequential);
        for i in 0..50u64 {
            let paddr = (i * 0x9E37_79B9) & ((1 << 30) - 1) & !0x3f;
            let at = Ps::from_ns(i * 61);
            c.try_advance_to(at).unwrap();
            let _ = c.enqueue(read_req(&c, i, paddr, at));
        }
        c.try_advance_to(Ps::from_us(20)).unwrap();
        let saved = c.save_state();
        let mut fresh = shadow(RefreshPolicyKind::PerBankSequential);
        fresh.restore_state(&saved).unwrap();
        c.try_advance_to(Ps::from_us(200)).unwrap();
        fresh.try_advance_to(Ps::from_us(200)).unwrap();
        assert_eq!(format!("{:?}", c.stats()), format!("{:?}", fresh.stats()));
        assert_eq!(c.save_state(), fresh.save_state());
    }

    #[test]
    fn restore_rejects_wrong_policy_words() {
        let c = shadow(RefreshPolicyKind::AllBank);
        let saved = c.save_state();
        let mut other = shadow(RefreshPolicyKind::NoRefresh);
        if !saved.policy_words.is_empty() {
            assert!(other.restore_state(&saved).is_err());
        }
    }

    #[test]
    fn drop_refresh_knob_loses_refreshes() {
        let clean = {
            let mut c = shadow(RefreshPolicyKind::PerBankRoundRobin);
            c.try_advance_to(Ps::from_us(100)).unwrap();
            c.stats().refreshes_pb
        };
        let perturbed = {
            let mut c = shadow_cfg(
                RefreshPolicyKind::PerBankRoundRobin,
                ShadowConfig {
                    drop_refresh_every: 4,
                },
            );
            c.try_advance_to(Ps::from_us(100)).unwrap();
            c.stats().refreshes_pb
        };
        assert!(
            perturbed < clean,
            "perturbed {perturbed} should lose refreshes vs clean {clean}"
        );
        // Roughly every 4th command evaporates.
        let lost = clean - perturbed;
        assert!(
            lost >= clean / 6,
            "expected ~25% loss, got {lost} of {clean}"
        );
        assert!(ShadowConfig {
            drop_refresh_every: 4
        }
        .is_perturbed());
        assert!(!ShadowConfig::default().is_perturbed());
    }

    #[test]
    fn refresh_coverage_under_load() {
        let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
        let timing = RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 512);
        let trefw = timing.trefw;
        let mut c = ShadowController::new(
            mapping,
            TimingParams::ddr3_1600(),
            timing,
            RefreshPolicyKind::PerBankSequential,
            ControllerConfig::default(),
            ShadowConfig::default(),
        );
        let mut t = Ps::ZERO;
        let mut id = 0u64;
        while t < trefw {
            c.try_advance_to(t).unwrap();
            let paddr = id.wrapping_mul(0x5851_F42D_4C95_7F2D) & ((32u64 << 30) - 1) & !0x3f;
            let _ = c.enqueue(read_req(&c, id, paddr, t));
            id += 1;
            t += Ps::from_ns(50);
        }
        c.try_advance_to(trefw + Ps::from_us(10)).unwrap();
        assert!(c.stats().refreshes_pb >= 250, "{}", c.stats().refreshes_pb);
        // Every bank got its full row coverage.
        let rows = c.refresh_timing().rows_per_bank;
        for (bank, _, refreshed, _) in c.bank_report() {
            assert!(
                refreshed >= u64::from(rows),
                "bank {bank} refreshed only {refreshed} of {rows} rows"
            );
        }
    }
}

//! # refsim-dram
//!
//! Cycle-level DDR3/DDR4 DRAM substrate for the refsim project: bank and
//! rank timing state machines, an FR-FCFS memory controller with batched
//! write draining, and the full set of refresh scheduling policies
//! evaluated by *"Hardware-Software Co-design to Mitigate DRAM Refresh
//! Overheads"* (ASPLOS'17) — including the paper's proposed sequential
//! per-bank schedule (Algorithm 1).
//!
//! ## Layout
//!
//! * [`time`] — picosecond time base shared by the whole simulator.
//! * [`geometry`] / [`mapping`] — topology and physical-address decode
//!   (the co-design's hardware→OS exposure).
//! * [`timing`] — JEDEC parameters, densities, retention, FGR modes.
//! * [`bank`] — per-bank / per-rank timing state machines.
//! * [`refresh`] — the refresh policies and the [`refresh::BusyForecast`]
//!   interface the OS scheduler consumes.
//! * [`controller`] — the per-channel memory controller.
//! * [`integrity`] — the retention-integrity oracle and refresh fault
//!   injection (skipped/delayed commands, weak rows).
//! * [`error`] — typed diagnostic errors with state snapshots.
//! * [`stats`] — controller counters.
//!
//! ## Example
//!
//! ```
//! use refsim_dram::prelude::*;
//!
//! // A 32 Gb, 2-rank channel with the proposed refresh schedule.
//! let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
//! let timing = RefreshTiming::new(Density::Gb32, Retention::Ms64);
//! let mut mc = MemoryController::new(
//!     mapping,
//!     TimingParams::ddr3_1600(),
//!     timing,
//!     RefreshPolicyKind::PerBankSequential,
//!     ControllerConfig::default(),
//! );
//!
//! // The OS can ask which bank refreshes during an upcoming quantum:
//! let forecast = mc.refresh_forecast(Ps::ZERO, Ps::from_ms(4));
//! assert_eq!(forecast, BusyForecast::Bank(BankId::new(0, 0)));
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod bank;
pub mod controller;
pub mod error;
pub mod geometry;
pub mod integrity;
pub mod mapping;
pub mod power;
pub mod refresh;
pub mod request;
pub mod shadow;
pub mod stats;
pub mod time;
pub mod timing;

/// Convenient glob-import of the crate's commonly used types.
pub mod prelude {
    pub use crate::backend::{
        build_backend, BackendDescriptor, BackendKind, MemoryBackend, SavedBackend,
    };
    pub use crate::controller::{ControllerConfig, MemoryController, QueueFull};
    pub use crate::error::{ControllerSnapshot, DramError};
    pub use crate::geometry::{BankId, Geometry, Location};
    pub use crate::integrity::{
        IntegrityConfig, RefreshFaults, RetentionTracker, RetentionViolation, ViolationKind,
        WeakRow,
    };
    pub use crate::mapping::{AddressMapping, MappingScheme};
    pub use crate::power::{energy, EnergyBreakdown, PowerParams};
    pub use crate::refresh::{BusyForecast, RefreshPolicyKind};
    pub use crate::request::{Completion, MemRequest, ReqId, ReqKind};
    pub use crate::shadow::{SavedShadow, ShadowConfig, ShadowController};
    pub use crate::stats::ControllerStats;
    pub use crate::time::Ps;
    pub use crate::timing::{Density, FgrMode, RefreshTiming, Retention, TimingParams};
}

//! Physical-address ↔ DRAM-location mapping.
//!
//! The mapping determines which channel/rank/bank/row/column a physical
//! cache-line address lands on. In the co-design this mapping is the piece
//! of hardware information that is *exposed to the OS* so the buddy
//! allocator can steer pages to specific banks (§5.2.1, Algorithm 2 line
//! 23: "Since OS is exposed with hardware address-mapping information, we
//! can get the bank id from the physical page address").
//!
//! # Examples
//!
//! ```
//! use refsim_dram::geometry::Geometry;
//! use refsim_dram::mapping::{AddressMapping, MappingScheme};
//!
//! let map = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
//! let loc = map.decode(0x1234_5680);
//! assert_eq!(map.encode(loc), 0x1234_5680 & !0x3f); // line-aligned
//! ```

use serde::{Deserialize, Serialize};

use crate::geometry::{Geometry, Location};

/// Field interleaving order of the physical address, listed from the most
/// significant field to the least significant (the byte offset within a
/// cache line always occupies the lowest bits and is not listed).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingScheme {
    /// `row : rank : bank : channel : column : offset`.
    ///
    /// The classic open-row-friendly mapping: consecutive cache lines walk
    /// the columns of one row, then stripe across channels, then banks.
    /// Consecutive *rows of the same bank* are 4 KiB apart in one bank —
    /// i.e. each OS page (4 KiB = one DRAM row here) lands entirely in one
    /// bank, which is what makes bank-aware page allocation possible.
    #[default]
    RowRankBankColumn,
    /// `row : bank : rank : channel : column : offset`.
    ///
    /// Swaps rank/bank priority; adjacent pages alternate ranks first.
    RowBankRankColumn,
    /// `bank : rank : row : channel : column : offset` ("bank-as-MSB").
    ///
    /// Divides the physical space into large contiguous per-bank regions;
    /// used by hard-partitioning studies (PALLOC-style region mapping).
    BankRankRowColumn,
    /// `row : rank : bank XOR row-low : channel : column : offset`.
    ///
    /// Permutation-based interleaving (Zhang et al.): the bank index is
    /// XOR-ed with the low row bits to spread row-conflict streams. The
    /// XOR is self-inverse so decode/encode stay exact.
    PermutedBank,
}

impl MappingScheme {
    /// All supported schemes, for sweeps and tests.
    pub const ALL: [MappingScheme; 4] = [
        MappingScheme::RowRankBankColumn,
        MappingScheme::RowBankRankColumn,
        MappingScheme::BankRankRowColumn,
        MappingScheme::PermutedBank,
    ];
}

/// A concrete, invertible address mapping for a given [`Geometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    geometry: Geometry,
    scheme: MappingScheme,
}

impl AddressMapping {
    /// Creates a mapping for `geometry` using `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`Geometry::validate`].
    pub fn new(geometry: Geometry, scheme: MappingScheme) -> Self {
        geometry
            .validate()
            .unwrap_or_else(|e| panic!("invalid geometry: {e}"));
        AddressMapping { geometry, scheme }
    }

    /// The geometry this mapping addresses.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The interleaving scheme in use.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Decodes a physical byte address into a DRAM location.
    ///
    /// The low `offset_bits` (byte within line) are ignored. Addresses
    /// beyond the installed capacity wrap (the row field is taken modulo
    /// `rows_per_bank`), which keeps the function total; callers that care
    /// about capacity should bound their addresses first.
    pub fn decode(&self, paddr: u64) -> Location {
        let g = &self.geometry;
        let mut a = paddr >> g.offset_bits();
        let mut take = |bits: u32| -> u64 {
            let v = a & ((1u64 << bits) - 1);
            a >>= bits;
            v
        };
        match self.scheme {
            MappingScheme::RowRankBankColumn => {
                let col = take(g.col_bits());
                let channel = take(g.channel_bits());
                let bank = take(g.bank_bits());
                let rank = take(g.rank_bits());
                let row = take(g.row_bits()) % u64::from(g.rows_per_bank);
                Location {
                    channel: channel as u8,
                    rank: rank as u8,
                    bank: bank as u8,
                    row: row as u32,
                    col: col as u32,
                }
            }
            MappingScheme::RowBankRankColumn => {
                let col = take(g.col_bits());
                let channel = take(g.channel_bits());
                let rank = take(g.rank_bits());
                let bank = take(g.bank_bits());
                let row = take(g.row_bits()) % u64::from(g.rows_per_bank);
                Location {
                    channel: channel as u8,
                    rank: rank as u8,
                    bank: bank as u8,
                    row: row as u32,
                    col: col as u32,
                }
            }
            MappingScheme::BankRankRowColumn => {
                let col = take(g.col_bits());
                let channel = take(g.channel_bits());
                let row = take(g.row_bits()) % u64::from(g.rows_per_bank);
                let rank = take(g.rank_bits());
                let bank = take(g.bank_bits());
                Location {
                    channel: channel as u8,
                    rank: rank as u8,
                    bank: bank as u8,
                    row: row as u32,
                    col: col as u32,
                }
            }
            MappingScheme::PermutedBank => {
                let col = take(g.col_bits());
                let channel = take(g.channel_bits());
                let bank_raw = take(g.bank_bits());
                let rank = take(g.rank_bits());
                let row = take(g.row_bits()) % u64::from(g.rows_per_bank);
                let bank = bank_raw ^ (row & ((1u64 << g.bank_bits()) - 1));
                Location {
                    channel: channel as u8,
                    rank: rank as u8,
                    bank: bank as u8,
                    row: row as u32,
                    col: col as u32,
                }
            }
        }
    }

    /// Encodes a DRAM location back into a (line-aligned) physical address.
    ///
    /// Inverse of [`AddressMapping::decode`] for in-range locations.
    pub fn encode(&self, loc: Location) -> u64 {
        let g = &self.geometry;
        let mut a: u64 = 0;
        let mut shift: u32 = g.offset_bits();
        let mut put = |v: u64, bits: u32| {
            a |= (v & ((1u64 << bits) - 1)) << shift;
            shift += bits;
        };
        match self.scheme {
            MappingScheme::RowRankBankColumn => {
                put(u64::from(loc.col), g.col_bits());
                put(u64::from(loc.channel), g.channel_bits());
                put(u64::from(loc.bank), g.bank_bits());
                put(u64::from(loc.rank), g.rank_bits());
                put(u64::from(loc.row), g.row_bits());
            }
            MappingScheme::RowBankRankColumn => {
                put(u64::from(loc.col), g.col_bits());
                put(u64::from(loc.channel), g.channel_bits());
                put(u64::from(loc.rank), g.rank_bits());
                put(u64::from(loc.bank), g.bank_bits());
                put(u64::from(loc.row), g.row_bits());
            }
            MappingScheme::BankRankRowColumn => {
                put(u64::from(loc.col), g.col_bits());
                put(u64::from(loc.channel), g.channel_bits());
                put(u64::from(loc.row), g.row_bits());
                put(u64::from(loc.rank), g.rank_bits());
                put(u64::from(loc.bank), g.bank_bits());
            }
            MappingScheme::PermutedBank => {
                let bank_raw =
                    u64::from(loc.bank) ^ (u64::from(loc.row) & ((1u64 << g.bank_bits()) - 1));
                put(u64::from(loc.col), g.col_bits());
                put(u64::from(loc.channel), g.channel_bits());
                put(bank_raw, g.bank_bits());
                put(u64::from(loc.rank), g.rank_bits());
                put(u64::from(loc.row), g.row_bits());
            }
        }
        a
    }

    /// The number of address bits an in-range physical address occupies
    /// under this mapping.
    pub fn addr_bits(&self) -> u32 {
        let g = &self.geometry;
        g.offset_bits()
            + g.col_bits()
            + g.channel_bits()
            + g.bank_bits()
            + g.rank_bits()
            + g.row_bits()
    }

    /// Convenience: the `(rank, bank)` a 4 KiB OS *page* lands on, given
    /// its physical page address. Meaningful for mappings where an entire
    /// page falls in one bank (all provided schemes with 4 KiB rows ≥ page
    /// size); this is the `get_bank_id_from_page` of Algorithm 2.
    ///
    /// Returns `(channel, BankId)`.
    pub fn page_bank(&self, page_paddr: u64) -> (u8, crate::geometry::BankId) {
        let loc = self.decode(page_paddr);
        (loc.channel, loc.bank_id())
    }

    /// Whether every aligned `page_bytes`-sized page maps entirely onto a
    /// single bank under this mapping.
    pub fn page_is_bank_uniform(&self, page_bytes: u32) -> bool {
        // A page is bank-uniform iff the page offset bits are consumed
        // entirely by (offset + column + channel) fields, i.e. bank/rank
        // bits lie at or above the page boundary.
        let g = &self.geometry;
        let low_bits = g.offset_bits() + g.col_bits() + g.channel_bits();
        (1u64 << low_bits) >= u64::from(page_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankId;

    fn all_mappings() -> Vec<AddressMapping> {
        MappingScheme::ALL
            .into_iter()
            .map(|s| AddressMapping::new(Geometry::default(), s))
            .collect()
    }

    #[test]
    fn decode_encode_roundtrip_sampled() {
        for map in all_mappings() {
            for i in 0..10_000u64 {
                // sample addresses spread over the full 32 GiB space
                let paddr = (i * 0x0003_9E75_31C9) & ((32u64 << 30) - 1) & !0x3f;
                let loc = map.decode(paddr);
                assert_eq!(
                    map.encode(loc),
                    paddr,
                    "roundtrip failed for {:?} at {paddr:#x}",
                    map.scheme()
                );
            }
        }
    }

    #[test]
    fn consecutive_lines_same_row_until_row_boundary() {
        let map = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
        let base = 0x4000_0000u64;
        let first = map.decode(base);
        for line in 1..64 {
            let loc = map.decode(base + line * 64);
            assert_eq!(loc.row, first.row);
            assert_eq!(loc.bank_id(), first.bank_id());
            assert_eq!(loc.col, first.col + line as u32);
        }
        // 65th line crosses into the next bank (bank bits above column).
        let next = map.decode(base + 64 * 64);
        assert_ne!(next.bank_id(), first.bank_id());
    }

    #[test]
    fn page_is_bank_uniform_for_4k_pages() {
        let g = Geometry::default();
        for s in MappingScheme::ALL {
            let map = AddressMapping::new(g, s);
            assert!(
                map.page_is_bank_uniform(4096),
                "{s:?} should keep 4 KiB pages on one bank"
            );
        }
    }

    #[test]
    fn page_bank_scans_all_banks() {
        // Walking pages must eventually touch every (rank, bank).
        let map = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
        let mut seen = std::collections::HashSet::new();
        for page in 0..64u64 {
            let (_ch, b) = map.page_bank(page * 4096);
            seen.insert(b);
        }
        assert_eq!(seen.len(), 16);
        assert!(seen.contains(&BankId::new(1, 7)));
    }

    #[test]
    fn bank_msb_scheme_gives_contiguous_bank_regions() {
        let map = AddressMapping::new(Geometry::default(), MappingScheme::BankRankRowColumn);
        // The first bank-region is rows*4096 bytes of contiguous space in
        // (rank 0, bank 0).
        let region = Geometry::default().bank_bytes() * 2; // ×2 ranks interleaved below bank
        let a = map.decode(0);
        let b = map.decode(region - 4096);
        assert_eq!(a.bank, b.bank);
        let c = map.decode(region);
        assert_ne!(c.bank, a.bank);
    }

    #[test]
    fn permuted_bank_roundtrips_and_spreads() {
        let map = AddressMapping::new(Geometry::default(), MappingScheme::PermutedBank);
        // Row-conflict stream (same bank, different row under plain map)
        // should spread over banks under permutation.
        let mut banks = std::collections::HashSet::new();
        for row in 0..8u64 {
            // Construct address with fixed raw-bank=0, varying row.
            let plain = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
            let paddr = plain.encode(Location {
                channel: 0,
                rank: 0,
                bank: 0,
                row: row as u32,
                col: 0,
            });
            banks.insert(map.decode(paddr).bank);
        }
        assert!(banks.len() > 1, "permutation should spread banks");
    }

    #[test]
    fn addr_bits_covers_capacity() {
        let map = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
        assert_eq!(map.addr_bits(), 35); // 32 GiB
    }

    #[test]
    #[should_panic(expected = "invalid geometry")]
    fn new_panics_on_bad_geometry() {
        let g = Geometry {
            banks_per_rank: 5,
            ..Geometry::default()
        };
        let _ = AddressMapping::new(g, MappingScheme::RowRankBankColumn);
    }
}

//! Memory transactions flowing between the cache hierarchy and the
//! memory controller.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::geometry::Location;
use crate::time::Ps;

/// Unique id for an in-flight memory request, assigned by the requester
/// (the MSHR layer in `refsim-cpu`).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqKind {
    /// Demand read (LLC miss fill). The requester is notified on
    /// completion.
    Read,
    /// Writeback (dirty LLC eviction). Posted: no completion callback.
    Write,
}

/// A cache-line-sized DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Requester-assigned id (echoed in [`Completion`]).
    pub id: ReqId,
    /// Read or write.
    pub kind: ReqKind,
    /// Physical byte address (line aligned).
    pub paddr: u64,
    /// Decoded DRAM location of `paddr`.
    pub loc: Location,
    /// Time the request entered the controller queue.
    pub arrival: Ps,
    /// Core that generated the request (for per-core stats), `u8::MAX`
    /// when not attributable (e.g. prefetch or DMA).
    pub core: u8,
    /// Task that generated the request (for per-task stats), `u32::MAX`
    /// when not attributable.
    pub task: u32,
}

impl MemRequest {
    /// True for [`ReqKind::Read`].
    pub fn is_read(&self) -> bool {
        matches!(self.kind, ReqKind::Read)
    }
}

/// Completion notice for a read request: data fully transferred at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// Id of the completed request.
    pub id: ReqId,
    /// Time the last data beat arrived.
    pub at: Ps,
    /// Queueing + service latency (`at - arrival`).
    pub latency: Ps,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_read_discriminates() {
        let loc = Location::default();
        let mk = |kind| MemRequest {
            id: ReqId(1),
            kind,
            paddr: 0,
            loc,
            arrival: Ps::ZERO,
            core: 0,
            task: 0,
        };
        assert!(mk(ReqKind::Read).is_read());
        assert!(!mk(ReqKind::Write).is_read());
    }

    #[test]
    fn req_id_display() {
        assert_eq!(ReqId(42).to_string(), "req#42");
    }
}

//! Simulation time base.
//!
//! The whole simulator runs on a single global time base expressed in
//! **picoseconds** held in a [`Ps`] newtype. A single integer time base
//! avoids rounding errors when crossing the CPU (3.2 GHz, 312.5 ps/cycle)
//! and DRAM (DDR3-1600, tCK = 1250 ps) clock domains.
//!
//! # Examples
//!
//! ```
//! use refsim_dram::time::Ps;
//!
//! let t = Ps::from_ns(7_800); // one DDR3 tREFI
//! assert_eq!(t, Ps::from_us(7) + Ps::from_ns(800));
//! assert_eq!(t.as_ns(), 7_800);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in time or a duration, in picoseconds.
///
/// `Ps` is used for both absolute simulation timestamps and durations;
/// the arithmetic operators behave like plain integers. The zero value is
/// the simulation epoch.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Ps(pub u64);

impl Ps {
    /// The simulation epoch / zero duration.
    pub const ZERO: Ps = Ps(0);
    /// The largest representable instant, used as "never".
    pub const MAX: Ps = Ps(u64::MAX);

    /// Creates a time from whole picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Ps(ps)
    }

    /// Creates a time from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Ps(ns * 1_000)
    }

    /// Creates a time from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Ps(us * 1_000_000)
    }

    /// Creates a time from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Ps(ms * 1_000_000_000)
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time rounded down to whole nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time rounded down to whole microseconds.
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the time as fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the time as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction; clamps at [`Ps::ZERO`].
    #[inline]
    pub const fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Ps) -> Option<Ps> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Ps(v)),
            None => None,
        }
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, rhs: Ps) -> Ps {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, rhs: Ps) -> Ps {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Number of whole cycles of period `period` elapsed at this instant.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[inline]
    pub fn cycles(self, period: Ps) -> u64 {
        assert!(period.0 > 0, "cycle period must be non-zero");
        self.0 / period.0
    }

    /// Rounds this instant *up* to the next multiple of `period`.
    ///
    /// An instant already on a boundary is returned unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[inline]
    pub fn round_up(self, period: Ps) -> Ps {
        assert!(period.0 > 0, "cycle period must be non-zero");
        Ps(self.0.div_ceil(period.0) * period.0)
    }

    /// Multiplies a duration by a rational factor `num / den`, rounding to
    /// nearest. Useful for derived timing parameters such as
    /// `tRFCpb = tRFCab / 2.3`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[inline]
    pub fn scale(self, num: u64, den: u64) -> Ps {
        assert!(den > 0, "denominator must be non-zero");
        let v = self.0 as u128 * num as u128 / den as u128;
        Ps(v.min(u64::MAX as u128) as u64)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0")
        } else if ps.is_multiple_of(1_000_000_000) {
            write!(f, "{}ms", ps / 1_000_000_000)
        } else if ps.is_multiple_of(1_000_000) {
            write!(f, "{}us", ps / 1_000_000)
        } else if ps.is_multiple_of(1_000) {
            write!(f, "{}ns", ps / 1_000)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

impl Add for Ps {
    type Output = Ps;
    #[inline]
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    #[inline]
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    #[inline]
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl SubAssign for Ps {
    #[inline]
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Div<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn div(self, rhs: u64) -> Ps {
        Ps(self.0 / rhs)
    }
}

impl Div<Ps> for Ps {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Ps) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Ps> for Ps {
    type Output = Ps;
    #[inline]
    fn rem(self, rhs: Ps) -> Ps {
        Ps(self.0 % rhs.0)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        iter.fold(Ps::ZERO, Add::add)
    }
}

/// DDR3-1600 memory-bus clock period (1.25 ns).
pub const TCK_DDR3_1600: Ps = Ps(1_250);

/// CPU clock period at 3.2 GHz (312.5 ps → stored exactly in quarter-ns).
///
/// 3.2 GHz divides evenly into picoseconds (312.5 ps is not整 — we use
/// 312 ps? No: 1/3.2GHz = 312.5 ps). To stay exact we define the CPU
/// period as 625 ps per *half*-cycle; all core-model arithmetic uses
/// [`cpu_cycles_to_ps`]/[`ps_to_cpu_cycles`] which are exact for even
/// counts and round to the nearest picosecond otherwise.
pub const CPU_FREQ_GHZ: f64 = 3.2;

/// Converts CPU cycles at 3.2 GHz to picoseconds (rounded to nearest).
#[inline]
pub fn cpu_cycles_to_ps(cycles: u64) -> Ps {
    // 1 cycle = 312.5 ps = 625/2 ps.
    Ps((cycles as u128 * 625 / 2) as u64)
}

/// Converts picoseconds to CPU cycles at 3.2 GHz (rounded down).
#[inline]
pub fn ps_to_cpu_cycles(t: Ps) -> u64 {
    (t.0 as u128 * 2 / 625) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Ps::from_ns(1), Ps(1_000));
        assert_eq!(Ps::from_us(1), Ps::from_ns(1_000));
        assert_eq!(Ps::from_ms(1), Ps::from_us(1_000));
    }

    #[test]
    fn display_uses_largest_exact_unit() {
        assert_eq!(Ps::from_ms(64).to_string(), "64ms");
        assert_eq!(Ps::from_ns(890).to_string(), "890ns");
        assert_eq!(Ps::from_us(8).to_string(), "8us");
        assert_eq!(Ps(1_500).to_string(), "1500ps");
        assert_eq!(Ps::ZERO.to_string(), "0");
    }

    #[test]
    fn arithmetic() {
        let a = Ps::from_ns(10);
        let b = Ps::from_ns(4);
        assert_eq!(a + b, Ps::from_ns(14));
        assert_eq!(a - b, Ps::from_ns(6));
        assert_eq!(a * 3, Ps::from_ns(30));
        assert_eq!(a / 2, Ps::from_ns(5));
        assert_eq!(a / b, 2);
        assert_eq!(a % b, Ps::from_ns(2));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Ps::from_ns(1).saturating_sub(Ps::from_ns(5)), Ps::ZERO);
    }

    #[test]
    fn round_up_boundaries() {
        let p = Ps::from_ns(10);
        assert_eq!(Ps::from_ns(0).round_up(p), Ps::from_ns(0));
        assert_eq!(Ps::from_ns(1).round_up(p), Ps::from_ns(10));
        assert_eq!(Ps::from_ns(10).round_up(p), Ps::from_ns(10));
        assert_eq!(Ps::from_ns(11).round_up(p), Ps::from_ns(20));
    }

    #[test]
    fn scale_rounds_down_like_integer_division() {
        // tRFCab / 2.3 => * 10 / 23
        let trfc = Ps::from_ns(890);
        assert_eq!(trfc.scale(10, 23), Ps::from_ps(386_956));
    }

    #[test]
    fn cpu_cycle_conversion_roundtrip_even() {
        for c in [0u64, 2, 4, 1000, 12_800_000] {
            assert_eq!(ps_to_cpu_cycles(cpu_cycles_to_ps(c)), c);
        }
    }

    #[test]
    fn cycles_counts_whole_periods() {
        assert_eq!(Ps::from_ns(10).cycles(Ps::from_ns(3)), 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn cycles_zero_period_panics() {
        let _ = Ps::from_ns(1).cycles(Ps::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: Ps = [Ps::from_ns(1), Ps::from_ns(2), Ps::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Ps::from_ns(6));
    }
}

//! The pluggable memory-backend interface.
//!
//! A [`MemoryBackend`] is a per-channel DRAM timing model with
//! *execute-and-stall* semantics: the system hands it transactions
//! ([`MemoryBackend::enqueue`]), advances it through simulated time
//! ([`MemoryBackend::try_advance_to`]), and collects read completions;
//! when a queue is full the caller stalls and retries after the model
//! makes progress. Two independently written models implement the trait:
//!
//! * [`crate::controller::MemoryController`] — the primary FR-FCFS
//!   command-level model, and
//! * [`crate::shadow::ShadowController`] — a deliberately simpler,
//!   table-driven transaction-level model used as a differential
//!   cross-validation anchor.
//!
//! # Geometry handshake
//!
//! Integrating external DRAM models has a classic failure mode: the host
//! and the model silently disagree about topology or address mapping and
//! every downstream number is subtly wrong. To prevent it, a backend
//! *self-reports* its internal topology via
//! [`MemoryBackend::descriptor`]; the host must check the report against
//! its own expectation with [`BackendDescriptor::validate_geometry`]
//! before the first transaction, and reject the backend on any mismatch
//! rather than reconcile silently.
//!
//! # Determinism contract
//!
//! Backends must be bit-deterministic: the same construction parameters
//! and the same transaction sequence must produce identical statistics,
//! completions, traces and saved state, regardless of the granularity of
//! `try_advance_to` calls used to cover the same span. The replay
//! auditor and the differential harness in `refsim-core` both rely on
//! this.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::controller::{
    ControllerConfig, MemoryController, QueueFull, SavedController, TraceEntry,
};
use crate::error::{ControllerSnapshot, DramError};
use crate::geometry::{BankId, Geometry};
use crate::integrity::{IntegrityConfig, RefreshFaults, RetentionTracker};
use crate::mapping::AddressMapping;
use crate::refresh::{BusyForecast, RefreshPolicyKind};
use crate::request::{Completion, MemRequest};
use crate::shadow::{SavedShadow, ShadowConfig, ShadowController};
use crate::stats::ControllerStats;
use crate::time::Ps;
use crate::timing::{RefreshTiming, TimingParams};

/// Selects which DRAM timing model backs a channel.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// The primary FR-FCFS command-level controller
    /// ([`MemoryController`]).
    #[default]
    Primary,
    /// The independent table-driven shadow model
    /// ([`ShadowController`]).
    Shadow,
}

impl BackendKind {
    /// Both backends, primary first.
    pub const ALL: [BackendKind; 2] = [BackendKind::Primary, BackendKind::Shadow];
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::Primary => write!(f, "primary"),
            BackendKind::Shadow => write!(f, "shadow"),
        }
    }
}

/// Selects which implementation of the hot advance/tick path runs.
///
/// Both paths are bit-identical by construction — `ScalarReference`
/// keeps the original per-bank walk (and the system's original per-op
/// core loop) verbatim as a differential anchor, while `Batched` runs
/// the struct-of-arrays lane scan with memoized planning. The
/// equivalence suite sweeps every refresh policy through both; the run
/// cache salts its fingerprint with this knob so the two paths never
/// serve each other's artifacts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TickPath {
    /// Batched SoA lane scan + memoized plan (the production path).
    #[default]
    Batched,
    /// The pre-SoA scalar walk, preserved for differential testing.
    ScalarReference,
}

impl TickPath {
    /// Both paths, production first.
    pub const ALL: [TickPath; 2] = [TickPath::Batched, TickPath::ScalarReference];
}

impl fmt::Display for TickPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TickPath::Batched => write!(f, "batched"),
            TickPath::ScalarReference => write!(f, "scalar-reference"),
        }
    }
}

/// A backend's self-reported identity and topology, exchanged in the
/// geometry handshake before any transaction flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendDescriptor {
    /// Which model this is.
    pub kind: BackendKind,
    /// Human-readable model name for reports and errors.
    pub model: &'static str,
    /// The topology the model actually simulates (not the one the host
    /// asked for — the whole point is catching a disagreement).
    pub geometry: Geometry,
}

impl BackendDescriptor {
    /// Checks the self-reported geometry against the host's expectation.
    ///
    /// # Errors
    ///
    /// A description naming the backend and both geometries when they
    /// differ in any field.
    pub fn validate_geometry(&self, expected: &Geometry) -> Result<(), String> {
        if self.geometry == *expected {
            Ok(())
        } else {
            Err(format!(
                "geometry handshake failed for {} backend ({}): backend simulates \
                 {:?} but the host expects {:?}",
                self.kind, self.model, self.geometry, expected
            ))
        }
    }
}

/// Portable image of a backend's full dynamic state, tagged by model so
/// a checkpoint restored into the wrong backend is rejected instead of
/// silently misinterpreted.
#[derive(Debug, Clone, PartialEq)]
pub enum SavedBackend {
    /// State of a [`MemoryController`].
    Primary(SavedController),
    /// State of a [`ShadowController`].
    Shadow(SavedShadow),
}

impl SavedBackend {
    /// Which backend produced this image.
    pub fn kind(&self) -> BackendKind {
        match self {
            SavedBackend::Primary(_) => BackendKind::Primary,
            SavedBackend::Shadow(_) => BackendKind::Shadow,
        }
    }
}

/// A per-channel DRAM timing model (see the module docs for the
/// execute-and-stall, handshake and determinism contracts).
///
/// The trait is object-safe; the system owns channels as
/// `Box<dyn MemoryBackend>`.
pub trait MemoryBackend: fmt::Debug + Send {
    /// The backend's self-reported identity and topology (see the
    /// geometry-handshake contract in the module docs).
    fn descriptor(&self) -> BackendDescriptor;

    /// The address mapping of this channel.
    fn mapping(&self) -> &AddressMapping;

    /// The refresh timing in effect.
    fn refresh_timing(&self) -> &RefreshTiming;

    /// Statistics accumulated so far.
    fn stats(&self) -> &ControllerStats;

    /// Zeroes statistics (measurement-phase boundary).
    fn reset_stats(&mut self);

    /// Selects the hot-path implementation (see [`TickPath`]). Backends
    /// with a single tick implementation — the shadow model — ignore it;
    /// the contract is that both paths of any backend that *does*
    /// distinguish them stay bit-identical.
    fn set_tick_path(&mut self, _path: TickPath) {}

    /// Whether a read can be accepted right now.
    fn can_accept_read(&self) -> bool;

    /// Whether a write can be accepted right now.
    fn can_accept_write(&self) -> bool;

    /// Current queue occupancy `(reads, writes)`.
    fn queue_depths(&self) -> (usize, usize);

    /// Submits a transaction.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] if the target queue is at capacity; the caller
    /// stalls and retries after the backend makes progress.
    fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull>;

    /// Appends all read completions produced since the last drain to
    /// `out` and clears the internal buffer.
    fn drain_completions_into(&mut self, out: &mut Vec<Completion>);

    /// Whether undrained read completions are buffered.
    fn has_completions(&self) -> bool;

    /// Advances the model, executing everything that happens at or
    /// before `target`.
    ///
    /// # Errors
    ///
    /// A [`DramError`] on time regression, livelock, or a broken
    /// internal invariant.
    fn try_advance_to(&mut self, target: Ps) -> Result<(), DramError>;

    /// Advances like [`try_advance_to`](Self::try_advance_to) but stops
    /// after the first event that produces a read completion, returning
    /// its instant; `None` after a full advance with no completion.
    ///
    /// # Errors
    ///
    /// Exactly those of [`try_advance_to`](Self::try_advance_to).
    fn try_advance_until_completion(&mut self, target: Ps) -> Result<Option<Ps>, DramError>;

    /// The instant of the backend's next internally scheduled action, or
    /// `None` when it is fully idle.
    fn next_event_time(&mut self) -> Option<Ps>;

    /// The furthest instant a single advance may target while remaining
    /// interleaving-equivalent to smaller steps, or `None` when the
    /// channel is inert and can be leapt arbitrarily far.
    fn advance_cap(&self) -> Option<Ps>;

    /// End of the current bandwidth-utilization epoch.
    fn next_epoch_roll(&self) -> Ps;

    /// The refresh-schedule forecast for `[start, end)` — the
    /// co-design's HW→SW interface.
    fn refresh_forecast(&self, start: Ps, end: Ps) -> BusyForecast;

    /// Next refresh-schedule boundary after `t`, for quantum alignment.
    fn refresh_boundary_after(&self, t: Ps) -> Option<Ps>;

    /// Per-bank activity summary: `(bank, activations, rows refreshed,
    /// time spent refreshing)` for every bank of the channel.
    fn bank_report(&self) -> Vec<(BankId, u64, u64, Ps)>;

    /// A diagnostic digest of current state (attached to errors).
    fn state_snapshot(&self) -> ControllerSnapshot;

    /// Starts recording every issued DRAM command.
    fn enable_trace(&mut self);

    /// Appends the commands recorded since the previous drain to `out`.
    fn drain_trace_into(&mut self, out: &mut Vec<TraceEntry>);

    /// Enables the retention-integrity oracle with an explicit
    /// configuration (replacing any existing tracker).
    fn enable_integrity(&mut self, cfg: IntegrityConfig);

    /// The retention oracle, if enabled.
    fn integrity(&self) -> Option<&RetentionTracker>;

    /// Installs a deterministic refresh fault plan.
    fn inject_faults(&mut self, faults: RefreshFaults);

    /// Runs the end-of-run retention audit at `now`; returns the total
    /// violation count (0 when tracking is disabled).
    fn audit_retention(&mut self, now: Ps) -> u64;

    /// Captures the backend's full dynamic state for checkpointing.
    fn save_backend(&self) -> SavedBackend;

    /// Restores state captured by [`save_backend`](Self::save_backend)
    /// into this backend, which must have been built with the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// A description of the first structural mismatch — including a
    /// saved image produced by the *other* backend kind.
    fn restore_backend(&mut self, saved: &SavedBackend) -> Result<(), String>;
}

impl MemoryBackend for MemoryController {
    fn descriptor(&self) -> BackendDescriptor {
        BackendDescriptor {
            kind: BackendKind::Primary,
            model: "fr-fcfs command-level controller",
            geometry: *self.mapping().geometry(),
        }
    }

    fn mapping(&self) -> &AddressMapping {
        MemoryController::mapping(self)
    }

    fn refresh_timing(&self) -> &RefreshTiming {
        MemoryController::refresh_timing(self)
    }

    fn stats(&self) -> &ControllerStats {
        MemoryController::stats(self)
    }

    fn reset_stats(&mut self) {
        MemoryController::reset_stats(self);
    }

    fn set_tick_path(&mut self, path: TickPath) {
        MemoryController::set_tick_path(self, path);
    }

    fn can_accept_read(&self) -> bool {
        MemoryController::can_accept_read(self)
    }

    fn can_accept_write(&self) -> bool {
        MemoryController::can_accept_write(self)
    }

    fn queue_depths(&self) -> (usize, usize) {
        MemoryController::queue_depths(self)
    }

    fn enqueue(&mut self, req: MemRequest) -> Result<(), QueueFull> {
        MemoryController::enqueue(self, req)
    }

    fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        MemoryController::drain_completions_into(self, out);
    }

    fn has_completions(&self) -> bool {
        MemoryController::has_completions(self)
    }

    fn try_advance_to(&mut self, target: Ps) -> Result<(), DramError> {
        MemoryController::try_advance_to(self, target)
    }

    fn try_advance_until_completion(&mut self, target: Ps) -> Result<Option<Ps>, DramError> {
        MemoryController::try_advance_until_completion(self, target)
    }

    fn next_event_time(&mut self) -> Option<Ps> {
        MemoryController::next_event_time(self)
    }

    fn advance_cap(&self) -> Option<Ps> {
        MemoryController::advance_cap(self)
    }

    fn next_epoch_roll(&self) -> Ps {
        MemoryController::next_epoch_roll(self)
    }

    fn refresh_forecast(&self, start: Ps, end: Ps) -> BusyForecast {
        MemoryController::refresh_forecast(self, start, end)
    }

    fn refresh_boundary_after(&self, t: Ps) -> Option<Ps> {
        MemoryController::refresh_boundary_after(self, t)
    }

    fn bank_report(&self) -> Vec<(BankId, u64, u64, Ps)> {
        MemoryController::bank_report(self)
    }

    fn state_snapshot(&self) -> ControllerSnapshot {
        MemoryController::state_snapshot(self)
    }

    fn enable_trace(&mut self) {
        MemoryController::enable_trace(self);
    }

    fn drain_trace_into(&mut self, out: &mut Vec<TraceEntry>) {
        MemoryController::drain_trace_into(self, out);
    }

    fn enable_integrity(&mut self, cfg: IntegrityConfig) {
        MemoryController::enable_integrity(self, cfg);
    }

    fn integrity(&self) -> Option<&RetentionTracker> {
        MemoryController::integrity(self)
    }

    fn inject_faults(&mut self, faults: RefreshFaults) {
        MemoryController::inject_faults(self, faults);
    }

    fn audit_retention(&mut self, now: Ps) -> u64 {
        MemoryController::audit_retention(self, now)
    }

    fn save_backend(&self) -> SavedBackend {
        SavedBackend::Primary(self.save_state())
    }

    fn restore_backend(&mut self, saved: &SavedBackend) -> Result<(), String> {
        match saved {
            SavedBackend::Primary(s) => self.restore_state(s),
            SavedBackend::Shadow(_) => Err(
                "backend kind mismatch: saved image is from the shadow model, \
                 this channel runs the primary controller"
                    .to_owned(),
            ),
        }
    }
}

/// Builds a boxed backend of `kind` for the channel described by
/// `mapping`. `shadow` carries shadow-only knobs and is ignored by the
/// primary model.
pub fn build_backend(
    kind: BackendKind,
    mapping: AddressMapping,
    timing: TimingParams,
    refresh_timing: RefreshTiming,
    policy: RefreshPolicyKind,
    cfg: ControllerConfig,
    shadow: ShadowConfig,
) -> Box<dyn MemoryBackend> {
    match kind {
        BackendKind::Primary => Box::new(MemoryController::new(
            mapping,
            timing,
            refresh_timing,
            policy,
            cfg,
        )),
        BackendKind::Shadow => Box::new(ShadowController::new(
            mapping,
            timing,
            refresh_timing,
            policy,
            cfg,
            shadow,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingScheme;
    use crate::timing::{Density, Retention};

    fn backend(kind: BackendKind) -> Box<dyn MemoryBackend> {
        let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
        build_backend(
            kind,
            mapping,
            TimingParams::ddr3_1600(),
            RefreshTiming::new(Density::Gb32, Retention::Ms64),
            RefreshPolicyKind::PerBankSequential,
            ControllerConfig::default(),
            ShadowConfig::default(),
        )
    }

    #[test]
    fn factory_preserves_kind_and_geometry() {
        for kind in BackendKind::ALL {
            let b = backend(kind);
            let d = b.descriptor();
            assert_eq!(d.kind, kind);
            assert_eq!(d.geometry, Geometry::default());
            assert!(d.validate_geometry(&Geometry::default()).is_ok());
        }
    }

    #[test]
    fn handshake_rejects_geometry_mismatch() {
        let b = backend(BackendKind::Primary);
        let other = Geometry {
            ranks_per_channel: 4,
            ..Geometry::default()
        };
        let err = b.descriptor().validate_geometry(&other).unwrap_err();
        assert!(err.contains("geometry handshake failed"), "{err}");
        assert!(err.contains("primary"), "{err}");
    }

    #[test]
    fn cross_kind_restore_is_rejected() {
        let primary = backend(BackendKind::Primary);
        let mut shadow = backend(BackendKind::Shadow);
        let saved = primary.save_backend();
        assert_eq!(saved.kind(), BackendKind::Primary);
        let err = shadow.restore_backend(&saved).unwrap_err();
        assert!(err.contains("kind mismatch"), "{err}");
        let saved_shadow = shadow.save_backend();
        assert_eq!(saved_shadow.kind(), BackendKind::Shadow);
        let mut primary2 = backend(BackendKind::Primary);
        assert!(primary2.restore_backend(&saved_shadow).is_err());
    }

    #[test]
    fn kind_display_and_default() {
        assert_eq!(BackendKind::default(), BackendKind::Primary);
        assert_eq!(BackendKind::Primary.to_string(), "primary");
        assert_eq!(BackendKind::Shadow.to_string(), "shadow");
    }
}

//! JEDEC timing parameters, device densities, and refresh timing.
//!
//! Values follow Table 1 of the paper (DDR3-1600) plus the DDR4
//! fine-granularity-refresh scalings of §6.3:
//!
//! * `tREFIab = 7.8 µs`, `tREFW = 64 ms` (< 85 °C) or `32 ms` (> 85 °C)
//! * `tRFCab = 350/530/710/890 ns` for 8/16/24/32 Gb devices
//! * `tRFCab : tRFCpb = 2.3` (per Chang et al., cited in Table 1)
//! * DDR4 2x/4x modes: `tREFI` halves/quarters while `tRFC` scales by
//!   1.35×/1.63× of the halved/quartered value.
//!
//! # Time scaling
//!
//! [`RefreshTiming::scaled`] shrinks `tREFW` (and therefore the length of
//! each per-bank refresh *slice*) while keeping `tREFI` and `tRFC` at
//! JEDEC values. The refresh-busy *fraction* `tRFC/tREFI`, the co-design
//! alignment `timeslice = tREFW / total_banks`, and the queueing impact of
//! a single refresh are all invariant under this scaling — see DESIGN.md
//! §2 for the argument. The number of rows covered by one refresh command
//! is recomputed accordingly.

use serde::{Deserialize, Serialize};

use crate::time::{Ps, TCK_DDR3_1600};

/// DRAM device density from the paper's evaluation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Density {
    /// 8 Gb devices — current-day baseline in the paper's motivation
    /// (Figure 3); excluded from the main evaluation (footnote 4).
    Gb8,
    /// 16 Gb devices: `tRFCab` = 530 ns, 256 Ki rows/bank.
    Gb16,
    /// 24 Gb devices: `tRFCab` = 710 ns, 384 Ki rows/bank.
    Gb24,
    /// 32 Gb devices: `tRFCab` = 890 ns, 512 Ki rows/bank.
    #[default]
    Gb32,
}

impl Density {
    /// All densities, low to high.
    pub const ALL: [Density; 4] = [Density::Gb8, Density::Gb16, Density::Gb24, Density::Gb32];

    /// The densities used in the paper's main evaluation (§6).
    pub const EVALUATED: [Density; 3] = [Density::Gb16, Density::Gb24, Density::Gb32];

    /// All-bank refresh cycle time for this density (Table 1, plus the
    /// 350 ns 8 Gb value from §3.1).
    pub fn trfc_ab(self) -> Ps {
        match self {
            Density::Gb8 => Ps::from_ns(350),
            Density::Gb16 => Ps::from_ns(530),
            Density::Gb24 => Ps::from_ns(710),
            Density::Gb32 => Ps::from_ns(890),
        }
    }

    /// Rows per bank for this density (Table 1; 8 Gb scales down to
    /// 128 Ki by the same progression).
    pub fn rows_per_bank(self) -> u32 {
        match self {
            Density::Gb8 => 128 * 1024,
            Density::Gb16 => 256 * 1024,
            Density::Gb24 => 384 * 1024,
            Density::Gb32 => 512 * 1024,
        }
    }

    /// Device density in gigabits.
    pub fn gigabits(self) -> u32 {
        match self {
            Density::Gb8 => 8,
            Density::Gb16 => 16,
            Density::Gb24 => 24,
            Density::Gb32 => 32,
        }
    }
}

impl std::fmt::Display for Density {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}Gb", self.gigabits())
    }
}

/// DRAM retention window: how often every row must be refreshed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Retention {
    /// 64 ms — operating temperature below 85 °C.
    #[default]
    Ms64,
    /// 32 ms — extended temperature (> 85 °C); refresh runs twice as often.
    Ms32,
}

impl Retention {
    /// The retention window duration.
    pub fn trefw(self) -> Ps {
        match self {
            Retention::Ms64 => Ps::from_ms(64),
            Retention::Ms32 => Ps::from_ms(32),
        }
    }

    /// All-bank refresh interval: 7.8 µs at 64 ms retention, halved at
    /// 32 ms so the same 8192 refresh commands cover the shorter window.
    pub fn trefi_ab(self) -> Ps {
        match self {
            Retention::Ms64 => Ps::from_ns(7_800),
            Retention::Ms32 => Ps::from_ns(3_900),
        }
    }
}

impl std::fmt::Display for Retention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Retention::Ms64 => write!(f, "64ms"),
            Retention::Ms32 => write!(f, "32ms"),
        }
    }
}

/// DDR4 fine-granularity refresh mode (§6.3).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FgrMode {
    /// 1x: baseline `tREFI`/`tRFC`.
    #[default]
    X1,
    /// 2x: `tREFI/2`, `tRFC × 1.35 / 2`.
    X2,
    /// 4x: `tREFI/4`, `tRFC × 1.63 / 4`.
    X4,
}

impl FgrMode {
    /// All FGR modes.
    pub const ALL: [FgrMode; 3] = [FgrMode::X1, FgrMode::X2, FgrMode::X4];

    /// Scales a 1x `tREFI` to this mode.
    pub fn scale_trefi(self, trefi_1x: Ps) -> Ps {
        match self {
            FgrMode::X1 => trefi_1x,
            FgrMode::X2 => trefi_1x / 2,
            FgrMode::X4 => trefi_1x / 4,
        }
    }

    /// Scales a 1x `tRFC` to this mode (§6.3: 2x/4x shrink `tRFC` by only
    /// 1.35×/1.63× relative to halving/quartering — i.e. the per-command
    /// cost shrinks sub-linearly, which is why 2x/4x lose performance).
    pub fn scale_trfc(self, trfc_1x: Ps) -> Ps {
        match self {
            FgrMode::X1 => trfc_1x,
            FgrMode::X2 => trfc_1x.scale(135, 200), // ×1.35 / 2
            FgrMode::X4 => trfc_1x.scale(163, 400), // ×1.63 / 4
        }
    }
}

impl std::fmt::Display for FgrMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FgrMode::X1 => write!(f, "1x"),
            FgrMode::X2 => write!(f, "2x"),
            FgrMode::X4 => write!(f, "4x"),
        }
    }
}

/// Bank/rank/channel command timing parameters (DDR3-1600K defaults).
///
/// All values are durations in [`Ps`]. Construct with
/// [`TimingParams::ddr3_1600`] and tweak fields as needed; validated by
/// [`TimingParams::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Memory-bus clock period.
    pub tck: Ps,
    /// ACT → internal read/write (RAS-to-CAS delay).
    pub trcd: Ps,
    /// PRE → ACT (row precharge).
    pub trp: Ps,
    /// Read CAS latency (CL), command to first data beat.
    pub tcl: Ps,
    /// Write CAS latency (CWL).
    pub tcwl: Ps,
    /// ACT → PRE minimum (row active time).
    pub tras: Ps,
    /// ACT → ACT same bank (`tRAS + tRP`).
    pub trc: Ps,
    /// ACT → ACT different banks, same rank.
    pub trrd: Ps,
    /// Four-activate window per rank.
    pub tfaw: Ps,
    /// CAS → CAS (column command spacing).
    pub tccd: Ps,
    /// Data burst duration (BL8 at DDR = 4 clocks).
    pub tburst: Ps,
    /// End of write data → PRE (write recovery).
    pub twr: Ps,
    /// End of write data → read command, same rank.
    pub twtr: Ps,
    /// Read command → PRE.
    pub trtp: Ps,
    /// Rank-to-rank data-bus switch penalty.
    pub trtrs: Ps,
}

impl TimingParams {
    /// DDR3-1600 (11-11-11) parameters matching Table 1's device.
    pub fn ddr3_1600() -> Self {
        let tck = TCK_DDR3_1600;
        TimingParams {
            tck,
            trcd: Ps::from_ps(13_750),
            trp: Ps::from_ps(13_750),
            tcl: Ps::from_ps(13_750),
            tcwl: tck * 8,
            tras: Ps::from_ns(35),
            trc: Ps::from_ps(48_750),
            trrd: Ps::from_ns(6),
            tfaw: Ps::from_ns(40),
            tccd: tck * 4,
            tburst: tck * 4,
            twr: Ps::from_ns(15),
            twtr: Ps::from_ps(7_500),
            trtp: Ps::from_ps(7_500),
            trtrs: tck * 2,
        }
    }

    /// Checks internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated relation, e.g. `trc < tras +
    /// trp` or a zero clock period.
    pub fn validate(&self) -> Result<(), String> {
        if self.tck == Ps::ZERO {
            return Err("tck must be non-zero".to_owned());
        }
        if self.trc < self.tras + self.trp {
            return Err(format!(
                "trc ({}) must be >= tras + trp ({})",
                self.trc,
                self.tras + self.trp
            ));
        }
        if self.tfaw < self.trrd {
            return Err("tfaw must be >= trrd".to_owned());
        }
        if self.tburst == Ps::ZERO {
            return Err("tburst must be non-zero".to_owned());
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr3_1600()
    }
}

/// Refresh timing derived from density, retention, FGR mode and the
/// optional time-scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshTiming {
    /// Retention window (scaled).
    pub trefw: Ps,
    /// All-bank refresh interval (JEDEC, unscaled).
    pub trefi_ab: Ps,
    /// All-bank refresh cycle time.
    pub trfc_ab: Ps,
    /// Per-bank refresh cycle time (`trfc_ab / 2.3`).
    pub trfc_pb: Ps,
    /// Rows per bank (for bookkeeping row-coverage).
    pub rows_per_bank: u32,
    /// Time-scale divisor that produced `trefw` (1 = full scale).
    pub time_scale: u32,
}

impl RefreshTiming {
    /// Full-scale (unscaled) refresh timing.
    pub fn new(density: Density, retention: Retention) -> Self {
        Self::scaled(density, retention, 1)
    }

    /// Refresh timing with `tREFW` shrunk by `time_scale` (see module
    /// docs). `tREFI` and `tRFC` keep their JEDEC values so the
    /// refresh-busy fraction is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is zero or leaves fewer than one all-bank
    /// refresh interval per window.
    pub fn scaled(density: Density, retention: Retention, time_scale: u32) -> Self {
        assert!(time_scale > 0, "time_scale must be >= 1");
        let trefw = retention.trefw() / u64::from(time_scale);
        let trefi_ab = retention.trefi_ab();
        assert!(
            trefw >= trefi_ab,
            "time_scale {time_scale} leaves tREFW ({trefw}) below tREFIab ({trefi_ab})"
        );
        RefreshTiming {
            trefw,
            trefi_ab,
            trfc_ab: density.trfc_ab(),
            trfc_pb: density.trfc_ab().scale(10, 23),
            rows_per_bank: density.rows_per_bank(),
            time_scale,
        }
    }

    /// Number of all-bank refresh commands per retention window
    /// (8192 at full scale and 64 ms).
    pub fn ab_refreshes_per_window(&self) -> u64 {
        self.trefw / self.trefi_ab
    }

    /// Per-bank refresh interval for `total_banks` banks in the channel:
    /// `tREFIpb = tREFIab / totalBanks` (§2.2.2 / Figure 2b, generalized
    /// over ranks as in §5.1's 16-bank example where each bank finishes in
    /// `tREFW/16 = 4 ms`).
    pub fn trefi_pb(&self, total_banks: u32) -> Ps {
        self.trefi_ab / u64::from(total_banks)
    }

    /// Length of one bank's contiguous refresh slice under the proposed
    /// sequential schedule: `tREFW / totalBanks`.
    pub fn slice_len(&self, total_banks: u32) -> Ps {
        self.trefw / u64::from(total_banks)
    }

    /// Rows covered by one per-bank refresh command so the whole bank is
    /// covered in one window (`rows_per_bank / pb_refreshes_per_bank`).
    pub fn rows_per_pb_refresh(&self, total_banks: u32) -> u32 {
        let per_bank_cmds = self.slice_len(total_banks) / self.trefi_pb(total_banks);
        (u64::from(self.rows_per_bank).div_ceil(per_bank_cmds.max(1))) as u32
    }

    /// Whether the paper's *serial* sequential schedule — exactly one
    /// bank refreshing at a time, system-wide — is practical: it needs
    /// one `REFpb` per `tREFIab / totalBanks`, which must fit `tRFCpb`
    /// *plus* enough slack for demand traffic to the just-refreshed bank
    /// to make forward progress between commands (one row cycle, ~tRC ≈
    /// 60 ns — without it the serially-swept bank starves for its whole
    /// slice). True at 64 ms retention for 16 banks (487.5 ns ≥ 387 ns +
    /// 60 ns); false at 32 ms or with 32 banks, where the per-bank
    /// engines overlap across ranks instead.
    pub fn serial_sequential_feasible(&self, total_banks: u32) -> bool {
        const FORWARD_PROGRESS_SLACK: Ps = Ps(60_000);
        self.trefi_pb(total_banks) >= self.trfc_pb + FORWARD_PROGRESS_SLACK
    }

    /// Length of one slice of the proposed sequential schedule: with the
    /// serial schedule, `tREFW / totalBanks` (the paper's 4 ms at 64 ms /
    /// 16 banks); with the parallel per-rank fallback, `tREFW /
    /// banksPerRank` (each rank walks its banks concurrently).
    pub fn sequential_slice(&self, total_banks: u32, banks_per_rank: u32) -> Ps {
        if self.serial_sequential_feasible(total_banks) {
            self.trefw / u64::from(total_banks)
        } else {
            self.trefw / u64::from(banks_per_rank)
        }
    }

    /// Per-rank per-bank refresh interval (`tREFIab / banksPerRank`):
    /// the rate at which one rank's refresh engine issues `REFpb`
    /// commands in LPDDR3's per-bank mode.
    pub fn trefi_pb_rank(&self, banks_per_rank: u32) -> Ps {
        self.trefi_ab / u64::from(banks_per_rank)
    }

    /// Applies a DDR4 FGR mode, scaling `tREFIab` and `tRFC`s (§6.3).
    pub fn with_fgr(mut self, mode: FgrMode) -> Self {
        self.trefi_ab = mode.scale_trefi(self.trefi_ab);
        self.trfc_ab = mode.scale_trfc(self.trfc_ab);
        self.trfc_pb = self.trfc_ab.scale(10, 23);
        self
    }

    /// Fraction of time a rank is unavailable under all-bank refresh
    /// (`tRFCab / tREFIab`); the first-order refresh overhead.
    pub fn ab_busy_fraction(&self) -> f64 {
        self.trfc_ab.as_ps() as f64 / self.trefi_ab.as_ps() as f64
    }

    /// Fraction of time any single bank is unavailable under per-bank
    /// refresh (`tRFCpb / tREFIab`: each bank is refreshed once per
    /// `tREFIab` in round-robin).
    pub fn pb_bank_busy_fraction(&self) -> f64 {
        self.trfc_pb.as_ps() as f64 / self.trefi_ab.as_ps() as f64
    }
}

impl Default for RefreshTiming {
    fn default() -> Self {
        RefreshTiming::new(Density::Gb32, Retention::Ms64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_table_matches_paper() {
        assert_eq!(Density::Gb16.trfc_ab(), Ps::from_ns(530));
        assert_eq!(Density::Gb24.trfc_ab(), Ps::from_ns(710));
        assert_eq!(Density::Gb32.trfc_ab(), Ps::from_ns(890));
        assert_eq!(Density::Gb8.trfc_ab(), Ps::from_ns(350));
        assert_eq!(Density::Gb32.rows_per_bank(), 512 * 1024);
        assert_eq!(Density::Gb24.rows_per_bank(), 384 * 1024);
        assert_eq!(Density::Gb16.rows_per_bank(), 256 * 1024);
    }

    #[test]
    fn ddr3_1600_validates() {
        assert!(TimingParams::ddr3_1600().validate().is_ok());
    }

    #[test]
    fn validate_catches_trc_violation() {
        let mut t = TimingParams::ddr3_1600();
        t.trc = Ps::from_ns(10);
        assert!(t.validate().unwrap_err().contains("trc"));
    }

    #[test]
    fn refresh_commands_per_window() {
        let rt = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        // 64 ms / 7.8 µs = 8205 whole intervals (the paper rounds to 8192)
        assert_eq!(rt.ab_refreshes_per_window(), 8205);
        let rt32 = RefreshTiming::new(Density::Gb32, Retention::Ms32);
        assert_eq!(rt32.ab_refreshes_per_window(), 8205);
    }

    #[test]
    fn trfc_pb_ratio_is_2_3() {
        let rt = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        let ratio = rt.trfc_ab.as_ps() as f64 / rt.trfc_pb.as_ps() as f64;
        assert!((ratio - 2.3).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn sequential_slice_is_4ms_for_16_banks() {
        // §5.1: 2 ranks × 8 banks, 64 ms retention → bank 0 done in 4 ms.
        let rt = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        assert_eq!(rt.slice_len(16), Ps::from_ms(4));
        assert_eq!(rt.trefi_pb(16), Ps::from_ps(487_500));
    }

    #[test]
    fn scaled_preserves_busy_fractions() {
        let full = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        let scaled = RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 32);
        assert_eq!(full.ab_busy_fraction(), scaled.ab_busy_fraction());
        assert_eq!(full.pb_bank_busy_fraction(), scaled.pb_bank_busy_fraction());
        assert_eq!(scaled.trefw, Ps::from_ms(2));
        assert_eq!(scaled.slice_len(16), Ps::from_us(125));
    }

    #[test]
    #[should_panic(expected = "time_scale")]
    fn scaled_rejects_absurd_scale() {
        let _ = RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 20_000);
    }

    #[test]
    fn fgr_scalings_match_section_6_3() {
        let rt = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        let x2 = rt.with_fgr(FgrMode::X2);
        assert_eq!(x2.trefi_ab, Ps::from_ns(3_900));
        assert_eq!(x2.trfc_ab, Ps::from_ns(890).scale(135, 200));
        let x4 = rt.with_fgr(FgrMode::X4);
        assert_eq!(x4.trefi_ab, Ps::from_ns(1_950));
        assert_eq!(x4.trfc_ab, Ps::from_ns(890).scale(163, 400));
        // FGR modes *increase* total refresh-busy fraction (the paper's
        // reason 2x/4x underperform 1x).
        assert!(x2.ab_busy_fraction() > rt.ab_busy_fraction());
        assert!(x4.ab_busy_fraction() > x2.ab_busy_fraction());
    }

    #[test]
    fn rows_per_pb_refresh_covers_bank() {
        let rt = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        let per_cmd = rt.rows_per_pb_refresh(16);
        let cmds_per_slice = rt.slice_len(16) / rt.trefi_pb(16);
        assert!(u64::from(per_cmd) * cmds_per_slice >= u64::from(rt.rows_per_bank));
    }

    #[test]
    fn display_impls() {
        assert_eq!(Density::Gb32.to_string(), "32Gb");
        assert_eq!(Retention::Ms32.to_string(), "32ms");
        assert_eq!(FgrMode::X4.to_string(), "4x");
    }
}

//! DRAM energy accounting.
//!
//! A simplified Micron-style power model evaluated *post hoc* over
//! [`ControllerStats`](crate::stats::ControllerStats): each command class
//! carries a per-event energy, plus a background power proportional to
//! elapsed time. Absolute values are representative DDR3-1600 numbers
//! (1.5 V, x8 devices) — the model's purpose is *relative* comparison of
//! refresh policies: all policies refresh the same number of rows per
//! retention window, so their refresh energy is nearly equal, and the
//! schemes differentiate through background energy (how long the
//! workload takes) — which is exactly the argument energy-oriented
//! refresh papers (e.g. Coordinated Refresh, §7) build on.

use serde::{Deserialize, Serialize};

use crate::stats::ControllerStats;
use crate::time::Ps;
use crate::timing::Density;

/// Per-event energies (nanojoules) and background power (milliwatts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Energy of one ACT + PRE pair (row cycle).
    pub e_act_pre_nj: f64,
    /// Energy of one 64 B read burst (I/O + array).
    pub e_rd_nj: f64,
    /// Energy of one 64 B write burst.
    pub e_wr_nj: f64,
    /// Energy of one all-bank refresh command (per rank; covers one row
    /// bundle in every bank).
    pub e_ref_ab_nj: f64,
    /// Energy of one per-bank refresh command (same bundle, one bank).
    pub e_ref_pb_nj: f64,
    /// Background (standby + peripheral) power for the whole channel.
    pub background_mw: f64,
}

impl PowerParams {
    /// Representative DDR3-1600 values for the given device density.
    /// Refresh energy scales with `tRFC` (IDD5 current × VDD × tRFC);
    /// row/burst energies are density-independent to first order.
    pub fn ddr3_1600(density: Density) -> Self {
        // IDD5 ≈ 250 mA, VDD = 1.5 V → 375 mW during tRFC, per rank.
        let e_ref_ab = 0.375 * density.trfc_ab().as_ns_f64();
        PowerParams {
            e_act_pre_nj: 20.0,
            e_rd_nj: 5.2,
            e_wr_nj: 5.6,
            e_ref_ab_nj: e_ref_ab,
            // Same rows per command in 1/8th of the banks.
            e_ref_pb_nj: e_ref_ab / 8.0,
            background_mw: 200.0,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams::ddr3_1600(Density::Gb32)
    }
}

/// An energy breakdown in nanojoules.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Row activate/precharge energy.
    pub act_pre_nj: f64,
    /// Read burst energy.
    pub rd_nj: f64,
    /// Write burst energy.
    pub wr_nj: f64,
    /// Refresh command energy.
    pub refresh_nj: f64,
    /// Background energy over the elapsed window.
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.rd_nj + self.wr_nj + self.refresh_nj + self.background_nj
    }

    /// Refresh share of the total.
    pub fn refresh_fraction(&self) -> f64 {
        let t = self.total_nj();
        if t == 0.0 {
            0.0
        } else {
            self.refresh_nj / t
        }
    }
}

/// Computes the energy consumed by the activity in `stats` over an
/// `elapsed` wall-clock window.
///
/// Activates are inferred from the row-locality classification (misses
/// and conflicts each required one ACT; conflicts additionally paid a
/// PRE, which the ACT/PRE pair energy already folds in).
pub fn energy(stats: &ControllerStats, elapsed: Ps, params: &PowerParams) -> EnergyBreakdown {
    let activates = stats.row_misses + stats.row_conflicts;
    let reads = stats.reads_completed - stats.forwarded_reads;
    EnergyBreakdown {
        act_pre_nj: activates as f64 * params.e_act_pre_nj,
        rd_nj: reads as f64 * params.e_rd_nj,
        wr_nj: stats.writes_completed as f64 * params.e_wr_nj,
        refresh_nj: stats.refreshes_ab as f64 * params.e_ref_ab_nj
            + stats.refreshes_pb as f64 * params.e_ref_pb_nj,
        background_nj: params.background_mw * elapsed.as_ms_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ControllerStats {
        ControllerStats {
            reads_completed: 1000,
            forwarded_reads: 100,
            writes_completed: 300,
            row_hits: 600,
            row_misses: 250,
            row_conflicts: 150,
            refreshes_ab: 64,
            refreshes_pb: 0,
            ..Default::default()
        }
    }

    #[test]
    fn breakdown_adds_up() {
        let p = PowerParams::ddr3_1600(Density::Gb32);
        let e = energy(&stats(), Ps::from_ms(1), &p);
        let total = e.act_pre_nj + e.rd_nj + e.wr_nj + e.refresh_nj + e.background_nj;
        assert!((e.total_nj() - total).abs() < 1e-9);
        assert!(e.total_nj() > 0.0);
        assert!(e.refresh_fraction() > 0.0 && e.refresh_fraction() < 1.0);
    }

    #[test]
    fn refresh_energy_scales_with_density() {
        let lo = PowerParams::ddr3_1600(Density::Gb8);
        let hi = PowerParams::ddr3_1600(Density::Gb32);
        assert!(hi.e_ref_ab_nj > lo.e_ref_ab_nj * 2.0);
        // 890 ns at 375 mW ≈ 334 nJ.
        assert!((hi.e_ref_ab_nj - 333.75).abs() < 1.0);
    }

    #[test]
    fn per_bank_and_all_bank_refresh_energy_equal_per_window() {
        // 8× the commands at 1/8 the energy: per-bank refresh costs the
        // same refresh energy as all-bank for equal row coverage.
        let p = PowerParams::ddr3_1600(Density::Gb32);
        let ab = ControllerStats {
            refreshes_ab: 128,
            ..ControllerStats::default()
        };
        let pb = ControllerStats {
            refreshes_pb: 128 * 8,
            ..ControllerStats::default()
        };
        let ea = energy(&ab, Ps::ZERO, &p).refresh_nj;
        let eb = energy(&pb, Ps::ZERO, &p).refresh_nj;
        assert!((ea - eb).abs() < 1e-6, "{ea} vs {eb}");
    }

    #[test]
    fn forwarded_reads_cost_no_array_energy() {
        let p = PowerParams::default();
        let mut s = stats();
        let base = energy(&s, Ps::ZERO, &p).rd_nj;
        s.forwarded_reads += 100;
        let fewer = energy(&s, Ps::ZERO, &p).rd_nj;
        assert!(fewer < base);
    }

    #[test]
    fn background_dominates_long_idle_windows() {
        let p = PowerParams::default();
        let e = energy(&ControllerStats::default(), Ps::from_ms(10), &p);
        assert_eq!(e.total_nj(), e.background_nj);
        // 200 mW × 10 ms = 2 mJ = 2e6 nJ.
        assert!((e.background_nj - 2e6).abs() < 1.0);
    }
}

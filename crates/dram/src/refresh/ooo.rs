//! Out-of-order per-bank refresh (Chang et al., HPCA'14), the paper's
//! strongest hardware-only comparison point (§6.5).

use crate::geometry::{BankId, Geometry};
use crate::time::Ps;
use crate::timing::RefreshTiming;

use super::{BusyForecast, QueueSnapshot, RefreshOp, RefreshPolicy, RefreshPolicyKind};

/// Per-bank refresh where the controller refreshes the *pending* bank
/// with the fewest outstanding requests (§6.5: "while deciding which
/// bank to be refreshed, they look at the transaction queue and decide
/// the target bank as the one with the lowest number of outstanding
/// requests").
///
/// Like [`super::PerBankRoundRobin`], one refresh engine runs per rank
/// (one `REFpb` every `tREFIab / banksPerRank`, ranks staggered). To
/// preserve retention guarantees the selection is round-based per rank:
/// within each round every bank of the rank is refreshed exactly once,
/// out of order; a new round then begins. The paper observes the benefit
/// is marginal because requests keep arriving for the chosen bank during
/// the several-hundred-nanosecond `tRFCpb` — this implementation
/// reproduces exactly that timing race.
#[derive(Debug, Clone)]
pub struct OooPerBank {
    trefi_rank: Ps,
    trfc_pb: Ps,
    rows_per_cmd: u32,
    banks_per_rank: u32,
    /// Next due instant per rank.
    due: Vec<Ps>,
    /// Banks not yet refreshed in the current round, per rank.
    pending: Vec<Vec<bool>>,
    pending_left: Vec<u32>,
}

impl OooPerBank {
    /// OOO per-bank refresh for one channel.
    pub fn new(timing: &RefreshTiming, geometry: &Geometry) -> Self {
        let ranks = geometry.ranks_per_channel;
        let banks_per_rank = geometry.banks_per_rank;
        let trefi_rank = timing.trefi_pb_rank(banks_per_rank);
        let cmds_per_bank_window = (timing.trefw / timing.trefi_ab).max(1);
        let stagger = trefi_rank / u64::from(ranks);
        OooPerBank {
            trefi_rank,
            trfc_pb: timing.trfc_pb,
            rows_per_cmd: u64::from(timing.rows_per_bank).div_ceil(cmds_per_bank_window) as u32,
            banks_per_rank,
            due: (0..ranks).map(|r| stagger * u64::from(r)).collect(),
            pending: (0..ranks)
                .map(|_| vec![true; banks_per_rank as usize])
                .collect(),
            pending_left: vec![banks_per_rank; ranks as usize],
        }
    }

    fn earliest_rank(&self) -> usize {
        let mut best = 0;
        for r in 1..self.due.len() {
            if self.due[r] < self.due[best] {
                best = r;
            }
        }
        best
    }
}

impl RefreshPolicy for OooPerBank {
    fn kind(&self) -> RefreshPolicyKind {
        RefreshPolicyKind::OooPerBank
    }

    fn next_due(&self) -> Option<Ps> {
        Some(self.due[self.earliest_rank()])
    }

    fn select(&mut self, snap: &QueueSnapshot) -> RefreshOp {
        // Among this rank's banks not yet refreshed this round, pick the
        // one with the fewest queued requests (ties: lowest index).
        let r = self.earliest_rank();
        let mut best: Option<(u32, u32)> = None; // (queued, bank)
        for b in 0..self.banks_per_rank {
            if !self.pending[r][b as usize] {
                continue;
            }
            let flat = (r as u32) * self.banks_per_rank + b;
            let queued = snap
                .per_bank_queued
                .get(flat as usize)
                .copied()
                .unwrap_or(0);
            if best.is_none_or(|(bq, _)| queued < bq) {
                best = Some((queued, b));
            }
        }
        let (_, bank) = match best {
            Some(hit) => hit,
            None => {
                // Self-heal: an empty round means the pending
                // bookkeeping desynchronized. Restart the round and
                // refresh bank 0 rather than abort the whole run.
                debug_assert!(false, "round always has a pending bank");
                self.pending[r].iter_mut().for_each(|p| *p = true);
                self.pending_left[r] = self.banks_per_rank;
                (0, 0)
            }
        };
        RefreshOp::PerBank {
            bank: BankId::new(r as u8, bank as u8),
            rows: self.rows_per_cmd,
        }
    }

    fn issued(&mut self, op: &RefreshOp, _at: Ps) {
        let Some(bank) = op.bank() else {
            debug_assert!(false, "OOO issues per-bank ops only");
            return;
        };
        let r = bank.rank as usize;
        let b = bank.bank as usize;
        debug_assert!(self.pending[r][b], "bank refreshed twice in a round");
        self.pending[r][b] = false;
        self.pending_left[r] -= 1;
        if self.pending_left[r] == 0 {
            self.pending[r].iter_mut().for_each(|p| *p = true);
            self.pending_left[r] = self.banks_per_rank;
        }
        self.due[r] += self.trefi_rank;
    }

    fn duration(&self, _op: &RefreshOp) -> Ps {
        self.trfc_pb
    }

    fn forecast(&self, _start: Ps, _end: Ps) -> BusyForecast {
        // Targets are chosen dynamically from queue state; the OS cannot
        // predict them a quantum ahead.
        BusyForecast::Unpredictable
    }

    fn save_words(&self) -> Vec<u64> {
        let ranks = self.due.len();
        let bpr = self.banks_per_rank as usize;
        let mut words = Vec::with_capacity(ranks * (2 + bpr));
        words.extend(self.due.iter().map(|d| d.as_ps()));
        for rank in &self.pending {
            words.extend(rank.iter().map(|&p| u64::from(p)));
        }
        words.extend(self.pending_left.iter().map(|&n| u64::from(n)));
        words
    }

    fn load_words(&mut self, words: &[u64]) -> bool {
        let ranks = self.due.len();
        let bpr = self.banks_per_rank as usize;
        if words.len() != ranks * (2 + bpr) {
            return false;
        }
        let (due_w, rest) = words.split_at(ranks);
        let (pending_w, left_w) = rest.split_at(ranks * bpr);
        if pending_w.iter().any(|&w| w > 1) {
            return false;
        }
        if left_w.iter().any(|&w| w > u64::from(self.banks_per_rank)) {
            return false;
        }
        // Each rank's pending-left count must match its pending flags.
        for r in 0..ranks {
            let set = pending_w[r * bpr..(r + 1) * bpr]
                .iter()
                .filter(|&&w| w == 1)
                .count() as u64;
            if set != left_w[r] {
                return false;
            }
        }
        for (d, &w) in self.due.iter_mut().zip(due_w) {
            *d = Ps(w);
        }
        for (r, rank) in self.pending.iter_mut().enumerate() {
            for (b, flag) in rank.iter_mut().enumerate() {
                *flag = pending_w[r * bpr + b] == 1;
            }
        }
        for (l, &w) in self.pending_left.iter_mut().zip(left_w) {
            *l = w as u32;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{Density, Retention};

    #[test]
    fn decision_table_matches_overrides() {
        // Out-of-order target selection reads per-bank queue occupancy;
        // the other hooks stay at their defaults.
        let t = policy().table();
        assert!(!t.observes_utilization);
        assert!(!t.postpones);
        assert!(t.reads_queue);
    }

    fn policy() -> OooPerBank {
        OooPerBank::new(
            &RefreshTiming::new(Density::Gb32, Retention::Ms64),
            &Geometry::default(),
        )
    }

    fn snap_with(queues: &[(u32, u32)]) -> QueueSnapshot {
        let mut s = QueueSnapshot {
            per_bank_queued: vec![0; 16],
            utilization: 0.0,
        };
        for &(flat, n) in queues {
            s.per_bank_queued[flat as usize] = n;
        }
        s
    }

    #[test]
    fn picks_emptiest_bank_of_the_due_rank() {
        let mut p = policy();
        let mut snap = snap_with(&[]);
        snap.per_bank_queued.iter_mut().for_each(|q| *q = 10);
        snap.per_bank_queued[3] = 1; // rank 0, bank 3
        snap.per_bank_queued[9] = 0; // rank 1, bank 1 — but rank 0 is due
        let op = p.select(&snap);
        assert_eq!(op.bank(), Some(BankId::new(0, 3)));
    }

    #[test]
    fn ties_break_deterministically_low_index() {
        let mut p = policy();
        let snap = snap_with(&[]);
        assert_eq!(p.select(&snap).bank(), Some(BankId::new(0, 0)));
    }

    #[test]
    fn ranks_alternate_via_stagger() {
        let mut p = policy();
        let snap = snap_with(&[]);
        let mut ranks = Vec::new();
        for _ in 0..4 {
            let due = p.next_due().unwrap();
            let op = p.select(&snap);
            p.issued(&op, due);
            ranks.push(op.rank());
        }
        assert_eq!(ranks, vec![0, 1, 0, 1]);
    }

    #[test]
    fn each_round_refreshes_every_bank_of_a_rank_once() {
        let mut p = policy();
        // Rank 0's bank 5 always looks empty; a round must still touch
        // all 8 of rank 0's banks exactly once.
        let snap = {
            let mut s = snap_with(&[]);
            for i in 0..16 {
                s.per_bank_queued[i] = if i == 5 { 0 } else { 10 };
            }
            s
        };
        let mut seen_rank0 = std::collections::HashSet::new();
        for _ in 0..16 {
            let due = p.next_due().unwrap();
            let op = p.select(&snap);
            p.issued(&op, due);
            let b = op.bank().unwrap();
            if b.rank == 0 {
                assert!(seen_rank0.insert(b), "duplicate in rank-0 round");
            }
        }
        assert_eq!(seen_rank0.len(), 8);
        assert!(seen_rank0.contains(&BankId::new(0, 5)));
    }

    #[test]
    fn rounds_cover_retention_window_both_retentions() {
        for retention in [Retention::Ms64, Retention::Ms32] {
            let t = RefreshTiming::new(Density::Gb32, retention);
            let mut p = OooPerBank::new(&t, &Geometry::default());
            let snap = snap_with(&[]);
            let mut covered = [0u64; 16];
            loop {
                let due = p.next_due().unwrap();
                if due >= t.trefw {
                    break;
                }
                let op = p.select(&snap);
                if let RefreshOp::PerBank { bank, rows } = op {
                    covered[bank.flat(8) as usize] += u64::from(rows);
                }
                p.issued(&op, due);
            }
            for (i, &c) in covered.iter().enumerate() {
                assert!(
                    c >= u64::from(t.rows_per_bank),
                    "{retention}: bank {i} covered only {c} rows"
                );
            }
        }
    }

    #[test]
    fn per_rank_interval_is_trefi_over_banks_per_rank() {
        let mut p = policy();
        let snap = snap_with(&[]);
        let d0 = p.next_due().unwrap();
        let op = p.select(&snap);
        p.issued(&op, d0);
        // Rank 0's next turn is one per-rank interval later.
        assert_eq!(p.due[0] - d0, Ps::from_ps(975_000));
    }
}

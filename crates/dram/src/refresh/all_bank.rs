//! Rank-level (all-bank) refresh, with optional DDR4 FGR scaling.

use crate::geometry::Geometry;
use crate::time::Ps;
use crate::timing::{FgrMode, RefreshTiming};

use super::{BusyForecast, QueueSnapshot, RefreshOp, RefreshPolicy, RefreshPolicyKind};

/// DDR3-style all-bank refresh (§2.2.1, Figure 2a).
///
/// Each rank receives a `REF` every `tREFIab`, staggered so that at most
/// one rank is refreshing at a time (rank *r* is offset by
/// `r × tREFIab / numRanks`). During `tRFCab` the whole rank is locked.
///
/// With [`AllBankPolicy::fgr`] the same machinery models DDR4
/// fine-granularity refresh: `tREFI` and `tRFC` are rescaled per §6.3 and
/// each command covers proportionally fewer rows.
#[derive(Debug, Clone)]
pub struct AllBankPolicy {
    kind: RefreshPolicyKind,
    trefi: Ps,
    trfc: Ps,
    rows_per_cmd: u32,
    ranks: u32,
    /// Next due instant per rank.
    due: Vec<Ps>,
}

impl AllBankPolicy {
    /// Baseline all-bank refresh for one channel.
    pub fn new(timing: &RefreshTiming, geometry: &Geometry) -> Self {
        Self::with_kind(timing, geometry, RefreshPolicyKind::AllBank)
    }

    /// DDR4 FGR variant at `mode` (1x is identical to [`AllBankPolicy::new`]
    /// apart from the reported kind).
    pub fn fgr(timing: &RefreshTiming, geometry: &Geometry, mode: FgrMode) -> Self {
        let scaled = timing.with_fgr(mode);
        Self::with_kind(&scaled, geometry, RefreshPolicyKind::Fgr(mode))
    }

    fn with_kind(timing: &RefreshTiming, geometry: &Geometry, kind: RefreshPolicyKind) -> Self {
        let ranks = geometry.ranks_per_channel;
        let cmds_per_window = (timing.trefw / timing.trefi_ab).max(1);
        let rows_per_cmd = u64::from(timing.rows_per_bank).div_ceil(cmds_per_window) as u32;
        let stagger = timing.trefi_ab / u64::from(ranks);
        AllBankPolicy {
            kind,
            trefi: timing.trefi_ab,
            trfc: timing.trfc_ab,
            rows_per_cmd,
            ranks,
            due: (0..ranks).map(|r| stagger * u64::from(r)).collect(),
        }
    }

    /// Rows covered per command per bank.
    pub fn rows_per_cmd(&self) -> u32 {
        self.rows_per_cmd
    }

    fn earliest_rank(&self) -> usize {
        let mut best = 0;
        for r in 1..self.due.len() {
            if self.due[r] < self.due[best] {
                best = r;
            }
        }
        best
    }
}

impl RefreshPolicy for AllBankPolicy {
    fn kind(&self) -> RefreshPolicyKind {
        self.kind
    }

    fn next_due(&self) -> Option<Ps> {
        Some(self.due[self.earliest_rank()])
    }

    fn select(&mut self, _snap: &QueueSnapshot) -> RefreshOp {
        RefreshOp::AllBank {
            rank: self.earliest_rank() as u8,
            rows: self.rows_per_cmd,
        }
    }

    fn issued(&mut self, op: &RefreshOp, _at: Ps) {
        // Drift-free periodic schedule: advance from the *scheduled* due
        // time, not the actual issue time, so delays do not accumulate.
        let rank = op.rank() as usize;
        debug_assert!(rank < self.ranks as usize);
        self.due[rank] += self.trefi;
    }

    fn duration(&self, _op: &RefreshOp) -> Ps {
        self.trfc
    }

    fn forecast(&self, start: Ps, end: Ps) -> BusyForecast {
        // Any window longer than the stagger spacing necessarily overlaps
        // a rank-level refresh; the OS cannot dodge a whole rank by task
        // choice, so the forecast is unpredictable whenever a refresh
        // falls inside the window.
        let overlaps = self
            .due
            .iter()
            .any(|&d| d < end && d + self.trfc > start || (end - start) >= self.trefi);
        if overlaps {
            BusyForecast::Unpredictable
        } else {
            BusyForecast::Idle
        }
    }

    fn save_words(&self) -> Vec<u64> {
        self.due.iter().map(|d| d.as_ps()).collect()
    }

    fn load_words(&mut self, words: &[u64]) -> bool {
        if words.len() != self.due.len() {
            return false;
        }
        for (d, &w) in self.due.iter_mut().zip(words) {
            *d = Ps(w);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{Density, Retention};

    #[test]
    fn decision_table_matches_overrides() {
        // All-bank (and its FGR variants) exercises none of the optional
        // hooks: the controller may skip snapshot construction and the
        // postpone probe entirely.
        let fgr = AllBankPolicy::fgr(
            &RefreshTiming::new(Density::Gb32, Retention::Ms64),
            &Geometry::default(),
            FgrMode::X2,
        );
        for p in [policy(), fgr] {
            let t = p.table();
            assert!(!t.observes_utilization);
            assert!(!t.postpones);
            assert!(!t.reads_queue);
        }
    }

    fn policy() -> AllBankPolicy {
        AllBankPolicy::new(
            &RefreshTiming::new(Density::Gb32, Retention::Ms64),
            &Geometry::default(),
        )
    }

    #[test]
    fn ranks_are_staggered() {
        let p = policy();
        assert_eq!(p.due[0], Ps::ZERO);
        assert_eq!(p.due[1], Ps::from_ns(3_900));
    }

    #[test]
    fn issue_sequence_alternates_ranks_every_half_trefi() {
        let mut p = policy();
        let snap = QueueSnapshot::default();
        let mut issued = Vec::new();
        for _ in 0..6 {
            let due = p.next_due().unwrap();
            let op = p.select(&snap);
            p.issued(&op, due);
            issued.push((due, op.rank()));
        }
        let half = Ps::from_ns(3_900);
        for (i, &(t, rank)) in issued.iter().enumerate() {
            assert_eq!(t, half * i as u64);
            assert_eq!(u32::from(rank), (i as u32) % 2);
        }
    }

    #[test]
    fn duration_is_trfc_ab() {
        let p = policy();
        let op = RefreshOp::AllBank { rank: 0, rows: 64 };
        assert_eq!(p.duration(&op), Ps::from_ns(890));
    }

    #[test]
    fn rows_covered_per_window_spans_bank() {
        let p = policy();
        // 8205 commands × rows_per_cmd ≥ 512 Ki rows.
        assert!(u64::from(p.rows_per_cmd()) * 8205 >= 512 * 1024);
    }

    #[test]
    fn forecast_is_unpredictable_for_quantum_windows() {
        let p = policy();
        // A 4 ms quantum always overlaps many rank refreshes.
        assert_eq!(
            p.forecast(Ps::ZERO, Ps::from_ms(4)),
            BusyForecast::Unpredictable
        );
    }

    #[test]
    fn forecast_idle_for_tiny_gap_between_refreshes() {
        let p = policy();
        // Just after rank 0's refresh completes and before rank 1 is due.
        let start = Ps::from_ns(890) + Ps::from_ns(1);
        let end = Ps::from_ns(3_800);
        assert_eq!(p.forecast(start, end), BusyForecast::Idle);
    }

    #[test]
    fn fgr_4x_has_quarter_interval_and_scaled_trfc() {
        let timing = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        let p = AllBankPolicy::fgr(&timing, &Geometry::default(), FgrMode::X4);
        assert_eq!(p.kind(), RefreshPolicyKind::Fgr(FgrMode::X4));
        assert_eq!(p.trefi, Ps::from_ns(1_950));
        assert_eq!(p.trfc, Ps::from_ns(890).scale(163, 400));
        // 4× the commands, each covering ~1/4 of the rows.
        let base = policy();
        assert!(p.rows_per_cmd() <= base.rows_per_cmd() / 4 + 1);
    }
}

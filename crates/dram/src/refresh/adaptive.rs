//! Adaptive Refresh (Mukundan et al., ISCA'13): dynamic switching
//! between DDR4 1x and 4x fine-granularity modes based on observed
//! channel bandwidth utilization (§6.5).

use crate::geometry::Geometry;
use crate::time::Ps;
use crate::timing::{FgrMode, RefreshTiming};

use super::{BusyForecast, QueueSnapshot, RefreshOp, RefreshPolicy, RefreshPolicyKind};

/// Default utilization above which AR prefers the 4x mode (shorter
/// `tRFC` stalls help when the channel is busy; below it the cheaper-in-
/// total 1x mode wins). Latency-bound DDR3 workloads rarely exceed
/// ~30% *data-bus* utilization even when saturated (banks are busy with
/// ACT/PRE), so the switch point sits at 15%.
pub const DEFAULT_UTILIZATION_THRESHOLD: f64 = 0.15;

/// Adaptive Refresh: all-bank refresh that monitors channel utilization
/// and switches between 1x and 4x FGR modes at refresh-command
/// granularity.
///
/// Refresh *work* is tracked in row-bundles so that a window mixing modes
/// still covers every row: a 1x command retires 4 bundle-quarters, a 4x
/// command 1.
#[derive(Debug, Clone)]
pub struct AdaptiveRefresh {
    /// 1x timing (base).
    trefi_1x: Ps,
    trfc_1x: Ps,
    /// Rows per 1x command.
    rows_per_cmd_1x: u32,
    mode: FgrMode,
    threshold: f64,
    /// Next due instant per rank.
    due: Vec<Ps>,
    /// Mode-switch count (reported in stats/ablations).
    switches: u64,
}

impl AdaptiveRefresh {
    /// AR with the default utilization threshold.
    pub fn new(timing: &RefreshTiming, geometry: &Geometry) -> Self {
        Self::with_threshold(timing, geometry, DEFAULT_UTILIZATION_THRESHOLD)
    }

    /// AR with a custom switch threshold (for ablations).
    pub fn with_threshold(timing: &RefreshTiming, geometry: &Geometry, threshold: f64) -> Self {
        let ranks = geometry.ranks_per_channel;
        let cmds_per_window = (timing.trefw / timing.trefi_ab).max(1);
        let rows_per_cmd_1x = u64::from(timing.rows_per_bank).div_ceil(cmds_per_window) as u32;
        let stagger = timing.trefi_ab / u64::from(ranks);
        AdaptiveRefresh {
            trefi_1x: timing.trefi_ab,
            trfc_1x: timing.trfc_ab,
            rows_per_cmd_1x,
            mode: FgrMode::X1,
            threshold,
            due: (0..ranks).map(|r| stagger * u64::from(r)).collect(),
            switches: 0,
        }
    }

    /// The FGR mode currently selected.
    pub fn mode(&self) -> FgrMode {
        self.mode
    }

    /// Number of 1x↔4x transitions so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    fn earliest_rank(&self) -> usize {
        let mut best = 0;
        for r in 1..self.due.len() {
            if self.due[r] < self.due[best] {
                best = r;
            }
        }
        best
    }

    fn rows_per_cmd(&self) -> u32 {
        match self.mode {
            FgrMode::X1 => self.rows_per_cmd_1x,
            FgrMode::X2 => self.rows_per_cmd_1x.div_ceil(2),
            FgrMode::X4 => self.rows_per_cmd_1x.div_ceil(4),
        }
    }
}

impl RefreshPolicy for AdaptiveRefresh {
    fn kind(&self) -> RefreshPolicyKind {
        RefreshPolicyKind::Adaptive
    }

    fn next_due(&self) -> Option<Ps> {
        Some(self.due[self.earliest_rank()])
    }

    fn select(&mut self, _snap: &QueueSnapshot) -> RefreshOp {
        RefreshOp::AllBank {
            rank: self.earliest_rank() as u8,
            rows: self.rows_per_cmd(),
        }
    }

    fn issued(&mut self, op: &RefreshOp, _at: Ps) {
        let rank = op.rank() as usize;
        self.due[rank] += self.mode.scale_trefi(self.trefi_1x);
    }

    fn duration(&self, _op: &RefreshOp) -> Ps {
        self.mode.scale_trfc(self.trfc_1x)
    }

    fn observe_utilization(&mut self, utilization: f64, _now: Ps) {
        let want = if utilization > self.threshold {
            FgrMode::X4
        } else {
            FgrMode::X1
        };
        if want != self.mode {
            self.mode = want;
            self.switches += 1;
        }
    }

    fn forecast(&self, _start: Ps, _end: Ps) -> BusyForecast {
        BusyForecast::Unpredictable
    }

    fn save_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.due.len() + 2);
        words.push(match self.mode {
            FgrMode::X1 => 0,
            FgrMode::X2 => 1,
            FgrMode::X4 => 2,
        });
        words.extend(self.due.iter().map(|d| d.as_ps()));
        words.push(self.switches);
        words
    }

    fn load_words(&mut self, words: &[u64]) -> bool {
        if words.len() != self.due.len() + 2 {
            return false;
        }
        let mode = match words[0] {
            0 => FgrMode::X1,
            1 => FgrMode::X2,
            2 => FgrMode::X4,
            _ => return false,
        };
        self.mode = mode;
        for (d, &w) in self.due.iter_mut().zip(&words[1..]) {
            *d = Ps(w);
        }
        self.switches = words[words.len() - 1];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{Density, Retention};

    #[test]
    fn decision_table_matches_overrides() {
        // Adaptive is the only policy reacting to utilization feedback;
        // it never postpones and its `select` ignores the queue
        // snapshot, so the controller may hand it an empty one.
        let t = policy().table();
        assert!(t.observes_utilization);
        assert!(!t.postpones);
        assert!(!t.reads_queue);
    }

    fn policy() -> AdaptiveRefresh {
        AdaptiveRefresh::new(
            &RefreshTiming::new(Density::Gb32, Retention::Ms64),
            &Geometry::default(),
        )
    }

    #[test]
    fn starts_in_1x() {
        let p = policy();
        assert_eq!(p.mode(), FgrMode::X1);
        assert_eq!(
            p.duration(&RefreshOp::AllBank { rank: 0, rows: 64 }),
            Ps::from_ns(890)
        );
    }

    #[test]
    fn switches_to_4x_under_load_and_back() {
        let mut p = policy();
        p.observe_utilization(0.8, Ps::from_us(10));
        assert_eq!(p.mode(), FgrMode::X4);
        assert_eq!(p.switches(), 1);
        assert_eq!(
            p.duration(&RefreshOp::AllBank { rank: 0, rows: 16 }),
            Ps::from_ns(890).scale(163, 400)
        );
        p.observe_utilization(0.05, Ps::from_us(20));
        assert_eq!(p.mode(), FgrMode::X1);
        assert_eq!(p.switches(), 2);
        // Repeated same-side observations do not count as switches.
        p.observe_utilization(0.04, Ps::from_us(30));
        assert_eq!(p.switches(), 2);
    }

    #[test]
    fn interval_tracks_mode() {
        let mut p = policy();
        let snap = QueueSnapshot::default();
        let d0 = p.next_due().unwrap();
        let op = p.select(&snap);
        p.issued(&op, d0);
        // rank 0 advanced by full tREFI in 1x.
        assert_eq!(p.due[0], Ps::from_ns(7_800));
        p.observe_utilization(0.9, d0);
        let op = RefreshOp::AllBank { rank: 0, rows: 16 };
        p.issued(&op, p.due[0]);
        assert_eq!(p.due[0], Ps::from_ns(7_800) + Ps::from_ns(1_950));
    }

    #[test]
    fn rows_per_cmd_scales_with_mode() {
        let mut p = policy();
        let snap = QueueSnapshot::default();
        let r1 = match p.select(&snap) {
            RefreshOp::AllBank { rows, .. } => rows,
            _ => unreachable!(),
        };
        p.observe_utilization(0.9, Ps::ZERO);
        let r4 = match p.select(&snap) {
            RefreshOp::AllBank { rows, .. } => rows,
            _ => unreachable!(),
        };
        assert_eq!(r4, r1.div_ceil(4));
    }

    #[test]
    fn coverage_maintained_across_mode_mix() {
        // Half the window in 1x, half in 4x — total rows covered per rank
        // must still reach rows_per_bank.
        let t = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        let mut p = policy();
        let snap = QueueSnapshot::default();
        let mut covered = [0u64; 2];
        loop {
            let due = p.next_due().unwrap();
            if due >= t.trefw {
                break;
            }
            // Flip mode at the half-window point.
            p.observe_utilization(if due < t.trefw / 2 { 0.0 } else { 0.9 }, due);
            let op = p.select(&snap);
            if let RefreshOp::AllBank { rank, rows } = op {
                covered[rank as usize] += u64::from(rows);
            }
            p.issued(&op, due);
        }
        for (r, &c) in covered.iter().enumerate() {
            assert!(
                c >= u64::from(t.rows_per_bank),
                "rank {r} covered {c} rows < {}",
                t.rows_per_bank
            );
        }
    }
}

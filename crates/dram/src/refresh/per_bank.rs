//! Per-bank refresh schedules: the LPDDR3 round-robin baseline and the
//! paper's proposed sequential schedule (Algorithm 1).
//!
//! Both policies are built from *per-rank refresh engines*, as in real
//! LPDDR3: each rank issues one `REFpb` every `tREFIab / banksPerRank`,
//! and engines of different ranks run concurrently (two banks of two
//! different ranks may refresh at the same instant). This matters at
//! 32 ms retention, where a strictly serial system-wide schedule (one
//! `REFpb` every `tREFIab / totalBanks` = 243.75 ns) could not even fit
//! `tRFCpb` ≈ 387 ns commands back to back.

use crate::geometry::{BankId, Geometry};
use crate::time::Ps;
use crate::timing::RefreshTiming;

use super::{BusyForecast, QueueSnapshot, RefreshOp, RefreshPolicy, RefreshPolicyKind};

/// Shared mechanics: one refresh engine per rank, each issuing a `REFpb`
/// every `tREFIab / banksPerRank`, staggered across ranks so commands
/// interleave on the command bus.
#[derive(Debug, Clone)]
struct RankEngines {
    trefi_rank: Ps,
    trfc_pb: Ps,
    rows_per_cmd: u32,
    rows_per_bank: u32,
    banks_per_rank: u32,
    ranks: u32,
    /// Next due instant per rank.
    due: Vec<Ps>,
}

impl RankEngines {
    fn new(timing: &RefreshTiming, geometry: &Geometry) -> Self {
        let ranks = geometry.ranks_per_channel;
        let banks_per_rank = geometry.banks_per_rank;
        let trefi_rank = timing.trefi_pb_rank(banks_per_rank);
        let cmds_per_bank_window = (timing.trefw / timing.trefi_ab).max(1);
        let stagger = trefi_rank / u64::from(ranks);
        RankEngines {
            trefi_rank,
            trfc_pb: timing.trfc_pb,
            rows_per_cmd: u64::from(timing.rows_per_bank).div_ceil(cmds_per_bank_window) as u32,
            rows_per_bank: timing.rows_per_bank,
            banks_per_rank,
            ranks,
            due: (0..ranks).map(|r| stagger * u64::from(r)).collect(),
        }
    }

    fn earliest_rank(&self) -> usize {
        let mut best = 0;
        for r in 1..self.due.len() {
            if self.due[r] < self.due[best] {
                best = r;
            }
        }
        best
    }
}

/// LPDDR3 per-bank refresh with the default round-robin bank order
/// (§2.2.2, Figure 2b): each rank's engine cycles through its banks,
/// refreshing one row bundle per visit; a bank's next bundle comes a
/// full cycle (one `tREFIab`) later.
#[derive(Debug, Clone)]
pub struct PerBankRoundRobin {
    base: RankEngines,
    /// Per-rank bank cursor.
    cursor: Vec<u32>,
}

impl PerBankRoundRobin {
    /// Round-robin per-bank refresh for one channel.
    pub fn new(timing: &RefreshTiming, geometry: &Geometry) -> Self {
        let base = RankEngines::new(timing, geometry);
        let ranks = base.ranks as usize;
        PerBankRoundRobin {
            base,
            cursor: vec![0; ranks],
        }
    }
}

impl RefreshPolicy for PerBankRoundRobin {
    fn kind(&self) -> RefreshPolicyKind {
        RefreshPolicyKind::PerBankRoundRobin
    }

    fn next_due(&self) -> Option<Ps> {
        Some(self.base.due[self.base.earliest_rank()])
    }

    fn select(&mut self, _snap: &QueueSnapshot) -> RefreshOp {
        let r = self.base.earliest_rank();
        RefreshOp::PerBank {
            bank: BankId::new(r as u8, self.cursor[r] as u8),
            rows: self.base.rows_per_cmd,
        }
    }

    fn issued(&mut self, op: &RefreshOp, _at: Ps) {
        let r = op.rank() as usize;
        self.cursor[r] = (self.cursor[r] + 1) % self.base.banks_per_rank;
        self.base.due[r] += self.base.trefi_rank;
    }

    fn duration(&self, _op: &RefreshOp) -> Ps {
        self.base.trfc_pb
    }

    fn forecast(&self, _start: Ps, _end: Ps) -> BusyForecast {
        // Round-robin touches every bank within one tREFIab; the OS
        // cannot plan a quantum around it.
        BusyForecast::Unpredictable
    }

    fn save_words(&self) -> Vec<u64> {
        let mut w: Vec<u64> = self.base.due.iter().map(|d| d.as_ps()).collect();
        w.extend(self.cursor.iter().map(|&c| u64::from(c)));
        w
    }

    fn load_words(&mut self, words: &[u64]) -> bool {
        let ranks = self.base.due.len();
        if words.len() != ranks + self.cursor.len() {
            return false;
        }
        let (due, cursor) = words.split_at(ranks);
        if cursor
            .iter()
            .any(|&c| c >= u64::from(self.base.banks_per_rank))
        {
            return false;
        }
        for (d, &w) in self.base.due.iter_mut().zip(due) {
            *d = Ps(w);
        }
        for (c, &w) in self.cursor.iter_mut().zip(cursor) {
            *c = w as u32;
        }
        true
    }
}

/// **The proposed per-bank refresh schedule** (Algorithm 1, Figure 7):
/// keep issuing `REFpb` to the *same* bank in successive intervals until
/// all of its rows are refreshed, then move to the next bank.
///
/// Two operating modes, chosen by timing feasibility
/// ([`RefreshTiming::serial_sequential_feasible`]):
///
/// * **Serial** (the paper's §5.1 description, used at 64 ms retention):
///   exactly one bank refreshes system-wide at a time; bank *k*
///   (rank-major) is busy only during slice `[k·tREFW/B, (k+1)·tREFW/B)`
///   — 4 ms slices for 16 banks at 64 ms.
/// * **Parallel ranks** (32 ms retention): every rank walks its own
///   banks concurrently and in phase, so within-rank bank *w* (of every
///   rank) is busy during slice `[w·tREFW/Bpr, (w+1)·tREFW/Bpr)`. This
///   keeps the command rate per engine at a feasible
///   `tREFIab/banksPerRank` while preserving the property the OS needs:
///   the set of refreshing banks in any quantum is one *predictable*
///   within-rank index (which the soft partition excludes across all
///   ranks at once).
#[derive(Debug, Clone)]
pub struct PerBankSequential {
    base: RankEngines,
    serial: bool,
    /// Algorithm 1's `nextRefreshBank`, per rank (in serial mode only
    /// the rank pointed to by `serial_rank` advances).
    next_refresh_bank: Vec<u32>,
    /// Serial mode: Algorithm 1's `nextRefreshRank`.
    serial_rank: u32,
    /// Rows refreshed in the current bank, per rank.
    rows_done: Vec<u64>,
    /// Completed bank-slices (for grid re-synchronization), per rank in
    /// parallel mode; global in serial mode (index 0).
    slices_done: Vec<u64>,
    /// Slice length of the active mode.
    slice_len: Ps,
}

impl PerBankSequential {
    /// The proposed schedule for one channel.
    pub fn new(timing: &RefreshTiming, geometry: &Geometry) -> Self {
        let total_banks = geometry.banks_per_channel();
        let serial = timing.serial_sequential_feasible(total_banks);
        let mut base = RankEngines::new(timing, geometry);
        let slice_len = timing.sequential_slice(total_banks, geometry.banks_per_rank);
        if serial {
            // One global engine: commands spaced tREFIab / totalBanks.
            base.trefi_rank = timing.trefi_pb(total_banks);
            base.due = vec![Ps::ZERO];
        }
        let ranks = geometry.ranks_per_channel as usize;
        PerBankSequential {
            base,
            serial,
            next_refresh_bank: vec![0; ranks],
            serial_rank: 0,
            rows_done: vec![0; ranks],
            slices_done: vec![0; ranks],
            slice_len,
        }
    }

    /// Whether the serial (one-bank-at-a-time) mode is active.
    pub fn is_serial(&self) -> bool {
        self.serial
    }

    /// Length of one bank's contiguous refresh slice.
    pub fn slice_len(&self) -> Ps {
        self.slice_len
    }

    /// The bank the schedule is refreshing at instant `t`. In parallel
    /// mode the returned id has rank 0 and stands for that within-rank
    /// index *in every rank*.
    pub fn bank_at(&self, t: Ps) -> BankId {
        let slice = t / self.slice_len;
        if self.serial {
            let total = u64::from(self.base.ranks * self.base.banks_per_rank);
            BankId::from_flat((slice % total) as u32, self.base.banks_per_rank)
        } else {
            BankId::new(0, (slice % u64::from(self.base.banks_per_rank)) as u8)
        }
    }
}

impl RefreshPolicy for PerBankSequential {
    fn kind(&self) -> RefreshPolicyKind {
        RefreshPolicyKind::PerBankSequential
    }

    fn next_due(&self) -> Option<Ps> {
        Some(self.base.due[self.base.earliest_rank()])
    }

    fn select(&mut self, _snap: &QueueSnapshot) -> RefreshOp {
        let (rank, bank) = if self.serial {
            (self.serial_rank, self.next_refresh_bank[0])
        } else {
            let r = self.base.earliest_rank() as u32;
            (r, self.next_refresh_bank[r as usize])
        };
        RefreshOp::PerBank {
            bank: BankId::new(rank as u8, bank as u8),
            rows: self.base.rows_per_cmd,
        }
    }

    fn issued(&mut self, op: &RefreshOp, _at: Ps) {
        // Algorithm 1, lines 4–15, kept per engine.
        let engine = if self.serial { 0 } else { op.rank() as usize };
        self.rows_done[engine] += u64::from(self.base.rows_per_cmd);
        if self.rows_done[engine] >= u64::from(self.base.rows_per_bank) {
            // Done refreshing the entire bank; move to the next bank and
            // re-synchronize to the slice grid: the next bank's
            // refreshes never start before its own slice (a bank is
            // refreshed "again only after the 64 msec", §5.1).
            self.rows_done[engine] = 0;
            self.next_refresh_bank[engine] += 1;
            if self.next_refresh_bank[engine] >= self.base.banks_per_rank {
                self.next_refresh_bank[engine] = 0;
                if self.serial {
                    self.serial_rank = (self.serial_rank + 1) % self.base.ranks;
                }
            }
            self.slices_done[engine] += 1;
            self.base.due[engine] =
                self.base.due[engine].max(Ps(self.slice_len.as_ps() * self.slices_done[engine]));
        } else {
            self.base.due[engine] += self.base.trefi_rank;
        }
    }

    fn duration(&self, _op: &RefreshOp) -> Ps {
        self.base.trfc_pb
    }

    fn forecast(&self, start: Ps, end: Ps) -> BusyForecast {
        let first = self.bank_at(start);
        // `end` is exclusive; a window ending exactly on a boundary
        // still belongs entirely to `first`'s slice.
        let last = self.bank_at(end.saturating_sub(Ps(1)).max(start));
        if first == last {
            BusyForecast::Bank(first)
        } else {
            BusyForecast::Unpredictable
        }
    }

    fn next_boundary(&self, t: Ps) -> Option<Ps> {
        let next = (t / self.slice_len + 1) * self.slice_len.as_ps();
        Some(Ps(next))
    }

    fn save_words(&self) -> Vec<u64> {
        let mut w: Vec<u64> = self.base.due.iter().map(|d| d.as_ps()).collect();
        w.extend(self.next_refresh_bank.iter().map(|&b| u64::from(b)));
        w.push(u64::from(self.serial_rank));
        w.extend(&self.rows_done);
        w.extend(&self.slices_done);
        w
    }

    fn load_words(&mut self, words: &[u64]) -> bool {
        let engines = self.base.due.len();
        let ranks = self.next_refresh_bank.len();
        if words.len() != engines + 3 * ranks + 1 {
            return false;
        }
        let (due, rest) = words.split_at(engines);
        let (next_bank, rest) = rest.split_at(ranks);
        let Some((serial_rank, rest)) = rest.split_first() else {
            return false; // unreachable given the length check above
        };
        let (rows_done, slices_done) = rest.split_at(ranks);
        if next_bank
            .iter()
            .any(|&b| b >= u64::from(self.base.banks_per_rank))
            || *serial_rank >= u64::from(self.base.ranks)
        {
            return false;
        }
        for (d, &w) in self.base.due.iter_mut().zip(due) {
            *d = Ps(w);
        }
        for (b, &w) in self.next_refresh_bank.iter_mut().zip(next_bank) {
            *b = w as u32;
        }
        self.serial_rank = *serial_rank as u32;
        self.rows_done.copy_from_slice(rows_done);
        self.slices_done.copy_from_slice(slices_done);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{Density, Retention};

    #[test]
    fn decision_table_matches_overrides() {
        // Both per-bank schedules pick targets from their own cursors —
        // no utilization feedback, no postponement, no queue reads.
        let g = Geometry::default();
        let rr = PerBankRoundRobin::new(&timing(), &g);
        let seq = PerBankSequential::new(&timing(), &g);
        for t in [rr.table(), seq.table()] {
            assert!(!t.observes_utilization);
            assert!(!t.postpones);
            assert!(!t.reads_queue);
        }
    }

    fn timing() -> RefreshTiming {
        RefreshTiming::new(Density::Gb32, Retention::Ms64)
    }

    fn drive(policy: &mut dyn RefreshPolicy, n: usize) -> Vec<(Ps, BankId)> {
        let snap = QueueSnapshot::default();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let due = policy.next_due().unwrap();
            let op = policy.select(&snap);
            policy.issued(&op, due);
            out.push((due, op.bank().expect("per-bank op")));
        }
        out
    }

    #[test]
    fn round_robin_interleaves_ranks_and_cycles_banks() {
        let mut p = PerBankRoundRobin::new(&timing(), &Geometry::default());
        let seq = drive(&mut p, 32);
        // Commands alternate ranks every tREFIab/16 = 487.5 ns thanks to
        // the stagger, and each rank cycles its own banks.
        assert_eq!(seq[0], (Ps::ZERO, BankId::new(0, 0)));
        assert_eq!(seq[1], (Ps::from_ps(487_500), BankId::new(1, 0)));
        assert_eq!(seq[2], (Ps::from_ps(975_000), BankId::new(0, 1)));
        assert_eq!(seq[3].1, BankId::new(1, 1));
        // 32 commands = each of the 16 banks exactly twice.
        let mut counts = std::collections::HashMap::new();
        for &(_, b) in &seq {
            *counts.entry(b).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 16);
        assert!(counts.values().all(|&c| c == 2));
    }

    #[test]
    fn round_robin_rate_is_feasible_at_32ms() {
        let t32 = RefreshTiming::new(Density::Gb32, Retention::Ms32);
        let p = PerBankRoundRobin::new(&t32, &Geometry::default());
        // Per-rank command spacing must fit tRFCpb.
        assert!(p.base.trefi_rank >= t32.trfc_pb);
    }

    #[test]
    fn sequential_serial_at_64ms() {
        let t = timing();
        assert!(t.serial_sequential_feasible(16));
        let p = PerBankSequential::new(&t, &Geometry::default());
        assert!(p.is_serial());
        assert_eq!(p.slice_len(), Ps::from_ms(4));
    }

    #[test]
    fn sequential_parallel_at_32ms() {
        let t = RefreshTiming::new(Density::Gb32, Retention::Ms32);
        assert!(!t.serial_sequential_feasible(16));
        let p = PerBankSequential::new(&t, &Geometry::default());
        assert!(!p.is_serial());
        // 32 ms / 8 banks per rank = 4 ms slices.
        assert_eq!(p.slice_len(), Ps::from_ms(4));
    }

    #[test]
    fn sequential_stays_on_bank_until_done() {
        let mut p = PerBankSequential::new(&timing(), &Geometry::default());
        // 512 Ki rows / 64 rows-per-cmd = 8192 commands on bank r0b0.
        let seq = drive(&mut p, 8192 + 4);
        assert!(seq[..8192].iter().all(|&(_, b)| b == BankId::new(0, 0)));
        assert!(seq[8192..].iter().all(|&(_, b)| b == BankId::new(0, 1)));
    }

    #[test]
    fn sequential_bank_finishes_within_slice() {
        // §5.1: bank 0 fully refreshed by the end of the first 4 ms.
        let t = timing();
        let mut p = PerBankSequential::new(&t, &Geometry::default());
        let seq = drive(&mut p, 8192);
        let last_cmd_time = seq.last().unwrap().0;
        assert!(
            last_cmd_time + t.trfc_pb <= Ps::from_ms(4),
            "bank 0 must be done within its 4 ms slice, got {last_cmd_time}"
        );
    }

    #[test]
    fn sequential_serial_walks_ranks_rank_major() {
        let t = timing();
        let mut p = PerBankSequential::new(&t, &Geometry::default());
        let per_bank = 8192;
        let seq = drive(&mut p, per_bank * 16);
        // Bank 8 (rank 1, bank 0) occupies commands [8·8192, 9·8192).
        assert_eq!(seq[per_bank * 8].1, BankId::new(1, 0));
        assert_eq!(seq[per_bank * 16 - 1].1, BankId::new(1, 7));
    }

    #[test]
    fn sequential_forecast_matches_slices() {
        let t = timing();
        let p = PerBankSequential::new(&t, &Geometry::default());
        let slice = Ps::from_ms(4);
        for k in 0..16u64 {
            let start = slice * k;
            let end = start + slice;
            assert_eq!(
                p.forecast(start, end),
                BusyForecast::Bank(BankId::from_flat(k as u32, 8)),
                "slice {k}"
            );
        }
        // Window spanning a boundary is unpredictable.
        assert_eq!(
            p.forecast(Ps::from_ms(3), Ps::from_ms(5)),
            BusyForecast::Unpredictable
        );
        // Second retention window wraps around to bank 0.
        assert_eq!(
            p.forecast(Ps::from_ms(64), Ps::from_ms(68)),
            BusyForecast::Bank(BankId::new(0, 0))
        );
    }

    #[test]
    fn sequential_parallel_forecast_gives_within_rank_index() {
        let t = RefreshTiming::new(Density::Gb32, Retention::Ms32);
        let p = PerBankSequential::new(&t, &Geometry::default());
        let slice = Ps::from_ms(4);
        for w in 0..8u64 {
            assert_eq!(
                p.forecast(slice * w, slice * (w + 1)),
                BusyForecast::Bank(BankId::new(0, w as u8)),
                "slice {w}"
            );
        }
        // Second window wraps.
        assert_eq!(
            p.forecast(Ps::from_ms(32), Ps::from_ms(36)),
            BusyForecast::Bank(BankId::new(0, 0))
        );
    }

    #[test]
    fn sequential_parallel_both_ranks_walk_same_index() {
        let t = RefreshTiming::new(Density::Gb32, Retention::Ms32);
        let mut p = PerBankSequential::new(&t, &Geometry::default());
        // Drive half a slice worth of commands: all targets must be
        // bank 0 of either rank.
        let seq = drive(&mut p, 4096);
        assert!(seq.iter().all(|&(_, b)| b.bank == 0));
        let ranks: std::collections::HashSet<u8> = seq.iter().map(|&(_, b)| b.rank).collect();
        assert_eq!(ranks.len(), 2, "both rank engines must run");
    }

    #[test]
    fn sequential_resyncs_to_slice_grid_without_drift() {
        let t = timing();
        let mut p = PerBankSequential::new(&t, &Geometry::default());
        // Drive two full retention windows (16 banks × 8192 cmds each).
        let _ = drive(&mut p, 8192 * 32);
        // The 33rd slice (bank 0, third window) must start exactly at
        // 2 × tREFW — no drift accumulated.
        assert_eq!(p.next_due(), Some(Ps::from_ms(128)));
        assert_eq!(p.bank_at(Ps::from_ms(128)), BankId::new(0, 0));
    }

    #[test]
    fn sequential_boundaries_are_slice_aligned() {
        let p = PerBankSequential::new(&timing(), &Geometry::default());
        assert_eq!(p.next_boundary(Ps::ZERO), Some(Ps::from_ms(4)));
        assert_eq!(p.next_boundary(Ps::from_ms(4)), Some(Ps::from_ms(8)));
        assert_eq!(
            p.next_boundary(Ps::from_ms(4) + Ps(1)),
            Some(Ps::from_ms(8))
        );
    }

    #[test]
    fn round_robin_forecast_unpredictable() {
        let p = PerBankRoundRobin::new(&timing(), &Geometry::default());
        assert_eq!(
            p.forecast(Ps::ZERO, Ps::from_ms(4)),
            BusyForecast::Unpredictable
        );
    }

    #[test]
    fn both_schedules_cover_all_rows_in_a_window_both_retentions() {
        for retention in [Retention::Ms64, Retention::Ms32] {
            let t = RefreshTiming::new(Density::Gb32, retention);
            for policy_is_seq in [false, true] {
                let mut rr;
                let mut sq;
                let p: &mut dyn RefreshPolicy = if policy_is_seq {
                    sq = PerBankSequential::new(&t, &Geometry::default());
                    &mut sq
                } else {
                    rr = PerBankRoundRobin::new(&t, &Geometry::default());
                    &mut rr
                };
                let mut covered = [0u64; 16];
                let snap = QueueSnapshot::default();
                loop {
                    let due = p.next_due().unwrap();
                    if due >= t.trefw {
                        break;
                    }
                    let op = p.select(&snap);
                    if let RefreshOp::PerBank { bank, rows } = op {
                        covered[bank.flat(8) as usize] += u64::from(rows);
                    }
                    p.issued(&op, due);
                }
                for (i, &c) in covered.iter().enumerate() {
                    assert!(
                        c >= u64::from(t.rows_per_bank),
                        "{retention} seq={policy_is_seq} bank {i}: covered {c} < {}",
                        t.rows_per_bank
                    );
                }
            }
        }
    }

    #[test]
    fn command_spacing_always_fits_trfc() {
        // No two commands of the same *rank* may be closer than tRFCpb.
        for retention in [Retention::Ms64, Retention::Ms32] {
            let t = RefreshTiming::new(Density::Gb32, retention);
            let mut p = PerBankSequential::new(&t, &Geometry::default());
            let seq = drive(&mut p, 20_000);
            let mut last_per_rank = [Ps::MAX; 2];
            for &(at, b) in &seq {
                let r = b.rank as usize;
                if last_per_rank[r] != Ps::MAX {
                    assert!(
                        at - last_per_rank[r] >= t.trfc_pb,
                        "{retention}: rank {r} commands {} apart < tRFCpb {}",
                        at - last_per_rank[r],
                        t.trfc_pb
                    );
                }
                last_per_rank[r] = at;
            }
        }
    }
}

//! Refresh scheduling policies.
//!
//! A [`RefreshPolicy`] decides *when* refresh commands are due, *what*
//! they target (a whole rank or a single bank), and exposes a
//! [`BusyForecast`] — the co-design's hardware→software interface telling
//! the OS which bank will be refreshing during an upcoming scheduling
//! quantum (§5.1).
//!
//! Provided policies:
//!
//! | Policy | Paper role |
//! |---|---|
//! | [`NoRefresh`] | ideal reference (Figure 4's "entire tRFC removed") |
//! | [`AllBankPolicy`] | DDR3 rank-level refresh baseline (§2.2.1) |
//! | [`PerBankRoundRobin`] | LPDDR3 per-bank refresh (§2.2.2, Figure 2b) |
//! | [`PerBankSequential`] | **the proposed schedule** (Algorithm 1, Figure 7) |
//! | [`OooPerBank`] | out-of-order per-bank refresh, Chang et al. (§6.5) |
//! | [`AllBankPolicy::fgr`] | DDR4 fine-granularity refresh 1x/2x/4x (§6.3) |
//! | [`AdaptiveRefresh`] | Adaptive Refresh, Mukundan et al. (§6.5) |
//! | [`ElasticRefresh`] | Elastic Refresh, Stuecheli et al. (§7) |

mod adaptive;
mod all_bank;
mod elastic;
mod ooo;
mod per_bank;

pub use adaptive::AdaptiveRefresh;
pub use all_bank::AllBankPolicy;
pub use elastic::{ElasticRefresh, MAX_POSTPONED};
pub use ooo::OooPerBank;
pub use per_bank::{PerBankRoundRobin, PerBankSequential};

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geometry::{BankId, Geometry};
use crate::time::Ps;
use crate::timing::{FgrMode, RefreshTiming};

/// A refresh command the controller must execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefreshOp {
    /// Rank-level refresh: every bank in `rank` is locked for `tRFCab`,
    /// covering `rows` rows in each bank.
    AllBank {
        /// Target rank.
        rank: u8,
        /// Rows covered per bank.
        rows: u32,
    },
    /// Bank-level refresh: only `bank` is locked for `tRFCpb`.
    PerBank {
        /// Target bank.
        bank: BankId,
        /// Rows covered.
        rows: u32,
    },
}

impl RefreshOp {
    /// The rank this op targets.
    pub fn rank(&self) -> u8 {
        match *self {
            RefreshOp::AllBank { rank, .. } => rank,
            RefreshOp::PerBank { bank, .. } => bank.rank,
        }
    }

    /// The single bank targeted, or `None` for rank-level ops.
    pub fn bank(&self) -> Option<BankId> {
        match *self {
            RefreshOp::AllBank { .. } => None,
            RefreshOp::PerBank { bank, .. } => Some(bank),
        }
    }
}

/// What the refresh schedule predicts for a future time window — the
/// hardware information exposed to the OS scheduler (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusyForecast {
    /// No refresh activity in the window.
    Idle,
    /// Exactly one, predictable bank refreshes during the window.
    Bank(BankId),
    /// Refresh touches several banks / a whole rank, or the target is
    /// chosen dynamically — the OS cannot dodge it by task choice.
    Unpredictable,
}

/// Snapshot of controller state a policy may consult when selecting a
/// target (used by [`OooPerBank`]; cheap to build).
#[derive(Debug, Clone, Default)]
pub struct QueueSnapshot {
    /// Outstanding requests per bank, indexed by
    /// [`BankId::flat`] (rank-major).
    pub per_bank_queued: Vec<u32>,
    /// Data-bus utilization over the recent epoch, `0.0..=1.0`.
    pub utilization: f64,
}

/// Identifies a refresh policy; used to build one and in reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefreshPolicyKind {
    /// No refresh at all (ideal bound).
    NoRefresh,
    /// Rank-level (all-bank) refresh — the paper's baseline.
    #[default]
    AllBank,
    /// LPDDR per-bank refresh with round-robin bank order.
    PerBankRoundRobin,
    /// The proposed sequential per-bank schedule (Algorithm 1).
    PerBankSequential,
    /// Out-of-order per-bank refresh (Chang et al.).
    OooPerBank,
    /// DDR4 fine-granularity refresh at the given mode.
    Fgr(FgrMode),
    /// Adaptive Refresh (Mukundan et al.): dynamic 1x↔4x switching.
    Adaptive,
    /// Elastic Refresh (Stuecheli et al.): all-bank refresh postponed
    /// (up to 8 intervals) into idle periods.
    Elastic,
}

impl fmt::Display for RefreshPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefreshPolicyKind::NoRefresh => write!(f, "no-refresh"),
            RefreshPolicyKind::AllBank => write!(f, "all-bank"),
            RefreshPolicyKind::PerBankRoundRobin => write!(f, "per-bank"),
            RefreshPolicyKind::PerBankSequential => write!(f, "co-design(seq-pb)"),
            RefreshPolicyKind::OooPerBank => write!(f, "ooo-per-bank"),
            RefreshPolicyKind::Fgr(m) => write!(f, "ddr4-{m}"),
            RefreshPolicyKind::Adaptive => write!(f, "adaptive-refresh"),
            RefreshPolicyKind::Elastic => write!(f, "elastic-refresh"),
        }
    }
}

/// Precomputed per-policy decision table consulted by the controller's
/// batched tick path.
///
/// Every flag records whether the policy *ever* exercises an optional
/// trait hook, letting the hot path skip the virtual dispatch and the
/// argument construction (most expensively the per-bank queue-occupancy
/// scan behind [`QueueSnapshot`]) for policies that provably ignore
/// them. Skipping a hook a policy never uses cannot change behavior, so
/// the batched path stays bit-identical to the scalar reference — each
/// policy module carries a unit test pinning its row of the table to its
/// actual overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyTable {
    /// [`RefreshPolicy::observe_utilization`] is overridden (the policy
    /// reacts to epoch-utilization feedback).
    pub observes_utilization: bool,
    /// [`RefreshPolicy::try_postpone`] is overridden and may return
    /// `true` (the policy can defer a due refresh).
    pub postpones: bool,
    /// [`RefreshPolicy::select`] or [`RefreshPolicy::try_postpone`]
    /// reads [`QueueSnapshot::per_bank_queued`]; when `false` the
    /// controller hands over an empty snapshot instead of scanning both
    /// transaction queues.
    pub reads_queue: bool,
}

impl PolicyTable {
    /// The decision table for `kind` — one row per refresh policy.
    pub fn for_kind(kind: RefreshPolicyKind) -> Self {
        match kind {
            RefreshPolicyKind::NoRefresh
            | RefreshPolicyKind::AllBank
            | RefreshPolicyKind::PerBankRoundRobin
            | RefreshPolicyKind::PerBankSequential
            | RefreshPolicyKind::Fgr(_) => PolicyTable {
                observes_utilization: false,
                postpones: false,
                reads_queue: false,
            },
            RefreshPolicyKind::OooPerBank => PolicyTable {
                observes_utilization: false,
                postpones: false,
                reads_queue: true,
            },
            RefreshPolicyKind::Adaptive => PolicyTable {
                observes_utilization: true,
                postpones: false,
                reads_queue: false,
            },
            RefreshPolicyKind::Elastic => PolicyTable {
                observes_utilization: false,
                postpones: true,
                reads_queue: true,
            },
        }
    }
}

/// A refresh scheduling policy driven by the memory controller.
///
/// The controller calls [`next_due`](RefreshPolicy::next_due); once the
/// due instant passes it calls [`select`](RefreshPolicy::select) exactly
/// once to fix the target, issues the command as soon as timing allows,
/// then reports back via [`issued`](RefreshPolicy::issued).
pub trait RefreshPolicy: fmt::Debug + Send {
    /// Which policy this is.
    fn kind(&self) -> RefreshPolicyKind;

    /// The hot-path decision table for this policy (cached by the
    /// controller at construction; see [`PolicyTable`]).
    fn table(&self) -> PolicyTable {
        PolicyTable::for_kind(self.kind())
    }

    /// Instant the next refresh command becomes due, or `None` if the
    /// policy never refreshes.
    fn next_due(&self) -> Option<Ps>;

    /// Chooses the target of the due refresh. Called once per due event.
    fn select(&mut self, snap: &QueueSnapshot) -> RefreshOp;

    /// Records that `op` was issued at `at` and advances the schedule.
    fn issued(&mut self, op: &RefreshOp, at: Ps);

    /// Duration (`tRFC`) of `op` under this policy's current mode.
    fn duration(&self, op: &RefreshOp) -> Ps;

    /// Periodic bandwidth-utilization feedback (Adaptive Refresh hooks
    /// this; others ignore it).
    fn observe_utilization(&mut self, _utilization: f64, _now: Ps) {}

    /// Predicts refresh activity during `[start, end)` — the co-design's
    /// HW→SW exposure. Only [`PerBankSequential`] returns
    /// [`BusyForecast::Bank`].
    fn forecast(&self, start: Ps, end: Ps) -> BusyForecast;

    /// The next schedule boundary after `t` at which the forecast
    /// changes (the OS aligns its quanta to these; `None` when the
    /// schedule has no meaningful boundaries).
    fn next_boundary(&self, _t: Ps) -> Option<Ps> {
        None
    }

    /// Offers the policy a chance to postpone a refresh that has just
    /// become due (Elastic Refresh hooks this). If the policy pushes its
    /// due time back it returns `true` and the controller re-plans;
    /// policies must bound their postponement internally so refreshes
    /// are eventually forced. The default never postpones.
    fn try_postpone(&mut self, _snap: &QueueSnapshot, _now: Ps) -> bool {
        false
    }

    /// Serializes the policy's dynamic schedule state as raw words for
    /// checkpointing (times via [`Ps::as_ps`], floats via `to_bits`).
    /// Stateless policies return an empty vector.
    fn save_words(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Reinstates state captured by
    /// [`save_words`](RefreshPolicy::save_words) into a freshly built
    /// policy of the same kind and geometry. Returns `false` when the
    /// word stream does not match what this policy expects.
    #[must_use]
    fn load_words(&mut self, words: &[u64]) -> bool {
        words.is_empty()
    }
}

/// The ideal no-refresh policy (upper bound; Figure 4 reference).
#[derive(Debug, Clone, Default)]
pub struct NoRefresh;

impl RefreshPolicy for NoRefresh {
    fn kind(&self) -> RefreshPolicyKind {
        RefreshPolicyKind::NoRefresh
    }
    fn next_due(&self) -> Option<Ps> {
        None
    }
    fn select(&mut self, _snap: &QueueSnapshot) -> RefreshOp {
        unreachable!("NoRefresh never becomes due")
    }
    fn issued(&mut self, _op: &RefreshOp, _at: Ps) {}
    fn duration(&self, _op: &RefreshOp) -> Ps {
        Ps::ZERO
    }
    fn forecast(&self, _start: Ps, _end: Ps) -> BusyForecast {
        BusyForecast::Idle
    }
}

/// Builds a boxed policy of `kind` for one channel of `geometry` under
/// `timing`.
///
/// FGR kinds internally rescale `timing` per §6.3; callers pass the 1x
/// timing unchanged.
pub fn build_policy(
    kind: RefreshPolicyKind,
    timing: &RefreshTiming,
    geometry: &Geometry,
) -> Box<dyn RefreshPolicy> {
    match kind {
        RefreshPolicyKind::NoRefresh => Box::new(NoRefresh),
        RefreshPolicyKind::AllBank => Box::new(AllBankPolicy::new(timing, geometry)),
        RefreshPolicyKind::PerBankRoundRobin => Box::new(PerBankRoundRobin::new(timing, geometry)),
        RefreshPolicyKind::PerBankSequential => Box::new(PerBankSequential::new(timing, geometry)),
        RefreshPolicyKind::OooPerBank => Box::new(OooPerBank::new(timing, geometry)),
        RefreshPolicyKind::Fgr(mode) => Box::new(AllBankPolicy::fgr(timing, geometry, mode)),
        RefreshPolicyKind::Adaptive => Box::new(AdaptiveRefresh::new(timing, geometry)),
        RefreshPolicyKind::Elastic => Box::new(ElasticRefresh::new(timing, geometry)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{Density, Retention};

    #[test]
    fn no_refresh_is_never_due() {
        let p = NoRefresh;
        assert_eq!(p.next_due(), None);
        assert_eq!(p.kind(), RefreshPolicyKind::NoRefresh);
        assert_eq!(p.forecast(Ps::ZERO, Ps::from_ms(1)), BusyForecast::Idle);
        assert_eq!(p.next_boundary(Ps::ZERO), None);
    }

    #[test]
    fn refresh_op_accessors() {
        let ab = RefreshOp::AllBank { rank: 1, rows: 64 };
        assert_eq!(ab.rank(), 1);
        assert_eq!(ab.bank(), None);
        let pb = RefreshOp::PerBank {
            bank: BankId::new(1, 3),
            rows: 64,
        };
        assert_eq!(pb.rank(), 1);
        assert_eq!(pb.bank(), Some(BankId::new(1, 3)));
    }

    #[test]
    fn build_policy_covers_all_kinds() {
        let timing = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        let g = Geometry::default();
        for kind in [
            RefreshPolicyKind::NoRefresh,
            RefreshPolicyKind::AllBank,
            RefreshPolicyKind::PerBankRoundRobin,
            RefreshPolicyKind::PerBankSequential,
            RefreshPolicyKind::OooPerBank,
            RefreshPolicyKind::Fgr(FgrMode::X2),
            RefreshPolicyKind::Adaptive,
            RefreshPolicyKind::Elastic,
        ] {
            let p = build_policy(kind, &timing, &g);
            assert_eq!(p.kind(), kind, "factory must preserve kind");
        }
    }

    #[test]
    fn decision_table_defaults_and_dispatch() {
        // NoRefresh exercises none of the optional hooks.
        let t = NoRefresh.table();
        assert!(!t.observes_utilization && !t.postpones && !t.reads_queue);
        // The factory-built boxes report the same rows as the static
        // derivation (the default `table` body routes through `kind`).
        let timing = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        let g = Geometry::default();
        for kind in [
            RefreshPolicyKind::NoRefresh,
            RefreshPolicyKind::AllBank,
            RefreshPolicyKind::PerBankRoundRobin,
            RefreshPolicyKind::PerBankSequential,
            RefreshPolicyKind::OooPerBank,
            RefreshPolicyKind::Fgr(FgrMode::X2),
            RefreshPolicyKind::Adaptive,
            RefreshPolicyKind::Elastic,
        ] {
            let p = build_policy(kind, &timing, &g);
            assert_eq!(p.table(), PolicyTable::for_kind(kind), "{kind}");
        }
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(RefreshPolicyKind::AllBank.to_string(), "all-bank");
        assert_eq!(
            RefreshPolicyKind::PerBankSequential.to_string(),
            "co-design(seq-pb)"
        );
        assert_eq!(RefreshPolicyKind::Fgr(FgrMode::X4).to_string(), "ddr4-4x");
    }
}

//! Elastic Refresh (Stuecheli et al., MICRO'10): all-bank refresh whose
//! commands are postponed into idle memory periods, bounded by JEDEC's
//! 8-outstanding-refresh allowance (§7 of the reproduced paper discusses
//! it among the prior "schedule refreshes around activity" techniques).

use crate::geometry::Geometry;
use crate::time::Ps;
use crate::timing::RefreshTiming;

use super::{BusyForecast, QueueSnapshot, RefreshOp, RefreshPolicy, RefreshPolicyKind};

/// Maximum refresh commands a rank may owe before one is forced
/// (JEDEC's postponement allowance).
pub const MAX_POSTPONED: u64 = 8;

/// All-bank refresh with elastic postponement: when a refresh becomes
/// due while the transaction queues are non-empty, it is deferred in
/// small steps until either the controller drains or the rank has
/// accumulated [`MAX_POSTPONED`] overdue refreshes, at which point it is
/// forced on schedule.
#[derive(Debug, Clone)]
pub struct ElasticRefresh {
    trefi: Ps,
    trfc: Ps,
    rows_per_cmd: u32,
    /// Nominal instant of the oldest *unissued* refresh, per rank.
    owed_from: Vec<Ps>,
    /// Next attempt instant, per rank (≥ `owed_from`).
    due: Vec<Ps>,
    /// Postponement granularity.
    step: Ps,
    /// Total postponements performed (diagnostics).
    postponements: u64,
}

impl ElasticRefresh {
    /// Elastic refresh for one channel.
    pub fn new(timing: &RefreshTiming, geometry: &Geometry) -> Self {
        let ranks = geometry.ranks_per_channel;
        let cmds_per_window = (timing.trefw / timing.trefi_ab).max(1);
        let stagger = timing.trefi_ab / u64::from(ranks);
        ElasticRefresh {
            trefi: timing.trefi_ab,
            trfc: timing.trfc_ab,
            rows_per_cmd: u64::from(timing.rows_per_bank).div_ceil(cmds_per_window) as u32,
            owed_from: (0..ranks).map(|r| stagger * u64::from(r)).collect(),
            due: (0..ranks).map(|r| stagger * u64::from(r)).collect(),
            step: timing.trefi_ab / 8,
            postponements: 0,
        }
    }

    /// Number of postponement decisions taken so far.
    pub fn postponements(&self) -> u64 {
        self.postponements
    }

    fn earliest_rank(&self) -> usize {
        let mut best = 0;
        for r in 1..self.due.len() {
            if self.due[r] < self.due[best] {
                best = r;
            }
        }
        best
    }

    /// Refreshes rank `r` owes at instant `now` (its backlog).
    fn backlog(&self, r: usize, now: Ps) -> u64 {
        if now < self.owed_from[r] {
            0
        } else {
            (now - self.owed_from[r]) / self.trefi + 1
        }
    }
}

impl RefreshPolicy for ElasticRefresh {
    fn kind(&self) -> RefreshPolicyKind {
        RefreshPolicyKind::Elastic
    }

    fn next_due(&self) -> Option<Ps> {
        Some(self.due[self.earliest_rank()])
    }

    fn select(&mut self, _snap: &QueueSnapshot) -> RefreshOp {
        RefreshOp::AllBank {
            rank: self.earliest_rank() as u8,
            rows: self.rows_per_cmd,
        }
    }

    fn issued(&mut self, op: &RefreshOp, _at: Ps) {
        let r = op.rank() as usize;
        // One owed refresh retired; the next attempt targets the next
        // nominal slot (which may already be in the past if a backlog
        // built up — it then issues as soon as timing allows).
        self.owed_from[r] += self.trefi;
        self.due[r] = self.owed_from[r];
    }

    fn duration(&self, _op: &RefreshOp) -> Ps {
        self.trfc
    }

    fn try_postpone(&mut self, snap: &QueueSnapshot, now: Ps) -> bool {
        let r = self.earliest_rank();
        let busy = snap.per_bank_queued.iter().any(|&q| q > 0);
        if busy && self.backlog(r, now) < MAX_POSTPONED {
            self.due[r] = now + self.step;
            self.postponements += 1;
            true
        } else {
            false
        }
    }

    fn forecast(&self, _start: Ps, _end: Ps) -> BusyForecast {
        BusyForecast::Unpredictable
    }

    fn save_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(2 * self.due.len() + 1);
        words.extend(self.owed_from.iter().map(|d| d.as_ps()));
        words.extend(self.due.iter().map(|d| d.as_ps()));
        words.push(self.postponements);
        words
    }

    fn load_words(&mut self, words: &[u64]) -> bool {
        let ranks = self.due.len();
        if words.len() != 2 * ranks + 1 {
            return false;
        }
        for (d, &w) in self.owed_from.iter_mut().zip(&words[..ranks]) {
            *d = Ps(w);
        }
        for (d, &w) in self.due.iter_mut().zip(&words[ranks..2 * ranks]) {
            *d = Ps(w);
        }
        self.postponements = words[2 * ranks];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{Density, Retention};

    #[test]
    fn decision_table_matches_overrides() {
        // Elastic postpones due refreshes and its `try_postpone` reads
        // per-bank queue occupancy, so the controller must keep building
        // real snapshots for it.
        let t = policy().table();
        assert!(!t.observes_utilization);
        assert!(t.postpones);
        assert!(t.reads_queue);
    }

    fn policy() -> ElasticRefresh {
        ElasticRefresh::new(
            &RefreshTiming::new(Density::Gb32, Retention::Ms64),
            &Geometry::default(),
        )
    }

    fn busy_snap() -> QueueSnapshot {
        QueueSnapshot {
            per_bank_queued: vec![3; 16],
            utilization: 0.5,
        }
    }

    #[test]
    fn idle_never_postpones() {
        let mut p = policy();
        let snap = QueueSnapshot {
            per_bank_queued: vec![0; 16],
            utilization: 0.0,
        };
        assert!(!p.try_postpone(&snap, Ps::ZERO));
        assert_eq!(p.postponements(), 0);
    }

    #[test]
    fn busy_postpones_in_steps() {
        let mut p = policy();
        let due0 = p.next_due().unwrap();
        assert!(p.try_postpone(&busy_snap(), due0));
        let due1 = p.next_due().unwrap();
        assert_eq!(due1, due0 + Ps::from_ns(975));
        assert_eq!(p.postponements(), 1);
    }

    #[test]
    fn backlog_of_eight_forces_issue() {
        let mut p = policy();
        // Keep the queues busy and keep postponing; after the backlog
        // reaches MAX_POSTPONED the policy must refuse to postpone.
        let mut now = p.next_due().unwrap();
        let mut refused = false;
        for _ in 0..200 {
            if p.try_postpone(&busy_snap(), now) {
                now = p.next_due().unwrap();
            } else {
                refused = true;
                break;
            }
        }
        assert!(refused, "postponement must be bounded");
        assert!(p.backlog(0, now) >= MAX_POSTPONED);
    }

    #[test]
    fn issue_retires_oldest_owed() {
        let mut p = policy();
        let snap = busy_snap();
        // Build a backlog of ~3 on rank 0.
        let now = Ps::from_ns(7_800 * 2 + 100);
        assert!(p.backlog(0, now) >= 3);
        let op = RefreshOp::AllBank { rank: 0, rows: 64 };
        let before = p.backlog(0, now);
        p.issued(&op, now);
        assert_eq!(p.backlog(0, now), before - 1);
        // Forced catch-up: next due is immediately in the past.
        assert!(p.next_due().unwrap() <= now);
        let _ = snap;
    }

    #[test]
    fn coverage_holds_despite_postponement() {
        // Adversarial driver: always claims busy. All refreshes must
        // still be issued within ~8 tREFI of nominal.
        let t = RefreshTiming::new(Density::Gb32, Retention::Ms64);
        let mut p = ElasticRefresh::new(&t, &Geometry::default());
        let snap = busy_snap();
        let mut covered = [0u64; 2];
        let mut now = Ps::ZERO;
        let mut worst_late = Ps::ZERO;
        loop {
            let due = p.next_due().unwrap();
            if due >= t.trefw {
                break;
            }
            now = now.max(due);
            if p.try_postpone(&snap, now) {
                continue;
            }
            let op = p.select(&snap);
            if let RefreshOp::AllBank { rank, rows } = op {
                covered[rank as usize] += u64::from(rows);
                worst_late = worst_late.max(now.saturating_sub(p.owed_from[rank as usize]));
            }
            p.issued(&op, now);
        }
        for (r, &c) in covered.iter().enumerate() {
            // Allow the ≤ 8-interval tail to slip past the window edge.
            let slack = 9 * 64;
            assert!(
                c + slack >= u64::from(t.rows_per_bank),
                "rank {r} covered {c}"
            );
        }
        assert!(
            worst_late <= Ps::from_ns(7_800) * 9,
            "lateness bounded by ~8 tREFI, got {worst_late}"
        );
    }
}

//! Per-bank and per-rank timing state machines.
//!
//! Each [`Bank`] tracks its open row and the earliest instants at which
//! the next ACT / RD / WR / PRE / REF command may legally be issued to it,
//! updated as commands issue. Each [`RankState`] tracks rank-wide
//! constraints: tRRD spacing, the tFAW four-activate window, and
//! write→read turnaround (tWTR).
//!
//! These structs implement *mechanism* only; the memory-controller policy
//! (FR-FCFS, refresh priority) lives in [`crate::controller`].

use serde::{Deserialize, Serialize};

use crate::time::Ps;
use crate::timing::TimingParams;

/// What a bank is currently doing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankPhase {
    /// All rows closed; ACT or REF may be scheduled.
    #[default]
    Idle,
    /// A row is latched in the row buffer.
    Active,
    /// Busy executing a refresh until `Bank::busy_until`.
    Refreshing,
}

/// Timing state of one DRAM bank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bank {
    phase: BankPhase,
    open_row: Option<u32>,
    /// Earliest next ACT (tRC from last ACT, tRP from PRE, tRFC from REF).
    next_act: Ps,
    /// Earliest next PRE (tRAS from ACT, tRTP from RD, tWR from WR data).
    next_pre: Ps,
    /// Earliest next column command (tRCD from ACT).
    next_cas: Ps,
    /// End of the current refresh, if `phase == Refreshing`.
    busy_until: Ps,
    /// Rows refreshed in the current retention window (bookkeeping).
    rows_refreshed: u64,
    /// Total time this bank has spent refreshing.
    refresh_busy_total: Ps,
    /// Number of ACTs issued (row openings).
    activations: u64,
}

impl Bank {
    /// A bank in the idle state at time zero.
    pub fn new() -> Self {
        Bank {
            phase: BankPhase::Idle,
            open_row: None,
            next_act: Ps::ZERO,
            next_pre: Ps::ZERO,
            next_cas: Ps::ZERO,
            busy_until: Ps::ZERO,
            rows_refreshed: 0,
            refresh_busy_total: Ps::ZERO,
            activations: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> BankPhase {
        self.phase
    }

    /// The row currently latched in the row buffer, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Whether `row` is a row-buffer hit.
    pub fn is_row_hit(&self, row: u32) -> bool {
        self.open_row == Some(row)
    }

    /// End of the in-progress refresh ([`Ps::ZERO`] when none).
    pub fn refresh_end(&self) -> Ps {
        if self.phase == BankPhase::Refreshing {
            self.busy_until
        } else {
            Ps::ZERO
        }
    }

    /// Total time spent refreshing so far.
    pub fn refresh_busy_total(&self) -> Ps {
        self.refresh_busy_total
    }

    /// Rows refreshed since the last [`Bank::reset_refresh_window`].
    pub fn rows_refreshed(&self) -> u64 {
        self.rows_refreshed
    }

    /// Number of ACT commands issued to this bank.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Clears the per-window refreshed-row counter (called by policies at
    /// retention-window boundaries).
    pub fn reset_refresh_window(&mut self) {
        self.rows_refreshed = 0;
    }

    /// Finishes a refresh whose end time has passed (`now >=
    /// busy_until`). Idempotent; called lazily by the controller before
    /// querying constraints.
    pub fn settle(&mut self, now: Ps) {
        if self.phase == BankPhase::Refreshing && now >= self.busy_until {
            self.phase = BankPhase::Idle;
        }
    }

    /// Earliest time an ACT to `_row` may issue, assuming the bank is (or
    /// will be) idle. Returns `None` while a row is open (a PRE is needed
    /// first).
    pub fn earliest_act(&self) -> Option<Ps> {
        match self.phase {
            BankPhase::Active => None,
            BankPhase::Refreshing => Some(self.busy_until.max(self.next_act)),
            BankPhase::Idle => Some(self.next_act),
        }
    }

    /// Earliest time a column command (RD/WR) may issue for `row`.
    /// Returns `None` unless `row` is the open row.
    pub fn earliest_cas(&self, row: u32) -> Option<Ps> {
        if self.phase == BankPhase::Active && self.open_row == Some(row) {
            Some(self.next_cas)
        } else {
            None
        }
    }

    /// Earliest time a PRE may issue. Returns `None` if the bank has no
    /// open row (nothing to precharge).
    pub fn earliest_pre(&self) -> Option<Ps> {
        if self.phase == BankPhase::Active {
            Some(self.next_pre)
        } else {
            None
        }
    }

    /// Earliest time a refresh may start: the bank must be idle (row
    /// closed, tRP elapsed — both folded into `next_act`).
    pub fn earliest_refresh(&self) -> Option<Ps> {
        match self.phase {
            BankPhase::Active => None,
            BankPhase::Refreshing => Some(self.busy_until),
            BankPhase::Idle => Some(self.next_act),
        }
    }

    /// Issues an ACT at `at`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the bank is not idle or `at` violates timing.
    pub fn do_act(&mut self, at: Ps, row: u32, t: &TimingParams) {
        debug_assert_eq!(self.phase, BankPhase::Idle, "ACT to non-idle bank");
        debug_assert!(at >= self.next_act, "ACT at {at} before {}", self.next_act);
        self.phase = BankPhase::Active;
        self.open_row = Some(row);
        self.next_cas = at + t.trcd;
        self.next_pre = at + t.tras;
        self.next_act = at + t.trc;
        self.activations += 1;
    }

    /// Issues a RD at `at`; returns the time the last data beat leaves.
    pub fn do_read(&mut self, at: Ps, t: &TimingParams) -> Ps {
        debug_assert_eq!(self.phase, BankPhase::Active, "RD to non-active bank");
        debug_assert!(at >= self.next_cas);
        self.next_pre = self.next_pre.max(at + t.trtp);
        self.next_cas = self.next_cas.max(at + t.tccd);
        at + t.tcl + t.tburst
    }

    /// Issues a WR at `at`; returns the time the last data beat is
    /// written (start of tWR).
    pub fn do_write(&mut self, at: Ps, t: &TimingParams) -> Ps {
        debug_assert_eq!(self.phase, BankPhase::Active, "WR to non-active bank");
        debug_assert!(at >= self.next_cas);
        let data_end = at + t.tcwl + t.tburst;
        self.next_pre = self.next_pre.max(data_end + t.twr);
        self.next_cas = self.next_cas.max(at + t.tccd);
        data_end
    }

    /// Issues a PRE at `at`, closing the open row.
    pub fn do_pre(&mut self, at: Ps, t: &TimingParams) {
        debug_assert_eq!(self.phase, BankPhase::Active, "PRE to non-active bank");
        debug_assert!(at >= self.next_pre, "PRE at {at} before {}", self.next_pre);
        self.phase = BankPhase::Idle;
        self.open_row = None;
        self.next_act = self.next_act.max(at + t.trp);
    }

    /// Starts a refresh at `at` lasting `trfc`, covering `rows` rows.
    pub fn do_refresh(&mut self, at: Ps, trfc: Ps, rows: u32) {
        debug_assert_eq!(self.phase, BankPhase::Idle, "REF to non-idle bank");
        debug_assert!(at >= self.next_act);
        self.phase = BankPhase::Refreshing;
        self.busy_until = at + trfc;
        self.next_act = at + trfc;
        self.rows_refreshed += u64::from(rows);
        self.refresh_busy_total += trfc;
    }

    /// Captures the full bank timing state for checkpointing.
    pub fn save_state(&self) -> SavedBank {
        SavedBank {
            phase: self.phase,
            open_row: self.open_row,
            next_act: self.next_act,
            next_pre: self.next_pre,
            next_cas: self.next_cas,
            busy_until: self.busy_until,
            rows_refreshed: self.rows_refreshed,
            refresh_busy_total: self.refresh_busy_total,
            activations: self.activations,
        }
    }

    /// Reinstates state captured by [`Bank::save_state`].
    pub fn restore_state(&mut self, saved: &SavedBank) {
        self.phase = saved.phase;
        self.open_row = saved.open_row;
        self.next_act = saved.next_act;
        self.next_pre = saved.next_pre;
        self.next_cas = saved.next_cas;
        self.busy_until = saved.busy_until;
        self.rows_refreshed = saved.rows_refreshed;
        self.refresh_busy_total = saved.refresh_busy_total;
        self.activations = saved.activations;
    }
}

/// Dynamic state of a [`Bank`], captured for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedBank {
    /// Current phase.
    pub phase: BankPhase,
    /// Open row, if any.
    pub open_row: Option<u32>,
    /// Earliest next ACT.
    pub next_act: Ps,
    /// Earliest next PRE.
    pub next_pre: Ps,
    /// Earliest next column command.
    pub next_cas: Ps,
    /// End of the in-progress refresh.
    pub busy_until: Ps,
    /// Rows refreshed in the current window.
    pub rows_refreshed: u64,
    /// Total refresh busy time.
    pub refresh_busy_total: Ps,
    /// ACTs issued.
    pub activations: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

/// Sentinel in [`BankLanes`]' open-row lane meaning "no row open".
///
/// Real row indices are bounded by the geometry's rows-per-bank (far
/// below `u32::MAX`), so a single compare against the lane both tests
/// row identity and excludes closed banks.
pub const NO_ROW: u32 = u32::MAX;

/// Struct-of-arrays timing state for every bank of one channel.
///
/// Semantically this is `Vec<Bank>` with the fields transposed: each
/// field of [`Bank`] becomes one contiguous lane indexed by flat bank
/// id. The controller's planner walks the hot lanes (`phase`,
/// `open_row`, `next_cas`, `next_pre`, `next_act`, `busy_until`) as
/// plain slices — a batched scan with no per-bank struct stride and no
/// cold counter fields polluting the cache lines it touches — while the
/// per-lane methods mirror [`Bank`]'s state machine operation for
/// operation, so the two layouts stay observably identical (pinned by
/// the `lanes_mirror_bank_exactly` test).
///
/// Checkpoints interoperate: [`save_lane`](BankLanes::save_lane) /
/// [`restore_lane`](BankLanes::restore_lane) speak the same
/// [`SavedBank`] image as [`Bank::save_state`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BankLanes {
    phase: Vec<BankPhase>,
    /// Open row per lane, [`NO_ROW`] when closed.
    open_row: Vec<u32>,
    next_act: Vec<Ps>,
    next_pre: Vec<Ps>,
    next_cas: Vec<Ps>,
    busy_until: Vec<Ps>,
    rows_refreshed: Vec<u64>,
    refresh_busy_total: Vec<Ps>,
    activations: Vec<u64>,
}

impl BankLanes {
    /// `n` idle banks at time zero.
    pub fn new(n: usize) -> Self {
        BankLanes {
            phase: vec![BankPhase::Idle; n],
            open_row: vec![NO_ROW; n],
            next_act: vec![Ps::ZERO; n],
            next_pre: vec![Ps::ZERO; n],
            next_cas: vec![Ps::ZERO; n],
            busy_until: vec![Ps::ZERO; n],
            rows_refreshed: vec![0; n],
            refresh_busy_total: vec![Ps::ZERO; n],
            activations: vec![0; n],
        }
    }

    /// Number of banks.
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// Whether the channel has no banks (never true for real geometries).
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// Current phase of lane `i`.
    #[inline]
    pub fn phase(&self, i: usize) -> BankPhase {
        self.phase[i]
    }

    /// The row currently latched in lane `i`'s row buffer, if any.
    #[inline]
    pub fn open_row(&self, i: usize) -> Option<u32> {
        (self.open_row[i] != NO_ROW).then_some(self.open_row[i])
    }

    /// Whether `row` is a row-buffer hit on lane `i`.
    #[inline]
    pub fn is_row_hit(&self, i: usize, row: u32) -> bool {
        self.phase[i] == BankPhase::Active && self.open_row[i] == row
    }

    /// End of lane `i`'s in-progress refresh ([`Ps::ZERO`] when none).
    #[inline]
    pub fn refresh_end(&self, i: usize) -> Ps {
        if self.phase[i] == BankPhase::Refreshing {
            self.busy_until[i]
        } else {
            Ps::ZERO
        }
    }

    /// Total time lane `i` has spent refreshing.
    #[inline]
    pub fn refresh_busy_total(&self, i: usize) -> Ps {
        self.refresh_busy_total[i]
    }

    /// Rows lane `i` refreshed in the current retention window.
    #[inline]
    pub fn rows_refreshed(&self, i: usize) -> u64 {
        self.rows_refreshed[i]
    }

    /// ACT commands issued to lane `i`.
    #[inline]
    pub fn activations(&self, i: usize) -> u64 {
        self.activations[i]
    }

    /// Finishes lane `i`'s refresh once its end time has passed
    /// (idempotent, mirrors [`Bank::settle`]).
    #[inline]
    pub fn settle(&mut self, i: usize, now: Ps) {
        if self.phase[i] == BankPhase::Refreshing && now >= self.busy_until[i] {
            self.phase[i] = BankPhase::Idle;
        }
    }

    /// Earliest ACT on lane `i` (mirrors [`Bank::earliest_act`]).
    #[inline]
    pub fn earliest_act(&self, i: usize) -> Option<Ps> {
        match self.phase[i] {
            BankPhase::Active => None,
            BankPhase::Refreshing => Some(self.busy_until[i].max(self.next_act[i])),
            BankPhase::Idle => Some(self.next_act[i]),
        }
    }

    /// Earliest column command for `row` on lane `i` (mirrors
    /// [`Bank::earliest_cas`]).
    #[inline]
    pub fn earliest_cas(&self, i: usize, row: u32) -> Option<Ps> {
        if self.phase[i] == BankPhase::Active && self.open_row[i] == row {
            Some(self.next_cas[i])
        } else {
            None
        }
    }

    /// Earliest PRE on lane `i` (mirrors [`Bank::earliest_pre`]).
    #[inline]
    pub fn earliest_pre(&self, i: usize) -> Option<Ps> {
        if self.phase[i] == BankPhase::Active {
            Some(self.next_pre[i])
        } else {
            None
        }
    }

    /// Earliest refresh start on lane `i` (mirrors
    /// [`Bank::earliest_refresh`]).
    #[inline]
    pub fn earliest_refresh(&self, i: usize) -> Option<Ps> {
        match self.phase[i] {
            BankPhase::Active => None,
            BankPhase::Refreshing => Some(self.busy_until[i]),
            BankPhase::Idle => Some(self.next_act[i]),
        }
    }

    /// Issues an ACT on lane `i` (mirrors [`Bank::do_act`]).
    #[inline]
    pub fn do_act(&mut self, i: usize, at: Ps, row: u32, t: &TimingParams) {
        debug_assert_eq!(self.phase[i], BankPhase::Idle, "ACT to non-idle bank");
        debug_assert!(
            at >= self.next_act[i],
            "ACT at {at} before {}",
            self.next_act[i]
        );
        self.phase[i] = BankPhase::Active;
        self.open_row[i] = row;
        self.next_cas[i] = at + t.trcd;
        self.next_pre[i] = at + t.tras;
        self.next_act[i] = at + t.trc;
        self.activations[i] += 1;
    }

    /// Issues a RD on lane `i`; returns the last-data-beat instant
    /// (mirrors [`Bank::do_read`]).
    #[inline]
    pub fn do_read(&mut self, i: usize, at: Ps, t: &TimingParams) -> Ps {
        debug_assert_eq!(self.phase[i], BankPhase::Active, "RD to non-active bank");
        debug_assert!(at >= self.next_cas[i]);
        self.next_pre[i] = self.next_pre[i].max(at + t.trtp);
        self.next_cas[i] = self.next_cas[i].max(at + t.tccd);
        at + t.tcl + t.tburst
    }

    /// Issues a WR on lane `i`; returns the last-data-beat instant
    /// (mirrors [`Bank::do_write`]).
    #[inline]
    pub fn do_write(&mut self, i: usize, at: Ps, t: &TimingParams) -> Ps {
        debug_assert_eq!(self.phase[i], BankPhase::Active, "WR to non-active bank");
        debug_assert!(at >= self.next_cas[i]);
        let data_end = at + t.tcwl + t.tburst;
        self.next_pre[i] = self.next_pre[i].max(data_end + t.twr);
        self.next_cas[i] = self.next_cas[i].max(at + t.tccd);
        data_end
    }

    /// Issues a PRE on lane `i` (mirrors [`Bank::do_pre`]).
    #[inline]
    pub fn do_pre(&mut self, i: usize, at: Ps, t: &TimingParams) {
        debug_assert_eq!(self.phase[i], BankPhase::Active, "PRE to non-active bank");
        debug_assert!(
            at >= self.next_pre[i],
            "PRE at {at} before {}",
            self.next_pre[i]
        );
        self.phase[i] = BankPhase::Idle;
        self.open_row[i] = NO_ROW;
        self.next_act[i] = self.next_act[i].max(at + t.trp);
    }

    /// Starts a refresh on lane `i` (mirrors [`Bank::do_refresh`]).
    #[inline]
    pub fn do_refresh(&mut self, i: usize, at: Ps, trfc: Ps, rows: u32) {
        debug_assert_eq!(self.phase[i], BankPhase::Idle, "REF to non-idle bank");
        debug_assert!(at >= self.next_act[i]);
        self.phase[i] = BankPhase::Refreshing;
        self.busy_until[i] = at + trfc;
        self.next_act[i] = at + trfc;
        self.rows_refreshed[i] += u64::from(rows);
        self.refresh_busy_total[i] += trfc;
    }

    // Lane slices for the batched planner. Callers treat them as
    // read-only snapshots between mutations.

    /// Per-lane phases.
    #[inline]
    pub fn phase_lanes(&self) -> &[BankPhase] {
        &self.phase
    }

    /// Per-lane open rows ([`NO_ROW`] when closed).
    #[inline]
    pub fn row_lanes(&self) -> &[u32] {
        &self.open_row
    }

    /// Per-lane earliest-CAS floors (meaningful while Active).
    #[inline]
    pub fn cas_lanes(&self) -> &[Ps] {
        &self.next_cas
    }

    /// Per-lane earliest-PRE floors (meaningful while Active).
    #[inline]
    pub fn pre_lanes(&self) -> &[Ps] {
        &self.next_pre
    }

    /// Per-lane earliest-ACT floors (pre-max with `busy_until` via
    /// [`earliest_act`](BankLanes::earliest_act) while Refreshing).
    #[inline]
    pub fn act_lanes(&self) -> &[Ps] {
        &self.next_act
    }

    /// Per-lane refresh-end instants (meaningful while Refreshing).
    #[inline]
    pub fn busy_lanes(&self) -> &[Ps] {
        &self.busy_until
    }

    /// Captures lane `i` in the [`SavedBank`] checkpoint image.
    pub fn save_lane(&self, i: usize) -> SavedBank {
        SavedBank {
            phase: self.phase[i],
            open_row: self.open_row(i),
            next_act: self.next_act[i],
            next_pre: self.next_pre[i],
            next_cas: self.next_cas[i],
            busy_until: self.busy_until[i],
            rows_refreshed: self.rows_refreshed[i],
            refresh_busy_total: self.refresh_busy_total[i],
            activations: self.activations[i],
        }
    }

    /// Reinstates lane `i` from a [`SavedBank`] image.
    pub fn restore_lane(&mut self, i: usize, saved: &SavedBank) {
        self.phase[i] = saved.phase;
        self.open_row[i] = saved.open_row.unwrap_or(NO_ROW);
        self.next_act[i] = saved.next_act;
        self.next_pre[i] = saved.next_pre;
        self.next_cas[i] = saved.next_cas;
        self.busy_until[i] = saved.busy_until;
        self.rows_refreshed[i] = saved.rows_refreshed;
        self.refresh_busy_total[i] = saved.refresh_busy_total;
        self.activations[i] = saved.activations;
    }
}

/// Rank-wide timing constraints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankState {
    /// Times of the most recent ACTs, for the tFAW window (up to 4).
    recent_acts: [Ps; 4],
    /// Total ACTs recorded; the tFAW window only binds once 4 exist.
    act_count: u64,
    /// Earliest next ACT anywhere in the rank (tRRD).
    next_act_rank: Ps,
    /// Earliest next RD in the rank (tWTR after a write's data end).
    next_rd_rank: Ps,
    /// End of an in-progress all-bank refresh (rank lockout).
    refresh_until: Ps,
    /// Total time the whole rank has been locked by all-bank refreshes.
    refresh_busy_total: Ps,
}

impl RankState {
    /// A rank with no history.
    pub fn new() -> Self {
        RankState {
            recent_acts: [Ps::ZERO; 4],
            act_count: 0,
            next_act_rank: Ps::ZERO,
            next_rd_rank: Ps::ZERO,
            refresh_until: Ps::ZERO,
            refresh_busy_total: Ps::ZERO,
        }
    }

    /// End of the in-progress all-bank refresh ([`Ps::ZERO`] if none or
    /// already over).
    pub fn refresh_until(&self) -> Ps {
        self.refresh_until
    }

    /// Whether the rank is locked by an all-bank refresh at `now`.
    pub fn is_refreshing(&self, now: Ps) -> bool {
        now < self.refresh_until
    }

    /// Total time spent in all-bank refresh lockout.
    pub fn refresh_busy_total(&self) -> Ps {
        self.refresh_busy_total
    }

    /// Earliest time a new ACT may issue in this rank considering tRRD,
    /// tFAW and any rank-level refresh lockout.
    pub fn earliest_act(&self, t: &TimingParams) -> Ps {
        // tFAW: the 4th-most-recent ACT + tFAW, once 4 ACTs exist.
        let faw_ready = if self.act_count >= 4 {
            self.recent_acts[0] + t.tfaw
        } else {
            Ps::ZERO
        };
        self.next_act_rank.max(faw_ready).max(self.refresh_until)
    }

    /// Earliest time a RD may issue in this rank (tWTR, refresh lockout).
    pub fn earliest_rd(&self) -> Ps {
        self.next_rd_rank.max(self.refresh_until)
    }

    /// Earliest time a WR may issue (refresh lockout only at rank level).
    pub fn earliest_wr(&self) -> Ps {
        self.refresh_until
    }

    /// Records an ACT at `at`.
    pub fn on_act(&mut self, at: Ps, t: &TimingParams) {
        self.recent_acts.rotate_left(1);
        self.recent_acts[3] = at;
        self.act_count += 1;
        self.next_act_rank = self.next_act_rank.max(at + t.trrd);
    }

    /// Records a WR whose data finishes at `data_end`.
    pub fn on_write(&mut self, data_end: Ps, t: &TimingParams) {
        self.next_rd_rank = self.next_rd_rank.max(data_end + t.twtr);
    }

    /// Starts an all-bank refresh at `at` lasting `trfc`.
    pub fn on_all_bank_refresh(&mut self, at: Ps, trfc: Ps) {
        self.refresh_until = at + trfc;
        self.refresh_busy_total += trfc;
    }

    /// Captures the full rank timing state for checkpointing.
    pub fn save_state(&self) -> SavedRank {
        SavedRank {
            recent_acts: self.recent_acts,
            act_count: self.act_count,
            next_act_rank: self.next_act_rank,
            next_rd_rank: self.next_rd_rank,
            refresh_until: self.refresh_until,
            refresh_busy_total: self.refresh_busy_total,
        }
    }

    /// Reinstates state captured by [`RankState::save_state`].
    pub fn restore_state(&mut self, saved: &SavedRank) {
        self.recent_acts = saved.recent_acts;
        self.act_count = saved.act_count;
        self.next_act_rank = saved.next_act_rank;
        self.next_rd_rank = saved.next_rd_rank;
        self.refresh_until = saved.refresh_until;
        self.refresh_busy_total = saved.refresh_busy_total;
    }
}

/// Dynamic state of a [`RankState`], captured for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedRank {
    /// Most recent ACT times (tFAW window).
    pub recent_acts: [Ps; 4],
    /// Total ACTs recorded.
    pub act_count: u64,
    /// Earliest next ACT in the rank.
    pub next_act_rank: Ps,
    /// Earliest next RD in the rank.
    pub next_rd_rank: Ps,
    /// End of the in-progress all-bank refresh.
    pub refresh_until: Ps,
    /// Total all-bank refresh lockout time.
    pub refresh_busy_total: Ps,
}

impl Default for RankState {
    fn default() -> Self {
        RankState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn act_then_cas_respects_trcd() {
        let mut b = Bank::new();
        let tp = t();
        b.do_act(Ps::ZERO, 7, &tp);
        assert_eq!(b.phase(), BankPhase::Active);
        assert!(b.is_row_hit(7));
        assert!(!b.is_row_hit(8));
        assert_eq!(b.earliest_cas(7), Some(tp.trcd));
        assert_eq!(b.earliest_cas(8), None);
        assert_eq!(b.earliest_act(), None, "must precharge first");
    }

    #[test]
    fn read_sets_data_timing_and_pre_window() {
        let mut b = Bank::new();
        let tp = t();
        b.do_act(Ps::ZERO, 0, &tp);
        let data_end = b.do_read(tp.trcd, &tp);
        assert_eq!(data_end, tp.trcd + tp.tcl + tp.tburst);
        // PRE cannot occur before tRAS (35 ns > tRCD + tRTP here).
        assert_eq!(b.earliest_pre(), Some(tp.tras));
    }

    #[test]
    fn write_extends_pre_by_twr() {
        let mut b = Bank::new();
        let tp = t();
        b.do_act(Ps::ZERO, 0, &tp);
        let data_end = b.do_write(tp.trcd, &tp);
        assert_eq!(data_end, tp.trcd + tp.tcwl + tp.tburst);
        assert_eq!(b.earliest_pre(), Some((data_end + tp.twr).max(tp.tras)));
    }

    #[test]
    fn pre_closes_row_and_sets_trp() {
        let mut b = Bank::new();
        let tp = t();
        b.do_act(Ps::ZERO, 3, &tp);
        let pre_at = tp.tras;
        b.do_pre(pre_at, &tp);
        assert_eq!(b.phase(), BankPhase::Idle);
        assert_eq!(b.open_row(), None);
        // next ACT limited by both tRC from ACT and tRP from PRE.
        let expect = (pre_at + tp.trp).max(tp.trc);
        assert_eq!(b.earliest_act(), Some(expect));
    }

    #[test]
    fn refresh_blocks_bank_until_trfc() {
        let mut b = Bank::new();
        let trfc = Ps::from_ns(890);
        b.do_refresh(Ps::from_us(1), trfc, 64);
        assert_eq!(b.phase(), BankPhase::Refreshing);
        assert_eq!(b.refresh_end(), Ps::from_us(1) + trfc);
        assert_eq!(b.earliest_act(), Some(Ps::from_us(1) + trfc));
        assert_eq!(b.rows_refreshed(), 64);
        assert_eq!(b.refresh_busy_total(), trfc);
        // settle before end keeps refreshing; after end goes idle.
        b.settle(Ps::from_us(1));
        assert_eq!(b.phase(), BankPhase::Refreshing);
        b.settle(Ps::from_us(2));
        assert_eq!(b.phase(), BankPhase::Idle);
    }

    #[test]
    fn refresh_window_reset() {
        let mut b = Bank::new();
        b.do_refresh(Ps::ZERO, Ps::from_ns(100), 32);
        b.settle(Ps::from_ns(100));
        b.reset_refresh_window();
        assert_eq!(b.rows_refreshed(), 0);
        assert_eq!(b.refresh_busy_total(), Ps::from_ns(100));
    }

    #[test]
    fn lanes_mirror_bank_exactly() {
        // Drive a scalar Bank and one BankLanes lane through the same
        // pseudo-random legal command stream; every observable (queries,
        // returned data-end instants, checkpoint images) must agree at
        // every step.
        let tp = t();
        let trfc = Ps::from_ns(387);
        let mut b = Bank::new();
        let mut l = BankLanes::new(4); // exercise a non-zero lane
        let lane = 2;
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut now = Ps::ZERO;
        for step in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            now += Ps::from_ns((x >> 58) + 1);
            b.settle(now);
            l.settle(lane, now);
            let row = ((x >> 32) % 64) as u32;
            assert_eq!(b.phase(), l.phase(lane), "step {step}");
            assert_eq!(b.open_row(), l.open_row(lane));
            assert_eq!(b.is_row_hit(row), l.is_row_hit(lane, row));
            assert_eq!(b.refresh_end(), l.refresh_end(lane));
            assert_eq!(b.earliest_act(), l.earliest_act(lane));
            assert_eq!(b.earliest_cas(row), l.earliest_cas(lane, row));
            assert_eq!(b.earliest_pre(), l.earliest_pre(lane));
            assert_eq!(b.earliest_refresh(), l.earliest_refresh(lane));
            match b.phase() {
                BankPhase::Active => match x % 4 {
                    0 => {
                        let at = b.earliest_pre().unwrap().max(now);
                        b.do_pre(at, &tp);
                        l.do_pre(lane, at, &tp);
                    }
                    1 => {
                        let open = b.open_row().unwrap();
                        let at = b.earliest_cas(open).unwrap().max(now);
                        assert_eq!(b.do_read(at, &tp), l.do_read(lane, at, &tp));
                    }
                    _ => {
                        let open = b.open_row().unwrap();
                        let at = b.earliest_cas(open).unwrap().max(now);
                        assert_eq!(b.do_write(at, &tp), l.do_write(lane, at, &tp));
                    }
                },
                BankPhase::Idle => {
                    let at = b.earliest_act().unwrap().max(now);
                    if x.is_multiple_of(3) {
                        b.do_refresh(at, trfc, 8);
                        l.do_refresh(lane, at, trfc, 8);
                    } else {
                        b.do_act(at, row, &tp);
                        l.do_act(lane, at, row, &tp);
                    }
                }
                BankPhase::Refreshing => {}
            }
            assert_eq!(b.save_state(), l.save_lane(lane), "step {step}");
        }
        // Untouched lanes stayed pristine, and checkpoints round-trip
        // across layouts.
        assert_eq!(l.save_lane(0), Bank::new().save_state());
        let img = b.save_state();
        let mut l2 = BankLanes::new(1);
        l2.restore_lane(0, &img);
        assert_eq!(l2.save_lane(0), img);
        let mut b2 = Bank::new();
        b2.restore_state(&l.save_lane(lane));
        assert_eq!(b2.save_state(), img);
    }

    #[test]
    fn rank_trrd_spacing() {
        let mut r = RankState::new();
        let tp = t();
        r.on_act(Ps::ZERO, &tp);
        assert_eq!(r.earliest_act(&tp), tp.trrd);
    }

    #[test]
    fn rank_tfaw_limits_fifth_act() {
        let mut r = RankState::new();
        let tp = t();
        // Four ACTs spaced at exactly tRRD.
        for i in 0..4u64 {
            let at = tp.trrd * i;
            assert!(r.earliest_act(&tp) <= at, "act {i}");
            r.on_act(at, &tp);
        }
        // Fifth ACT must wait until first + tFAW (40 ns > 4×6 ns).
        assert_eq!(r.earliest_act(&tp), tp.tfaw);
    }

    #[test]
    fn rank_wtr_turnaround() {
        let mut r = RankState::new();
        let tp = t();
        let data_end = Ps::from_ns(30);
        r.on_write(data_end, &tp);
        assert_eq!(r.earliest_rd(), data_end + tp.twtr);
        assert_eq!(r.earliest_wr(), Ps::ZERO);
    }

    #[test]
    fn rank_all_bank_refresh_locks_everything() {
        let mut r = RankState::new();
        let tp = t();
        r.on_all_bank_refresh(Ps::from_us(2), Ps::from_ns(890));
        let end = Ps::from_us(2) + Ps::from_ns(890);
        assert!(r.is_refreshing(Ps::from_us(2)));
        assert!(!r.is_refreshing(end));
        assert_eq!(r.earliest_act(&tp), end);
        assert_eq!(r.earliest_rd(), end);
        assert_eq!(r.earliest_wr(), end);
        assert_eq!(r.refresh_busy_total(), Ps::from_ns(890));
    }
}

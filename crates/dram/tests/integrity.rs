//! Retention-integrity oracle vs. every refresh policy, clean and
//! faulted.
//!
//! The central invariant of the paper's co-design — every row refreshed
//! within (scaled) `tREFW` — is checked here three ways:
//!
//! 1. **Clean runs**: under random request streams, all real refresh
//!    policies keep every row inside `tREFW` plus the bounded
//!    postponement slack; `NoRefresh` (the paper's idealized upper
//!    bound) must instead be *flagged* by the oracle — it is the
//!    negative control proving the oracle can see missing refreshes.
//! 2. **Skip faults**: deterministically dropped refresh commands leave
//!    the policy's schedule advancing while rows go unrefreshed; the
//!    oracle must report every such episode — never silence.
//! 3. **Delay faults**: bounded issue delay is legal (JEDEC
//!    postponement); the sequential schedule must absorb it cleanly.

use proptest::prelude::*;
use refsim_dram::controller::{ControllerConfig, MemoryController};
use refsim_dram::geometry::Geometry;
use refsim_dram::integrity::{IntegrityConfig, RefreshFaults, WeakRow};
use refsim_dram::mapping::{AddressMapping, MappingScheme};
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::request::{MemRequest, ReqId, ReqKind};
use refsim_dram::time::Ps;
use refsim_dram::timing::{Density, FgrMode, RefreshTiming, Retention, TimingParams};

const ALL_POLICIES: [RefreshPolicyKind; 8] = [
    RefreshPolicyKind::NoRefresh,
    RefreshPolicyKind::AllBank,
    RefreshPolicyKind::PerBankRoundRobin,
    RefreshPolicyKind::PerBankSequential,
    RefreshPolicyKind::OooPerBank,
    RefreshPolicyKind::Fgr(FgrMode::X4),
    RefreshPolicyKind::Adaptive,
    RefreshPolicyKind::Elastic,
];

fn controller(policy: RefreshPolicyKind, time_scale: u64) -> MemoryController {
    let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
    let cfg = ControllerConfig {
        track_retention: true,
        ..ControllerConfig::default()
    };
    MemoryController::new(
        mapping,
        TimingParams::ddr3_1600(),
        RefreshTiming::scaled(Density::Gb32, Retention::Ms64, time_scale as u32),
        policy,
        cfg,
    )
}

fn req(mc: &MemoryController, id: u64, paddr: u64, kind: ReqKind, at: Ps) -> MemRequest {
    let paddr = paddr & ((32u64 << 30) - 1) & !0x3f;
    MemRequest {
        id: ReqId(id),
        kind,
        paddr,
        loc: mc.mapping().decode(paddr),
        arrival: at,
        core: 0,
        task: 0,
    }
}

/// Drives `mc` with the (cycled) request stream until `end`, spacing
/// arrivals `gap` apart, then runs the retention audit.
fn drive(mc: &mut MemoryController, stream: &[(u64, bool)], gap: Ps, end: Ps) -> u64 {
    let mut t = Ps::ZERO;
    let mut id = 0u64;
    while t < end {
        mc.advance_to(t);
        let (addr, write) = stream[id as usize % stream.len()];
        let kind = if write { ReqKind::Write } else { ReqKind::Read };
        let r = req(mc, id, addr.wrapping_mul(0x9E37_79B9_7F4A_7C15), kind, t);
        let _ = mc.enqueue(r); // queue-full rejects are fine here
        id += 1;
        t += gap;
    }
    mc.advance_to(end);
    mc.audit_retention(end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No row ever exceeds `tREFW` (+ bounded postponement slack) under
    /// any real refresh policy, for random request streams; the
    /// `NoRefresh` ideal is flagged by the oracle instead.
    #[test]
    fn no_row_exceeds_trefw_under_any_policy(
        stream in prop::collection::vec((any::<u64>(), any::<bool>()), 20..80),
    ) {
        // Scale 1024: tREFW = 62.5us; run 3 windows + slack margin so
        // stale rows are observable at the end-of-run audit.
        let scale = 1024u64;
        let trefw = Ps::from_ms(64) / scale;
        let end = trefw * 3 + Ps::from_us(80);
        for policy in ALL_POLICIES {
            let mut mc = controller(policy, scale);
            let violations = drive(&mut mc, &stream, Ps::from_ns(400), end);
            if policy == RefreshPolicyKind::NoRefresh {
                prop_assert!(
                    violations > 0,
                    "oracle failed to flag the never-refreshing policy"
                );
            } else {
                prop_assert_eq!(
                    violations, 0,
                    "policy {} violated retention: {:?}",
                    policy,
                    mc.integrity().map(|t| t.violations().first().copied())
                );
            }
        }
    }

    /// Every injected refresh-skip fault is detected by the oracle:
    /// a contiguous burst of dropped commands anywhere in the sequential
    /// schedule always surfaces as retention violations — zero silent
    /// data loss.
    #[test]
    fn injected_skip_faults_are_always_detected(
        // At scale 512 a window holds 256 commands; bursts are placed in
        // steady-state windows 1-2 (window-0 rows date from the epoch,
        // so their first re-refresh interval is shorter than a full
        // period and legitimately inside the postponement slack).
        start in 260u64..700,
        burst in 1u64..16,
        stream in prop::collection::vec((any::<u64>(), any::<bool>()), 10..40),
    ) {
        let scale = 512u64;
        let trefw = Ps::from_ms(64) / scale;
        let end = trefw * 5;
        let mut mc = controller(RefreshPolicyKind::PerBankSequential, scale);
        mc.inject_faults(RefreshFaults {
            skip: (start..start + burst).collect(),
            delay: vec![],
            weak_rows: vec![],
        });
        let violations = drive(&mut mc, &stream, Ps::from_ns(400), end);
        let skipped = mc.stats().injected_skip_faults;
        prop_assert!(skipped == burst, "plan must fire: {skipped} of {burst} skips");
        prop_assert!(
            violations > 0,
            "skip burst [{start}, {}) was silent: {skipped} commands dropped, \
             0 violations reported",
            start + burst
        );
    }
}

/// Bounded injected delay is absorbed by the sequential schedule: the
/// oracle stays clean while the delay faults demonstrably fired.
#[test]
fn sequential_schedule_tolerates_bounded_delay() {
    // Scale 128: tREFW = 500us, per-bank slice ≈ 31us — a 4us issue
    // delay is well inside the nine-tREFI oracle slack.
    let scale = 128u64;
    let trefw = Ps::from_ms(64) / scale;
    let end = trefw * 3;
    let mut mc = controller(RefreshPolicyKind::PerBankSequential, scale);
    let delay: Vec<(u64, Ps)> = (0..400).map(|i| (i * 8, Ps::from_us(4))).collect();
    mc.inject_faults(RefreshFaults {
        skip: vec![],
        delay,
        weak_rows: vec![],
    });
    let stream = [(0x1234_5678u64, false), (0xDEAD_BEEF, true)];
    let violations = drive(&mut mc, &stream, Ps::from_ns(500), end);
    assert!(
        mc.stats().injected_delay_faults > 0,
        "delay plan never fired"
    );
    assert_eq!(
        violations,
        0,
        "bounded delay must be tolerated: {:?}",
        mc.integrity().map(|t| t.violations().first().copied())
    );
}

/// A weak row (retention below `tREFW`) under a stock policy is exactly
/// the RAIDR failure mode: no schedule refreshes it often enough, and
/// the oracle must say so.
#[test]
fn weak_row_is_reported_under_stock_policy() {
    let scale = 512u64;
    let trefw = Ps::from_ms(64) / scale;
    let end = trefw * 3;
    let mut mc = controller(RefreshPolicyKind::PerBankSequential, scale);
    mc.enable_integrity(IntegrityConfig {
        limit: trefw,
        slack: Ps::from_us(20),
    });
    mc.inject_faults(RefreshFaults {
        skip: vec![],
        delay: vec![],
        weak_rows: vec![WeakRow {
            flat_bank: 3,
            row: 1000,
            limit: trefw / 2,
        }],
    });
    let stream = [(0xABCDu64, false)];
    let violations = drive(&mut mc, &stream, Ps::from_ns(500), end);
    assert!(violations > 0, "weak row went unreported");
    let found = mc
        .integrity()
        .expect("oracle enabled")
        .violations()
        .iter()
        .any(|v| {
            v.kind == refsim_dram::integrity::ViolationKind::WeakRow
                && v.flat_bank == 3
                && v.row_start == 1000
        });
    assert!(found, "violation list must name the weak row");
}

/// The retention audit is wired through `ControllerStats` so experiment
/// reports can surface it without reaching into the tracker.
#[test]
fn violations_are_mirrored_into_stats() {
    let scale = 1024u64;
    let trefw = Ps::from_ms(64) / scale;
    let mut mc = controller(RefreshPolicyKind::NoRefresh, scale);
    let stream = [(0x42u64, false)];
    let violations = drive(&mut mc, &stream, Ps::from_us(1), trefw * 3);
    assert!(violations > 0);
    assert_eq!(mc.stats().retention_violations, violations);
}

//! Differential proof obligations for the batched SoA tick path.
//!
//! The batched channel tick (`TickPath::Batched`) — struct-of-arrays
//! bank lanes, plan memoization, decision-table-gated policy hooks —
//! is only allowed to exist because it is *bit-identical* to the
//! scalar reference walk (`TickPath::ScalarReference`): same
//! completion stream, same statistics, same checkpoint image, for
//! every refresh policy under randomized request streams. This suite
//! pins that equivalence at the controller level (the system-level
//! pins live in `refsim-core`'s engine suite), including the
//! `next_event_time` probe interleaving that exercises the plan memo
//! and checkpoint round-trips that cross from one path to the other.

use proptest::prelude::*;
use refsim_dram::backend::TickPath;
use refsim_dram::controller::{ControllerConfig, MemoryController};
use refsim_dram::geometry::Geometry;
use refsim_dram::mapping::{AddressMapping, MappingScheme};
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::request::{MemRequest, ReqId, ReqKind};
use refsim_dram::time::Ps;
use refsim_dram::timing::{Density, FgrMode, RefreshTiming, Retention, TimingParams};

const ALL_POLICIES: [RefreshPolicyKind; 8] = [
    RefreshPolicyKind::NoRefresh,
    RefreshPolicyKind::AllBank,
    RefreshPolicyKind::PerBankRoundRobin,
    RefreshPolicyKind::PerBankSequential,
    RefreshPolicyKind::OooPerBank,
    RefreshPolicyKind::Fgr(FgrMode::X2),
    RefreshPolicyKind::Adaptive,
    RefreshPolicyKind::Elastic,
];

fn controller(policy: RefreshPolicyKind, path: TickPath) -> MemoryController {
    let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
    let mut mc = MemoryController::new(
        mapping,
        TimingParams::ddr3_1600(),
        RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 1024),
        policy,
        ControllerConfig::default(),
    );
    mc.set_tick_path(path);
    mc
}

fn req(mc: &MemoryController, id: u64, raw: u64, write: bool, at: Ps) -> MemRequest {
    let paddr = raw.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((32u64 << 30) - 1) & !0x3f;
    MemRequest {
        id: ReqId(id),
        kind: if write { ReqKind::Write } else { ReqKind::Read },
        paddr,
        loc: mc.mapping().decode(paddr),
        arrival: at,
        core: 0,
        task: 0,
    }
}

/// Drives `a` (batched) and `b` (scalar reference) in lockstep through
/// the same request stream and time grid, asserting observable
/// equality at every step. `probe` additionally interleaves
/// `next_event_time` calls — the double-plan pattern the event-skip
/// engine exhibits and the plan memo exists to absorb — which must be
/// observation-only on both paths.
fn drive_pair(
    a: &mut MemoryController,
    b: &mut MemoryController,
    stream: &[(u64, bool)],
    gap: Ps,
    end: Ps,
    probe: bool,
) {
    let mut t = Ps::ZERO;
    let mut id = 0u64;
    while t < end {
        if probe {
            assert_eq!(a.next_event_time(), b.next_event_time(), "probe at {t:?}");
        }
        a.advance_to(t);
        b.advance_to(t);
        let (raw, write) = stream[id as usize % stream.len()];
        let ra = req(a, id, raw, write, t);
        let rb = req(b, id, raw, write, t);
        assert_eq!(
            a.enqueue(ra).is_ok(),
            b.enqueue(rb).is_ok(),
            "accept at {t:?}"
        );
        assert_eq!(
            a.drain_completions(),
            b.drain_completions(),
            "completions diverged at {t:?}"
        );
        id += 1;
        t += gap;
    }
    a.advance_to(end);
    b.advance_to(end);
    assert_eq!(a.drain_completions(), b.drain_completions(), "final drain");
    assert_eq!(a.stats(), b.stats(), "statistics diverged");
    assert_eq!(a.save_state(), b.save_state(), "checkpoint image diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline equivalence: for every refresh policy, the batched
    /// SoA tick reproduces the scalar reference walk bit for bit under
    /// random request streams — completions, stats, and the full
    /// checkpoint image.
    #[test]
    fn tick_paths_are_bit_identical_for_every_policy(
        stream in prop::collection::vec((any::<u64>(), any::<bool>()), 20..60),
        probe in any::<bool>(),
    ) {
        let end = Ps::from_us(200);
        for policy in ALL_POLICIES {
            let mut batched = controller(policy, TickPath::Batched);
            let mut scalar = controller(policy, TickPath::ScalarReference);
            drive_pair(&mut batched, &mut scalar, &stream, Ps::from_ns(350), end, probe);
        }
    }

    /// Checkpoints cross tick paths: an image saved mid-run on one path
    /// restores into a controller on the other path, and both resumed
    /// halves stay bit-identical to the end. This is the guarantee that
    /// lets a sweep mix paths without forking its cache namespace at
    /// the state layer.
    #[test]
    fn checkpoints_cross_tick_paths(
        stream in prop::collection::vec((any::<u64>(), any::<bool>()), 20..40),
        swap in any::<bool>(),
    ) {
        let mid = Ps::from_us(80);
        let end = Ps::from_us(180);
        for policy in ALL_POLICIES {
            let (first, second) = if swap {
                (TickPath::ScalarReference, TickPath::Batched)
            } else {
                (TickPath::Batched, TickPath::ScalarReference)
            };
            // Run the first half on `first`, checkpoint, and restore the
            // image into a fresh controller ticking on `second`.
            let mut origin = controller(policy, first);
            let mut t = Ps::ZERO;
            let mut id = 0u64;
            while t < mid {
                origin.advance_to(t);
                let (raw, write) = stream[id as usize % stream.len()];
                let r = req(&origin, id, raw, write, t);
                let _ = origin.enqueue(r);
                let _ = origin.drain_completions();
                id += 1;
                t += Ps::from_ns(350);
            }
            origin.advance_to(mid);
            let _ = origin.drain_completions();
            let image = origin.save_state();

            let mut resumed = controller(policy, second);
            resumed.restore_state(&image).expect("cross-path restore");

            // Both halves continue over the same residual stream.
            while t < end {
                origin.advance_to(t);
                resumed.advance_to(t);
                let (raw, write) = stream[id as usize % stream.len()];
                let ro = req(&origin, id, raw, write, t);
                let rr = req(&resumed, id, raw, write, t);
                assert_eq!(origin.enqueue(ro).is_ok(), resumed.enqueue(rr).is_ok());
                prop_assert_eq!(origin.drain_completions(), resumed.drain_completions());
                id += 1;
                t += Ps::from_ns(350);
            }
            origin.advance_to(end);
            resumed.advance_to(end);
            prop_assert_eq!(origin.drain_completions(), resumed.drain_completions());
            prop_assert_eq!(origin.stats(), resumed.stats());
            prop_assert_eq!(origin.save_state(), resumed.save_state());
        }
    }
}

/// Deterministic long-haul pin over every policy with the probe
/// interleaving always on — the configuration most likely to expose a
/// stale plan memo (every probe plans at the cursor; every enqueue and
/// execute must invalidate).
#[test]
fn probed_long_run_agrees_for_every_policy() {
    let stream: Vec<(u64, bool)> = (0..97)
        .map(|i: u64| {
            let x = i
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x, x & 0x100 != 0)
        })
        .collect();
    for policy in ALL_POLICIES {
        let mut batched = controller(policy, TickPath::Batched);
        let mut scalar = controller(policy, TickPath::ScalarReference);
        drive_pair(
            &mut batched,
            &mut scalar,
            &stream,
            Ps::from_ns(280),
            Ps::from_us(400),
            true,
        );
    }
}

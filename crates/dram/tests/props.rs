//! Property-based tests for the DRAM substrate.

use proptest::prelude::*;

use refsim_dram::geometry::{BankId, Geometry, Location};
use refsim_dram::mapping::{AddressMapping, MappingScheme};
use refsim_dram::refresh::{build_policy, QueueSnapshot, RefreshOp, RefreshPolicyKind};
use refsim_dram::time::Ps;
use refsim_dram::timing::{Density, FgrMode, RefreshTiming, Retention};

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    (
        0u32..3,   // channels exponent (1, 2, or 4)
        0u32..2,   // ranks exponent (1 or 2)
        1u32..4,   // banks exponent (2..8)
        10u32..20, // rows exponent
    )
        .prop_map(|(c, r, b, rows)| Geometry {
            channels: 1 << c,
            ranks_per_channel: 1 << r,
            banks_per_rank: 1 << b,
            rows_per_bank: 1 << rows,
            row_bytes: 4096,
            line_bytes: 64,
        })
}

fn arb_scheme() -> impl Strategy<Value = MappingScheme> {
    prop_oneof![
        Just(MappingScheme::RowRankBankColumn),
        Just(MappingScheme::RowBankRankColumn),
        Just(MappingScheme::BankRankRowColumn),
        Just(MappingScheme::PermutedBank),
    ]
}

proptest! {
    /// decode ∘ encode is the identity for every scheme and geometry.
    #[test]
    fn mapping_roundtrip(g in arb_geometry(), s in arb_scheme(), raw in any::<u64>()) {
        let map = AddressMapping::new(g, s);
        let paddr = (raw % g.total_bytes()) & !u64::from(g.line_bytes - 1);
        let loc = map.decode(paddr);
        prop_assert_eq!(map.encode(loc), paddr);
        // Decoded fields are in range.
        prop_assert!(u32::from(loc.channel) < g.channels);
        prop_assert!(u32::from(loc.rank) < g.ranks_per_channel);
        prop_assert!(u32::from(loc.bank) < g.banks_per_rank);
        prop_assert!(loc.row < g.rows_per_bank);
        prop_assert!(loc.col < g.lines_per_row());
    }

    /// encode ∘ decode is the identity over in-range locations.
    #[test]
    fn mapping_roundtrip_reverse(
        g in arb_geometry(),
        s in arb_scheme(),
        ch in any::<u8>(), rk in any::<u8>(), bk in any::<u8>(),
        row in any::<u32>(), col in any::<u32>(),
    ) {
        let map = AddressMapping::new(g, s);
        let loc = Location {
            channel: (u32::from(ch) % g.channels) as u8,
            rank: (u32::from(rk) % g.ranks_per_channel) as u8,
            bank: (u32::from(bk) % g.banks_per_rank) as u8,
            row: row % g.rows_per_bank,
            col: col % g.lines_per_row(),
        };
        let paddr = map.encode(loc);
        prop_assert_eq!(map.decode(paddr), loc);
    }

    /// Decode ignores the byte-within-line offset: any address inside a
    /// line decodes to that line's location, and encode reproduces the
    /// line-aligned base — so the geometry <-> physical-address mapping
    /// is a clean bijection on lines, not bytes.
    #[test]
    fn mapping_line_offset_invariance(
        g in arb_geometry(), s in arb_scheme(), raw in any::<u64>(), off in any::<u64>(),
    ) {
        let map = AddressMapping::new(g, s);
        let base = (raw % g.total_bytes()) & !u64::from(g.line_bytes - 1);
        let inside = base + off % u64::from(g.line_bytes);
        prop_assert_eq!(map.decode(inside), map.decode(base));
        prop_assert_eq!(map.encode(map.decode(inside)), base);
        // Encoded addresses stay inside the mapping's address space.
        prop_assert!(map.encode(map.decode(base)) < (1u64 << map.addr_bits()));
    }

    /// Channel interleaving is a bijection, and every channel is
    /// actually reachable: on a 2- or 4-channel geometry (the shapes
    /// the sharded engine runs), decode ∘ encode round-trips for
    /// locations pinned to each channel in turn, and walking the
    /// physical address space line-by-line touches all channels.
    #[test]
    fn multi_channel_interleave_round_trip(
        c_exp in 1u32..3, // channels ∈ {2, 4}
        s in arb_scheme(),
        rk in any::<u8>(), bk in any::<u8>(),
        row in any::<u32>(), col in any::<u32>(),
    ) {
        let g = Geometry {
            channels: 1 << c_exp,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            rows_per_bank: 1 << 12,
            row_bytes: 4096,
            line_bytes: 64,
        };
        let map = AddressMapping::new(g, s);
        for ch in 0..g.channels {
            let loc = Location {
                channel: ch as u8,
                rank: (u32::from(rk) % g.ranks_per_channel) as u8,
                bank: (u32::from(bk) % g.banks_per_rank) as u8,
                row: row % g.rows_per_bank,
                col: col % g.lines_per_row(),
            };
            let paddr = map.encode(loc);
            prop_assert_eq!(map.decode(paddr), loc);
        }
        // Coverage: some window of consecutive lines must reach every
        // channel — interleaving may happen at any field position, so
        // scan enough lines to cross the widest stride (a full row per
        // channel under row-major schemes).
        let mut seen = vec![false; g.channels as usize];
        let lines = g.total_bytes() / u64::from(g.line_bytes);
        let stride = lines / u64::from(g.channels);
        for i in 0..g.channels as u64 {
            let l = map.decode(i * stride * u64::from(g.line_bytes));
            seen[l.channel as usize] = true;
        }
        for i in 0..64u64 {
            let l = map.decode(i * u64::from(g.line_bytes) * u64::from(g.row_bytes / g.line_bytes));
            seen[l.channel as usize] = true;
        }
        for i in 0..64u64 {
            let l = map.decode(i * u64::from(g.line_bytes));
            seen[l.channel as usize] = true;
        }
        prop_assert!(
            seen.iter().all(|&s| s),
            "some channel unreachable under {:?}: {:?}", s, seen
        );
    }

    /// Every 4 KiB page maps to exactly one bank under every scheme.
    #[test]
    fn pages_are_bank_uniform(g in arb_geometry(), s in arb_scheme(), page in any::<u64>()) {
        let map = AddressMapping::new(g, s);
        let page = page % (g.total_bytes() / 4096);
        let base = page * 4096;
        let first = map.decode(base).bank_id();
        let ch = map.decode(base).channel;
        for off in [64u64, 1024, 2048, 4032] {
            let l = map.decode(base + off);
            prop_assert_eq!(l.bank_id(), first);
            prop_assert_eq!(l.channel, ch);
        }
    }

    /// Ps arithmetic: round_up lands on a boundary at or after the input
    /// and within one period.
    #[test]
    fn ps_round_up_properties(t in 0u64..u64::MAX / 4, p in 1u64..1_000_000) {
        let r = Ps(t).round_up(Ps(p));
        prop_assert!(r >= Ps(t));
        prop_assert_eq!(r.as_ps() % p, 0);
        prop_assert!(r.as_ps() - t < p);
    }

    /// Ps::scale never overflows for realistic timing magnitudes and is
    /// monotone in the numerator.
    #[test]
    fn ps_scale_monotone(t in 0u64..u64::MAX / 2, num in 1u64..1000, den in 1u64..1000) {
        let a = Ps(t).scale(num, den);
        let b = Ps(t).scale(num + 1, den);
        prop_assert!(b >= a);
    }

    /// Every per-bank policy covers every bank's full row count within
    /// one retention window, for every density/retention/scale combo.
    #[test]
    fn per_bank_policies_cover_all_rows(
        density in prop_oneof![
            Just(Density::Gb8), Just(Density::Gb16),
            Just(Density::Gb24), Just(Density::Gb32)
        ],
        retention in prop_oneof![Just(Retention::Ms64), Just(Retention::Ms32)],
        scale_exp in 0u32..8,
        kind in prop_oneof![
            Just(RefreshPolicyKind::PerBankRoundRobin),
            Just(RefreshPolicyKind::PerBankSequential),
            Just(RefreshPolicyKind::OooPerBank),
        ],
    ) {
        let timing = RefreshTiming::scaled(density, retention, 1 << scale_exp);
        let g = Geometry::ddr3_2rank_8bank(density.rows_per_bank());
        let mut policy = build_policy(kind, &timing, &g);
        let snap = QueueSnapshot {
            per_bank_queued: vec![0; 16],
            utilization: 0.0,
        };
        let mut covered = [0u64; 16];
        loop {
            let due = policy.next_due().expect("per-bank policies always refresh");
            if due >= timing.trefw {
                break;
            }
            let op = policy.select(&snap);
            if let RefreshOp::PerBank { bank, rows } = op {
                covered[bank.flat(8) as usize] += u64::from(rows);
            }
            policy.issued(&op, due);
        }
        for (i, &c) in covered.iter().enumerate() {
            prop_assert!(
                c >= u64::from(timing.rows_per_bank),
                "bank {i} covered {c} < {} (kind {kind:?}, scale {})",
                timing.rows_per_bank,
                1u32 << scale_exp
            );
        }
    }

    /// All-bank policies (plain + every FGR mode) cover every rank.
    #[test]
    fn all_bank_policies_cover_all_rows(
        mode in prop_oneof![
            Just(RefreshPolicyKind::AllBank),
            Just(RefreshPolicyKind::Fgr(FgrMode::X2)),
            Just(RefreshPolicyKind::Fgr(FgrMode::X4)),
        ],
        scale_exp in 0u32..6,
    ) {
        let timing = RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 1 << scale_exp);
        let g = Geometry::default();
        let mut policy = build_policy(mode, &timing, &g);
        let snap = QueueSnapshot::default();
        let mut covered = [0u64; 2];
        loop {
            let due = policy.next_due().expect("refreshing policy");
            if due >= timing.trefw {
                break;
            }
            let op = policy.select(&snap);
            if let RefreshOp::AllBank { rank, rows } = op {
                covered[rank as usize] += u64::from(rows);
            }
            policy.issued(&op, due);
        }
        for (r, &c) in covered.iter().enumerate() {
            prop_assert!(
                c >= u64::from(timing.rows_per_bank),
                "rank {r} covered {c} rows"
            );
        }
    }

    /// The sequential schedule's forecast agrees with the issued stream:
    /// a command issued at time t always targets `bank_at(t)`'s slice.
    #[test]
    fn sequential_forecast_consistent(scale_exp in 0u32..8) {
        let timing = RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 1 << scale_exp);
        let g = Geometry::default();
        let mut policy = build_policy(RefreshPolicyKind::PerBankSequential, &timing, &g);
        let snap = QueueSnapshot::default();
        let slice = timing.slice_len(16);
        for _ in 0..2048 {
            let due = policy.next_due().unwrap();
            let op = policy.select(&snap);
            let bank = op.bank().expect("per-bank");
            let slice_idx = (due / slice) % 16;
            prop_assert_eq!(
                bank,
                BankId::from_flat(slice_idx as u32, 8),
                "command at {} in slice {}",
                due,
                slice_idx
            );
            policy.issued(&op, due);
        }
    }

    /// BankId flat/from_flat are inverse for arbitrary rank widths.
    #[test]
    fn bank_id_flat_inverse(rank in 0u8..8, bank in 0u8..8, bexp in 1u32..4) {
        let banks_per_rank = 1u32 << bexp;
        let id = BankId::new(rank % 4, (u32::from(bank) % banks_per_rank) as u8);
        prop_assert_eq!(BankId::from_flat(id.flat(banks_per_rank), banks_per_rank), id);
    }
}

//! Geometry-validation and address-mapping edge cases.
//!
//! The mapping-alignment pitfall this guards against: a backend that
//! silently reconciles a mismatched geometry (or a mapping that drops
//! or aliases bits at field boundaries) produces plausible-looking but
//! wrong bank/row streams, and every downstream statistic inherits the
//! error. Degenerate shapes must be rejected loudly at validation, and
//! encode/decode must round-trip exactly at every field boundary.

use refsim_dram::backend::{build_backend, BackendKind};
use refsim_dram::controller::ControllerConfig;
use refsim_dram::geometry::{BankId, Geometry, Location};
use refsim_dram::mapping::{AddressMapping, MappingScheme};
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::shadow::ShadowConfig;
use refsim_dram::timing::{Density, RefreshTiming, Retention, TimingParams};

const SCHEMES: [MappingScheme; 4] = [
    MappingScheme::RowRankBankColumn,
    MappingScheme::RowBankRankColumn,
    MappingScheme::BankRankRowColumn,
    MappingScheme::PermutedBank,
];

// ---- validation ----------------------------------------------------------

#[test]
fn zero_counts_are_rejected_with_the_field_name() {
    let cases: [(&str, Geometry); 6] = [
        (
            "channels",
            Geometry {
                channels: 0,
                ..Geometry::default()
            },
        ),
        (
            "ranks_per_channel",
            Geometry {
                ranks_per_channel: 0,
                ..Geometry::default()
            },
        ),
        (
            "banks_per_rank",
            Geometry {
                banks_per_rank: 0,
                ..Geometry::default()
            },
        ),
        (
            "rows_per_bank",
            Geometry {
                rows_per_bank: 0,
                ..Geometry::default()
            },
        ),
        (
            "row_bytes",
            Geometry {
                row_bytes: 0,
                ..Geometry::default()
            },
        ),
        (
            "line_bytes",
            Geometry {
                line_bytes: 0,
                ..Geometry::default()
            },
        ),
    ];
    for (field, g) in cases {
        let err = g.validate().expect_err(field);
        assert!(
            err.contains(field) && err.contains("non-zero"),
            "{field}: {err}"
        );
    }
}

#[test]
fn non_pow2_counts_are_rejected_except_rows() {
    for (field, g) in [
        (
            "channels",
            Geometry {
                channels: 3,
                ..Geometry::default()
            },
        ),
        (
            "ranks_per_channel",
            Geometry {
                ranks_per_channel: 6,
                ..Geometry::default()
            },
        ),
        (
            "banks_per_rank",
            Geometry {
                banks_per_rank: 12,
                ..Geometry::default()
            },
        ),
        (
            "row_bytes",
            Geometry {
                row_bytes: 3000,
                ..Geometry::default()
            },
        ),
        (
            "line_bytes",
            Geometry {
                line_bytes: 48,
                ..Geometry::default()
            },
        ),
    ] {
        let err = g.validate().expect_err(field);
        assert!(
            err.contains(field) && err.contains("power of two"),
            "{field}: {err}"
        );
    }
    // Row counts are the deliberate exception: 24 Gb devices have
    // 384 Ki rows and the row field is sized by next_power_of_two.
    let g = Geometry::ddr3_2rank_8bank(384 * 1024);
    assert!(g.validate().is_ok());
    assert_eq!(g.row_bits(), 19);
    // Even a single-row bank validates (degenerate but well-formed).
    let g = Geometry::ddr3_2rank_8bank(1);
    assert!(g.validate().is_ok());
    assert_eq!(g.row_bits(), 0);
}

#[test]
fn line_wider_than_row_is_rejected() {
    let g = Geometry {
        line_bytes: 8192,
        row_bytes: 4096,
        ..Geometry::default()
    };
    assert!(g.validate().unwrap_err().contains("line_bytes"));
}

// ---- mapping round-trips at field boundaries -----------------------------

/// Every boundary location of the geometry: first/last row, first/last
/// column, first/last bank and rank — the spots where a mapping that
/// mis-sizes a field aliases two different locations onto one address.
fn boundary_locations(g: &Geometry) -> Vec<Location> {
    let mut out = Vec::new();
    let mut rows: Vec<u32> = [0, 1, g.rows_per_bank - 1]
        .into_iter()
        .filter(|&r| r < g.rows_per_bank)
        .collect();
    rows.dedup();
    let mut channels = vec![0, g.channels - 1];
    channels.dedup();
    for channel in channels {
        for rank in [0, g.ranks_per_channel - 1] {
            for bank in [0, g.banks_per_rank - 1] {
                for &row in &rows {
                    for col in [0, g.lines_per_row() - 1] {
                        out.push(Location {
                            channel: channel as u8,
                            rank: rank as u8,
                            bank: bank as u8,
                            row,
                            col,
                        });
                    }
                }
            }
        }
    }
    out
}

/// A multi-channel variant of the DDR3 preset for channel-interleaving
/// edge tests.
fn multi_channel(channels: u32, rows_per_bank: u32) -> Geometry {
    Geometry {
        channels,
        ..Geometry::ddr3_2rank_8bank(rows_per_bank)
    }
}

/// Multi-channel geometries must round-trip at every boundary location
/// of every channel — first/last channel × rank × bank × row × column —
/// under every scheme, for both 2- and 4-channel machines (the shapes
/// the sharded engine runs). Includes the non-pow2-rows wrap geometry.
#[test]
fn multi_channel_boundaries_round_trip_and_never_alias() {
    for channels in [2u32, 4] {
        for rows in [384 * 1024, 512 * 1024, 1] {
            let g = multi_channel(channels, rows);
            assert!(
                g.validate().is_ok(),
                "{channels}-channel preset must be valid"
            );
            for scheme in SCHEMES {
                let m = AddressMapping::new(g, scheme);
                let locs = boundary_locations(&g);
                for loc in &locs {
                    let addr = m.encode(*loc);
                    assert_eq!(
                        m.decode(addr),
                        *loc,
                        "{scheme:?} ch={channels} rows={rows} did not round-trip"
                    );
                    assert_eq!(addr % u64::from(g.line_bytes), 0);
                }
                for (i, a) in locs.iter().enumerate() {
                    for b in &locs[i + 1..] {
                        assert_ne!(
                            m.encode(*a),
                            m.encode(*b),
                            "{scheme:?} ch={channels} aliased {a:?} and {b:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn mapping_round_trips_at_boundary_addresses() {
    for rows in [384 * 1024, 512 * 1024, 1] {
        let g = Geometry::ddr3_2rank_8bank(rows);
        for scheme in SCHEMES {
            let m = AddressMapping::new(g, scheme);
            for loc in boundary_locations(&g) {
                let addr = m.encode(loc);
                let back = m.decode(addr);
                assert_eq!(
                    back, loc,
                    "{scheme:?} rows={rows} did not round-trip at {addr:#x}"
                );
                // Line-aligned: the encoded address must sit on a line
                // boundary, or adjacent lines would alias.
                assert_eq!(
                    addr % u64::from(g.line_bytes),
                    0,
                    "{scheme:?} produced an unaligned address"
                );
            }
        }
    }
}

#[test]
fn distinct_boundary_locations_never_alias() {
    let g = Geometry::default();
    for scheme in SCHEMES {
        let m = AddressMapping::new(g, scheme);
        let locs = boundary_locations(&g);
        for (i, a) in locs.iter().enumerate() {
            for b in &locs[i + 1..] {
                assert_ne!(
                    m.encode(*a),
                    m.encode(*b),
                    "{scheme:?} aliased {a:?} and {b:?}"
                );
            }
        }
    }
}

#[test]
fn byte_offsets_within_a_line_decode_identically() {
    let g = Geometry::default();
    let m = AddressMapping::new(g, MappingScheme::RowBankRankColumn);
    let loc = Location {
        channel: 0,
        rank: 1,
        bank: 7,
        row: g.rows_per_bank - 1,
        col: 63,
    };
    let base = m.encode(loc);
    for off in [0u64, 1, 31, 63] {
        assert_eq!(m.decode(base + off), loc, "offset {off} changed the line");
    }
}

#[test]
fn non_pow2_row_counts_wrap_instead_of_overflowing() {
    // 384 Ki rows in a 19-bit (512 Ki) field: the top quarter of the
    // row field is out of range and must wrap modulo rows_per_bank, not
    // panic or leak into neighbouring fields.
    let g = Geometry::ddr3_2rank_8bank(384 * 1024);
    let m = AddressMapping::new(g, MappingScheme::RowBankRankColumn);
    let top = m.encode(Location {
        channel: 0,
        rank: 1,
        bank: 7,
        row: g.rows_per_bank - 1,
        col: 63,
    });
    // One line past the last in-range address of the channel.
    let beyond = top + u64::from(g.line_bytes);
    let loc = m.decode(beyond);
    assert!(loc.row < g.rows_per_bank, "row {} out of range", loc.row);
    assert!(u32::from(loc.bank) < g.banks_per_rank);
    assert!(u32::from(loc.rank) < g.ranks_per_channel);
}

// ---- geometry handshake (the SNIPPETS lesson) ----------------------------

#[test]
fn both_backends_reject_a_mismatched_host_geometry() {
    let g = Geometry::default();
    let timing = TimingParams::ddr3_1600();
    let rt = RefreshTiming::new(Density::Gb32, Retention::Ms64);
    for kind in [BackendKind::Primary, BackendKind::Shadow] {
        let backend = build_backend(
            kind,
            AddressMapping::new(g, MappingScheme::RowBankRankColumn),
            timing,
            rt,
            RefreshPolicyKind::AllBank,
            ControllerConfig::default(),
            ShadowConfig::default(),
        );
        let desc = backend.descriptor();
        assert_eq!(desc.kind, kind);
        assert!(desc.validate_geometry(&g).is_ok());
        let other = Geometry {
            rows_per_bank: g.rows_per_bank / 2,
            ..g
        };
        let err = desc.validate_geometry(&other).expect_err("must mismatch");
        assert!(err.contains("geometry handshake failed"), "{kind:?}: {err}");
    }
}

#[test]
fn flat_bank_ids_round_trip_at_the_edges() {
    let g = Geometry::default();
    for rank in [0, g.ranks_per_channel - 1] {
        for bank in [0, g.banks_per_rank - 1] {
            let id = BankId::new(rank as u8, bank as u8);
            let flat = id.flat(g.banks_per_rank);
            assert_eq!(BankId::from_flat(flat, g.banks_per_rank), id);
            assert!(flat < g.banks_per_channel());
        }
    }
}

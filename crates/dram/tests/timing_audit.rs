//! JEDEC timing auditor: drives the memory controller with randomized
//! request streams under every refresh policy, records the full command
//! trace, and re-verifies every inter-command timing constraint
//! independently of the controller's own bookkeeping.

use proptest::prelude::*;

use refsim_dram::controller::{ControllerConfig, MemoryController, TraceCmd, TraceEntry};
use refsim_dram::geometry::Geometry;
use refsim_dram::mapping::{AddressMapping, MappingScheme};
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::request::{MemRequest, ReqId, ReqKind};
use refsim_dram::time::Ps;
use refsim_dram::timing::{Density, FgrMode, RefreshTiming, Retention, TimingParams};

/// Replays a trace and asserts every JEDEC constraint.
fn audit(trace: &[TraceEntry], t: &TimingParams, trfc_ab: Ps, trfc_pb: Ps) {
    const NB: usize = 8; // banks per rank
    const NR: usize = 2;
    #[derive(Clone, Copy, Default)]
    struct BankAudit {
        last_act: Option<Ps>,
        last_pre: Option<Ps>,
        last_cas_rd: Option<Ps>,
        last_wr_data_end: Option<Ps>,
        last_ref_end: Option<Ps>,
        open: bool,
    }
    let mut banks = [[BankAudit::default(); NB]; NR];
    let mut rank_acts: Vec<Vec<Ps>> = vec![Vec::new(); NR];
    let mut rank_ref_end = [Ps::ZERO; NR];
    let mut last_cmd: Option<Ps> = None;
    let mut data_busy: Vec<(Ps, Ps)> = Vec::new(); // (start, end) of data bursts

    for e in trace {
        // Command bus: at most one command per tCK, aligned.
        if let Some(prev) = last_cmd {
            assert!(
                e.at >= prev + t.tck || e.at == prev,
                "commands at {prev} and {} closer than tCK",
                e.at
            );
        }
        assert_eq!(
            e.at.as_ps() % t.tck.as_ps(),
            0,
            "command off the clock grid"
        );
        last_cmd = Some(e.at);

        let r = e.rank as usize;
        match e.cmd {
            TraceCmd::Act { .. } => {
                let b = &mut banks[r][e.bank as usize];
                assert!(!b.open, "ACT to open bank at {}", e.at);
                if let Some(prev) = b.last_act {
                    assert!(e.at - prev >= t.trc, "tRC violation at {}", e.at);
                }
                if let Some(pre) = b.last_pre {
                    assert!(e.at - pre >= t.trp, "tRP violation at {}", e.at);
                }
                if let Some(refe) = b.last_ref_end {
                    assert!(e.at >= refe, "ACT during per-bank refresh at {}", e.at);
                }
                assert!(
                    e.at >= rank_ref_end[r],
                    "ACT during rank refresh at {}",
                    e.at
                );
                // tRRD: previous ACT in the rank.
                if let Some(&prev) = rank_acts[r].last() {
                    assert!(e.at - prev >= t.trrd, "tRRD violation at {}", e.at);
                }
                // tFAW: 4-activate window.
                let n = rank_acts[r].len();
                if n >= 4 {
                    let fourth_back = rank_acts[r][n - 4];
                    assert!(
                        e.at - fourth_back >= t.tfaw,
                        "tFAW violation at {} (4th-back ACT {fourth_back})",
                        e.at
                    );
                }
                rank_acts[r].push(e.at);
                b.last_act = Some(e.at);
                b.open = true;
            }
            TraceCmd::Rd | TraceCmd::Wr => {
                let b = &mut banks[r][e.bank as usize];
                assert!(b.open, "CAS to closed bank at {}", e.at);
                let act = b.last_act.expect("open implies activated");
                assert!(e.at - act >= t.trcd, "tRCD violation at {}", e.at);
                let (lat, is_rd) = match e.cmd {
                    TraceCmd::Rd => (t.tcl, true),
                    _ => (t.tcwl, false),
                };
                let (start, end) = (e.at + lat, e.at + lat + t.tburst);
                // Data-bus: bursts never overlap.
                for &(s0, e0) in &data_busy {
                    assert!(
                        end <= s0 || start >= e0,
                        "data-bus overlap at {} ([{start},{end}) vs [{s0},{e0}))",
                        e.at
                    );
                }
                data_busy.push((start, end));
                if is_rd {
                    b.last_cas_rd = Some(e.at);
                    // tWTR: read after a write's data end, same rank.
                    for bb in &banks[r] {
                        if let Some(wend) = bb.last_wr_data_end {
                            assert!(
                                e.at >= wend + t.twtr || e.at <= wend,
                                "tWTR violation at {}",
                                e.at
                            );
                        }
                    }
                } else {
                    banks[r][e.bank as usize].last_wr_data_end = Some(end);
                }
            }
            TraceCmd::Pre => {
                let b = &mut banks[r][e.bank as usize];
                assert!(b.open, "PRE to closed bank at {}", e.at);
                let act = b.last_act.expect("open implies activated");
                assert!(e.at - act >= t.tras, "tRAS violation at {}", e.at);
                if let Some(rd) = b.last_cas_rd {
                    assert!(e.at - rd >= t.trtp, "tRTP violation at {}", e.at);
                }
                if let Some(wend) = b.last_wr_data_end {
                    if wend > e.at {
                        panic!("PRE before write data completed at {}", e.at);
                    }
                    assert!(e.at - wend >= t.twr, "tWR violation at {}", e.at);
                }
                b.last_pre = Some(e.at);
                b.open = false;
            }
            TraceCmd::RefAb => {
                for (bi, b) in banks[r].iter().enumerate() {
                    assert!(!b.open, "REFab with bank {bi} open at {}", e.at);
                }
                rank_ref_end[r] = e.at + trfc_ab;
                for b in banks[r].iter_mut() {
                    b.last_ref_end = Some(e.at + trfc_ab);
                }
            }
            TraceCmd::RefPb => {
                let b = &mut banks[r][e.bank as usize];
                assert!(!b.open, "REFpb to open bank at {}", e.at);
                if let Some(prev) = b.last_ref_end {
                    assert!(e.at >= prev, "overlapping REFpb at {}", e.at);
                }
                if let Some(pre) = b.last_pre {
                    assert!(e.at - pre >= t.trp, "REF before tRP at {}", e.at);
                }
                b.last_ref_end = Some(e.at + trfc_pb);
            }
        }
    }
}

fn run_policy(
    policy: RefreshPolicyKind,
    retention: Retention,
    stream: &[(u64, bool, u64)], // (addr-hash, is_write, gap_ns)
) -> (Vec<TraceEntry>, TimingParams, Ps, Ps) {
    let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
    let timing = RefreshTiming::scaled(Density::Gb32, retention, 512);
    // The audit must use the *effective* tRFC of the policy's mode: FGR
    // modes shrink it per §6.3, and Adaptive Refresh may run in 4x (use
    // the shorter duration — a conservative lower bound for the
    // exclusion windows the audit enforces).
    let trfc_ab = match policy {
        RefreshPolicyKind::Fgr(m) => m.scale_trfc(timing.trfc_ab),
        RefreshPolicyKind::Adaptive => FgrMode::X4.scale_trfc(timing.trfc_ab),
        _ => timing.trfc_ab,
    };
    let trfc_pb = timing.trfc_pb;
    let tp = TimingParams::ddr3_1600();
    let mut mc = MemoryController::new(mapping, tp, timing, policy, ControllerConfig::default());
    mc.enable_trace();
    let mut t = Ps::ZERO;
    for (i, &(h, w, gap)) in stream.iter().enumerate() {
        t += Ps::from_ns(gap % 300);
        mc.advance_to(t);
        let paddr = h.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((32u64 << 30) - 1) & !0x3f;
        let _ = mc.enqueue(MemRequest {
            id: ReqId(i as u64),
            kind: if w { ReqKind::Write } else { ReqKind::Read },
            paddr,
            loc: mc.mapping().decode(paddr),
            arrival: t,
            core: 0,
            task: 0,
        });
    }
    mc.advance_to(t + Ps::from_us(50));
    (mc.take_trace(), tp, trfc_ab, trfc_pb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every command the controller issues satisfies the full JEDEC
    /// constraint set, for every refresh policy and both retentions.
    #[test]
    fn all_policies_issue_legal_command_streams(
        stream in prop::collection::vec((any::<u64>(), any::<bool>(), 0u64..300), 50..400),
        policy in prop_oneof![
            Just(RefreshPolicyKind::NoRefresh),
            Just(RefreshPolicyKind::AllBank),
            Just(RefreshPolicyKind::PerBankRoundRobin),
            Just(RefreshPolicyKind::PerBankSequential),
            Just(RefreshPolicyKind::OooPerBank),
            Just(RefreshPolicyKind::Fgr(FgrMode::X4)),
            Just(RefreshPolicyKind::Adaptive),
            Just(RefreshPolicyKind::Elastic),
        ],
        retention in prop_oneof![Just(Retention::Ms64), Just(Retention::Ms32)],
    ) {
        let (trace, tp, trfc_ab, trfc_pb) = run_policy(policy, retention, &stream);
        prop_assert!(!trace.is_empty());
        audit(&trace, &tp, trfc_ab, trfc_pb);
    }
}

#[test]
fn hot_bank_conflict_stream_is_legal() {
    // Deterministic worst case: hammer two rows of one bank (constant
    // PRE/ACT ping-pong) under the sequential schedule.
    let mapping = AddressMapping::new(Geometry::default(), MappingScheme::RowRankBankColumn);
    let timing = RefreshTiming::scaled(Density::Gb32, Retention::Ms64, 512);
    let (trfc_ab, trfc_pb) = (timing.trfc_ab, timing.trfc_pb);
    let tp = TimingParams::ddr3_1600();
    let mut mc = MemoryController::new(
        mapping,
        tp,
        timing,
        RefreshPolicyKind::PerBankSequential,
        ControllerConfig::default(),
    );
    mc.enable_trace();
    let row_stride = 64 * 1024u64; // same bank, next row
    let mut t = Ps::ZERO;
    for i in 0..2000u64 {
        t += Ps::from_ns(20);
        mc.advance_to(t);
        let paddr = (i % 2) * row_stride;
        let _ = mc.enqueue(MemRequest {
            id: ReqId(i),
            kind: ReqKind::Read,
            paddr,
            loc: mc.mapping().decode(paddr),
            arrival: t,
            core: 0,
            task: 0,
        });
    }
    mc.advance_to(t + Ps::from_us(20));
    let trace = mc.take_trace();
    assert!(trace.len() > 1000, "expected a dense command stream");
    audit(&trace, &tp, trfc_ab, trfc_pb);
    // The stream really was conflict-heavy.
    assert!(mc.stats().row_conflicts > 500);
}

//! Regression coverage for the forward-progress watchdog budget at
//! extreme configurations: the budget must stay a generous upper bound
//! on the real boundary count (no spurious `NoProgress` trips) without
//! overflowing, even when the scheduling quantum is smaller than the
//! simulation step or the tREFW scale makes spans huge.

use proptest::prelude::*;

use refsim_core::prelude::*;
use refsim_core::system::watchdog_budget;
use refsim_dram::time::Ps;
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

/// The step granularity `System::try_run_until` paces itself by (a
/// constant in system.rs; mirrored here to pin the contract).
const STEP_PS: u64 = 250_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The budget upper-bounds both boundary families with slack, never
    /// overflows, and is monotone in the span.
    #[test]
    fn budget_bounds_and_never_overflows(
        span in 0u64..=u64::MAX,
        step in prop_oneof![Just(0u64), Just(1u64), Just(STEP_PS), any::<u64>()],
        slice in prop_oneof![Just(0u64), Just(1u64), Just(100_000u64), any::<u64>()],
        cores in 0u64..=1024,
    ) {
        let b = watchdog_budget(span, step, slice, cores);
        // Enough for every step boundary…
        prop_assert!(b >= span / step.max(1));
        // …and for every quantum boundary on every core (saturating,
        // as the budget itself saturates).
        let quanta = (span / slice.max(1))
            .saturating_add(1)
            .saturating_mul(cores.max(1));
        prop_assert!(b >= quanta.saturating_mul(2).min(u64::MAX - 64) || b == u64::MAX);
        // Baseline slack even for empty spans.
        prop_assert!(b >= 64);
        // Monotone in span: a longer run never gets a smaller budget.
        if span > 0 {
            prop_assert!(b >= watchdog_budget(span - 1, step, slice, cores));
        }
    }

    /// Degenerate divisors (zero step, zero slice, zero cores) are
    /// clamped rather than panicking with a division by zero.
    #[test]
    fn degenerate_inputs_are_clamped(span in 0u64..=u64::MAX) {
        let b = watchdog_budget(span, 0, 0, 0);
        prop_assert!(b >= span.saturating_mul(2).min(u64::MAX / 2));
    }
}

#[test]
fn saturation_at_the_extremes() {
    // tREFW-scale span with a 1 ps slice across many cores would
    // overflow a naive `(span/slice + 1) * cores * 2 + 64`; the
    // saturating version pins to u64::MAX instead of wrapping into a
    // tiny budget that would trip the watchdog on a healthy run.
    assert_eq!(watchdog_budget(u64::MAX, 1, 1, 1024), u64::MAX);
    // span == step == slice: 2 step boundaries + 2 quantum boundaries,
    // doubled, plus the 64-step slack.
    assert_eq!(watchdog_budget(u64::MAX, u64::MAX, u64::MAX, 1), 72);
}

fn tiny_mix() -> WorkloadMix {
    WorkloadMix::from_groups(
        "tiny",
        &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
        "M + L",
    )
}

/// A quantum smaller than the 250 ns simulation step forces the step
/// loop to pace by quantum boundaries — the configuration most likely
/// to starve an under-budgeted watchdog. The run must complete, not
/// trip `NoProgress`.
#[test]
fn sub_step_timeslice_does_not_trip_the_watchdog() {
    let mut cfg = SystemConfig::table1().with_time_scale(2048);
    cfg.timeslice = Some(Ps::from_ns(100)); // < STEP (250 ns)
    cfg.warmup = Ps::ZERO;
    cfg.measure = Ps::from_us(40);
    cfg.validate().expect("valid config");
    let mut sys = System::try_new(cfg, &tiny_mix()).expect("build");
    sys.begin_measure();
    sys.try_run_until(Ps::from_us(40))
        .expect("sub-step quantum must not starve the watchdog");
    let m = sys.collect();
    assert!(
        m.sched.picks > 0,
        "the tiny quantum must actually drive scheduling"
    );
}

/// A tiny tREFW scale (huge divisor → very short windows and slices —
/// 4096 is near the ceiling where tREFW would drop below tREFIab) must
/// also run to completion under the derived budget.
#[test]
fn tiny_trefw_scale_completes() {
    let cfg = SystemConfig::table1().with_time_scale(4096);
    cfg.validate().expect("valid config");
    assert!(cfg.effective_timeslice() > Ps::ZERO);
    let mut sys = System::try_new(cfg.clone(), &tiny_mix()).expect("build");
    sys.try_run_until(cfg.warmup + cfg.measure)
        .expect("scaled-down run must complete within budget");
}

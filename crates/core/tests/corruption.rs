//! Corruption corpus over every on-disk container format.
//!
//! The durability contract (DESIGN.md) says damage is *detected at
//! read time* with a typed error or a classified miss — never a panic,
//! never silent acceptance. This suite proves it mechanically:
//!
//! * every single-byte flip and every truncation of a small
//!   [`Checkpoint`] image is rejected with a typed [`CheckpointError`];
//! * the same holds for the framing and a strided payload sample of a
//!   real multi-megabyte system image (payload rejection is
//!   checksum-driven and offset-symmetric, so the distinct code paths
//!   all live in the framing);
//! * every single-byte flip and truncation of a golden [`CacheEntry`]
//!   reads as `None` (a miss);
//! * proptest corpora of random substitutions, splices, and arbitrary
//!   byte soup never panic either decoder and never parse to anything
//!   but the golden value;
//! * a corrupted entry file on disk is classified
//!   [`CacheLookup::Corrupt`] and quarantined under a
//!   reproducer-grade name.

use proptest::prelude::*;
use refsim_core::checkpoint::{config_fingerprint, Checkpoint, CheckpointError, SavedSystem};
use refsim_core::config::SystemConfig;
use refsim_core::experiment::{run_many_checked, Job};
use refsim_core::runcache::{job_fingerprint, CacheEntry, CacheLookup, RunCache};
use refsim_core::system::System;
use refsim_dram::time::Ps;
use refsim_os::bank_alloc::SavedBankAlloc;
use refsim_os::buddy::SavedBuddy;
use refsim_os::sched::{SavedScheduler, SchedStats};
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

fn tiny_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::table1().with_time_scale(512).with_seed(seed);
    cfg.warmup = cfg.trefw() / 8;
    cfg.measure = cfg.trefw() / 4;
    cfg
}

fn tiny_mix() -> WorkloadMix {
    WorkloadMix::from_groups(
        "corpus",
        &[(Benchmark::Stream, 1), (Benchmark::Povray, 1)],
        "M",
    )
}

/// A structurally valid checkpoint whose payload is small enough that
/// exhaustively re-parsing one variant per byte stays cheap (a real
/// system image runs to megabytes; see `real_image_*` below for that).
fn small_checkpoint() -> Checkpoint {
    Checkpoint {
        fingerprint: 0x5EED_F00D_0BAD_CAFE,
        state: SavedSystem {
            clock: Ps::from_us(42),
            next_req: 7,
            measure_start: Ps::ZERO,
            mcs: Vec::new(),
            cores: Vec::new(),
            tasks: Vec::new(),
            sims: Vec::new(),
            sched: SavedScheduler {
                queues: Vec::new(),
                stats: SchedStats::default(),
            },
            alloc: SavedBankAlloc {
                buddy: SavedBuddy {
                    frames: 0,
                    free_frames: 0,
                    free_lists: Vec::new(),
                    alloc_map: Vec::new(),
                },
                per_bank_free: Vec::new(),
                stats: Default::default(),
            },
            inflight: Vec::new(),
            base: Vec::new(),
            sched_base_stats: SchedStats::default(),
        },
    }
}

/// A golden checkpoint image captured from a real (freshly built)
/// system, so the payload exercises every nested codec. Encoded once:
/// the image runs to megabytes and several tests re-read it.
fn real_image() -> &'static [u8] {
    static GOLDEN: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    GOLDEN.get_or_init(|| {
        let cfg = tiny_cfg(0xC0FFEE);
        let mix = tiny_mix();
        System::new(cfg, &mix).checkpoint(&mix).to_bytes()
    })
}

/// A golden cache entry wrapping real run metrics, built once.
fn golden_entry() -> &'static CacheEntry {
    static GOLDEN: std::sync::OnceLock<CacheEntry> = std::sync::OnceLock::new();
    GOLDEN.get_or_init(|| {
        let job = Job {
            cfg: tiny_cfg(0xBEEF),
            mix: tiny_mix(),
        };
        let metrics = run_many_checked(std::slice::from_ref(&job), 1)
            .pop()
            .expect("one result")
            .expect("tiny run succeeds");
        CacheEntry {
            fingerprint: job_fingerprint(&job.cfg, &job.mix),
            replay_hash: 0x5151_5151_dead_beef,
            wall_nanos: 123_456_789,
            metrics,
        }
    })
}

// ---- checkpoint container (exhaustive on a small image) ------------------

#[test]
fn checkpoint_rejects_every_single_byte_flip() {
    let bytes = small_checkpoint().to_bytes();
    assert!(
        Checkpoint::from_bytes(&bytes).is_ok(),
        "golden image must round-trip before we vandalize it"
    );
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << bit;
            match Checkpoint::from_bytes(&bad) {
                Err(_) => {}
                Ok(_) => panic!(
                    "flip of bit {bit} at byte {i}/{} was silently accepted",
                    bytes.len()
                ),
            }
        }
    }
}

#[test]
fn checkpoint_rejects_every_truncation() {
    let bytes = small_checkpoint().to_bytes();
    for n in 0..bytes.len() {
        assert!(
            Checkpoint::from_bytes(&bytes[..n]).is_err(),
            "truncation to {n}/{} bytes was accepted",
            bytes.len()
        );
    }
}

// ---- checkpoint container (real multi-megabyte image) --------------------

#[test]
fn real_image_round_trips_and_fingerprint_gate_is_typed() {
    let cp = Checkpoint::from_bytes(real_image()).expect("real image parses");
    let cfg = tiny_cfg(0xC0FFEE);
    let mix = tiny_mix();
    cp.check_fingerprint(config_fingerprint(&cfg, &mix))
        .expect("the captured fingerprint matches its own (cfg, mix)");
    let err = cp
        .check_fingerprint(cp.fingerprint ^ 1)
        .expect_err("wrong fingerprint must be rejected");
    assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }));
}

#[test]
fn real_image_rejects_framing_and_sampled_payload_flips() {
    let bytes = real_image();
    // Every framing byte (magic, version, fingerprint, and length live
    // in the first 24 bytes, the checksum trailer in the last 8), plus
    // a payload stride: payload rejection is checksum-driven, so
    // offsets are interchangeable, and each probe re-hashes the whole
    // multi-megabyte image — the sample is kept small on purpose.
    let mut offsets: Vec<usize> = (0..24).chain(bytes.len() - 8..bytes.len()).collect();
    offsets.extend((24..bytes.len() - 8).step_by(bytes.len() / 16));
    for i in offsets {
        let mut bad = bytes.to_vec();
        bad[i] ^= 1 << (i % 8);
        assert!(
            Checkpoint::from_bytes(&bad).is_err(),
            "bit flip at byte {i}/{} of the real image was accepted",
            bytes.len()
        );
    }
    for n in [
        0,
        3,
        4,
        7,
        8,
        15,
        16,
        bytes.len() / 2,
        bytes.len() - 9,
        bytes.len() - 1,
    ] {
        assert!(
            Checkpoint::from_bytes(&bytes[..n]).is_err(),
            "truncation to {n}/{} bytes of the real image was accepted",
            bytes.len()
        );
    }
}

// ---- cache entry container -----------------------------------------------

#[test]
fn cache_entry_rejects_every_single_byte_flip_and_truncation() {
    let golden = golden_entry();
    let bytes = golden.to_bytes();
    assert_eq!(
        CacheEntry::from_bytes(&bytes).as_ref(),
        Some(golden),
        "golden entry must round-trip before we vandalize it"
    );
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << bit;
            assert!(
                CacheEntry::from_bytes(&bad).is_none(),
                "flip of bit {bit} at byte {i}/{} must read as a miss",
                bytes.len()
            );
        }
    }
    for n in 0..bytes.len() {
        assert!(
            CacheEntry::from_bytes(&bytes[..n]).is_none(),
            "truncation to {n}/{} bytes must read as a miss",
            bytes.len()
        );
    }
}

#[test]
fn corrupt_entry_on_disk_is_classified_and_quarantined() {
    let dir = std::env::temp_dir().join(format!("refsim-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = RunCache::new(&dir);
    let golden = golden_entry();
    let fp = golden.fingerprint;
    cache.store(golden).expect("store golden entry");
    match cache.lookup(fp) {
        CacheLookup::Hit(e, _) => assert_eq!(&*e, golden),
        other => panic!("healthy entry must hit, got {other:?}"),
    }

    // Flip one byte of the file in place: a silent-bitrot event.
    let path = dir.join(format!("{fp:016x}.run"));
    let mut bytes = std::fs::read(&path).expect("read entry file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("plant bitrot");

    assert!(
        matches!(cache.lookup(fp), CacheLookup::Corrupt),
        "bitrot must be classified as a corrupt miss, not absent or a hit"
    );
    assert!(
        !path.exists() && path.with_extension("run.quarantine").exists(),
        "the damaged entry must be quarantined under a reproducer-grade name"
    );
    // The quarantine is sticky: the slot now reads as a plain absence.
    assert!(matches!(cache.lookup(fp), CacheLookup::Absent));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- randomized vandalism ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any substituted byte anywhere in the checkpoint image is a typed
    /// error — including inside the checksum trailer itself.
    #[test]
    fn checkpoint_random_byte_substitution_is_rejected(
        pos in 0usize..10_000,
        val in 0u8..=255,
    ) {
        let bytes = small_checkpoint().to_bytes();
        let i = pos % bytes.len();
        let mut bad = bytes.clone();
        bad[i] = val;
        if bad == bytes {
            prop_assert!(Checkpoint::from_bytes(&bad).is_ok());
        } else {
            prop_assert!(Checkpoint::from_bytes(&bad).is_err());
        }
    }

    /// Arbitrary byte soup must never panic either decoder, and must
    /// never parse: forging a valid image requires matching the magic,
    /// version, framing, AND the FNV-64 trailer by chance.
    #[test]
    fn arbitrary_bytes_never_panic_or_parse(soup in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(Checkpoint::from_bytes(&soup).is_err());
        prop_assert!(CacheEntry::from_bytes(&soup).is_none());
    }

    /// Multi-byte vandalism: splice a random run of random bytes into
    /// the middle of a golden cache entry. Either the result is
    /// byte-identical to the golden image (splice happened to match) or
    /// it must read as a miss.
    #[test]
    fn cache_entry_random_splice_reads_as_miss(
        at in 0usize..10_000,
        splice in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let golden = golden_entry();
        let bytes = golden.to_bytes();
        let i = at % bytes.len();
        let end = (i + splice.len()).min(bytes.len());
        let mut bad = bytes.clone();
        bad[i..end].copy_from_slice(&splice[..end - i]);
        match CacheEntry::from_bytes(&bad) {
            None => prop_assert_ne!(bad, bytes, "golden bytes must still parse"),
            Some(e) => {
                prop_assert_eq!(&bad, &bytes, "a parse implies the splice was a no-op");
                prop_assert_eq!(&e, golden);
            }
        }
    }
}

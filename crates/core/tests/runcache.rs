//! End-to-end guarantees of the content-addressed run cache and the
//! in-flight deduplication layer in the resilient sweep runner:
//!
//! * duplicated jobs execute once and fan out bit-identically, in
//!   order, including error outcomes;
//! * the canonical fingerprint is stable across releases (golden hash)
//!   and moves whenever any semantic knob moves;
//! * audited / fault-injected / debug-knob runs never touch the
//!   persistent cache;
//! * a warm cache serves every cell, the sampled verifier re-runs
//!   exactly one, and a poisoned entry loses to the fresh run.

use std::path::PathBuf;

use proptest::prelude::*;
use refsim_core::config::{EngineKind, SystemConfig};
use refsim_core::experiment::{run_many_checked, Job};
use refsim_core::faults::FaultPlan;
use refsim_core::runcache::{job_fingerprint, CacheEntry, RunCache};
use refsim_core::sanitize::AuditLevel;
use refsim_core::sweep::{run_many_resilient, SweepOptions};
use refsim_dram::time::Ps;
use refsim_os::partition::PartitionPlan;
use refsim_os::sched::SchedPolicy;
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

fn tiny_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::table1().with_time_scale(512).with_seed(seed);
    cfg.warmup = cfg.trefw() / 8;
    cfg.measure = cfg.trefw() / 2;
    cfg
}

fn tiny_job(seed: u64) -> Job {
    Job {
        cfg: tiny_cfg(seed),
        mix: WorkloadMix::from_groups(
            "tiny",
            &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
            "M + L",
        ),
    }
}

/// A job whose run deterministically fails (`EmptyWorkload`).
fn broken_job(seed: u64) -> Job {
    Job {
        cfg: tiny_cfg(seed),
        mix: WorkloadMix::from_groups("empty", &[], "-"),
    }
}

fn tmp_cache(tag: &str) -> RunCache {
    let d = std::env::temp_dir().join(format!("refsim-rc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    RunCache::new(d)
}

fn cache_files(cache: &RunCache) -> Vec<PathBuf> {
    match std::fs::read_dir(cache.dir()) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => Vec::new(),
    }
}

// ---- in-flight dedup -----------------------------------------------------

#[test]
fn duplicated_jobs_execute_once_and_fan_out_in_order() {
    let a = tiny_job(1);
    let b = tiny_job(2);
    let jobs = [a.clone(), b.clone(), a.clone(), a.clone()];

    let report = run_many_resilient(&jobs, 2, &SweepOptions::default()).expect("sweep");
    assert_eq!(report.results.len(), 4);
    assert_eq!(
        report.stats.requested, 4,
        "every requested cell is accounted for"
    );
    assert_eq!(report.stats.deduped, 2, "two of the four cells are repeats");
    assert_eq!(
        report.stats.executed, 2,
        "each unique fingerprint must execute exactly once"
    );

    // Order-preserved and bit-identical to the plain per-cell sweep.
    let reference: Vec<_> = run_many_checked(&[a, b], 2)
        .into_iter()
        .map(|r| r.expect("reference sweep"))
        .collect();
    let expect = [&reference[0], &reference[1], &reference[0], &reference[0]];
    for (i, (got, want)) in report.results.iter().zip(expect).enumerate() {
        let got = got.as_ref().expect("dedup sweep result");
        assert_eq!(got, want, "cell {i}: fan-out must be bit-identical");
    }
}

#[test]
fn duplicated_erroring_cell_fans_out_the_error() {
    let jobs = [broken_job(3), tiny_job(4), broken_job(3)];
    let report = run_many_resilient(&jobs, 2, &SweepOptions::default()).expect("sweep");
    assert_eq!(
        report.stats.executed, 2,
        "broken cell runs once, good cell once"
    );
    assert!(report.results[1].is_ok());
    for i in [0, 2] {
        let e = report.results[i]
            .as_ref()
            .expect_err("broken cell must fail");
        assert_eq!(e.to_string(), "workload mix has no tasks", "cell {i}");
    }
    assert!(
        report.quarantined.is_empty(),
        "a deterministic error is data, not a quarantine"
    );
}

// ---- fingerprint ---------------------------------------------------------

/// Golden canonical fingerprint of the Table 1 preset over a fixed mix.
/// This value may only change together with `runcache::CACHE_SCHEMA`;
/// an unintentional move here silently invalidates every on-disk cache
/// and every persisted sweep manifest.
#[test]
fn fingerprint_matches_golden_hash() {
    let job = tiny_job(0xA5A5);
    assert_eq!(job_fingerprint(&job.cfg, &job.mix), 0xf07e_8b14_fc60_b119);
}

/// The shard *thread budget* is presentation/provisioning, not
/// semantics: a sharded run is bit-identical at any worker count, so
/// differently provisioned hosts must share cache artifacts.
#[test]
fn shard_thread_budget_is_not_fingerprinted() {
    let base = tiny_job(7);
    let sharded = base
        .cfg
        .clone()
        .with_shard(refsim_core::config::ShardMode::Channel);
    let threads_2 = sharded.clone().with_shard_threads(2);
    let threads_8 = sharded.clone().with_shard_threads(8);
    assert_ne!(
        job_fingerprint(&base.cfg, &base.mix),
        job_fingerprint(&sharded, &base.mix),
        "shard mode is semantic-adjacent and must salt the fingerprint"
    );
    assert_eq!(
        job_fingerprint(&sharded, &base.mix),
        job_fingerprint(&threads_2, &base.mix)
    );
    assert_eq!(
        job_fingerprint(&threads_2, &base.mix),
        job_fingerprint(&threads_8, &base.mix)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single semantic knob change must move the fingerprint.
    #[test]
    fn fingerprint_tracks_every_semantic_knob(knob in 0usize..12, v in 1u64..1000) {
        let base = tiny_job(9);
        let mut cfg = base.cfg.clone();
        match knob {
            0 => {
                cfg = cfg.with_refresh(refsim_dram::refresh::RefreshPolicyKind::NoRefresh);
            }
            1 => {
                let step = cfg.step;
                cfg = cfg.with_step(step + Ps(v));
            }
            2 => {
                let flipped = match cfg.engine {
                    EngineKind::FixedStep => EngineKind::EventSkip,
                    EngineKind::EventSkip => EngineKind::FixedStep,
                };
                cfg = cfg.with_engine(flipped);
            }
            3 => {
                cfg = cfg.with_sched(SchedPolicy::RefreshAware {
                    eta_thresh: 1 + v as u32,
                    best_effort: false,
                });
            }
            4 => {
                cfg = cfg.with_partition(PartitionPlan::Confine {
                    banks_per_task: 1 + (v as u32 % 7),
                });
            }
            5 => {
                let seed = cfg.seed;
                cfg = cfg.with_seed(seed ^ v);
            }
            6 => cfg.measure += Ps(v),
            7 => cfg.warmup += Ps(v),
            8 => {
                cfg = cfg.with_backend(refsim_dram::backend::BackendKind::Shadow);
            }
            9 => {
                // The perturbation knob bypasses the cache outright, but the
                // fingerprint must still move so stale manifests can't alias.
                cfg = cfg.with_shadow_drop_every(1 + v);
            }
            10 => {
                // Batched and scalar-reference ticking are bit-identical
                // by construction, but the fingerprint still separates
                // them so an equivalence regression can never alias
                // cache entries across the two paths.
                cfg = cfg.with_tick_path(refsim_dram::backend::TickPath::ScalarReference);
            }
            11 => {
                // Same rule for the shard-mode knob — the sharded and
                // serial walks are bit-identical, but cached artifacts
                // must never alias across them. The shard *thread
                // budget* is intentionally NOT a knob here: results do
                // not depend on it, so it stays out of the preimage.
                cfg = cfg.with_shard(refsim_core::config::ShardMode::Channel);
            }
            _ => unreachable!(),
        }
        prop_assert_ne!(
            job_fingerprint(&cfg, &base.mix),
            job_fingerprint(&base.cfg, &base.mix),
            "knob {} must be part of the canonical fingerprint", knob
        );
    }
}

// ---- bypass guard --------------------------------------------------------

#[test]
fn audited_faulted_and_debug_runs_never_touch_the_cache() {
    let cache = tmp_cache("bypass");
    let base = tiny_job(11);
    let variants: [(&str, Job); 3] = [
        (
            "audit",
            Job {
                cfg: base.cfg.clone().with_audit(AuditLevel::Sampled),
                mix: base.mix.clone(),
            },
        ),
        (
            "fault plan",
            Job {
                cfg: base.cfg.clone().with_fault_plan(FaultPlan::none(7)),
                mix: base.mix.clone(),
            },
        ),
        (
            "debug knob",
            Job {
                cfg: base.cfg.clone().with_debug_skip_overshoot(Ps(1)),
                mix: base.mix.clone(),
            },
        ),
    ];
    for (what, job) in variants {
        let opts = SweepOptions {
            cache: Some(cache.clone()),
            ..SweepOptions::default()
        };
        let report = run_many_resilient(std::slice::from_ref(&job), 1, &opts).expect("sweep");
        assert!(report.results[0].is_ok(), "{what}: run itself succeeds");
        assert_eq!(report.stats.bypassed, 1, "{what}: must bypass");
        assert_eq!(
            report.stats.hits + report.stats.misses,
            0,
            "{what}: no lookups"
        );
        assert_eq!(report.stats.stores, 0, "{what}: no stores");
    }
    assert!(
        cache_files(&cache).is_empty(),
        "bypassed runs must leave the cache directory empty"
    );
    let _ = std::fs::remove_dir_all(cache.dir());
}

// ---- persistent cache ----------------------------------------------------

#[test]
fn warm_cache_serves_every_cell_and_verifies_one() {
    let cache = tmp_cache("warm");
    let jobs = [tiny_job(21), tiny_job(22), tiny_job(21)];
    let opts = SweepOptions {
        cache: Some(cache.clone()),
        ..SweepOptions::default()
    };

    let cold = run_many_resilient(&jobs, 2, &opts).expect("cold sweep");
    assert_eq!(cold.stats.misses, 2, "cold: every unique cell misses");
    assert_eq!(cold.stats.stores, 2, "cold: every unique cell is stored");
    assert_eq!(cold.stats.executed, 2);
    assert_eq!(
        cache_files(&cache).len(),
        2,
        "two entries, no stray temp files"
    );

    let warm = run_many_resilient(&jobs, 2, &opts).expect("warm sweep");
    assert_eq!(warm.stats.hits, 2, "warm: every unique cell hits");
    assert_eq!(warm.stats.misses, 0);
    assert_eq!(
        warm.stats.executed, 1,
        "warm: only the sampled verification re-run executes"
    );
    assert_eq!(warm.stats.verified, 1);
    assert_eq!(warm.stats.verify_failures, 0);
    for (i, (a, b)) in cold.results.iter().zip(&warm.results).enumerate() {
        assert_eq!(
            a.as_ref().expect("cold"),
            b.as_ref().expect("warm"),
            "cell {i}: cached metrics must be bit-identical"
        );
    }

    // Verification can also be disabled: pure cache replay, zero runs.
    let replay = run_many_resilient(
        &jobs,
        2,
        &SweepOptions {
            verify_sampled: false,
            ..opts
        },
    )
    .expect("replay sweep");
    assert_eq!(replay.stats.executed, 0);
    assert_eq!(replay.stats.hits, 2);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn poisoned_entry_is_caught_by_verification_and_overwritten() {
    let cache = tmp_cache("poison");
    let job = tiny_job(31);
    let fp = job_fingerprint(&job.cfg, &job.mix);
    let opts = SweepOptions {
        cache: Some(cache.clone()),
        ..SweepOptions::default()
    };

    // Seed the cache honestly, then corrupt the entry's payload while
    // keeping its framing valid: claim a wrong replay hash.
    let cold = run_many_resilient(std::slice::from_ref(&job), 1, &opts).expect("cold");
    let (honest, _) = cache.load(fp).expect("stored entry");
    cache
        .store(&CacheEntry {
            replay_hash: honest.replay_hash ^ 0xdead_beef,
            ..honest.clone()
        })
        .expect("plant poisoned entry");

    let warm = run_many_resilient(std::slice::from_ref(&job), 1, &opts).expect("warm");
    assert_eq!(warm.stats.verify_failures, 1, "the lie must be caught");
    assert_eq!(warm.stats.hits, 0, "a refuted entry is not a hit");
    assert_eq!(
        warm.results[0].as_ref().expect("fresh"),
        cold.results[0].as_ref().expect("cold"),
        "the fresh run wins"
    );
    let (repaired, _) = cache.load(fp).expect("repaired entry");
    assert_eq!(
        repaired.replay_hash, honest.replay_hash,
        "verification must overwrite the poisoned entry"
    );
    let _ = std::fs::remove_dir_all(cache.dir());
}

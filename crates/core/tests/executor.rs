//! End-to-end guarantees of the supervised work-stealing sweep
//! executor:
//!
//! * result assembly is bit-identical across any worker count — the
//!   executor decides *where* and *when* a cell runs, never *what* it
//!   computes — for healthy, failing, and cache-served job sets, and it
//!   stays bit-identical under an injected [`WorkerFaultPlan`];
//! * the ISSUE acceptance scenario: with one worker hung and one job
//!   class crash-looping, the sweep completes with every cell accounted
//!   for (result, typed error, or quarantine record — never silent
//!   loss), healthy cells match a clean single-threaded run, and
//!   [`ExecutorStats`] reports the containment.

use std::time::Duration;

use proptest::prelude::*;
use refsim_core::error::RefsimError;
use refsim_core::executor::{ExecutorOptions, WorkerFaultPlan};
use refsim_core::experiment::Job;
use refsim_core::prelude::*;
use refsim_core::runcache::{job_fingerprint, RunCache};
use refsim_core::sweep::{run_many_resilient, SweepOptions, SweepReport};
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

/// Worker counts the determinism proptests sweep: serial, even split,
/// more workers than a typical host, more workers than jobs.
const THREAD_MATRIX: [usize; 4] = [1, 2, 7, 16];

fn tiny_cfg(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::table1().with_time_scale(4096).with_seed(seed);
    cfg.warmup = cfg.trefw() / 8;
    cfg.measure = cfg.trefw() / 2;
    cfg
}

fn healthy_job(seed: u64) -> Job {
    Job {
        cfg: tiny_cfg(seed),
        mix: WorkloadMix::from_groups(
            "tiny",
            &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
            "M + L",
        ),
    }
}

/// A job whose run deterministically fails (`EmptyWorkload`).
fn broken_job(seed: u64) -> Job {
    Job {
        cfg: tiny_cfg(seed),
        mix: WorkloadMix::from_groups("empty", &[], "-"),
    }
}

/// Mixed healthy/error job set with a duplicated cell (exercises the
/// in-flight dedup fan-out path under every worker count).
fn mixed_jobs(base_seed: u64) -> Vec<Job> {
    vec![
        healthy_job(base_seed),
        broken_job(base_seed.wrapping_add(1)),
        healthy_job(base_seed.wrapping_add(2)),
        healthy_job(base_seed),
        healthy_job(base_seed.wrapping_add(3)),
        broken_job(base_seed.wrapping_add(4)),
    ]
}

fn tmp_cache(tag: &str) -> RunCache {
    let d = std::env::temp_dir().join(format!("refsim-exec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    RunCache::new(d)
}

/// Debug strings are the bit-identity witness: they cover every metric
/// field and the full error payload.
fn outcome_fingerprints(rep: &SweepReport) -> Vec<String> {
    rep.results.iter().map(|r| format!("{r:?}")).collect()
}

/// Replay hashes the sweep stored for each job, read back from its run
/// cache (`None` for cells that failed and stored nothing).
fn stored_replay_hashes(cache: &RunCache, jobs: &[Job]) -> Vec<Option<u64>> {
    jobs.iter()
        .map(|j| {
            cache
                .load(job_fingerprint(&j.cfg, &j.mix))
                .map(|(entry, _)| entry.replay_hash)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Healthy + failing + duplicated cells produce bit-identical
    /// results, retry counts, and quarantine lists at every worker
    /// count.
    #[test]
    fn results_are_bit_identical_across_worker_counts(seed in 0u64..1024) {
        let jobs = mixed_jobs(seed);
        let reference = run_many_resilient(&jobs, 1, &SweepOptions::default())
            .expect("sweep runs");
        let want = outcome_fingerprints(&reference);
        for threads in THREAD_MATRIX {
            let rep = run_many_resilient(&jobs, threads, &SweepOptions::default())
                .expect("sweep runs");
            prop_assert_eq!(&outcome_fingerprints(&rep), &want, "threads={}", threads);
            prop_assert_eq!(rep.quarantined, reference.quarantined);
            prop_assert_eq!(rep.retries, reference.retries);
        }
    }

    /// Every worker count populates a fresh cache with the same replay
    /// hashes, and a warm re-run (cost-model-ordered dispatch, cells
    /// served from disk) returns the same bytes as its cold run.
    #[test]
    fn cached_sweeps_are_bit_identical_across_worker_counts(seed in 0u64..1024) {
        let jobs = mixed_jobs(seed);
        let mut want: Option<(Vec<String>, Vec<Option<u64>>)> = None;
        for threads in THREAD_MATRIX {
            let cache = tmp_cache(&format!("m{threads}-{seed}"));
            let opts = SweepOptions {
                cache: Some(cache.clone()),
                ..SweepOptions::default()
            };
            let cold = run_many_resilient(&jobs, threads, &opts).expect("cold sweep runs");
            let hashes = stored_replay_hashes(&cache, &jobs);
            let warm = run_many_resilient(&jobs, threads, &opts).expect("warm sweep runs");
            prop_assert_eq!(
                outcome_fingerprints(&warm),
                outcome_fingerprints(&cold),
                "warm serve must match the cold run at threads={}",
                threads
            );
            match &want {
                None => want = Some((outcome_fingerprints(&cold), hashes)),
                Some((results, stored)) => {
                    prop_assert_eq!(&outcome_fingerprints(&cold), results, "threads={}", threads);
                    prop_assert_eq!(&hashes, stored, "replay hashes at threads={}", threads);
                }
            }
        }
    }

    /// Hung and slow workers move cells between workers and through the
    /// supervisor's reclaim path, but never change any result.
    #[test]
    fn fault_plan_never_changes_results(seed in 0u64..1024) {
        let jobs = mixed_jobs(seed);
        let reference = run_many_resilient(&jobs, 1, &SweepOptions::default())
            .expect("sweep runs");
        let want = outcome_fingerprints(&reference);
        let opts = SweepOptions {
            executor: ExecutorOptions {
                deadline_floor: Duration::from_millis(25),
                adaptive_factor: 4,
                supervisor_tick: Duration::from_millis(2),
                stall_cap: Duration::from_millis(500),
                fault_plan: Some(WorkerFaultPlan {
                    hung_workers: 1,
                    hang_claims: 1,
                    slow_workers: 1,
                    slow_delay: Duration::from_millis(2),
                    ..WorkerFaultPlan::quiet(seed)
                }),
                ..ExecutorOptions::default()
            },
            ..SweepOptions::default()
        };
        for threads in [2usize, 7] {
            let rep = run_many_resilient(&jobs, threads, &opts).expect("faulted sweep runs");
            prop_assert_eq!(&outcome_fingerprints(&rep), &want, "threads={}", threads);
            prop_assert_eq!(rep.quarantined, reference.quarantined);
        }
    }
}

/// The ISSUE acceptance scenario. A seeded [`WorkerFaultPlan`] hangs
/// one worker on every claim (until quarantined) and crash-loops one
/// job class; the sweep must complete with every cell accounted for,
/// healthy cells bit-identical to a clean single-threaded run, the
/// crash-class cells surfacing as typed quarantined errors, and the
/// stats reporting the worker quarantine and at least one deadline
/// escalation.
#[test]
fn chaos_acceptance_hung_worker_and_crash_looping_job_class() {
    let jobs: Vec<Job> = (0..6).map(|i| healthy_job(9000 + i)).collect();
    let plan = WorkerFaultPlan {
        hung_workers: 1,
        hang_claims: 8, // hangs on every claim it can get; quarantine cuts it short
        crash_job_period: 5, // jobs 0 and 5 crash-loop
        ..WorkerFaultPlan::quiet(0x00AC_CE97)
    };
    let clean = run_many_resilient(&jobs, 1, &SweepOptions::default()).expect("clean sweep");
    let opts = SweepOptions {
        executor: ExecutorOptions {
            deadline_floor: Duration::from_millis(25),
            adaptive_factor: 4,
            escalate_factor: 1,
            supervisor_tick: Duration::from_millis(2),
            stall_cap: Duration::from_secs(2),
            max_worker_strikes: 2,
            fault_plan: Some(plan),
            ..ExecutorOptions::default()
        },
        ..SweepOptions::default()
    };
    let rep = run_many_resilient(&jobs, 4, &opts).expect("chaos sweep completes");

    assert_eq!(rep.results.len(), jobs.len(), "no cell silently lost");
    for (i, (chaos, reference)) in rep.results.iter().zip(&clean.results).enumerate() {
        if plan.crashes_job(i) {
            match chaos {
                Err(RefsimError::Panicked(msg)) => assert!(
                    msg.contains("injected crash-loop"),
                    "cell {i} crash class: {msg}"
                ),
                other => panic!("crash-class cell {i} must end Panicked, got {other:?}"),
            }
            assert!(
                rep.quarantined.contains(&i),
                "crash-class cell {i} needs a quarantine record"
            );
        } else {
            assert_eq!(
                format!("{chaos:?}"),
                format!("{reference:?}"),
                "healthy cell {i} must match the clean single-threaded run"
            );
        }
    }
    assert!(
        rep.executor.deadline_escalations >= 1,
        "the hung worker must trip a deadline escalation: {}",
        rep.executor.summary()
    );
    assert!(
        rep.executor.worker_strikes >= 1,
        "the hang must be charged to the worker: {}",
        rep.executor.summary()
    );
    assert!(
        rep.retries >= 2,
        "each crash-class cell burns its retry budget (got {})",
        rep.retries
    );
}

//! Differential proof obligations for the event-horizon engine.
//!
//! The event-skip engine (`EngineKind::EventSkip`) is only allowed to
//! exist because it is *bit-identical* to the fixed-step reference
//! loop: same `RunMetrics`, same replay state hashes at every sampled
//! quantum, for every refresh policy and for randomized workload mixes.
//! This suite pins that equivalence, proves the auditing layers catch a
//! deliberately broken engine (the negative control), and pins the
//! allocation-surgery guarantees (reusable buffers, inflight table)
//! that make the skip loop worth having.

use proptest::prelude::*;

use refsim_core::config::EngineKind;
use refsim_core::prelude::*;
use refsim_core::replay::{self, ReplayOptions, StateHashes};
use refsim_core::system::System;
use refsim_dram::refresh::RefreshPolicyKind;
use refsim_dram::time::Ps;
use refsim_dram::timing::FgrMode;
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

const ALL_POLICIES: [RefreshPolicyKind; 8] = [
    RefreshPolicyKind::NoRefresh,
    RefreshPolicyKind::AllBank,
    RefreshPolicyKind::PerBankRoundRobin,
    RefreshPolicyKind::PerBankSequential,
    RefreshPolicyKind::OooPerBank,
    RefreshPolicyKind::Fgr(FgrMode::X2),
    RefreshPolicyKind::Adaptive,
    RefreshPolicyKind::Elastic,
];

/// A fast config: tiny windows, small scale (mirrors the unit-test
/// idiom in `system.rs`).
fn quick(cfg: SystemConfig) -> SystemConfig {
    let mut c = cfg.with_time_scale(512);
    c.warmup = c.trefw() / 4;
    c.measure = c.trefw();
    c
}

fn small_mix() -> WorkloadMix {
    WorkloadMix::from_groups(
        "test",
        &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
        "M + L",
    )
}

/// Runs `(cfg, mix)` to completion and returns the collected metrics
/// plus the final full-state hash digest.
fn run_once(cfg: &SystemConfig, mix: &WorkloadMix) -> (RunMetrics, StateHashes) {
    let mut sys = System::try_new(cfg.clone(), mix).expect("build");
    sys.try_run_until(cfg.warmup).expect("warmup");
    sys.begin_measure();
    sys.try_run_until(cfg.warmup + cfg.measure)
        .expect("measure");
    let hashes = StateHashes::of(&sys.export_state());
    (sys.collect(), hashes)
}

/// The headline equivalence: for every refresh policy, the event-skip
/// engine produces the exact `RunMetrics` and final state hash of the
/// fixed-step reference, and every intermediate replay sample matches.
#[test]
fn engines_are_bit_identical_for_every_policy() {
    for policy in ALL_POLICIES {
        let base = quick(SystemConfig::table1()).with_refresh(policy);
        let mix = small_mix();

        let (m_fixed, h_fixed) = run_once(&base.clone().with_engine(EngineKind::FixedStep), &mix);
        let (m_skip, h_skip) = run_once(&base.clone().with_engine(EngineKind::EventSkip), &mix);
        assert_eq!(m_fixed, m_skip, "RunMetrics diverged under {policy:?}");
        assert_eq!(
            h_fixed.combined(),
            h_skip.combined(),
            "final state hash diverged under {policy:?}: {:?}",
            h_fixed.first_diff(&h_skip)
        );

        let report = replay::replay_verify_engines(&base, &mix, &ReplayOptions::for_config(&base))
            .expect("both engines must run clean");
        assert!(report.samples > 2, "sampling must actually observe the run");
        assert!(
            report.is_clean(),
            "replay hashes diverged under {policy:?}: {:?}",
            report.divergence
        );
    }
}

/// The batched tick path (SoA bank lanes + plan memo + fast core loop)
/// is only allowed to be the default because it is bit-identical to the
/// scalar reference walk: same `RunMetrics` and same final replay state
/// hash for every refresh policy under *both* engines. Together with
/// the engine equivalence above this pins the full 8-policy × 2-engine
/// × 2-path matrix to a single behavior.
#[test]
fn tick_paths_are_bit_identical_for_every_policy_and_engine() {
    use refsim_dram::backend::TickPath;
    for policy in ALL_POLICIES {
        for engine in [EngineKind::FixedStep, EngineKind::EventSkip] {
            let base = quick(SystemConfig::table1())
                .with_refresh(policy)
                .with_engine(engine);
            let mix = small_mix();

            let (m_batch, h_batch) =
                run_once(&base.clone().with_tick_path(TickPath::Batched), &mix);
            let (m_scalar, h_scalar) = run_once(
                &base.clone().with_tick_path(TickPath::ScalarReference),
                &mix,
            );
            assert_eq!(
                m_batch, m_scalar,
                "RunMetrics diverged across tick paths under {policy:?}/{engine:?}"
            );
            assert_eq!(
                h_batch.combined(),
                h_scalar.combined(),
                "replay hash diverged across tick paths under {policy:?}/{engine:?}: {:?}",
                h_batch.first_diff(&h_scalar)
            );
        }
    }
}

/// Intra-run channel sharding (`ShardMode::Channel`) is only allowed to
/// exist because it is *bit-identical* to the serial channel walk at
/// any worker count: same `RunMetrics`, same final replay state hash,
/// for every refresh policy under both engines and both tick paths, at
/// 1, 2, and 4 shard threads on a 2-channel machine. The serial walk
/// (`ShardMode::Serial`, the default) is the correctness anchor — the
/// same role `TickPath::ScalarReference` plays for the batched tick.
#[test]
fn sharded_walk_is_bit_identical_for_every_policy_engine_and_path() {
    use refsim_dram::backend::TickPath;
    for policy in ALL_POLICIES {
        for engine in [EngineKind::FixedStep, EngineKind::EventSkip] {
            for path in [TickPath::Batched, TickPath::ScalarReference] {
                // Half the usual measurement window: this matrix is
                // 8 × 2 × 2 × (1 + 3) = 128 full runs.
                let mut base = quick(SystemConfig::table1())
                    .with_channels(2)
                    .with_refresh(policy)
                    .with_engine(engine)
                    .with_tick_path(path);
                base.measure = Ps(base.measure.as_ps() / 2);
                let mix = small_mix();

                let (m_serial, h_serial) = run_once(&base, &mix);
                for threads in [1u32, 2, 4] {
                    let cfg = base.clone().with_shard_threads(threads);
                    let (m, h) = run_once(&cfg, &mix);
                    assert_eq!(
                        m_serial, m,
                        "RunMetrics diverged: sharded@{threads} vs serial \
                         under {policy:?}/{engine:?}/{path:?}"
                    );
                    assert_eq!(
                        h_serial.combined(),
                        h.combined(),
                        "replay hash diverged: sharded@{threads} vs serial \
                         under {policy:?}/{engine:?}/{path:?}: {:?}",
                        h_serial.first_diff(&h)
                    );
                }
            }
        }
    }
}

/// Spot check at 4 channels with the full co-design active (sequential
/// per-bank refresh + soft partitioning + refresh-aware scheduling):
/// the generalized Algorithm 1/2/3 paths and the sharded walk agree
/// with the serial walk on a wider machine, with workers both below
/// and at the channel count.
#[test]
fn four_channel_co_design_shards_bit_identically() {
    use refsim_core::config::ShardMode;
    for engine in [EngineKind::FixedStep, EngineKind::EventSkip] {
        let base = quick(SystemConfig::table1().co_design())
            .with_channels(4)
            .with_engine(engine);
        let mix = small_mix();

        let (m_serial, h_serial) = run_once(&base, &mix);
        assert!(
            m_serial.controller.reads_completed > 0,
            "the 4-channel run must actually exercise the memory system"
        );
        for threads in [2u32, 4] {
            let cfg = base.clone().with_shard_threads(threads);
            let (m, h) = run_once(&cfg, &mix);
            assert_eq!(
                m_serial, m,
                "RunMetrics diverged: 4-channel sharded@{threads} vs serial under {engine:?}"
            );
            assert_eq!(
                h_serial.combined(),
                h.combined(),
                "replay hash diverged: 4-channel sharded@{threads} vs serial \
                 under {engine:?}: {:?}",
                h_serial.first_diff(&h)
            );
        }
        // `ShardMode::Channel` with no explicit budget draws from the
        // executor's shared pool (REFSIM_THREADS / available cores) —
        // whatever it resolves to on this host must not change results.
        let (m_auto, h_auto) = run_once(&base.clone().with_shard(ShardMode::Channel), &mix);
        assert_eq!(m_serial, m_auto);
        assert_eq!(h_serial.combined(), h_auto.combined());
    }
}

/// The sanitizer's Full-audit mode must stay quiet when the event-skip
/// engine drives the machine — every event and quantum check holds on
/// skipped spans exactly as on crawled ones.
#[test]
fn event_skip_is_quiet_under_full_audit() {
    let cfg = quick(SystemConfig::table1())
        .with_engine(EngineKind::EventSkip)
        .with_audit(AuditLevel::Full);
    let mut sys = System::try_new(cfg.clone(), &small_mix()).expect("build");
    sys.try_run_until(cfg.warmup).expect("warmup under audit");
    sys.begin_measure();
    sys.try_run_until(cfg.warmup + cfg.measure)
        .expect("full-audit event-skip run must be violation-free");
}

/// Multi-channel runs must satisfy the full invariant suite too: every
/// `ChannelSample` checker (refresh coverage, postponement debt, bus
/// occupancy, rank-refresh ordering) walks all channels, and a sharded
/// 2-channel event-skip run under `AuditLevel::Full` stays violation-
/// free with the co-design policies active.
#[test]
fn two_channel_sharded_run_is_quiet_under_full_audit() {
    let cfg = quick(SystemConfig::table1().co_design())
        .with_channels(2)
        .with_engine(EngineKind::EventSkip)
        .with_audit(AuditLevel::Full)
        .with_shard_threads(2);
    let mut sys = System::try_new(cfg.clone(), &small_mix()).expect("build");
    sys.try_run_until(cfg.warmup).expect("warmup under audit");
    sys.begin_measure();
    sys.try_run_until(cfg.warmup + cfg.measure)
        .expect("full-audit 2-channel sharded run must be violation-free");
    let m = sys.collect();
    assert!(
        m.controller.reads_completed > 0,
        "the audited run must actually exercise both channels' controllers"
    );
}

/// Negative control: an engine that overshoots its event horizons (here
/// forced via the `debug_skip_overshoot` hook, widening every jump past
/// quantum ends) must be *caught* — the run either trips an invariant
/// checker outright or lands on a different machine state than the
/// fixed-step reference, which the replay auditor reports as a hash
/// divergence. A silent pass would mean the proof harness is vacuous.
#[test]
fn overshooting_engine_is_caught() {
    let base = quick(SystemConfig::table1());
    let mix = small_mix();
    let end = base.warmup + base.measure;
    let (_, h_ref) = run_once(&base.clone().with_engine(EngineKind::FixedStep), &mix);

    let cfg = base
        .clone()
        .with_engine(EngineKind::EventSkip)
        .with_audit(AuditLevel::Full);
    let mut sys = System::try_new(cfg, &mix).expect("build");
    // One full step of overshoot: every skip lands one 250 ns lattice
    // point past the true horizon, sailing through quantum boundaries.
    sys.debug_skip_overshoot(Ps::from_ns(250));
    let outcome = sys.try_run_until(end);
    let caught = match outcome {
        // The invariant layer (sanitizer / watchdog) fired — ideal.
        Err(_) => true,
        // Or the corruption is silent locally but visible differentially.
        Ok(()) => StateHashes::of(&sys.export_state()).combined() != h_ref.combined(),
    };
    assert!(
        caught,
        "a deliberately overshooting engine must not reproduce the reference run"
    );
}

/// The overshoot hook is engine-gated: under the fixed-step engine it
/// must be inert, so a hook accidentally left on cannot corrupt the
/// reference side of a differential run.
#[test]
fn overshoot_hook_is_inert_under_fixed_step() {
    let cfg = quick(SystemConfig::table1()).with_engine(EngineKind::FixedStep);
    let mix = small_mix();
    let (m_ref, h_ref) = run_once(&cfg, &mix);

    let mut sys = System::try_new(cfg.clone(), &mix).expect("build");
    sys.debug_skip_overshoot(Ps::from_ns(250));
    sys.try_run_until(cfg.warmup).expect("warmup");
    sys.begin_measure();
    sys.try_run_until(cfg.warmup + cfg.measure)
        .expect("measure");
    assert_eq!(
        StateHashes::of(&sys.export_state()).combined(),
        h_ref.combined()
    );
    assert_eq!(sys.collect(), m_ref);
}

/// The equivalence must hold at *any* step pitch, not just the default
/// 250 ns lattice: run the memory-stall-heavy reference regime (the
/// pointer-chase mix `simwall` benchmarks) at DRAM-clock fidelity —
/// 1.25 ns, 200× finer — through both engines. This is the regime the
/// event-horizon engine exists for, so its bit-identity is pinned
/// directly rather than inferred from the coarse-pitch suite.
#[test]
fn engines_are_bit_identical_at_command_pitch() {
    let mix = WorkloadMix::from_groups("chase", &[(Benchmark::Mcf, 2)], "H");
    for policy in [RefreshPolicyKind::AllBank, RefreshPolicyKind::Elastic] {
        let mut base = quick(SystemConfig::table1())
            .with_refresh(policy)
            .with_step(Ps(1_250));
        // Half a retention window is ~10^5 fine-pitch boundaries —
        // plenty of skip decisions while keeping the suite quick.
        base.measure = base.trefw() / 2;
        let (m_fixed, h_fixed) = run_once(&base.clone().with_engine(EngineKind::FixedStep), &mix);
        let (m_skip, h_skip) = run_once(&base.clone().with_engine(EngineKind::EventSkip), &mix);
        assert_eq!(
            m_fixed, m_skip,
            "RunMetrics diverged under {policy:?} at 1.25 ns pitch"
        );
        assert_eq!(
            h_fixed.combined(),
            h_skip.combined(),
            "state hash diverged under {policy:?} at 1.25 ns pitch: {:?}",
            h_fixed.first_diff(&h_skip)
        );
    }
}

/// Checkpoint/restore rewinds `next_req`, so resumed runs re-insert
/// previously used request ids into the inflight table. The FNV map's
/// backward-shift deletion must keep probe chains intact through that
/// reuse — the resumed replay must be bit-identical end to end.
#[test]
fn inflight_id_reuse_across_restore_is_bit_identical() {
    let cfg = quick(SystemConfig::table1()).with_engine(EngineKind::EventSkip);
    let report =
        replay::replay_verify_resumed(&cfg, &small_mix(), &ReplayOptions::for_config(&cfg))
            .expect("resumed replay must run clean");
    assert!(
        report.is_clean(),
        "id reuse after restore corrupted state: {:?}",
        report.divergence
    );
}

/// Allocation surgery: once warmed up, the hot loop's reusable buffers
/// (DRAM trace, completion drain, inflight slots) must stop growing —
/// steady-state stepping performs zero allocations in the
/// core ⇄ controller plumbing.
#[test]
fn hot_loop_buffers_reach_steady_state() {
    // Full audit keeps the trace buffer in active duty every step.
    let cfg = quick(SystemConfig::table1())
        .with_engine(EngineKind::EventSkip)
        .with_audit(AuditLevel::Full);
    let end = cfg.warmup + cfg.measure;
    let mid = cfg.warmup + cfg.measure / 2;
    let mut sys = System::try_new(cfg, &small_mix()).expect("build");
    sys.try_run_until(mid).expect("first window");
    let caps = sys.debug_buffer_capacities();
    assert!(caps.0 > 0, "trace buffer must be exercised");
    assert!(caps.1 > 0, "completion buffer must be exercised");
    assert!(caps.2 > 0, "inflight table must be exercised");
    sys.try_run_until(end).expect("second window");
    assert_eq!(
        caps,
        sys.debug_buffer_capacities(),
        "hot-loop buffers grew after the warm window (steady-state allocation)"
    );
}

/// Strategy: a random mix of 1–3 benchmark groups, 1–2 tasks each.
fn mix_strategy() -> impl Strategy<Value = WorkloadMix> {
    proptest::collection::vec((0usize..Benchmark::ALL.len(), 1usize..3), 1..4).prop_map(|groups| {
        let groups: Vec<(Benchmark, usize)> = groups
            .into_iter()
            .map(|(i, n)| (Benchmark::ALL[i], n))
            .collect();
        WorkloadMix::from_groups("prop", &groups, "random")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized workloads and policies through both engines: equal
    /// metrics and equal final state hashes, every time.
    #[test]
    fn random_mixes_are_engine_invariant(
        mix in mix_strategy(),
        policy_i in 0usize..ALL_POLICIES.len(),
        seed in any::<u64>(),
    ) {
        let base = quick(SystemConfig::table1())
            .with_refresh(ALL_POLICIES[policy_i])
            .with_seed(seed);
        let (m_fixed, h_fixed) =
            run_once(&base.clone().with_engine(EngineKind::FixedStep), &mix);
        let (m_skip, h_skip) =
            run_once(&base.clone().with_engine(EngineKind::EventSkip), &mix);
        prop_assert_eq!(m_fixed, m_skip);
        prop_assert_eq!(h_fixed.combined(), h_skip.combined());
    }
}

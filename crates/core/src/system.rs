//! The co-simulation: cores ⇄ caches ⇄ memory controller ⇄ OS.
//!
//! [`System`] binds the four substrates into one discrete-event
//! simulation. Time advances in small steps ([`SystemConfig::step`],
//! 250 ns by default); within each step
//! every core processes its scheduled task's instruction stream (through
//! its private caches and into the memory controller), then the
//! controller replays DRAM command scheduling up to the step boundary
//! and completions unblock stalled cores. Context switches happen at
//! quantum boundaries, which — under the co-design — are aligned with
//! the hardware's per-bank refresh slices so the refresh-aware scheduler
//! (Algorithm 3) can dodge the bank being refreshed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use refsim_cpu::core::ExecContext;
use refsim_cpu::hierarchy::{CacheHierarchy, HierOutcome};
use refsim_dram::backend::{build_backend, MemoryBackend, TickPath};
use refsim_dram::controller::TraceEntry;
use refsim_dram::error::DramError;
use refsim_dram::mapping::AddressMapping;
use refsim_dram::refresh::BusyForecast;
use refsim_dram::request::{Completion, MemRequest, ReqId, ReqKind};
use refsim_dram::time::Ps;
use refsim_os::bank_alloc::{BankAwareAllocator, BankVector, PAGE_BYTES};
use refsim_os::partition::{plan, PartitionInput, PartitionPlan};
use refsim_os::sched::{SchedPolicy, Scheduler};
use refsim_os::task::{Task as OsTask, TaskId, TaskState};
use refsim_workloads::mix::WorkloadMix;

use refsim_workloads::profiles::TaskWorkload;

use crate::checkpoint::{
    config_fingerprint, Checkpoint, SavedBaseline, SavedCore, SavedInflight, SavedPendingMem,
    SavedSim, SavedSystem, SavedTask,
};
use crate::config::{EngineKind, ShardMode, SystemConfig};
use crate::error::{RefsimError, SystemSnapshot};
use crate::executor::default_threads;
use crate::fastmap::FnvMap;
use crate::metrics::{RunMetrics, TaskMetrics};
use crate::sanitize::{
    AuditLevel, AuditScope, ChannelSample, CoreSample, Event, QuantumSample, Sanitizer,
    SchedSample, TaskSample, ViolationReport,
};

/// Forward-progress budget for one `run_until` span of `span` ps: a
/// comfortable multiple of the maximum number of step boundaries
/// (`span / step`) plus quantum boundaries (`span / slice` per core)
/// the span can contain, so the watchdog trips only on genuine
/// livelock. All arithmetic saturates: extreme configurations — a
/// timeslice smaller than the step, a tREFW-scale span with a
/// picosecond slice — degrade to an effectively unlimited budget
/// instead of overflowing into a tiny one that trips spuriously.
pub fn watchdog_budget(span: u64, step: u64, slice: u64, cores: u64) -> u64 {
    let base_steps = (span / step.max(1)).saturating_add(1);
    let quantum_steps = (span / slice.max(1))
        .saturating_add(1)
        .saturating_mul(cores.max(1));
    base_steps
        .saturating_add(quantum_steps)
        .saturating_mul(2)
        .saturating_add(64)
}

/// A memory operation that could not be fully handed to the memory
/// system yet (queue-full back-pressure); retried on later steps.
#[derive(Debug, Clone, Copy)]
struct PendingMem {
    /// Dirty victim still to be enqueued as a writeback.
    writeback: Option<u64>,
    /// Fill (line address) still to be enqueued as a read.
    fill: Option<u64>,
    /// The faulting access was a store (fill does not block the ROB).
    write: bool,
    /// The faulting access was a serializing load.
    dependent: bool,
}

/// Per-task simulation state beyond the OS task block.
#[derive(Debug)]
struct TaskSim {
    wl: TaskWorkload,
    ctx: ExecContext,
    pending: Option<PendingMem>,
    /// One-entry TLB for the batched core loop: `(vpn, frame base)` of
    /// the task's last translation. Purely an accelerator — mappings
    /// only grow and never move, so a cached pair cannot go stale
    /// within a run. Runtime-only: reset on restore, never saved.
    tlb: Option<(u64, u64)>,
}

/// Per-core state.
#[derive(Debug)]
struct CoreSlot {
    caches: CacheHierarchy,
    current: Option<u32>,
    /// `ctx.now()` at the instant the current task was scheduled.
    sched_base: Ps,
    quantum_end: Ps,
    /// Lines with an in-flight fill (MSHR coalescing).
    inflight_lines: HashMap<u64, ReqId>,
}

#[derive(Debug, Clone, Copy, Default)]
struct TaskSnapshot {
    instructions: u64,
    stall: Ps,
    misses: u64,
    faults: u64,
    spilled: u64,
    cpu_time: Ps,
    schedules: u64,
}

/// The complete simulated machine.
///
/// # Examples
///
/// ```no_run
/// use refsim_core::config::SystemConfig;
/// use refsim_core::system::System;
/// use refsim_workloads::mix::by_name;
///
/// let cfg = SystemConfig::table1().co_design();
/// let mut sys = System::new(cfg, &by_name("WL-5").unwrap());
/// let metrics = sys.run();
/// println!("hmean IPC = {:.3}", metrics.hmean_ipc());
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    clock: Ps,
    /// Per-channel memory backends. Owned directly between spans; during
    /// a [`ShardMode::Channel`] span they are moved into
    /// [`System::shard_span`]'s mutex lanes (this vector is empty then)
    /// and moved back when the span's worker scope joins. All span-path
    /// code reaches them through [`System::mc`]/[`System::mc_ref`],
    /// which resolve to a plain `&mut`/`&` when no span is active.
    mcs: Vec<Box<dyn MemoryBackend>>,
    /// The shared-address-mapping copy (identical in every channel
    /// backend), kept here so request routing never singles out a
    /// channel-0 backend.
    mapping: AddressMapping,
    cores: Vec<CoreSlot>,
    os_tasks: Vec<OsTask>,
    sims: Vec<TaskSim>,
    sched: Scheduler,
    alloc: BankAwareAllocator,
    next_req: u64,
    /// In-flight fills: request id → (task, core, line address). An
    /// FNV-hashed open-addressing table — one insert and one remove per
    /// LLC miss make this the hottest map in the simulator.
    inflight: FnvMap<(u32, u8, u64)>,
    base: Vec<TaskSnapshot>,
    sched_base_stats: refsim_os::sched::SchedStats,
    measure_start: Ps,
    /// Runtime invariant sanitizer (`simsan`); present only when
    /// `cfg.audit != Off`. Not part of the checkpointed state — a
    /// restored system restarts its audit from the restore point.
    san: Option<Box<Sanitizer>>,
    /// Scheduler preemptions observed so far (audit quantum ordinal).
    quanta: u64,
    /// Report from a completed audit (see [`System::finish_audit`]).
    last_report: Option<ViolationReport>,
    /// Reusable per-step buffer for drained read completions.
    comp_buf: Vec<Completion>,
    /// Reusable per-step buffer for the sanitizer's DRAM command trace.
    trace_buf: Vec<TraceEntry>,
    /// Test hook: widens every event-skip jump by this much, deliberately
    /// overshooting event horizons. See [`System::debug_skip_overshoot`].
    skip_overshoot: Ps,
    /// Engine telemetry (not checkpointed, not hashed): loop iterations
    /// and which horizon constraint bound each skip decision.
    engine_stats: EngineStats,
    /// Cooperative-cancellation flag installed by the sweep executor's
    /// supervisor (see [`System::set_cancel_hook`]); polled once per
    /// step-loop iteration next to the forward-progress watchdog. Not
    /// part of the checkpointed state: a restored system starts with no
    /// hook, and the owning attempt re-installs its own.
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Active [`ShardMode::Channel`] span, if any: the mutex-wrapped
    /// channel lanes workers tick plus the step-handoff coordinator.
    /// `None` whenever control is outside `try_run_until`.
    shard_span: Option<ShardSpan>,
}

/// Mutex-wrapped per-channel backends shared with the span's workers.
type ShardLanes = Arc<Vec<Mutex<Box<dyn MemoryBackend>>>>;

/// Locks a shard lane, ignoring poisoning: a panicking worker aborts
/// the span anyway (the scope re-raises the panic after join), so a
/// poisoned lane is only ever read for post-mortem diagnostics.
fn lock_lane(m: &Mutex<Box<dyn MemoryBackend>>) -> MutexGuard<'_, Box<dyn MemoryBackend>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Span-scoped state for [`ShardMode::Channel`]: worker threads live
/// for the whole `try_run_until` span (spawned once, not per step) and
/// the per-step handoff is three atomics — publish the step boundary,
/// bump the sequence, wait for every worker's acknowledgement.
#[derive(Debug)]
struct ShardSpan {
    lanes: ShardLanes,
    /// First error each channel's advance produced, harvested by the
    /// main thread in channel order (lowest channel wins) so the
    /// surfaced error is deterministic regardless of worker timing.
    errs: Arc<Vec<Mutex<Option<DramError>>>>,
    coord: Arc<ShardCoord>,
    workers: usize,
}

/// The step-handoff protocol (see DESIGN.md "Intra-run channel
/// sharding"): the main thread stores `target`, then bumps `seq`
/// (release); workers spin on `seq` (acquire), tick their channels to
/// `target`, and each adds 1 to `done` (release); the main thread spins
/// until `done == seq × workers`. `stop` ends the worker loops — set
/// before a final `seq` bump so spinners wake and observe it.
#[derive(Debug, Default)]
struct ShardCoord {
    seq: AtomicU64,
    target: AtomicU64,
    done: AtomicU64,
    stop: AtomicBool,
}

/// Spin-then-yield wait: cheap when shards outnumber nothing (workers
/// park between steps for well under a microsecond), and still correct
/// on over-subscribed hosts where yielding lets the sibling run.
fn spin_until(mut ready: impl FnMut() -> bool) {
    let mut spins = 0u32;
    while !ready() {
        spins += 1;
        if spins < 128 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Worker loop for one shard: waits for each published step, advances
/// its assigned channels to the boundary, and acknowledges. Channel
/// assignment is round-robin by index and fixed for the span.
fn shard_worker(
    lanes: &[Mutex<Box<dyn MemoryBackend>>],
    errs: &[Mutex<Option<DramError>>],
    coord: &ShardCoord,
    channels: &[usize],
) {
    let mut seen = 0u64;
    loop {
        let mut next = seen;
        spin_until(|| {
            next = coord.seq.load(Ordering::Acquire);
            next != seen
        });
        seen = next;
        if coord.stop.load(Ordering::Acquire) {
            return;
        }
        let target = Ps(coord.target.load(Ordering::Acquire));
        for &ch in channels {
            let mut mc = lock_lane(&lanes[ch]);
            if let Err(e) = mc.try_advance_to(target) {
                let mut slot = errs[ch].lock().unwrap_or_else(PoisonError::into_inner);
                slot.get_or_insert(e);
            }
        }
        coord.done.fetch_add(1, Ordering::Release);
    }
}

/// Releases the span's workers when dropped — including during a panic
/// unwind, where `std::thread::scope` would otherwise join against
/// workers still spinning on the next step.
struct StopWorkersOnDrop<'a>(&'a ShardCoord);

impl Drop for StopWorkersOnDrop<'_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Ordering::Release);
        self.0.seq.fetch_add(1, Ordering::Release);
    }
}

/// Shared (read) access to one channel backend: a plain borrow between
/// spans, a lane lock during a [`ShardMode::Channel`] span.
enum McRef<'a> {
    Own(&'a (dyn MemoryBackend + 'static)),
    Lane(MutexGuard<'a, Box<dyn MemoryBackend>>),
}

impl std::ops::Deref for McRef<'_> {
    type Target = dyn MemoryBackend + 'static;
    fn deref(&self) -> &Self::Target {
        match self {
            McRef::Own(m) => *m,
            McRef::Lane(g) => &***g,
        }
    }
}

/// Exclusive access to one channel backend (see [`McRef`]).
enum McMut<'a> {
    Own(&'a mut (dyn MemoryBackend + 'static)),
    Lane(MutexGuard<'a, Box<dyn MemoryBackend>>),
}

impl std::ops::Deref for McMut<'_> {
    type Target = dyn MemoryBackend + 'static;
    fn deref(&self) -> &Self::Target {
        match self {
            McMut::Own(m) => &**m,
            McMut::Lane(g) => &***g,
        }
    }
}

impl std::ops::DerefMut for McMut<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        match self {
            McMut::Own(m) => *m,
            McMut::Lane(g) => &mut ***g,
        }
    }
}

/// Telemetry for the step loop and the event-horizon skip decisions.
/// Diagnostic only — excluded from checkpoints and replay hashes.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineStats {
    /// Step-loop iterations executed.
    pub iterations: u64,
    /// Skip decisions abandoned because a core was idle.
    pub no_skip_idle: u64,
    /// Skip decisions bound by a runnable (non-inert) core or an
    /// imminent quantum end — the horizon never cleared one step.
    pub no_skip_core: u64,
    /// Skips truncated by a controller's utilization-epoch cap.
    pub epoch_bound: u64,
    /// Skips truncated by an upcoming read completion.
    pub completion_bound: u64,
    /// Iterations that jumped past at least one elided step boundary.
    pub skipped: u64,
    /// Total step boundaries elided by those jumps.
    pub steps_elided: u64,
}

/// Builds the [`AuditScope`] describing `cfg` for the standard checker
/// catalog.
fn audit_scope(cfg: &SystemConfig, n_tasks: u32) -> AuditScope {
    let geometry = cfg.geometry();
    let rt = cfg.refresh_timing();
    let eta = match cfg.sched_policy {
        SchedPolicy::RefreshAware { eta_thresh, .. } => Some(eta_thresh),
        SchedPolicy::Cfs => None,
    };
    AuditScope {
        policy: cfg.refresh_policy,
        trefw: rt.trefw,
        trefi_ab: rt.trefi_ab,
        trfc_ab: rt.trfc_ab,
        trfc_pb: rt.trfc_pb,
        // The refresh schedule (and thus the slice the quantum checker
        // audits against) is per *channel* — must match
        // `SystemConfig::effective_timeslice`, which uses
        // `banks_per_channel`, not the cross-channel total.
        slice: rt.sequential_slice(geometry.banks_per_channel(), geometry.banks_per_rank),
        banks_per_channel: geometry.banks_per_channel(),
        banks_per_rank: geometry.banks_per_rank,
        channels: cfg.channels,
        rows_per_bank: u64::from(rt.rows_per_bank),
        hard_partition: matches!(cfg.partition, PartitionPlan::Hard),
        eta,
        n_cores: cfg.n_cores,
        n_tasks,
    }
}

impl System {
    /// Builds the machine for `cfg` running `mix`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] or
    /// the mix is empty.
    pub fn new(cfg: SystemConfig, mix: &WorkloadMix) -> Self {
        Self::try_new(cfg, mix).unwrap_or_else(|e| panic!("invalid config: {e}"))
    }

    /// Fallible [`System::new`]: returns [`RefsimError::InvalidConfig`]
    /// or [`RefsimError::EmptyWorkload`] instead of panicking, so sweeps
    /// can record a bad configuration as an error row.
    pub fn try_new(cfg: SystemConfig, mix: &WorkloadMix) -> Result<Self, RefsimError> {
        cfg.validate()?;
        if mix.is_empty() {
            return Err(RefsimError::EmptyWorkload);
        }
        let geometry = cfg.geometry();
        let mapping = AddressMapping::new(geometry, cfg.mapping);
        let refresh_timing = cfg.refresh_timing();
        let faults = cfg
            .fault_plan
            .as_ref()
            .map(|p| p.expand(geometry.banks_per_channel(), geometry.rows_per_bank));
        let mcs: Vec<Box<dyn MemoryBackend>> = (0..cfg.channels)
            .map(|_| {
                let mut mc = build_backend(
                    cfg.backend,
                    mapping,
                    cfg.timing_params(),
                    refresh_timing,
                    cfg.refresh_policy,
                    cfg.controller,
                    cfg.shadow,
                );
                mc.set_tick_path(cfg.tick_path);
                if let Some(f) = &faults {
                    mc.inject_faults(f.clone());
                }
                mc
            })
            .collect();
        // Geometry handshake: the backend must agree on the topology the
        // OS allocator and address mapping were derived from (the
        // misalignment pitfall this trait exists to close).
        for mc in &mcs {
            mc.descriptor()
                .validate_geometry(&geometry)
                .map_err(RefsimError::InvalidConfig)?;
        }
        let alloc = BankAwareAllocator::new(mapping);
        let total_banks = geometry.total_banks();
        let part = plan(
            cfg.partition,
            PartitionInput {
                total_banks,
                banks_per_rank: geometry.banks_per_rank,
                n_cores: cfg.n_cores,
                n_tasks: mix.len() as u32,
            },
        );
        let mut sched = Scheduler::new(cfg.sched_policy, cfg.effective_timeslice(), cfg.n_cores);
        let mut os_tasks = Vec::with_capacity(mix.len());
        let mut sims = Vec::with_capacity(mix.len());
        for (i, &bench) in mix.tasks.iter().enumerate() {
            let mut t = OsTask::new(
                TaskId(i as u32),
                bench.name(),
                part.cpus[i],
                part.banks[i],
                total_banks,
            );
            sched.enqueue(&mut t);
            os_tasks.push(t);
            sims.push(TaskSim {
                wl: TaskWorkload::new(bench, cfg.seed ^ (i as u64).wrapping_mul(0x9E3779B9)),
                ctx: ExecContext::new(),
                pending: None,
                tlb: None,
            });
        }
        let cores = (0..cfg.n_cores)
            .map(|_| CoreSlot {
                caches: CacheHierarchy::table1(),
                current: None,
                sched_base: Ps::ZERO,
                quantum_end: Ps::ZERO,
                inflight_lines: HashMap::new(),
            })
            .collect();
        let n = mix.len();
        let san = if cfg.audit == AuditLevel::Off {
            None
        } else {
            Some(Box::new(Sanitizer::standard(
                cfg.audit,
                &audit_scope(&cfg, n as u32),
            )))
        };
        let skip_overshoot = cfg.debug_skip_overshoot;
        let mut sys = System {
            cfg,
            clock: Ps::ZERO,
            mcs,
            mapping,
            cores,
            os_tasks,
            sims,
            sched,
            alloc,
            next_req: 1,
            inflight: FnvMap::new(),
            base: vec![TaskSnapshot::default(); n],
            sched_base_stats: Default::default(),
            measure_start: Ps::ZERO,
            san,
            quanta: 0,
            last_report: None,
            comp_buf: Vec::new(),
            trace_buf: Vec::new(),
            skip_overshoot,
            engine_stats: EngineStats::default(),
            cancel: None,
            shard_span: None,
        };
        if sys.san.is_some() {
            // Checkers consume the controller command trace as events.
            for mc in &mut sys.mcs {
                mc.enable_trace();
            }
        }
        Ok(sys)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Installs a cooperative-cancellation flag, polled once per
    /// [`System::try_run_until`] step-loop iteration alongside the
    /// forward-progress watchdog. When the flag goes `true` the current
    /// span returns [`RefsimError::Cancelled`] at the next iteration
    /// instead of running to its end — the hook the sweep executor's
    /// straggler supervisor uses to reclaim a worker from an
    /// over-deadline cell. An untriggered hook never affects results:
    /// the check reads shared state but writes none.
    pub fn set_cancel_hook(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Current simulation time.
    pub fn now(&self) -> Ps {
        self.clock
    }

    /// Channel-0 memory backend (read access for reports/examples).
    pub fn controller(&self) -> &dyn MemoryBackend {
        &*self.mcs[0]
    }

    /// Read access to every channel's memory backend, in channel order
    /// (the differential validator folds protocol digests across all
    /// channels, not just channel 0).
    pub fn backends(&self) -> impl Iterator<Item = &dyn MemoryBackend> + '_ {
        self.mcs.iter().map(|m| &**m)
    }

    /// The page allocator (for allocation statistics).
    pub fn allocator(&self) -> &BankAwareAllocator {
        &self.alloc
    }

    /// The OS task table.
    pub fn tasks(&self) -> &[OsTask] {
        &self.os_tasks
    }

    /// Runs warm-up then the measured phase and returns its metrics.
    ///
    /// # Panics
    ///
    /// Panics on any simulation fault — see [`System::try_run`] for the
    /// non-panicking variant experiment sweeps use.
    pub fn run(&mut self) -> RunMetrics {
        self.try_run()
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Fallible [`System::run`]: any fault (memory-substrate error,
    /// exhausted memory, lost forward progress) surfaces as a typed
    /// [`RefsimError`] instead of a panic. When retention tracking is
    /// enabled the end-of-run audit executes before metrics are
    /// collected, so stale rows show up in
    /// [`refsim_dram::stats::ControllerStats::retention_violations`].
    ///
    /// # Errors
    ///
    /// Returns the first fault encountered; the system is left in its
    /// at-fault state for post-mortem inspection.
    pub fn try_run(&mut self) -> Result<RunMetrics, RefsimError> {
        let warm_end = self.cfg.warmup;
        let meas_end = self.cfg.warmup + self.cfg.measure;
        self.try_run_until(warm_end)?;
        self.begin_measure();
        self.try_run_until(meas_end)?;
        self.audit_retention();
        self.finish_audit()?;
        Ok(self.collect())
    }

    /// Completes the invariant audit: delivers a final quantum sample to
    /// every checker, stores the [`ViolationReport`] (see
    /// [`System::violation_report`]), and fails with
    /// [`RefsimError::InvariantViolation`] when any error-severity
    /// violation was found. A no-op when auditing is off or the audit
    /// already finished. Call after [`System::audit_retention`] so
    /// end-of-run oracle findings are mirrored into the report.
    pub fn finish_audit(&mut self) -> Result<(), RefsimError> {
        let Some(san) = self.san.take() else {
            return Ok(());
        };
        self.quanta += 1;
        let sample = self.quantum_sample();
        let report = san.finish(&sample);
        self.last_report = Some(report.clone());
        if report.is_clean() {
            Ok(())
        } else {
            Err(RefsimError::InvariantViolation(Box::new(report)))
        }
    }

    /// The completed audit report, if [`System::finish_audit`] has run
    /// (present for both clean and violating runs).
    pub fn violation_report(&self) -> Option<&ViolationReport> {
        self.last_report.as_ref()
    }

    /// Runs the end-of-run retention audit on every memory controller at
    /// the current clock (a no-op unless retention tracking is enabled).
    /// [`System::try_run`] calls this automatically; external drivers
    /// that advance the system with [`System::run_until`] spans call it
    /// before [`System::collect`].
    pub fn audit_retention(&mut self) {
        let now = self.clock;
        for mc in &mut self.mcs {
            mc.audit_retention(now);
        }
    }

    /// Advances simulation to `t_end` (idempotent if already there).
    ///
    /// # Panics
    ///
    /// Panics on any simulation fault — see [`System::try_run_until`].
    pub fn run_until(&mut self, t_end: Ps) {
        self.try_run_until(t_end)
            .unwrap_or_else(|e| panic!("simulation failed: {e}"));
    }

    /// Exclusive access to channel `ch`'s backend: a plain borrow
    /// between spans, a (virtually uncontended) lane lock during a
    /// [`ShardMode::Channel`] span — the main thread only touches lanes
    /// while workers are parked between steps.
    fn mc(&mut self, ch: usize) -> McMut<'_> {
        match &self.shard_span {
            Some(span) => McMut::Lane(lock_lane(&span.lanes[ch])),
            None => McMut::Own(&mut *self.mcs[ch]),
        }
    }

    /// Shared access to channel `ch`'s backend (see [`System::mc`]).
    fn mc_ref(&self, ch: usize) -> McRef<'_> {
        match &self.shard_span {
            Some(span) => McRef::Lane(lock_lane(&span.lanes[ch])),
            None => McRef::Own(&*self.mcs[ch]),
        }
    }

    /// The effective shard-worker count: 1 (serial walk) unless
    /// [`ShardMode::Channel`] is selected, in which case the configured
    /// budget — `shard_threads`, else the sweep executor's
    /// [`default_threads`] (`REFSIM_THREADS`-overridable) — capped at
    /// the channel count.
    fn shard_workers(&self) -> usize {
        if self.cfg.shard != ShardMode::Channel {
            return 1;
        }
        let budget = self
            .cfg
            .shard_threads
            .map(|n| n as usize)
            .unwrap_or_else(default_threads);
        budget.clamp(1, self.cfg.channels as usize)
    }

    /// Fallible [`System::run_until`], guarded by a forward-progress
    /// watchdog: the step loop gets a budget comfortably above the
    /// maximum number of step/quantum boundaries the span can contain,
    /// and exceeding it returns [`RefsimError::NoProgress`] with a
    /// [`SystemSnapshot`] instead of hanging the harness.
    ///
    /// Under [`ShardMode::Channel`] (with ≥ 2 channels and ≥ 2 worker
    /// threads) the span runs with per-channel ticks fanned out over a
    /// scoped worker pool; completions, traces, and stats are merged in
    /// strict channel order, so results are bit-identical to the serial
    /// walk (pinned by the engine-equivalence suite).
    ///
    /// # Errors
    ///
    /// Propagates controller faults ([`RefsimError::Dram`]), memory
    /// exhaustion, and watchdog trips.
    pub fn try_run_until(&mut self, t_end: Ps) -> Result<(), RefsimError> {
        let workers = self.shard_workers();
        if workers > 1 && self.clock < t_end {
            self.run_span_sharded(t_end, workers)
        } else {
            self.run_span(t_end)
        }
    }

    /// Runs one sharded span: moves the channel backends into mutex
    /// lanes, spawns `workers` scoped shard threads (once for the whole
    /// span — the per-step handoff is atomics, not thread churn), runs
    /// the ordinary step loop with phase 4's advances delegated to the
    /// workers, then joins and moves the backends back.
    fn run_span_sharded(&mut self, t_end: Ps, workers: usize) -> Result<(), RefsimError> {
        debug_assert!(self.shard_span.is_none(), "shard spans must not nest");
        let n = self.mcs.len();
        let lanes: ShardLanes = Arc::new(
            std::mem::take(&mut self.mcs)
                .into_iter()
                .map(Mutex::new)
                .collect(),
        );
        let errs: Arc<Vec<Mutex<Option<DramError>>>> =
            Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let coord = Arc::new(ShardCoord::default());
        self.shard_span = Some(ShardSpan {
            lanes: Arc::clone(&lanes),
            errs: Arc::clone(&errs),
            coord: Arc::clone(&coord),
            workers,
        });
        let result = std::thread::scope(|scope| {
            // Dropped on every exit path — normal return, error, or
            // panic unwind — so the workers' spin loops always end
            // before the scope joins them.
            let _stop = StopWorkersOnDrop(&coord);
            for w in 0..workers {
                let lanes = Arc::clone(&lanes);
                let errs = Arc::clone(&errs);
                let coord = Arc::clone(&coord);
                let channels: Vec<usize> = (0..n).filter(|ch| ch % workers == w).collect();
                scope.spawn(move || shard_worker(&lanes, &errs, &coord, &channels));
            }
            self.run_span(t_end)
        });
        self.shard_span = None;
        drop((errs, coord));
        let lanes = match Arc::try_unwrap(lanes) {
            Ok(lanes) => lanes,
            // Workers joined and the span handle was dropped above, so
            // this Arc is the last one; unreachable by construction.
            Err(_) => unreachable!("shard lanes still shared after scope join"),
        };
        self.mcs = lanes
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        result
    }

    /// Publishes `step_end` to the span's workers, waits for every
    /// shard's acknowledgement, and surfaces the lowest-channel error if
    /// any advance faulted (deterministic regardless of worker timing).
    fn advance_channels_sharded(&mut self, step_end: Ps) -> Result<(), RefsimError> {
        let span = self.shard_span.as_ref().expect("sharded span active");
        span.coord.target.store(step_end.as_ps(), Ordering::Relaxed);
        let seq = span.coord.seq.fetch_add(1, Ordering::Release) + 1;
        let want = seq.saturating_mul(span.workers as u64);
        spin_until(|| span.coord.done.load(Ordering::Acquire) >= want);
        for errslot in span.errs.iter() {
            let taken = errslot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            if let Some(e) = taken {
                return Err(e.into());
            }
        }
        Ok(())
    }

    /// The step loop shared by the serial and sharded paths (the latter
    /// only swaps how phase 4's channel advances are executed).
    fn run_span(&mut self, t_end: Ps) -> Result<(), RefsimError> {
        let span = t_end.saturating_sub(self.clock).as_ps();
        let budget = watchdog_budget(
            span,
            self.cfg.step.as_ps(),
            self.sched.timeslice().as_ps(),
            self.cores.len() as u64,
        );
        let mut steps = 0u64;
        while self.clock < t_end {
            steps += 1;
            self.engine_stats.iterations += 1;
            if steps > budget {
                return Err(RefsimError::NoProgress {
                    at: self.clock,
                    steps,
                    snapshot: Box::new(self.snapshot()),
                });
            }
            // Cooperative cancellation rides the same per-iteration gate
            // as the watchdog: a relaxed load when a hook is installed,
            // a single branch when none is (the common case).
            if let Some(c) = &self.cancel {
                if c.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(RefsimError::Cancelled { at: self.clock });
                }
            }
            // 1. Scheduling decisions at the current instant. Each real
            //    preemption closes an audit quantum.
            for c in 0..self.cores.len() {
                if self.maybe_switch(c) {
                    self.audit_quantum();
                }
            }
            // 2. Choose the step boundary: never skip past a quantum end.
            let mut step_end = (self.clock + self.cfg.step).min(t_end);
            for core in &self.cores {
                if core.current.is_some() && core.quantum_end > self.clock {
                    step_end = step_end.min(core.quantum_end);
                }
            }
            // 2b. Event-horizon engine: when the whole machine is
            //     provably inert past `step_end`, jump the boundary to
            //     the earliest instant anything can happen. `step_end`
            //     stays on the exact boundary chain the fixed-step
            //     engine would visit, so both engines are bit-identical.
            if self.cfg.engine == EngineKind::EventSkip {
                step_end = self.skip_horizon(step_end, t_end)?;
            }
            // 3. Cores execute.
            for c in 0..self.cores.len() {
                self.run_core(c, step_end)?;
            }
            // 4. Memory advances; completions unblock contexts. The
            //    advances run serially or fan out to the shard workers;
            //    either way completions are merged *after* every channel
            //    reached the boundary, in strict channel order. That
            //    order is identical to the historical per-channel
            //    advance-then-drain interleaving because a channel's
            //    advance never reads core, task, or sibling-channel
            //    state — only phase 3's enqueues feed it.
            let n_ch = self.cfg.channels as usize;
            if self.shard_span.is_some() {
                self.advance_channels_sharded(step_end)?;
            } else {
                for ch in 0..n_ch {
                    self.mcs[ch].try_advance_to(step_end)?;
                }
            }
            for ch in 0..n_ch {
                let mut comp = std::mem::take(&mut self.comp_buf);
                comp.clear();
                self.mc(ch).drain_completions_into(&mut comp);
                for done in &comp {
                    if let Some((task, core, line)) = self.inflight.remove(done.id.0) {
                        self.cores[core as usize].inflight_lines.remove(&line);
                        self.sims[task as usize].ctx.on_completion(
                            &self.cfg.core,
                            done.id,
                            done.at,
                        );
                    }
                }
                self.comp_buf = comp;
            }
            // 5. The sanitizer consumes this step's DRAM command trace,
            //    likewise merged in channel order.
            if self.san.is_some() {
                let mut buf = std::mem::take(&mut self.trace_buf);
                for ch in 0..n_ch {
                    buf.clear();
                    self.mc(ch).drain_trace_into(&mut buf);
                    if let Some(san) = self.san.as_mut() {
                        for e in &buf {
                            san.on_event(&Event::DramCmd {
                                channel: ch as u32,
                                at: e.at,
                                cmd: e.cmd,
                                rank: e.rank,
                                bank: e.bank,
                            });
                        }
                    }
                }
                self.trace_buf = buf;
            }
            self.clock = step_end;
        }
        Ok(())
    }

    /// The largest step-chain boundary at or before `t`: boundaries are
    /// `clock + k·step` — exactly the instants the fixed-step engine
    /// visits from the current clock (quantum ends and `t_end` truncate
    /// the chain; both are handled by `min`-composition in
    /// [`skip_horizon`](Self::skip_horizon)).
    fn chain_floor(&self, t: Ps) -> Ps {
        if t <= self.clock {
            return self.clock;
        }
        let step = self.cfg.step.as_ps();
        let k = (t - self.clock).as_ps() / step;
        Ps(self.clock.as_ps() + k * step)
    }

    /// The smallest step-chain boundary at or after `t` (see
    /// [`chain_floor`](Self::chain_floor)).
    fn chain_ceil(&self, t: Ps) -> Ps {
        if t <= self.clock {
            return self.clock;
        }
        let step = self.cfg.step.as_ps();
        let k = (t - self.clock).as_ps().div_ceil(step);
        Ps(self.clock.as_ps() + k * step)
    }

    /// Computes the furthest step boundary the event-horizon engine may
    /// jump to in this iteration, or `step_end` when any component can
    /// act before then (no skip — fall back to one fixed step).
    ///
    /// Soundness argument (see DESIGN.md "Engine" for the full
    /// derivation): a span may be skipped only if the fixed-step engine
    /// would perform *no state change* at any elided boundary, and the
    /// landing point is itself a fixed-step boundary. The binding events
    /// are:
    ///
    /// - **Quantum ends** — `maybe_switch` fires at the boundary ≥ each
    ///   core's `quantum_end`; the chain truncates there.
    /// - **Core activity** — a runnable core (or one with back-pressured
    ///   pending memory ops) acts in the step containing its context
    ///   clock, so the skip stops at `chain_floor(ctx.now())`. A stalled
    ///   core with no pending ops is inert until a completion arrives.
    /// - **Idle cores** — re-run their (stat-counting) scheduler pick at
    ///   every boundary; eliding boundaries would elide those picks, so
    ///   an idle machine crawls. The win targets busy, memory-stalled
    ///   machines.
    /// - **Utilization-epoch rolls** — a non-inert controller is never
    ///   leapt across [`MemoryController::advance_cap`], keeping the
    ///   epoch-roll ↔ command interleaving identical to stepwise
    ///   advancement (refresh-rate policies consume those rolls).
    /// - **Read completions** — delivering one can unblock a stalled
    ///   core, so the skip stops at the chain boundary that fixed-step
    ///   would deliver the earliest completion at. The controller
    ///   advances with an early stop
    ///   ([`MemoryController::try_advance_until_completion`]) to
    ///   *discover* that instant; with several channels the laggard
    ///   composition below finds the global minimum without letting any
    ///   channel cross the final boundary.
    fn skip_horizon(&mut self, step_end: Ps, t_end: Ps) -> Result<Ps, RefsimError> {
        let mut w = t_end;
        for core in &self.cores {
            let Some(cur) = core.current else {
                self.engine_stats.no_skip_idle += 1;
                return Ok(step_end);
            };
            if core.quantum_end <= self.clock {
                self.engine_stats.no_skip_core += 1;
                return Ok(step_end);
            }
            w = w.min(core.quantum_end);
            let sim = &self.sims[cur as usize];
            let inert = sim.pending.is_none() && sim.ctx.next_event_time(&self.cfg.core).is_none();
            if !inert {
                w = w.min(self.chain_floor(sim.ctx.now()));
            }
        }
        if w <= step_end {
            self.engine_stats.no_skip_core += 1;
            return Ok(step_end);
        }
        let n_ch = self.cfg.channels as usize;
        for ch in 0..n_ch {
            let cap = self.mc_ref(ch).advance_cap();
            if let Some(cap) = cap {
                if cap <= w {
                    w = w.min(self.chain_floor(Ps(cap.as_ps().saturating_sub(1))));
                    self.engine_stats.epoch_bound += 1;
                }
            }
        }
        if w <= step_end {
            return Ok(step_end);
        }
        debug_assert!(
            (0..n_ch).all(|ch| !self.mc_ref(ch).has_completions()),
            "completions must be drained before a skip decision"
        );
        if n_ch == 1 {
            if self.mc_ref(0).queue_depths().0 > 0 {
                let cas = self.mc(0).try_advance_until_completion(w)?;
                if let Some(cas_at) = cas {
                    w = w.min(self.chain_ceil(cas_at));
                    self.engine_stats.completion_bound += 1;
                }
            }
        } else {
            // "Advance the laggard": discover the earliest read
            // completion across channels with the same early-stop
            // discovery the single-channel path uses, composed as a min
            // over per-channel horizons. Each read-holding channel's
            // next planned action time is a lower bound on its earliest
            // possible completion, and that bound is nondecreasing as
            // the channel advances. Repeatedly advance the channel with
            // the smallest bound, but never past the second-smallest
            // (or `w`): then every sibling's earliest action — and
            // therefore the final, possibly smaller, chosen boundary —
            // is at or after every instant any channel has crossed, so
            // no channel ever overshoots. Channels without queued reads
            // cannot produce completions and are advanced by phase 4
            // as usual.
            let mut bounds: Vec<(Ps, usize)> = Vec::with_capacity(n_ch);
            for ch in 0..n_ch {
                if self.mc_ref(ch).queue_depths().0 == 0 {
                    continue;
                }
                let next = self.mc(ch).next_event_time();
                if let Some(t) = next {
                    bounds.push((t, ch));
                }
            }
            // Smallest bound first; the (Ps, channel) lexicographic
            // order breaks ties toward the lowest channel, keeping the
            // walk deterministic.
            while let Some(&(lb1, ch1)) = bounds.iter().min() {
                if lb1 > w {
                    break; // no channel can act before the horizon
                }
                let lb2 = bounds
                    .iter()
                    .filter(|&&(_, c)| c != ch1)
                    .map(|&(t, _)| t)
                    .min()
                    .unwrap_or(w);
                let target = lb2.min(w);
                let cas = self.mc(ch1).try_advance_until_completion(target)?;
                if let Some(cas_at) = cas {
                    // Every sibling's earliest action is ≥ lb2 ≥ cas_at,
                    // so this is the global earliest completion (ties
                    // land on the same chain boundary).
                    w = w.min(self.chain_ceil(cas_at));
                    self.engine_stats.completion_bound += 1;
                    break;
                }
                // No completion up to `target`: the channel's cursor sits
                // at `target` and its bound strictly grew; re-derive it.
                bounds.retain(|&(_, c)| c != ch1);
                if self.mc_ref(ch1).queue_depths().0 > 0 {
                    let next = self.mc(ch1).next_event_time();
                    if let Some(t) = next {
                        bounds.push((t, ch1));
                    }
                }
            }
        }
        if self.skip_overshoot > Ps::ZERO {
            w = (w + self.skip_overshoot).min(t_end);
        }
        let w = w.max(step_end);
        if w > step_end {
            self.engine_stats.skipped += 1;
            self.engine_stats.steps_elided +=
                (w - step_end).as_ps().div_ceil(self.cfg.step.as_ps());
        }
        Ok(w)
    }

    /// Test hook for the negative-control suite: widens every event-skip
    /// jump by `extra`, deliberately overshooting event horizons
    /// (quantum ends included) to prove a broken engine is caught by the
    /// replay auditor and invariant checkers. Never enable outside
    /// tests.
    #[doc(hidden)]
    pub fn debug_skip_overshoot(&mut self, extra: Ps) {
        self.skip_overshoot = extra;
    }

    /// Engine telemetry for the run so far: loop iterations and the
    /// skip-decision breakdown. Diagnostic only — never checkpointed or
    /// hashed, so reading it cannot perturb replay equivalence.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine_stats
    }

    /// Test hook: capacities of the reusable hot-loop buffers
    /// `(trace, completions)` plus the inflight table's slot count.
    /// Steady-state stepping must not grow any of them — the allocation
    /// regression tests pin that by sampling before and after a window.
    #[doc(hidden)]
    pub fn debug_buffer_capacities(&self) -> (usize, usize, usize) {
        (
            self.trace_buf.capacity(),
            self.comp_buf.capacity(),
            self.inflight.slot_capacity(),
        )
    }

    /// A diagnostic digest of current system state, attached to
    /// [`RefsimError::NoProgress`] and available for logging.
    pub fn snapshot(&self) -> SystemSnapshot {
        let sched = self.sched.stats();
        SystemSnapshot {
            clock: self.clock,
            picks: sched.picks,
            eta_fallbacks: sched.eta_fallbacks,
            inflight_fills: self.inflight.len(),
            // Channel 0 stands for the machine in this diagnostic digest;
            // `mc_ref` keeps it reachable even mid-span (watchdog trips).
            controller: self.mc_ref(0).state_snapshot(),
        }
    }

    // ---- checkpoint / restore ------------------------------------------

    /// Captures the complete dynamic state of the machine as plain data.
    ///
    /// Together with the `(config, mix)` pair the system was built from,
    /// the returned [`SavedSystem`] fully determines every future step:
    /// restoring it into a freshly built twin (see
    /// [`System::import_state`]) and advancing both machines through the
    /// *same* `run_until` boundaries produces bit-identical state.
    /// Snapshots are valid at any step boundary — in practice, whenever
    /// the caller is between `run_until` calls.
    pub fn export_state(&self) -> SavedSystem {
        let cores = self
            .cores
            .iter()
            .map(|core| {
                let mut lines: Vec<(u64, u64)> = core
                    .inflight_lines
                    .iter()
                    .map(|(&line, &id)| (line, id.0))
                    .collect();
                lines.sort_unstable();
                SavedCore {
                    caches: core.caches.save_state(),
                    current: core.current,
                    sched_base: core.sched_base,
                    quantum_end: core.quantum_end,
                    inflight_lines: lines,
                }
            })
            .collect();
        let tasks = self
            .os_tasks
            .iter()
            .map(|t| SavedTask {
                vruntime: t.vruntime,
                state: match t.state {
                    TaskState::Runnable => 0,
                    TaskState::Running => 1,
                    TaskState::Blocked => 2,
                },
                cpu: t.cpu,
                possible_banks: t.possible_banks.bits(),
                last_alloced_bank: t.last_alloced_bank,
                mm: t.mm.save_state(),
                bytes_per_bank: t.bytes_per_bank.clone(),
                spilled_pages: t.spilled_pages,
                cpu_time: t.cpu_time,
                schedules: t.schedules,
            })
            .collect();
        let sims = self
            .sims
            .iter()
            .map(|s| SavedSim {
                wl: s.wl.save_state(),
                ctx: s.ctx.save_state(),
                pending: s.pending.map(|p| SavedPendingMem {
                    writeback: p.writeback,
                    fill: p.fill,
                    write: p.write,
                    dependent: p.dependent,
                }),
            })
            .collect();
        let mut inflight: Vec<SavedInflight> = self
            .inflight
            .iter()
            .map(|(id, &(task, core, line))| SavedInflight {
                id,
                task,
                core,
                line,
            })
            .collect();
        inflight.sort_unstable_by_key(|i| i.id);
        SavedSystem {
            clock: self.clock,
            next_req: self.next_req,
            measure_start: self.measure_start,
            mcs: self.mcs.iter().map(|mc| mc.save_backend()).collect(),
            cores,
            tasks,
            sims,
            sched: self.sched.save_state(),
            alloc: self.alloc.save_state(),
            inflight,
            base: self
                .base
                .iter()
                .map(|b| SavedBaseline {
                    instructions: b.instructions,
                    stall: b.stall,
                    misses: b.misses,
                    faults: b.faults,
                    spilled: b.spilled,
                    cpu_time: b.cpu_time,
                    schedules: b.schedules,
                })
                .collect(),
            sched_base_stats: self.sched_base_stats,
        }
    }

    /// Imports dynamic state captured by [`System::export_state`] into
    /// this machine, which must have been built from the same
    /// `(config, mix)` pair (use [`System::restore`] for the checked,
    /// fingerprinted path).
    ///
    /// # Errors
    ///
    /// Returns a description of the first incompatibility (component
    /// count, queue capacity, policy word-set, tag values…). On error
    /// the machine may be partially updated and must be discarded.
    pub fn import_state(&mut self, s: &SavedSystem) -> Result<(), String> {
        if s.mcs.len() != self.mcs.len() {
            return Err(format!(
                "channel count mismatch: saved {} vs built {}",
                s.mcs.len(),
                self.mcs.len()
            ));
        }
        if s.cores.len() != self.cores.len() {
            return Err(format!(
                "core count mismatch: saved {} vs built {}",
                s.cores.len(),
                self.cores.len()
            ));
        }
        let n = self.os_tasks.len();
        if s.tasks.len() != n || s.sims.len() != n || s.base.len() != n {
            return Err(format!(
                "task count mismatch: saved {}/{}/{} vs built {n}",
                s.tasks.len(),
                s.sims.len(),
                s.base.len()
            ));
        }
        for (mc, saved) in self.mcs.iter_mut().zip(&s.mcs) {
            mc.restore_backend(saved)?;
        }
        for (core, saved) in self.cores.iter_mut().zip(&s.cores) {
            if let Some(t) = saved.current {
                if t as usize >= n {
                    return Err(format!("core runs unknown task {t}"));
                }
            }
            core.caches.restore_state(&saved.caches)?;
            core.current = saved.current;
            core.sched_base = saved.sched_base;
            core.quantum_end = saved.quantum_end;
            core.inflight_lines = saved
                .inflight_lines
                .iter()
                .map(|&(line, id)| (line, ReqId(id)))
                .collect();
        }
        for (t, saved) in self.os_tasks.iter_mut().zip(&s.tasks) {
            t.state = match saved.state {
                0 => TaskState::Runnable,
                1 => TaskState::Running,
                2 => TaskState::Blocked,
                other => return Err(format!("unknown task state tag {other}")),
            };
            if saved.bytes_per_bank.len() != t.bytes_per_bank.len() {
                return Err(format!(
                    "bank count mismatch: saved {} vs built {}",
                    saved.bytes_per_bank.len(),
                    t.bytes_per_bank.len()
                ));
            }
            t.vruntime = saved.vruntime;
            t.cpu = saved.cpu;
            t.possible_banks = BankVector::from_bits(saved.possible_banks);
            t.last_alloced_bank = saved.last_alloced_bank;
            t.mm.restore_state(&saved.mm)?;
            t.bytes_per_bank.clone_from(&saved.bytes_per_bank);
            t.spilled_pages = saved.spilled_pages;
            t.cpu_time = saved.cpu_time;
            t.schedules = saved.schedules;
        }
        for (sim, saved) in self.sims.iter_mut().zip(&s.sims) {
            sim.wl.restore_state(&saved.wl)?;
            sim.ctx.restore_state(&saved.ctx);
            sim.pending = saved.pending.map(|p| PendingMem {
                writeback: p.writeback,
                fill: p.fill,
                write: p.write,
                dependent: p.dependent,
            });
            // The restored page table may disagree with whatever the
            // live run had cached; the TLB is rebuilt on demand.
            sim.tlb = None;
        }
        self.sched.restore_state(&s.sched)?;
        self.alloc.restore_state(&s.alloc)?;
        self.inflight.clear();
        for i in &s.inflight {
            self.inflight.insert(i.id, (i.task, i.core, i.line));
        }
        for (b, saved) in self.base.iter_mut().zip(&s.base) {
            *b = TaskSnapshot {
                instructions: saved.instructions,
                stall: saved.stall,
                misses: saved.misses,
                faults: saved.faults,
                spilled: saved.spilled,
                cpu_time: saved.cpu_time,
                schedules: saved.schedules,
            };
        }
        self.sched_base_stats = s.sched_base_stats;
        self.clock = s.clock;
        self.next_req = s.next_req;
        self.measure_start = s.measure_start;
        // The sanitizer is deliberately not checkpointed: a restored
        // machine restarts auditing from the restore point with fresh
        // checker state (deadline baselines re-anchor on first sample).
        if self.san.is_some() {
            self.san = Some(Box::new(Sanitizer::standard(
                self.cfg.audit,
                &audit_scope(&self.cfg, self.os_tasks.len() as u32),
            )));
            self.quanta = 0;
            self.last_report = None;
            for mc in &mut self.mcs {
                mc.enable_trace();
            }
        }
        Ok(())
    }

    /// Captures a framed, fingerprinted [`Checkpoint`] of this machine.
    /// `mix` must be the workload mix the system was built from — it
    /// contributes to the fingerprint that guards restoration.
    pub fn checkpoint(&self, mix: &WorkloadMix) -> Checkpoint {
        Checkpoint {
            fingerprint: config_fingerprint(&self.cfg, mix),
            state: self.export_state(),
        }
    }

    /// Rebuilds a machine from `(cfg, mix)` and restores `cp` into it.
    ///
    /// # Errors
    ///
    /// [`RefsimError::Checkpoint`] when the checkpoint's fingerprint does
    /// not match `(cfg, mix)` or its state is rejected on import, plus
    /// anything [`System::try_new`] can return.
    pub fn restore(
        cfg: SystemConfig,
        mix: &WorkloadMix,
        cp: &Checkpoint,
    ) -> Result<Self, RefsimError> {
        cp.check_fingerprint(config_fingerprint(&cfg, mix))
            .map_err(|e| RefsimError::Checkpoint(e.to_string()))?;
        let mut sys = Self::try_new(cfg, mix)?;
        sys.import_state(&cp.state)
            .map_err(RefsimError::Checkpoint)?;
        Ok(sys)
    }

    /// Marks the warm-up → measurement boundary: statistics reset while
    /// all architectural state (caches, row buffers, schedules) stays
    /// warm.
    pub fn begin_measure(&mut self) {
        // Account partially-run quanta so cpu_time deltas stay exact.
        for c in 0..self.cores.len() {
            self.checkpoint_running(c);
        }
        for (i, sim) in self.sims.iter().enumerate() {
            let t = &self.os_tasks[i];
            self.base[i] = TaskSnapshot {
                instructions: sim.ctx.instructions(),
                stall: sim.ctx.stall_time(),
                misses: sim.ctx.misses(),
                faults: t.mm.faults(),
                spilled: t.spilled_pages,
                cpu_time: t.cpu_time,
                schedules: t.schedules,
            };
        }
        for mc in &mut self.mcs {
            mc.reset_stats();
        }
        for core in &mut self.cores {
            core.caches.reset_stats();
        }
        // Counter-baseline checkers must re-base: a sampled audit may
        // never observe the reset as a counter regression.
        if let Some(san) = self.san.as_mut() {
            san.on_stats_reset();
        }
        self.sched_base_stats = *self.sched.stats();
        self.measure_start = self.clock;
    }

    /// Folds the running task's elapsed quantum into its `cpu_time`
    /// without descheduling it.
    fn checkpoint_running(&mut self, c: usize) {
        let core = &mut self.cores[c];
        if let Some(cur) = core.current {
            let t = &mut self.os_tasks[cur as usize];
            let now = self.sims[cur as usize].ctx.now().max(self.clock);
            let ran = now.saturating_sub(core.sched_base);
            t.cpu_time += ran;
            core.sched_base = now;
        }
    }

    /// Builds the measured-phase metrics.
    pub fn collect(&mut self) -> RunMetrics {
        for c in 0..self.cores.len() {
            self.checkpoint_running(c);
        }
        let tasks = (0..self.sims.len())
            .map(|i| {
                let sim = &self.sims[i];
                let t = &self.os_tasks[i];
                let b = &self.base[i];
                TaskMetrics {
                    task: i as u32,
                    label: t.label.clone(),
                    instructions: sim.ctx.instructions() - b.instructions,
                    cpu_time: t.cpu_time - b.cpu_time,
                    stall_time: sim.ctx.stall_time() - b.stall,
                    llc_misses: sim.ctx.misses() - b.misses,
                    faults: t.mm.faults() - b.faults,
                    spilled_pages: t.spilled_pages - b.spilled,
                    schedules: t.schedules - b.schedules,
                }
            })
            .collect();
        let mut sched = *self.sched.stats();
        sched.picks -= self.sched_base_stats.picks;
        sched.refresh_dodges -= self.sched_base_stats.refresh_dodges;
        sched.eta_fallbacks -= self.sched_base_stats.eta_fallbacks;
        sched.migrations -= self.sched_base_stats.migrations;
        // Controller counters aggregate across channels (sums for
        // counts/totals, max for maxima); at one channel this is exactly
        // channel 0's stats, bit-identical to prior releases.
        let mut controller = self.mcs[0].stats().clone();
        for mc in &self.mcs[1..] {
            controller.accumulate(mc.stats());
        }
        RunMetrics {
            tasks,
            sim_time: self.clock - self.measure_start,
            controller,
            sched,
            cpu_period: self.cfg.core.period,
            dram_period: self.cfg.timing_params().tck,
        }
    }

    // ---- scheduling ----------------------------------------------------

    /// The set of *global* banks forecast busy with refresh during a
    /// quantum `[start, end)` — at most one bank per channel, empty when
    /// the scheduler does not care or no channel's schedule is
    /// predictable. Each channel's within-channel forecast is lifted to
    /// the global index space (`channel × banksPerChannel + flat`), the
    /// same convention `BankAwareAllocator::bank_of` and the exclusion
    /// windows use.
    fn forecast_busy(&mut self, start: Ps, end: Ps) -> BankVector {
        if !matches!(self.sched.policy(), SchedPolicy::RefreshAware { .. }) {
            return BankVector::EMPTY;
        }
        let g = self.cfg.geometry();
        let (bpc, bpr) = (g.banks_per_channel(), g.banks_per_rank);
        let mut busy = BankVector::EMPTY;
        for ch in 0..self.cfg.channels as usize {
            let forecast = self.mc_ref(ch).refresh_forecast(start, end);
            if let BusyForecast::Bank(b) = forecast {
                busy.insert(ch as u32 * bpc + b.flat(bpr));
            }
        }
        busy
    }

    /// Runs a scheduling decision on core `c`; returns whether a running
    /// task was actually preempted (i.e. an audit quantum closed — idle
    /// cores "expire" every step and must not count).
    fn maybe_switch(&mut self, c: usize) -> bool {
        let t_now = self.clock;
        let expired = match self.cores[c].current {
            Some(_) => t_now >= self.cores[c].quantum_end,
            None => true,
        };
        if !expired {
            return false;
        }
        // Preempt the incumbent.
        let mut preempted = false;
        let switch_at = if let Some(cur) = self.cores[c].current.take() {
            let ctx_now = self.sims[cur as usize].ctx.now();
            let preempt_t = ctx_now.max(self.cores[c].quantum_end);
            let ran = preempt_t.saturating_sub(self.cores[c].sched_base);
            self.sched.requeue(&mut self.os_tasks[cur as usize], ran);
            preempted = true;
            preempt_t.max(t_now)
        } else {
            t_now
        };
        // The upcoming quantum runs to the next refresh-slice boundary
        // under the co-design (so the quantum always lies within one
        // slice — even if the switch itself overshot a boundary by a few
        // nanoseconds), or one fixed timeslice otherwise. Channel 0's
        // boundary is every channel's boundary: identically configured
        // channels build the same time-driven schedule (phase-aligned
        // from t = 0), and dynamic policies — whose per-channel state
        // could drift — report no boundary and fall back to the fixed
        // timeslice anyway.
        let refresh_aware = matches!(self.sched.policy(), SchedPolicy::RefreshAware { .. });
        let boundary = self.mc_ref(0).refresh_boundary_after(switch_at);
        let quantum_end = match boundary {
            Some(b) if refresh_aware => b,
            _ => switch_at + self.sched.timeslice(),
        };
        // Pick the successor (Algorithm 3 under the co-design, fed one
        // busy bank per channel).
        let busy = self.forecast_busy(switch_at, quantum_end);
        if let Some(id) = self.sched.pick_next(c as u32, busy, &mut self.os_tasks) {
            let sim = &mut self.sims[id.0 as usize];
            let start = switch_at + self.cfg.ctx_switch_cost;
            sim.ctx.set_now(sim.ctx.now().max(start));
            let core = &mut self.cores[c];
            core.current = Some(id.0);
            core.sched_base = sim.ctx.now();
            core.quantum_end = quantum_end;
        } else {
            let core = &mut self.cores[c];
            core.current = None;
            core.quantum_end = t_now; // retry next step
        }
        preempted
    }

    // ---- invariant audit ------------------------------------------------

    /// Closes one audit quantum: builds a cross-layer sample and feeds
    /// it through the sanitizer (a no-op when auditing is off or the
    /// sampling stride skips this quantum).
    fn audit_quantum(&mut self) {
        let Some(mut san) = self.san.take() else {
            return;
        };
        self.quanta += 1;
        if san.begin_quantum() {
            let sample = self.quantum_sample();
            san.on_quantum(&sample);
        }
        self.san = Some(san);
    }

    /// Snapshots scheduler, task, execution-context, and controller
    /// state into an owned [`QuantumSample`] for the checkers.
    fn quantum_sample(&self) -> QuantumSample {
        let st = self.sched.stats();
        let sched = SchedSample {
            picks: st.picks,
            refresh_dodges: st.refresh_dodges,
            eta_fallbacks: st.eta_fallbacks,
            migrations: st.migrations,
        };
        let tasks = self
            .os_tasks
            .iter()
            .map(|t| TaskSample {
                id: t.id.0,
                runnable: matches!(t.state, TaskState::Runnable | TaskState::Running),
                schedules: t.schedules,
                spilled_pages: t.spilled_pages,
                outside_bytes: t
                    .bytes_per_bank
                    .iter()
                    .enumerate()
                    .filter(|&(b, _)| !t.possible_banks.contains(b as u32))
                    .map(|(_, &bytes)| bytes)
                    .sum(),
            })
            .collect();
        let cores = self
            .sims
            .iter()
            .map(|s| {
                let p = s.ctx.probe();
                CoreSample {
                    now: p.now,
                    instructions: p.instructions,
                    stall_time: p.stall_time,
                    misses: p.misses,
                    outstanding: p.outstanding,
                }
            })
            .collect();
        let chans = (0..self.cfg.channels as usize)
            .map(|ch| {
                let mc = self.mc_ref(ch);
                let cs = mc.stats();
                let (rq, wq) = mc.queue_depths();
                ChannelSample {
                    reads_enqueued: cs.reads_enqueued,
                    writes_enqueued: cs.writes_enqueued,
                    reads_completed: cs.reads_completed,
                    writes_completed: cs.writes_completed,
                    forwarded_reads: cs.forwarded_reads,
                    read_q: rq as u64,
                    write_q: wq as u64,
                    refreshes_ab: cs.refreshes_ab,
                    refreshes_pb: cs.refreshes_pb,
                    postpone_max: cs.refresh_postpone_max,
                    oracle_enabled: mc.integrity().is_some(),
                    oracle_violations: cs.retention_violations,
                    rows_refreshed: mc
                        .bank_report()
                        .iter()
                        .map(|&(_, _, rows, _)| rows)
                        .collect(),
                }
            })
            .collect();
        QuantumSample {
            now: self.clock,
            quantum: self.quanta,
            sched,
            tasks,
            cores,
            chans,
            inflight_fills: self.inflight.len() as u64,
            alloc_audit: self.alloc.audit(),
        }
    }

    // ---- core execution ------------------------------------------------

    fn run_core(&mut self, c: usize, step_end: Ps) -> Result<(), RefsimError> {
        if self.cfg.tick_path == TickPath::Batched {
            return self.run_core_batched(c, step_end);
        }
        loop {
            let Some(cur) = self.cores[c].current else {
                return Ok(());
            };
            let cur = cur as usize;
            let limit = step_end.min(self.cores[c].quantum_end);
            if self.sims[cur].ctx.now() >= limit {
                return Ok(());
            }
            // Retry back-pressured memory operations first.
            if self.sims[cur].pending.is_some() && !self.flush_pending(c, cur) {
                return Ok(()); // still full; wait for the controller to drain
            }
            if self.sims[cur].ctx.stall(&self.cfg.core).is_some() {
                return Ok(()); // blocked on a miss; completion will unblock
            }
            self.process_op(c, cur)?;
        }
    }

    /// Batched mirror of the reference `run_core` loop.
    ///
    /// The per-op loop above pays four probes per instruction stream op
    /// (current task, limit, back-pressure, stall); all four are loop
    /// invariants except across a miss. This variant hoists them and
    /// runs stall-check-free bursts: `issue_headroom` is positive
    /// exactly when `stall()` is `None`, and between misses it falls by
    /// exactly the per-op instruction count, so the reference loop's
    /// per-op stall probe is redundant inside a burst. Every observable
    /// effect (`ctx` accounting, cache state, request stream) is
    /// bit-identical to the reference path.
    fn run_core_batched(&mut self, c: usize, step_end: Ps) -> Result<(), RefsimError> {
        let Some(cur) = self.cores[c].current else {
            return Ok(());
        };
        let cur = cur as usize;
        // Invariant across the whole call: nothing below reschedules
        // this core or moves its quantum boundary.
        let limit = step_end.min(self.cores[c].quantum_end);
        loop {
            if self.sims[cur].ctx.now() >= limit {
                return Ok(());
            }
            // Retry back-pressured memory operations first.
            if self.sims[cur].pending.is_some() && !self.flush_pending(c, cur) {
                return Ok(()); // still full; wait for the controller to drain
            }
            let mut headroom = self.sims[cur].ctx.issue_headroom(&self.cfg.core);
            if headroom == 0 {
                return Ok(()); // blocked on a miss; completion will unblock
            }
            while headroom > 0 {
                if self.sims[cur].ctx.now() >= limit {
                    return Ok(());
                }
                let op = self.sims[cur].wl.next_op_fast();
                self.sims[cur]
                    .ctx
                    .execute(&self.cfg.core, u64::from(op.non_mem));
                headroom = headroom.saturating_sub(u64::from(op.non_mem));
                let Some(m) = op.mem else {
                    continue;
                };
                headroom = headroom.saturating_sub(1);
                let paddr = self.translate_fast(cur, m.vaddr)?;
                match self.cores[c].caches.access_fast(paddr, m.write) {
                    HierOutcome::L1Hit => self.sims[cur].ctx.on_l1_hit(&self.cfg.core),
                    HierOutcome::L2Hit => self.sims[cur].ctx.on_l2_hit(&self.cfg.core),
                    HierOutcome::Miss {
                        line_addr,
                        writeback,
                    } => {
                        self.sims[cur].pending = Some(PendingMem {
                            writeback,
                            fill: Some(line_addr),
                            write: m.write,
                            dependent: m.dependent,
                        });
                        let _ = self.flush_pending(c, cur);
                        // A miss rewires the stall state (MSHR entry,
                        // maybe a dependent block); re-derive headroom.
                        break;
                    }
                }
            }
        }
    }

    fn process_op(&mut self, c: usize, cur: usize) -> Result<(), RefsimError> {
        let op = self.sims[cur].wl.next_op();
        self.sims[cur]
            .ctx
            .execute(&self.cfg.core, u64::from(op.non_mem));
        if let Some(m) = op.mem {
            let paddr = self.translate(cur, m.vaddr)?;
            let outcome = self.cores[c].caches.access(paddr, m.write);
            match outcome {
                HierOutcome::L1Hit => self.sims[cur].ctx.on_l1_hit(&self.cfg.core),
                HierOutcome::L2Hit => self.sims[cur].ctx.on_l2_hit(&self.cfg.core),
                HierOutcome::Miss {
                    line_addr,
                    writeback,
                } => {
                    self.sims[cur].pending = Some(PendingMem {
                        writeback,
                        fill: Some(line_addr),
                        write: m.write,
                        dependent: m.dependent,
                    });
                    let _ = self.flush_pending(c, cur);
                }
            }
        }
        Ok(())
    }

    /// Translates `vaddr` for task `cur`, demand-faulting a page in via
    /// the bank-aware allocator (Algorithm 2) if needed.
    fn translate(&mut self, cur: usize, vaddr: u64) -> Result<u64, RefsimError> {
        let t = &mut self.os_tasks[cur];
        if let Some(p) = t.mm.translate(vaddr) {
            return Ok(p);
        }
        let page = self
            .alloc
            .alloc_page(t.possible_banks, &mut t.last_alloced_bank)
            .map_err(|_| RefsimError::OutOfMemory {
                task: cur as u32,
                vaddr,
            })?;
        t.mm.map(vaddr, page.frame);
        t.note_page(page.bank, page.fell_back);
        let permitted = t.possible_banks.bits();
        if let Some(san) = self.san.as_mut() {
            san.on_event(&Event::PageAlloc {
                task: cur as u32,
                bank: page.bank,
                permitted,
                fell_back: page.fell_back,
                hard: matches!(self.cfg.partition, PartitionPlan::Hard),
                at: self.clock,
            });
        }
        let sim = &mut self.sims[cur];
        let now = sim.ctx.now();
        sim.ctx.set_now(now + self.cfg.fault_cost);
        Ok(t.mm.translate(vaddr).expect("just mapped"))
    }

    /// TLB-accelerated [`System::translate`]: consults the task's
    /// one-entry translation cache before walking the page table.
    /// Mappings only grow and never move (`AddressSpace::map` rejects
    /// remaps), so a hit reproduces the page-table walk bit for bit.
    #[inline]
    fn translate_fast(&mut self, cur: usize, vaddr: u64) -> Result<u64, RefsimError> {
        let vpn = vaddr / PAGE_BYTES;
        let offset = vaddr % PAGE_BYTES;
        if let Some((cached_vpn, frame_base)) = self.sims[cur].tlb {
            if cached_vpn == vpn {
                return Ok(frame_base + offset);
            }
        }
        let paddr = self.translate(cur, vaddr)?;
        self.sims[cur].tlb = Some((vpn, paddr - offset));
        Ok(paddr)
    }

    /// Attempts to hand the task's pending memory operations to the
    /// memory system; returns whether everything was accepted.
    fn flush_pending(&mut self, c: usize, cur: usize) -> bool {
        let Some(mut p) = self.sims[cur].pending.take() else {
            return true;
        };
        let now = self.sims[cur].ctx.now();
        if let Some(wb) = p.writeback {
            let loc = self.mapping.decode(wb);
            let ch = loc.channel as usize;
            if !self.mc(ch).can_accept_write() {
                self.sims[cur].pending = Some(p);
                return false;
            }
            let req = MemRequest {
                id: ReqId(self.next_req),
                kind: ReqKind::Write,
                paddr: wb,
                loc,
                arrival: now,
                core: c as u8,
                task: cur as u32,
            };
            self.next_req += 1;
            self.mc(ch).enqueue(req).expect("checked capacity");
            p.writeback = None;
        }
        if let Some(line) = p.fill {
            // MSHR coalescing: a fill for this line is already in
            // flight — treat as an L2 hit (data arrives with the
            // earlier fill).
            if self.cores[c].inflight_lines.contains_key(&line) {
                self.sims[cur].ctx.on_l2_hit(&self.cfg.core);
                p.fill = None;
            } else {
                let loc = self.mapping.decode(line);
                let ch = loc.channel as usize;
                if !self.mc(ch).can_accept_read() {
                    self.sims[cur].pending = Some(p);
                    return false;
                }
                let id = ReqId(self.next_req);
                self.next_req += 1;
                let req = MemRequest {
                    id,
                    kind: ReqKind::Read,
                    paddr: line,
                    loc,
                    arrival: now,
                    core: c as u8,
                    task: cur as u32,
                };
                self.mc(ch).enqueue(req).expect("checked capacity");
                self.inflight.insert(id.0, (cur as u32, c as u8, line));
                self.cores[c].inflight_lines.insert(line, id);
                self.sims[cur]
                    .ctx
                    .on_miss(&self.cfg.core, id, !p.write, p.dependent);
                p.fill = None;
            }
        }
        debug_assert!(p.writeback.is_none() && p.fill.is_none());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use refsim_dram::refresh::RefreshPolicyKind;
    use refsim_workloads::mix::{by_name, WorkloadMix};
    use refsim_workloads::profiles::Benchmark;

    /// A fast config for unit tests: tiny windows, small scale.
    fn quick(cfg: SystemConfig) -> SystemConfig {
        let mut c = cfg.with_time_scale(512);
        c.warmup = c.trefw() / 4;
        c.measure = c.trefw();
        c
    }

    fn small_mix() -> WorkloadMix {
        WorkloadMix::from_groups(
            "test",
            &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
            "M + L",
        )
    }

    #[test]
    fn runs_and_produces_metrics() {
        let mut sys = System::new(quick(SystemConfig::table1()), &small_mix());
        let m = sys.run();
        assert_eq!(m.tasks.len(), 4);
        assert!(m.tasks.iter().all(|t| t.instructions > 0));
        assert!(m.hmean_ipc() > 0.0);
        assert!(m.controller.reads_completed > 0);
        assert_eq!(m.sim_time, sys.config().measure);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sys = System::new(quick(SystemConfig::table1()), &small_mix());
            let m = sys.run();
            format!("{:?} {:?}", m.tasks, m.controller)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tasks_share_cpu_roughly_fairly() {
        let mut sys = System::new(quick(SystemConfig::table1()), &small_mix());
        let m = sys.run();
        let total: Ps = m.tasks.iter().map(|t| t.cpu_time).sum();
        for t in &m.tasks {
            let share = t.cpu_time.as_ps() as f64 / total.as_ps() as f64;
            assert!(
                (0.15..=0.35).contains(&share),
                "task {} got share {share}",
                t.task
            );
        }
    }

    #[test]
    fn memory_intensity_classes_order_ipc() {
        let mut sys = System::new(quick(SystemConfig::table1()), &small_mix());
        let m = sys.run();
        // povray (L) must achieve higher IPC than stream (M).
        let stream_ipc = m.tasks[0].ipc(m.cpu_period);
        let povray_ipc = m.tasks[2].ipc(m.cpu_period);
        assert!(
            povray_ipc > stream_ipc,
            "povray {povray_ipc} !> stream {stream_ipc}"
        );
    }

    #[test]
    fn no_refresh_beats_all_bank() {
        let base = quick(SystemConfig::table1());
        let m_ab = System::new(base.clone(), &small_mix()).run();
        let m_nr = System::new(
            base.with_refresh(RefreshPolicyKind::NoRefresh),
            &small_mix(),
        )
        .run();
        assert!(
            m_nr.hmean_ipc() > m_ab.hmean_ipc(),
            "no-refresh {} !> all-bank {}",
            m_nr.hmean_ipc(),
            m_ab.hmean_ipc()
        );
    }

    #[test]
    fn co_design_dodges_refreshes() {
        let mut sys = System::new(quick(SystemConfig::table1().co_design()), &small_mix());
        let m = sys.run();
        // The scheduler must be making refresh-aware picks…
        assert!(m.sched.picks > 0);
        // …and the partition must have confined allocations: 4 tasks on
        // 2 cores is the paper's 1:2 consolidation ratio, where each
        // task gets 4 of 8 banks per rank (§6.6) = 8 global banks.
        assert!(sys.tasks().iter().all(|t| t.possible_banks.count() == 8));
    }

    #[test]
    fn co_design_quanta_align_to_slices() {
        let cfg = quick(SystemConfig::table1().co_design());
        let slice = cfg.effective_timeslice();
        let mut sys = System::new(cfg, &small_mix());
        sys.run_until(slice * 3 + slice / 2);
        for c in &sys.cores {
            assert_eq!(
                core_quantum_misalignment(c.quantum_end, slice),
                Ps::ZERO,
                "quantum end {} not slice-aligned",
                c.quantum_end
            );
        }
    }

    fn core_quantum_misalignment(q: Ps, slice: Ps) -> Ps {
        q % slice
    }

    #[test]
    fn single_task_keeps_running() {
        let mix = WorkloadMix::from_groups("solo", &[(Benchmark::Povray, 1)], "L");
        let mut sys = System::new(quick(SystemConfig::table1()), &mix);
        let m = sys.run();
        assert_eq!(m.tasks.len(), 1);
        assert!(m.tasks[0].instructions > 100_000);
        // One idle core is fine; the lone task owns its core apart from
        // context-switch costs at quantum boundaries.
        assert!(m.tasks[0].cpu_time >= sys.config().measure.scale(9, 10));
    }

    #[test]
    fn page_faults_confined_to_permitted_banks_without_pressure() {
        let cfg = quick(SystemConfig::table1().co_design());
        let mix = small_mix();
        let mut sys = System::new(cfg, &mix);
        sys.run();
        for t in sys.tasks() {
            assert_eq!(
                t.spilled_pages, 0,
                "task {} spilled although capacity was ample",
                t.id
            );
            // Data only on permitted banks.
            for b in 0..16u32 {
                if !t.possible_banks.contains(b) {
                    assert_eq!(t.bytes_on_bank(b), 0, "task {} bank {b}", t.id);
                }
            }
        }
    }

    #[test]
    fn try_new_reports_typed_errors() {
        let mut bad = quick(SystemConfig::table1());
        bad.measure = Ps::ZERO;
        match System::try_new(bad, &small_mix()) {
            Err(RefsimError::InvalidConfig(why)) => assert!(why.contains("measure")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let empty = WorkloadMix::from_groups("none", &[], "");
        assert!(matches!(
            System::try_new(quick(SystemConfig::table1()), &empty),
            Err(RefsimError::EmptyWorkload)
        ));
    }

    #[test]
    fn try_run_matches_run() {
        let cfg = quick(SystemConfig::table1());
        let a = System::new(cfg.clone(), &small_mix()).run();
        let b = System::try_new(cfg, &small_mix())
            .expect("valid")
            .try_run()
            .expect("clean run");
        assert_eq!(a.tasks, b.tasks);
    }

    #[test]
    fn retention_oracle_flags_no_refresh_through_config() {
        // NoRefresh long enough that the end-of-run audit sees rows
        // beyond tREFW plus the oracle's postponement slack.
        let mut cfg = quick(SystemConfig::table1())
            .with_refresh(RefreshPolicyKind::NoRefresh)
            .with_retention_tracking();
        cfg.measure = cfg.trefw() * 3;
        let m = System::new(cfg, &small_mix()).run();
        assert!(
            m.controller.retention_violations > 0,
            "audit must flag the never-refreshing system"
        );

        // The stock all-bank baseline stays clean under the same length.
        let mut cfg = quick(SystemConfig::table1()).with_retention_tracking();
        cfg.measure = cfg.trefw() * 3;
        let m = System::new(cfg, &small_mix()).run();
        assert_eq!(m.controller.retention_violations, 0);
    }

    #[test]
    fn config_fault_plan_reaches_the_controller() {
        let mut plan = FaultPlan::none(11);
        plan.delay_ppm = 300_000;
        plan.max_delay = Ps::from_us(2);
        plan.horizon = 10_000;
        let cfg = quick(SystemConfig::table1().co_design())
            .with_retention_tracking()
            .with_fault_plan(plan);
        let m = System::new(cfg, &small_mix()).run();
        assert!(
            m.controller.injected_delay_faults > 0,
            "delay plan never fired"
        );
        assert_eq!(
            m.controller.retention_violations, 0,
            "bounded delay must be absorbed by the sequential schedule"
        );
    }

    #[test]
    fn wl_mix_by_name_runs() {
        let mut cfg = quick(SystemConfig::table1());
        cfg.warmup = cfg.trefw() / 8;
        cfg.measure = cfg.trefw() / 2;
        let mut sys = System::new(cfg, &by_name("WL-4").unwrap());
        let m = sys.run();
        assert_eq!(m.tasks.len(), 8);
    }

    /// Restoring a mid-run checkpoint into a fresh machine and advancing
    /// both through the *same* `run_until` boundaries must be
    /// bit-identical — byte-for-byte in the codec encoding, not merely
    /// structurally equal.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        for cfg in [
            quick(SystemConfig::table1()),
            quick(SystemConfig::table1().co_design()),
        ] {
            let mix = small_mix();
            let mid = cfg.warmup;
            let end = cfg.warmup + cfg.measure / 2;

            let mut reference = System::new(cfg.clone(), &mix);
            reference.run_until(mid);
            let cp = reference.checkpoint(&mix);

            let mut resumed = System::restore(cfg.clone(), &mix, &cp).expect("restore");
            assert_eq!(resumed.now(), mid);
            assert_eq!(
                crate::codec::to_bytes(&resumed.export_state()),
                crate::codec::to_bytes(&cp.state),
                "import/export must be the identity"
            );

            reference.run_until(end);
            resumed.run_until(end);
            assert_eq!(
                crate::codec::to_bytes(&reference.export_state()),
                crate::codec::to_bytes(&resumed.export_state()),
                "resumed run diverged from uninterrupted run"
            );
        }
    }

    /// A checkpoint survives the framed byte format (not just the
    /// in-memory structs) and still resumes bit-identically.
    #[test]
    fn checkpoint_survives_serialization() {
        let cfg = quick(SystemConfig::table1().co_design());
        let mix = small_mix();
        let mut sys = System::new(cfg.clone(), &mix);
        sys.run_until(cfg.warmup / 2);
        let bytes = sys.checkpoint(&mix).to_bytes();
        let cp = crate::checkpoint::Checkpoint::from_bytes(&bytes).expect("parse");
        let restored = System::restore(cfg, &mix, &cp).expect("restore");
        assert_eq!(
            crate::codec::to_bytes(&restored.export_state()),
            crate::codec::to_bytes(&sys.export_state())
        );
    }

    /// Resuming across the warm-up → measurement boundary reproduces the
    /// exact metrics of an uninterrupted run driven through the same
    /// span boundaries.
    #[test]
    fn checkpoint_resume_reproduces_metrics() {
        let cfg = quick(SystemConfig::table1());
        let mix = small_mix();
        let warm = cfg.warmup;
        let end = cfg.warmup + cfg.measure;

        let run_tail = |sys: &mut System| {
            sys.begin_measure();
            sys.try_run_until(end).expect("clean run");
            sys.audit_retention();
            sys.collect()
        };

        let mut reference = System::new(cfg.clone(), &mix);
        reference.run_until(warm);
        let cp = reference.checkpoint(&mix);
        let m_ref = run_tail(&mut reference);

        let mut resumed = System::restore(cfg, &mix, &cp).expect("restore");
        let m_res = run_tail(&mut resumed);
        assert_eq!(
            format!("{:?}", m_ref),
            format!("{:?}", m_res),
            "metrics across a restore must match exactly"
        );
    }

    #[test]
    fn restore_rejects_wrong_config_or_mix() {
        let cfg = quick(SystemConfig::table1());
        let mix = small_mix();
        let mut sys = System::new(cfg.clone(), &mix);
        sys.run_until(cfg.warmup / 4);
        let cp = sys.checkpoint(&mix);

        let other_mix = WorkloadMix::from_groups("other", &[(Benchmark::Stream, 2)], "M");
        assert!(matches!(
            System::restore(cfg.clone(), &other_mix, &cp),
            Err(RefsimError::Checkpoint(_))
        ));
        assert!(matches!(
            System::restore(quick(SystemConfig::table1().co_design()), &mix, &cp),
            Err(RefsimError::Checkpoint(_))
        ));
        // The original pair still restores.
        assert!(System::restore(cfg, &mix, &cp).is_ok());
    }

    #[test]
    fn import_rejects_mismatched_shape() {
        let cfg = quick(SystemConfig::table1());
        let state = System::new(cfg.clone(), &small_mix()).export_state();
        let solo = WorkloadMix::from_groups("solo", &[(Benchmark::Povray, 1)], "L");
        let mut target = System::new(cfg, &solo);
        let err = target.import_state(&state).unwrap_err();
        assert!(err.contains("task count"), "{err}");
    }

    // ---- simsan: clean runs are quiet, injected faults are caught ----

    /// Acceptance: a clean default-config run of every refresh policy
    /// under full audit finishes `Ok` with zero violations.
    #[test]
    fn clean_full_audit_runs_are_quiet_for_every_policy() {
        use refsim_dram::timing::FgrMode;
        let policies = [
            RefreshPolicyKind::NoRefresh,
            RefreshPolicyKind::AllBank,
            RefreshPolicyKind::PerBankRoundRobin,
            RefreshPolicyKind::PerBankSequential,
            RefreshPolicyKind::OooPerBank,
            RefreshPolicyKind::Fgr(FgrMode::X2),
            RefreshPolicyKind::Adaptive,
            RefreshPolicyKind::Elastic,
        ];
        for policy in policies {
            let cfg = quick(SystemConfig::table1())
                .with_refresh(policy)
                .with_audit(AuditLevel::Full);
            let mut sys = System::new(cfg, &small_mix());
            let m = sys.try_run().unwrap_or_else(|e| panic!("{policy:?}: {e}"));
            assert!(m.controller.reads_completed > 0, "{policy:?} did no work");
            let report = sys.violation_report().expect("audited run has a report");
            assert!(
                report.is_clean() && report.total == 0,
                "{policy:?} clean run flagged: {report}"
            );
        }
    }

    /// The shadow backend must satisfy the same full-audit contract as
    /// the primary on every refresh policy: the sanitizer's checkers
    /// (tRFC overlap, refresh completeness/debt, cross-layer
    /// conservation) are backend-agnostic oracles.
    #[test]
    fn clean_full_audit_shadow_runs_are_quiet_for_every_policy() {
        use refsim_dram::backend::BackendKind;
        use refsim_dram::timing::FgrMode;
        let policies = [
            RefreshPolicyKind::NoRefresh,
            RefreshPolicyKind::AllBank,
            RefreshPolicyKind::PerBankRoundRobin,
            RefreshPolicyKind::PerBankSequential,
            RefreshPolicyKind::OooPerBank,
            RefreshPolicyKind::Fgr(FgrMode::X2),
            RefreshPolicyKind::Adaptive,
            RefreshPolicyKind::Elastic,
        ];
        for policy in policies {
            let cfg = quick(SystemConfig::table1())
                .with_backend(BackendKind::Shadow)
                .with_refresh(policy)
                .with_audit(AuditLevel::Full);
            let mut sys = System::new(cfg, &small_mix());
            let m = sys
                .try_run()
                .unwrap_or_else(|e| panic!("shadow {policy:?}: {e}"));
            assert!(m.controller.reads_completed > 0, "{policy:?} did no work");
            let report = sys.violation_report().expect("audited run has a report");
            assert!(
                report.is_clean() && report.total == 0,
                "shadow {policy:?} clean run flagged: {report}"
            );
        }
    }

    /// The co-design config (partitioning + refresh-aware scheduling)
    /// must also audit clean — it exercises the OS checkers the
    /// baseline config leaves mostly idle.
    #[test]
    fn clean_co_design_full_audit_is_quiet() {
        let cfg = quick(SystemConfig::table1())
            .co_design()
            .with_audit(AuditLevel::Full);
        let mut sys = System::new(cfg, &small_mix());
        sys.try_run().expect("clean co-design run");
        let report = sys.violation_report().expect("report");
        assert!(report.total == 0, "co-design clean run flagged: {report}");
    }

    /// Negative control, skip class: silently dropped refresh commands
    /// must be caught (retention-oracle mirror and/or completeness).
    #[test]
    fn skip_faults_trip_the_sanitizer() {
        let mut cfg = quick(SystemConfig::table1())
            .with_retention_tracking()
            .with_audit(AuditLevel::Full);
        // The oracle threshold is tREFW + 9·tREFI; the run must outlive
        // it for spans starved by skipped refreshes to turn stale.
        cfg.measure = cfg.trefw() * 2;
        cfg.fault_plan = Some(FaultPlan {
            seed: 7,
            skip_ppm: 900_000,
            delay_ppm: 0,
            max_delay: Ps::ZERO,
            weak_rows: 0,
            weak_limit: Ps::ZERO,
            horizon: 1_000_000,
        });
        let mut sys = System::new(cfg, &small_mix());
        let err = sys.try_run().expect_err("skipped refreshes must be caught");
        let RefsimError::InvariantViolation(report) = err else {
            panic!("expected InvariantViolation, got {err}");
        };
        assert!(
            report.violations.iter().any(|v| {
                v.checker == "xlayer.retention_sync" || v.checker == "dram.refresh_completeness"
            }),
            "skip faults caught by the wrong checkers: {report}"
        );
    }

    /// Negative control, delay class: refreshes postponed far past the
    /// JEDEC debt bound must trip the debt ledger.
    #[test]
    fn delay_faults_trip_the_debt_checker() {
        let mut cfg = quick(SystemConfig::table1()).with_audit(AuditLevel::Full);
        cfg.fault_plan = Some(FaultPlan {
            seed: 11,
            skip_ppm: 0,
            delay_ppm: 1_000_000,
            max_delay: cfg.trefw(),
            weak_rows: 0,
            weak_limit: Ps::ZERO,
            horizon: 1_000_000,
        });
        let mut sys = System::new(cfg, &small_mix());
        let err = sys.try_run().expect_err("delayed refreshes must be caught");
        let RefsimError::InvariantViolation(report) = err else {
            panic!("expected InvariantViolation, got {err}");
        };
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.checker == "dram.refresh_debt"),
            "delay faults missed by the debt ledger: {report}"
        );
    }

    /// Negative control, weak-row class: planted weak rows violate the
    /// oracle, and the sanitizer mirrors those findings.
    #[test]
    fn weak_row_faults_trip_retention_sync() {
        let mut cfg = quick(SystemConfig::table1())
            .with_retention_tracking()
            .with_audit(AuditLevel::Full);
        cfg.fault_plan = Some(FaultPlan {
            seed: 13,
            skip_ppm: 0,
            delay_ppm: 0,
            max_delay: Ps::ZERO,
            weak_rows: 64,
            weak_limit: cfg.trefw() / 8,
            horizon: 0,
        });
        let mut sys = System::new(cfg, &small_mix());
        let err = sys.try_run().expect_err("weak rows must be caught");
        let RefsimError::InvariantViolation(report) = err else {
            panic!("expected InvariantViolation, got {err}");
        };
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.checker == "xlayer.retention_sync"),
            "weak rows missed by retention sync: {report}"
        );
    }

    /// `AuditLevel::Off` (the default) leaves metrics bit-identical to
    /// a fully audited run — the sanitizer observes, never perturbs.
    #[test]
    fn audit_level_does_not_perturb_the_simulation() {
        let run = |level: AuditLevel| {
            let cfg = quick(SystemConfig::table1()).with_audit(level);
            let mut sys = System::new(cfg, &small_mix());
            let m = sys.try_run().expect("clean run");
            format!("{:?} {:?}", m.tasks, m.controller)
        };
        let off = run(AuditLevel::Off);
        assert_eq!(off, run(AuditLevel::Sampled));
        assert_eq!(off, run(AuditLevel::Full));
    }
}

//! Plain-text / markdown / CSV tables for experiment output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular results table with a title and column headers.
///
/// # Examples
///
/// ```
/// use refsim_core::report::Table;
///
/// let mut t = Table::new("Figure X", ["workload", "speedup"]);
/// t.push(["WL-1", "1.162"]);
/// assert!(t.to_markdown().contains("| WL-1 | 1.162 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<H: Into<String>>(
        title: impl Into<String>,
        headers: impl IntoIterator<Item = H>,
    ) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push<C: Into<String>>(&mut self, row: impl IntoIterator<Item = C>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Formats a float cell with 3 decimals. Non-finite values are the
    /// sweep-level failure markers: `-inf` (a run the invariant
    /// sanitizer rejected) renders as `violated`, anything else
    /// non-finite (a crashed run) as `error` — a violated simulation
    /// *finished*, its numbers just cannot be trusted, and the two
    /// failure classes must stay distinguishable in a report.
    pub fn fmt_f(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else if v == f64::NEG_INFINITY {
            "violated".to_owned()
        } else {
            "error".to_owned()
        }
    }

    /// Formats a percentage cell with 1 decimal (non-finite → `error`,
    /// except `-inf` → `violated`; see [`Table::fmt_f`]).
    pub fn fmt_pct(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.1}%")
        } else if v == f64::NEG_INFINITY {
            "violated".to_owned()
        } else {
            "error".to_owned()
        }
    }

    /// Formats an optional float cell: `None` — the marker for a column
    /// with no usable data at all, e.g. every run in it failed — renders
    /// as `n/a`, distinct from `error` (an individual failed run).
    pub fn fmt_opt_f(v: Option<f64>) -> String {
        v.map_or_else(|| "n/a".to_owned(), Self::fmt_f)
    }

    /// Formats an optional percentage cell (`None` → `n/a`).
    pub fn fmt_opt_pct(v: Option<f64>) -> String {
        v.map_or_else(|| "n/a".to_owned(), Self::fmt_pct)
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("### {}\n\n", self.title);
        s.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        s.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            s.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        s
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let mut s = self
            .headers
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            s.push('\n');
        }
        s
    }
}

impl Table {
    /// Renders an ASCII horizontal bar chart of one numeric column,
    /// labeled by the first column — a terminal-friendly stand-in for
    /// the paper's bar figures.
    ///
    /// Cells that fail to parse as numbers (after stripping a trailing
    /// `%`) are skipped. `width` is the maximum bar length in
    /// characters.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or `width` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use refsim_core::report::Table;
    ///
    /// let mut t = Table::new("Speedups", ["wl", "speedup"]);
    /// t.push(["WL-1", "1.10"]);
    /// t.push(["WL-2", "1.05"]);
    /// let chart = t.bar_chart(1, 20);
    /// assert!(chart.contains("WL-1"));
    /// assert!(chart.contains('#'));
    /// ```
    pub fn bar_chart(&self, col: usize, width: usize) -> String {
        assert!(col < self.headers.len(), "column {col} out of range");
        assert!(width > 0, "chart width must be positive");
        let parse = |cell: &str| cell.trim().trim_end_matches('%').parse::<f64>().ok();
        let values: Vec<(usize, f64)> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| parse(&r[col]).map(|v| (i, v)))
            .collect();
        let max = values.iter().map(|&(_, v)| v.abs()).fold(0.0f64, f64::max);
        let label_w = self
            .rows
            .iter()
            .map(|r| r[0].len())
            .max()
            .unwrap_or(0)
            .max(self.headers[0].len());
        let mut out = format!(
            "{} — {}
",
            self.title, self.headers[col]
        );
        for (i, v) in values {
            let bar_len = if max == 0.0 {
                0
            } else {
                ((v.abs() / max) * width as f64).round() as usize
            };
            out.push_str(&format!(
                "{:<label_w$}  {:>8}  {}
",
                self.rows[i][0],
                self.rows[i][col],
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

impl fmt::Display for Table {
    /// Column-aligned plain text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<w$}  ", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", ["a", "b"]);
        t.push(["x", "1"]);
        t.push(["longer", "2"]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let out = sample().to_string();
        assert!(out.contains("== T =="));
        let lines: Vec<&str> = out.lines().collect();
        // 'a' header padded to width of 'longer'.
        assert!(lines[1].starts_with("a       "));
    }

    #[test]
    fn markdown_and_csv() {
        let t = sample();
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| longer | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next(), Some("a,b"));
    }

    #[test]
    fn fmt_distinguishes_violated_from_error() {
        assert_eq!(Table::fmt_f(1.5), "1.500");
        assert_eq!(Table::fmt_f(f64::NAN), "error");
        assert_eq!(Table::fmt_f(f64::INFINITY), "error");
        assert_eq!(Table::fmt_f(f64::NEG_INFINITY), "violated");
        assert_eq!(Table::fmt_pct(f64::NEG_INFINITY), "violated");
        assert_eq!(Table::fmt_pct(f64::NAN), "error");
        assert_eq!(Table::fmt_opt_f(Some(f64::NEG_INFINITY)), "violated");
        assert_eq!(Table::fmt_opt_f(None), "n/a");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("q", ["v"]);
        t.push(["a,b"]);
        t.push(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("T", ["a", "b"]);
        t.push(["only-one"]);
    }

    #[test]
    fn bar_chart_scales_and_labels() {
        let mut t = Table::new("S", ["wl", "v"]);
        t.push(["a", "2.0"]);
        t.push(["bb", "1.0"]);
        t.push(["c", "not-a-number"]);
        let chart = t.bar_chart(1, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 numeric rows");
        assert!(
            lines[1].contains(&"#".repeat(10)),
            "max value gets full width"
        );
        assert!(
            lines[2].contains(&"#".repeat(5)),
            "half value gets half width"
        );
        assert!(!chart.contains("not-a-number"));
    }

    #[test]
    fn bar_chart_parses_percent_cells() {
        let mut t = Table::new("S", ["d", "deg"]);
        t.push(["x", "17.2%"]);
        t.push(["y", "8.6%"]);
        let chart = t.bar_chart(1, 8);
        assert!(chart.contains("17.2%"));
        assert!(chart.lines().nth(1).unwrap().matches('#').count() == 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bar_chart_rejects_bad_column() {
        let _ = sample().bar_chart(5, 10);
    }

    #[test]
    fn formatters() {
        assert_eq!(Table::fmt_f(1.23456), "1.235");
        assert_eq!(Table::fmt_pct(16.24), "16.2%");
        assert!(sample().len() == 2 && !sample().is_empty());
    }

    #[test]
    fn failed_runs_render_as_error_cells() {
        assert_eq!(Table::fmt_f(f64::NAN), "error");
        assert_eq!(Table::fmt_f(f64::INFINITY), "error");
        assert_eq!(Table::fmt_pct(f64::NAN), "error");
        // Error cells are skipped by the bar chart, not plotted as 0.
        let mut t = Table::new("S", ["wl", "v"]);
        t.push(["a", Table::fmt_f(1.0).as_str()]);
        t.push(["b", Table::fmt_f(f64::NAN).as_str()]);
        assert_eq!(t.bar_chart(1, 10).lines().count(), 2);
    }

    #[test]
    fn missing_aggregates_render_as_na() {
        // An all-error (or empty) column has no aggregate at all: `n/a`,
        // distinct from a single failed run's `error` cell.
        assert_eq!(Table::fmt_opt_f(None), "n/a");
        assert_eq!(Table::fmt_opt_pct(None), "n/a");
        assert_eq!(Table::fmt_opt_f(Some(1.5)), "1.500");
        assert_eq!(Table::fmt_opt_pct(Some(12.34)), "12.3%");
        assert_eq!(Table::fmt_opt_f(Some(f64::NAN)), "error");
    }
}

//! # refsim-core
//!
//! The co-design itself: system composition (cores ⇄ caches ⇄ memory
//! controller ⇄ OS), Table 1 configuration presets, run metrics, and the
//! experiment harness that regenerates every figure of *"Hardware-
//! Software Co-design to Mitigate DRAM Refresh Overheads"* (ASPLOS'17).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod codec;
pub mod config;
pub mod diffval;
pub mod error;
pub mod executor;
pub mod experiment;
pub mod fastmap;
pub mod faults;
pub mod metrics;
pub mod replay;
pub mod report;
pub mod runcache;
pub mod sanitize;
pub mod sweep;
pub mod system;
pub mod vfs;

/// Commonly used types.
pub mod prelude {
    pub use crate::config::SystemConfig;
    pub use crate::error::{RefsimError, SystemSnapshot};
    pub use crate::executor::{default_threads, ExecutorOptions, ExecutorStats, WorkerFaultPlan};
    pub use crate::experiment::{ExpOptions, Job, Scheme};
    pub use crate::faults::FaultPlan;
    pub use crate::metrics::{gmean, gmean_finite, RunMetrics, TaskMetrics};
    pub use crate::report::Table;
    pub use crate::runcache::{job_fingerprint, RunCache};
    pub use crate::sanitize::{AuditLevel, ViolationReport};
    pub use crate::system::System;
    pub use crate::vfs::{FaultSchedule, FaultVfs, StdVfs, Vfs, VfsError, VfsErrorKind};
}

//! Deterministic refresh-fault injection plans.
//!
//! A [`FaultPlan`] is a small, seed-driven recipe that expands into the
//! concrete [`RefreshFaults`] the memory controller consumes: refresh
//! commands to *skip* (silent drop — must be caught by the retention
//! oracle), commands to *delay* (legal postponement the schedule must
//! absorb), and *weak rows* whose retention is shorter than the device-
//! wide `tREFW` (the RAIDR retention-variation failure model). The same
//! seed always expands to the same faults for a given geometry, so a
//! failing run reproduces from its config alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use refsim_dram::integrity::{RefreshFaults, WeakRow};
use refsim_dram::time::Ps;

/// Seed-driven recipe for refresh faults.
///
/// Rates are in parts-per-million per refresh command, evaluated
/// independently for the first [`FaultPlan::horizon`] commands the
/// controller would issue; keying on the command sequence number (not
/// wall-clock) makes the plan independent of request traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RNG seed; equal seeds expand to equal fault sets.
    pub seed: u64,
    /// Probability (ppm) that a refresh command is silently dropped.
    pub skip_ppm: u32,
    /// Probability (ppm) that a refresh command is issued late.
    pub delay_ppm: u32,
    /// Upper bound on an injected issue delay (drawn uniformly in
    /// `(0, max_delay]`).
    pub max_delay: Ps,
    /// Number of weak rows to plant at random locations.
    pub weak_rows: u32,
    /// Retention limit assigned to every planted weak row.
    pub weak_limit: Ps,
    /// Refresh-command sequence numbers covered: `0..horizon`.
    pub horizon: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a config placeholder).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            skip_ppm: 0,
            delay_ppm: 0,
            max_delay: Ps::ZERO,
            weak_rows: 0,
            weak_limit: Ps::ZERO,
            horizon: 0,
        }
    }

    /// Whether expansion can only yield the empty fault set.
    pub fn is_empty(&self) -> bool {
        (self.horizon == 0 || (self.skip_ppm == 0 && self.delay_ppm == 0)) && self.weak_rows == 0
    }

    /// Expands the plan into concrete faults for a channel with
    /// `total_banks` banks of `rows_per_bank` rows each.
    ///
    /// Deterministic: the same plan and geometry always produce the
    /// same faults.
    pub fn expand(&self, total_banks: u32, rows_per_bank: u32) -> RefreshFaults {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut skip = Vec::new();
        let mut delay = Vec::new();
        for seq in 0..self.horizon {
            if self.skip_ppm > 0 && rng.gen_range(0..1_000_000u32) < self.skip_ppm {
                skip.push(seq);
            }
            if self.delay_ppm > 0
                && self.max_delay > Ps::ZERO
                && rng.gen_range(0..1_000_000u32) < self.delay_ppm
            {
                let d = Ps(rng.gen_range(0..self.max_delay.as_ps()) + 1);
                delay.push((seq, d));
            }
        }
        let weak_rows = (0..self.weak_rows)
            .map(|_| WeakRow {
                flat_bank: rng.gen_range(0..total_banks.max(1)),
                row: rng.gen_range(0..rows_per_bank.max(1)),
                limit: self.weak_limit,
            })
            .collect();
        RefreshFaults {
            skip,
            delay,
            weak_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            seed: 42,
            skip_ppm: 100_000, // 10 %
            delay_ppm: 200_000,
            max_delay: Ps::from_us(2),
            weak_rows: 8,
            weak_limit: Ps::from_us(50),
            horizon: 1_000,
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = plan().expand(16, 65_536);
        let b = plan().expand(16, 65_536);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn rates_land_near_expectation() {
        let f = plan().expand(16, 65_536);
        // 10 % of 1000 commands; a wide tolerance keeps this seed-proof.
        assert!((50..200).contains(&f.skip.len()), "{}", f.skip.len());
        assert!((100..320).contains(&f.delay.len()), "{}", f.delay.len());
        assert_eq!(f.weak_rows.len(), 8);
    }

    #[test]
    fn sequences_are_sorted_and_bounded() {
        let f = plan().expand(16, 65_536);
        assert!(f.skip.windows(2).all(|w| w[0] < w[1]));
        assert!(f.skip.iter().all(|&s| s < 1_000));
        assert!(f.delay.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(f
            .delay
            .iter()
            .all(|&(_, d)| d > Ps::ZERO && d <= Ps::from_us(2)));
        assert!(f
            .weak_rows
            .iter()
            .all(|w| w.flat_bank < 16 && w.row < 65_536));
    }

    #[test]
    fn different_seeds_differ() {
        let mut other = plan();
        other.seed = 43;
        assert_ne!(plan().expand(16, 65_536), other.expand(16, 65_536));
    }

    #[test]
    fn none_is_empty() {
        let p = FaultPlan::none(7);
        assert!(p.is_empty());
        assert!(p.expand(16, 65_536).is_empty());
    }
}

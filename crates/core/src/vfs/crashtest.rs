//! Crash-point enumeration: prove every persistence surface survives a
//! kill at *every* I/O operation.
//!
//! The harness runs a representative resilient sweep (checkpoints, a
//! manifest, per-job metrics frames, a run cache — every surface the
//! workspace persists) behind a [`FaultVfs`], first with a clean
//! schedule to count and log the I/O operations, then once per crash
//! point `k`: the same sweep in a fresh directory with a fault injected
//! at operation `k`, followed by a post-fault filesystem scan and a
//! clean-filesystem restart. The durability contract it enforces:
//!
//! 1. **No panics, ever** — every failure surfaces as a typed error.
//! 2. **Final paths always validate** — after a crash, every file at a
//!    consumable path (manifest, `*.ckpt`, `*.metrics`, `*.run`) parses
//!    and carries the right fingerprint; only `*.tmp` litter and
//!    quarantined `*.quarantine` bytes are exempt. This is the property
//!    the [`defeat_rename`](FaultSchedule::defeat_rename) negative
//!    control breaks on purpose, proving the scan has teeth.
//! 3. **Restart converges bit-identically** — rerunning over the
//!    survivors with a clean filesystem reproduces the reference
//!    results exactly, with no healthy job quarantined.
//!
//! `bench --bin crashmat` drives [`enumerate`] over the full operation
//! range; the tests here cover a stride plus targeted points.

use std::path::Path;
use std::sync::Arc;

use refsim_dram::time::Ps;
use refsim_workloads::mix::WorkloadMix;
use refsim_workloads::profiles::Benchmark;

use crate::checkpoint::{config_fingerprint, Checkpoint};
use crate::codec;
use crate::config::SystemConfig;
use crate::error::RefsimError;
use crate::experiment::Job;
use crate::runcache::{CacheEntry, CacheLookup, RunCache};
use crate::sweep::{run_many_resilient, SweepOptions, SweepReport};
use crate::vfs::{std_vfs, FaultSchedule, FaultVfs, OpRecord, Vfs};

/// The sweep a crash matrix is enumerated over. Kept small enough that
/// hundreds of crash points stay tractable, while still exercising
/// every persistence surface: checkpoints at span boundaries, the
/// manifest, per-job metrics frames, and (optionally) the run cache —
/// including one duplicate cell so dedup fan-out is on the I/O path.
#[derive(Debug, Clone)]
pub struct CrashScenario {
    /// The jobs of the sweep.
    pub jobs: Vec<Job>,
    /// Mid-run checkpoint pitch (see [`SweepOptions::checkpoint_every`]).
    pub checkpoint_every: Option<Ps>,
    /// Whether the sweep writes through a persistent run cache.
    pub use_cache: bool,
    /// Seed for the scenario's jobs and every injected fault's
    /// byte-level decisions.
    pub seed: u64,
}

impl CrashScenario {
    /// A tiny three-job scenario (two unique cells plus one duplicate,
    /// so dedup fan-out runs) with mid-run checkpointing and the run
    /// cache enabled.
    pub fn tiny(seed: u64) -> Self {
        let job = |s: u64| {
            let mut cfg = SystemConfig::table1().with_time_scale(512).with_seed(s);
            cfg.warmup = cfg.trefw() / 8;
            cfg.measure = cfg.trefw() / 4;
            Job {
                cfg,
                mix: WorkloadMix::from_groups(
                    "crashmat",
                    &[(Benchmark::Stream, 2), (Benchmark::Povray, 2)],
                    "M + L",
                ),
            }
        };
        let every = job(seed).cfg.effective_timeslice() * 8;
        CrashScenario {
            jobs: vec![job(seed), job(seed.wrapping_add(1)), job(seed)],
            checkpoint_every: Some(every),
            use_cache: true,
            seed,
        }
    }

    /// [`CrashScenario::tiny`] with a much finer checkpoint pitch and a
    /// longer measured span, multiplying the checkpoint-save I/O until
    /// the sweep issues a few hundred operations — the exhaustive
    /// matrix `bench --bin crashmat` enumerates by default.
    pub fn dense(seed: u64) -> Self {
        let mut scn = CrashScenario::tiny(seed);
        for job in &mut scn.jobs {
            job.cfg.measure = job.cfg.trefw() / 2;
        }
        scn.checkpoint_every = Some(scn.jobs[0].cfg.effective_timeslice() / 8);
        scn
    }
}

/// Which fault the harness injects at the chosen operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Kill the process model at the operation ([`FaultSchedule::crash_at`]).
    Crash,
    /// Same kill, but renames onto `*.metrics` destinations lose their
    /// atomicity — the negative control that must produce violations.
    CrashDefeatRename,
    /// The disk fills permanently at the operation
    /// ([`FaultSchedule::enospc_from`]).
    Enospc,
    /// The write at the operation persists only a seeded prefix and
    /// reports failure.
    TornWrite,
    /// The operation fails once, EINTR-style, with no on-disk effect.
    Interrupt,
    /// The write at the operation silently flips one seeded byte.
    CorruptWrite,
}

impl FaultMode {
    /// Every mode, in reporting order.
    pub const ALL: [FaultMode; 6] = [
        FaultMode::Crash,
        FaultMode::CrashDefeatRename,
        FaultMode::Enospc,
        FaultMode::TornWrite,
        FaultMode::Interrupt,
        FaultMode::CorruptWrite,
    ];

    /// Parses the [`std::fmt::Display`] form back into a mode.
    pub fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "crash" => Some(FaultMode::Crash),
            "crash-defeat-rename" => Some(FaultMode::CrashDefeatRename),
            "enospc" => Some(FaultMode::Enospc),
            "torn-write" => Some(FaultMode::TornWrite),
            "interrupt" => Some(FaultMode::Interrupt),
            "corrupt-write" => Some(FaultMode::CorruptWrite),
            _ => None,
        }
    }

    /// Whether the mode freezes the disk (so a truncated faulted
    /// invocation is expected rather than a violation).
    pub fn is_crash(self) -> bool {
        matches!(self, FaultMode::Crash | FaultMode::CrashDefeatRename)
    }

    /// The [`FaultSchedule`] this mode prescribes at operation `k`.
    pub fn schedule(self, seed: u64, k: u64) -> FaultSchedule {
        match self {
            FaultMode::Crash => FaultSchedule::crash_at(seed, k),
            FaultMode::CrashDefeatRename => FaultSchedule {
                defeat_rename: Some(".metrics".to_owned()),
                ..FaultSchedule::crash_at(seed, k)
            },
            FaultMode::Enospc => FaultSchedule::enospc_from(seed, k),
            FaultMode::TornWrite => FaultSchedule {
                torn_write_at: vec![k],
                ..FaultSchedule::clean(seed)
            },
            FaultMode::Interrupt => FaultSchedule {
                interrupt_at: vec![k],
                ..FaultSchedule::clean(seed)
            },
            FaultMode::CorruptWrite => FaultSchedule {
                corrupt_write_at: vec![k],
                ..FaultSchedule::clean(seed)
            },
        }
    }
}

impl std::fmt::Display for FaultMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultMode::Crash => "crash",
            FaultMode::CrashDefeatRename => "crash-defeat-rename",
            FaultMode::Enospc => "enospc",
            FaultMode::TornWrite => "torn-write",
            FaultMode::Interrupt => "interrupt",
            FaultMode::CorruptWrite => "corrupt-write",
        })
    }
}

/// How one crash point resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The restart reproduced the reference with no visible damage.
    Resumed,
    /// The restart reproduced the reference, but recovery machinery did
    /// real work (quarantines, a manifest rebuild, classified cache
    /// misses, checkpoint resumes) — described in the payload.
    Degraded(String),
    /// The durability contract broke: a panic, a torn file at a final
    /// path, a diverged or quarantined job, or a failed restart.
    Violation(String),
}

/// One enumerated crash point: the operation index, what operation the
/// clean run issued there (when the faulted run got that far), and the
/// verdict.
#[derive(Debug, Clone)]
pub struct CrashPoint {
    /// Global operation index the fault targeted.
    pub index: u64,
    /// The operation actually recorded at that index in the faulted
    /// invocation, for reproducer-grade reports.
    pub op: Option<OpRecord>,
    /// The outcome.
    pub verdict: Verdict,
}

/// The outcome of enumerating crash points over a scenario.
#[derive(Debug, Clone)]
pub struct CrashMatrix {
    /// The fault mode enumerated.
    pub mode: FaultMode,
    /// Total I/O operations the clean invocation issues.
    pub total_ops: u64,
    /// Tested points, in index order.
    pub points: Vec<CrashPoint>,
}

impl CrashMatrix {
    /// The points whose verdict is a [`Verdict::Violation`].
    pub fn violations(&self) -> Vec<&CrashPoint> {
        self.points
            .iter()
            .filter(|p| matches!(p.verdict, Verdict::Violation(_)))
            .collect()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut clean = 0usize;
        let mut degraded = 0usize;
        let mut violations = 0usize;
        for p in &self.points {
            match p.verdict {
                Verdict::Resumed => clean += 1,
                Verdict::Degraded(_) => degraded += 1,
                Verdict::Violation(_) => violations += 1,
            }
        }
        format!(
            "mode {:<19} | {:>4} ops | {:>4} points | {clean} clean, {degraded} degraded, \
             {violations} violations",
            self.mode.to_string(),
            self.total_ops,
            self.points.len(),
        )
    }
}

/// Seed for point `k`'s schedule: every point makes independent
/// byte-level decisions, but each is a complete reproducer.
fn point_seed(seed: u64, k: u64) -> u64 {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&seed.to_le_bytes());
    b[8..].copy_from_slice(&k.to_le_bytes());
    codec::fnv64(&b)
}

/// Runs the scenario's sweep single-threaded (so the I/O operation
/// sequence is deterministic) against `vfs`, rooted at `dir`.
fn run_scenario(
    scn: &CrashScenario,
    dir: &Path,
    vfs: Arc<dyn Vfs>,
) -> Result<SweepReport, RefsimError> {
    let opts = SweepOptions {
        dir: Some(dir.join("sweep")),
        checkpoint_every: scn.checkpoint_every,
        cache: scn
            .use_cache
            .then(|| RunCache::with_vfs(dir.join("cache"), vfs.clone())),
        vfs,
        ..SweepOptions::default()
    };
    run_many_resilient(&scn.jobs, 1, &opts)
}

/// The reference rows every crash point is held to: the scenario run
/// with no persistence and no faults (same checkpoint pitch, so the
/// segmentation — part of the bit-identity contract — matches), each
/// per-job `Result` rendered to its `Debug` string.
///
/// # Errors
///
/// Any sweep-level [`RefsimError`] from the reference run.
pub fn reference_rows(scn: &CrashScenario) -> Result<Vec<String>, RefsimError> {
    let opts = SweepOptions {
        checkpoint_every: scn.checkpoint_every,
        ..SweepOptions::default()
    };
    let rep = run_many_resilient(&scn.jobs, 1, &opts)?;
    Ok(rep.results.iter().map(|r| format!("{r:?}")).collect())
}

/// Counts and logs the I/O operations of one clean, cold invocation of
/// the scenario — the enumeration domain for [`run_point`].
///
/// # Errors
///
/// Any sweep-level [`RefsimError`] from the probe run.
pub fn probe(scn: &CrashScenario, root: &Path) -> Result<(u64, Vec<OpRecord>), RefsimError> {
    let dir = root.join("probe");
    let _ = std::fs::remove_dir_all(&dir);
    let fvfs = Arc::new(FaultVfs::over_std(FaultSchedule::clean(scn.seed)));
    let r = run_scenario(scn, &dir, fvfs.clone());
    let ops = fvfs.ops();
    let log = fvfs.log();
    let _ = std::fs::remove_dir_all(&dir);
    r.map(|_| (ops, log))
}

// ---- the per-point contract check ----------------------------------------

fn job_index(name: &str, suffix: &str) -> Option<usize> {
    name.strip_prefix("job-")?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Validates one on-disk file against the durability contract.
fn validate_file(p: &Path, fingerprints: &[u64]) -> Result<(), String> {
    let name = p
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if name.ends_with(".tmp") || name.ends_with(".quarantine") {
        return Ok(()); // removable litter / quarantined bytes kept for triage
    }
    let bytes = std::fs::read(p).map_err(|e| format!("unreadable {}: {e}", p.display()))?;
    if name == "sweep.manifest" {
        let text = String::from_utf8(bytes)
            .map_err(|_| format!("manifest is not UTF-8: {}", p.display()))?;
        return crate::sweep::validate_manifest(&text)
            .map_err(|e| format!("torn manifest {}: {e}", p.display()));
    }
    if let Some(i) = job_index(&name, ".ckpt") {
        let cp = Checkpoint::from_bytes(&bytes)
            .map_err(|e| format!("torn checkpoint {}: {e}", p.display()))?;
        let fp = *fingerprints
            .get(i)
            .ok_or_else(|| format!("checkpoint for unknown job {i}: {}", p.display()))?;
        return cp
            .check_fingerprint(fp)
            .map_err(|e| format!("misattributed checkpoint {}: {e}", p.display()));
    }
    if let Some(i) = job_index(&name, ".metrics") {
        return match crate::sweep::decode_metrics(&bytes) {
            Some((fp, _)) if fingerprints.get(i) == Some(&fp) => Ok(()),
            Some(_) => Err(format!("misattributed metrics frame {}", p.display())),
            None => Err(format!("torn metrics frame {}", p.display())),
        };
    }
    if let Some(stem) = name.strip_suffix(".run") {
        let named = u64::from_str_radix(stem, 16)
            .map_err(|_| format!("unparseable cache entry name {}", p.display()))?;
        return match CacheEntry::from_bytes(&bytes) {
            Some(e) if e.fingerprint == named => Ok(()),
            Some(_) => Err(format!("mislabeled cache entry {}", p.display())),
            None => Err(format!("torn cache entry {}", p.display())),
        };
    }
    Err(format!("unexpected file {}", p.display()))
}

/// Walks everything under `root` and requires every final-path file to
/// validate — the "a reader never sees a prefix" half of the contract.
fn scan_tree(root: &Path, fingerprints: &[u64]) -> Result<(), String> {
    let mut stack = vec![root.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&d) else {
            continue; // the faulted invocation may not have created it
        };
        for entry in rd.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                validate_file(&p, fingerprints)?;
            }
        }
    }
    Ok(())
}

fn push_degradation(notes: &mut Vec<String>, rep: &SweepReport) {
    if rep.manifest_rebuilt {
        notes.push("manifest rebuilt from metrics frames".to_owned());
    }
    if rep.files_quarantined > 0 {
        notes.push(format!("{} files quarantined", rep.files_quarantined));
    }
    if rep.ckpt_save_failures > 0 {
        notes.push(format!(
            "{} checkpoint saves failed",
            rep.ckpt_save_failures
        ));
    }
    if rep.stats.misses_corrupt > 0 {
        notes.push(format!("{} corrupt cache misses", rep.stats.misses_corrupt));
    }
    if rep.stats.misses_io > 0 {
        notes.push(format!("{} io-error cache misses", rep.stats.misses_io));
    }
    if rep.stats.store_failures > 0 {
        notes.push(format!("{} cache stores failed", rep.stats.store_failures));
    }
}

type Attempt = Result<Result<SweepReport, RefsimError>, Box<dyn std::any::Any + Send>>;

fn judge(
    scn: &CrashScenario,
    dir: &Path,
    k: u64,
    mode: FaultMode,
    reference: &[String],
    attempt: Attempt,
    fingerprints: &[u64],
) -> Verdict {
    let mut notes: Vec<String> = Vec::new();
    match attempt {
        Err(payload) => {
            return Verdict::Violation(format!(
                "op {k} ({mode}): faulted invocation panicked: {}",
                crate::sweep::panic_message(payload.as_ref())
            ));
        }
        Ok(Err(e)) => {
            // A typed sweep-level abort is acceptable under any fault —
            // what matters is the restart — but only crash modes may
            // produce non-I/O failure classes.
            if !mode.is_crash() && !matches!(e, RefsimError::Io(_)) {
                return Verdict::Violation(format!(
                    "op {k} ({mode}): sweep failed outside the I/O error class: {e}"
                ));
            }
            notes.push(format!("faulted invocation aborted: {e}"));
        }
        Ok(Ok(rep)) => {
            for (i, r) in rep.results.iter().enumerate() {
                match r {
                    Ok(_) => {
                        if format!("{r:?}") != reference[i] {
                            return Verdict::Violation(format!(
                                "op {k} ({mode}): job {i} diverged in the faulted invocation"
                            ));
                        }
                    }
                    Err(e) if mode.is_crash() => notes.push(format!("job {i} aborted: {e}")),
                    Err(e) => {
                        return Verdict::Violation(format!(
                            "op {k} ({mode}): job {i} failed under a survivable fault: {e}"
                        ));
                    }
                }
            }
            push_degradation(&mut notes, &rep);
        }
    }

    // Silent bitrot is only required to be *detected on read* — its
    // scan runs after the restart has had the chance to classify it.
    if mode != FaultMode::CorruptWrite {
        if let Err(why) = scan_tree(dir, fingerprints) {
            return Verdict::Violation(format!("op {k} ({mode}): post-fault scan: {why}"));
        }
    }

    match run_scenario(scn, dir, std_vfs()) {
        Err(e) => return Verdict::Violation(format!("op {k} ({mode}): restart failed: {e}")),
        Ok(rep) => {
            if !rep.quarantined.is_empty() {
                return Verdict::Violation(format!(
                    "op {k} ({mode}): healthy jobs quarantined on restart: {:?}",
                    rep.quarantined
                ));
            }
            for (i, r) in rep.results.iter().enumerate() {
                if format!("{r:?}") != reference[i] {
                    return Verdict::Violation(format!(
                        "op {k} ({mode}): job {i} is not bit-identical after restart"
                    ));
                }
            }
            if rep.resumed > 0 {
                notes.push(format!("{} attempts resumed from checkpoint", rep.resumed));
            }
            push_degradation(&mut notes, &rep);
        }
    }
    if mode == FaultMode::CorruptWrite && scn.use_cache {
        // Silent bitrot is only ever *detected at read time* — but a
        // poisoned entry for an already-finished cell has no reader on
        // the restart path. Drain every cell through a cache probe so
        // each entry meets its reader; `lookup` classifies corrupt
        // entries and quarantines them, after which the scan must pass.
        let cache = RunCache::new(dir.join("cache"));
        let drained = fingerprints
            .iter()
            .filter(|&&fp| matches!(cache.lookup(fp), CacheLookup::Corrupt))
            .count();
        if drained > 0 {
            notes.push(format!(
                "{drained} poisoned cache entries quarantined on probe"
            ));
        }
    }
    if let Err(why) = scan_tree(dir, fingerprints) {
        return Verdict::Violation(format!("op {k} ({mode}): post-restart scan: {why}"));
    }
    if notes.is_empty() {
        Verdict::Resumed
    } else {
        Verdict::Degraded(notes.join("; "))
    }
}

/// Tests one crash point: runs the scenario in a fresh directory with
/// `mode`'s fault injected at operation `k`, scans the aftermath,
/// restarts over the survivors with a clean filesystem, and judges the
/// whole story against `reference` (from [`reference_rows`]).
pub fn run_point(
    scn: &CrashScenario,
    root: &Path,
    k: u64,
    mode: FaultMode,
    reference: &[String],
) -> CrashPoint {
    let dir = root.join(format!("{mode}-{k}"));
    let _ = std::fs::remove_dir_all(&dir);
    let fvfs = Arc::new(FaultVfs::over_std(
        mode.schedule(point_seed(scn.seed, k), k),
    ));
    let dyn_vfs: Arc<dyn Vfs> = fvfs.clone();
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_scenario(scn, &dir, dyn_vfs)
    }));
    let op = fvfs.log().into_iter().find(|r| r.index == k);
    let fingerprints: Vec<u64> = scn
        .jobs
        .iter()
        .map(|j| config_fingerprint(&j.cfg, &j.mix))
        .collect();
    let verdict = judge(scn, &dir, k, mode, reference, attempt, &fingerprints);
    let _ = std::fs::remove_dir_all(&dir);
    CrashPoint {
        index: k,
        op,
        verdict,
    }
}

/// Enumerates crash points `0, stride, 2·stride, …` across the
/// scenario's full operation range under `mode`. `stride == 1` is the
/// exhaustive matrix `bench --bin crashmat` runs.
///
/// # Errors
///
/// Any sweep-level [`RefsimError`] from the reference or probe run —
/// faulted points themselves never error, they produce verdicts.
pub fn enumerate(
    scn: &CrashScenario,
    root: &Path,
    stride: u64,
    mode: FaultMode,
) -> Result<CrashMatrix, RefsimError> {
    let reference = reference_rows(scn)?;
    let (total_ops, _) = probe(scn, root)?;
    let stride = stride.max(1);
    let mut points = Vec::new();
    let mut k = 0;
    while k < total_ops {
        points.push(run_point(scn, root, k, mode, &reference));
        k += stride;
    }
    Ok(CrashMatrix {
        mode,
        total_ops,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{RunMetrics, TaskMetrics};
    use crate::vfs::IoOp;
    use std::path::PathBuf;

    fn root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("refsim-crashmat-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crash_enumeration_holds_the_contract_on_a_stride() {
        let scn = CrashScenario::tiny(21);
        let root = root("stride");
        let (total, _) = probe(&scn, &root).expect("probe");
        assert!(
            total > 30,
            "the tiny scenario should exercise dozens of I/O ops, got {total}"
        );
        let matrix = enumerate(&scn, &root, total / 4, FaultMode::Crash).expect("enumerate");
        assert_eq!(matrix.total_ops, total);
        assert!(matrix.points.len() >= 4, "{}", matrix.summary());
        for p in &matrix.points {
            assert!(
                !matches!(p.verdict, Verdict::Violation(_)),
                "crash at op {}: {:?} (op was {:?})",
                p.index,
                p.verdict,
                p.op
            );
        }
        // Spot-check a reproducer detail: point 0 dies creating the
        // sweep directory, and its recorded op says so.
        let p0 = &matrix.points[0];
        assert_eq!(p0.index, 0);
        assert!(p0.op.is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn defeated_rename_negative_control_is_detected() {
        let scn = CrashScenario::tiny(22);
        let root = root("defeat");
        let reference = reference_rows(&scn).expect("reference");
        let (_, log) = probe(&scn, &root).expect("probe");
        let metrics_renames: Vec<u64> = log
            .iter()
            .filter(|r| r.op == IoOp::Rename && r.path.to_string_lossy().ends_with(".metrics"))
            .map(|r| r.index)
            .collect();
        assert!(
            !metrics_renames.is_empty(),
            "the sweep must publish metrics frames via rename"
        );
        let k = metrics_renames[0];
        let p = run_point(&scn, &root, k, FaultMode::CrashDefeatRename, &reference);
        assert!(
            matches!(p.verdict, Verdict::Violation(ref why) if why.contains("metrics")),
            "a defeated rename must be flagged by the scan, got {:?}",
            p.verdict
        );
        // The same point under an honest atomic rename passes.
        let p = run_point(&scn, &root, k, FaultMode::Crash, &reference);
        assert!(
            !matches!(p.verdict, Verdict::Violation(_)),
            "atomic rename at the same op must pass, got {:?}",
            p.verdict
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn survivable_fault_classes_degrade_gracefully() {
        let scn = CrashScenario::tiny(23);
        let root = root("classes");
        let reference = reference_rows(&scn).expect("reference");
        let (total, log) = probe(&scn, &root).expect("probe");

        // ENOSPC at the very first op and mid-sweep; a transient and a
        // torn write mid-sweep.
        for (mode, k) in [
            (FaultMode::Enospc, 0),
            (FaultMode::Enospc, total / 2),
            (FaultMode::Interrupt, total / 3),
            (FaultMode::TornWrite, total / 2),
        ] {
            let p = run_point(&scn, &root, k, mode, &reference);
            assert!(
                !matches!(p.verdict, Verdict::Violation(_)),
                "{mode} at op {k}: {:?} (op was {:?})",
                p.verdict,
                p.op
            );
        }

        // Silent bitrot on the *last* manifest publish: the corrupt
        // manifest survives invocation A, and the restart must detect
        // it via the checksum trailer and rebuild from metrics frames.
        let last_manifest_write = log
            .iter()
            .filter(|r| {
                r.op == crate::vfs::IoOp::Write
                    && r.path.to_string_lossy().contains("sweep.manifest")
            })
            .map(|r| r.index)
            .next_back()
            .expect("the sweep writes its manifest");
        let p = run_point(
            &scn,
            &root,
            last_manifest_write,
            FaultMode::CorruptWrite,
            &reference,
        );
        match &p.verdict {
            Verdict::Degraded(why) => assert!(
                why.contains("manifest rebuilt") || why.contains("quarantined"),
                "bitrot on the manifest must surface in the degradation notes: {why}"
            ),
            other => panic!("corrupt manifest write must degrade, not {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn metrics_frames_reject_every_single_byte_flip_and_truncation() {
        let m = RunMetrics {
            tasks: vec![TaskMetrics {
                task: 0,
                label: "mcf".into(),
                instructions: 123,
                cpu_time: Ps::from_us(1),
                stall_time: Ps::ZERO,
                llc_misses: 9,
                faults: 1,
                spilled_pages: 0,
                schedules: 2,
            }],
            sim_time: Ps::from_us(4),
            controller: Default::default(),
            sched: Default::default(),
            cpu_period: Ps::from_ps(312),
            dram_period: Ps::from_ps(1250),
        };
        let frame = crate::sweep::encode_metrics(0xFEED_F00D, &m);
        let (fp, back) = crate::sweep::decode_metrics(&frame).expect("roundtrip");
        assert_eq!(fp, 0xFEED_F00D);
        assert_eq!(back, m);
        for i in 0..frame.len() {
            let mut b = frame.clone();
            b[i] ^= 0xFF;
            assert!(
                crate::sweep::decode_metrics(&b).is_none(),
                "flip at byte {i} must not decode"
            );
        }
        for cut in [0, 1, 7, 8, frame.len() - 1] {
            assert!(crate::sweep::decode_metrics(&frame[..cut]).is_none());
        }
        // A frame with the wrong fingerprint is detected by the caller
        // (load_metrics), which compares against the expected value —
        // covered by the misattribution arm of the crash scans.
    }
}
